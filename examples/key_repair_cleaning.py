"""Data cleaning with a lens: repair key violations, keep the uncertainty.

The key-repair lens (Section 11.4 of the paper) fixes primary-key
violations by picking one candidate tuple per key — but unlike an ordinary
cleaning script it *remembers* the repairs it did not take, as
attribute-level bounds.  Downstream queries then expose which answers
depend on the cleaning heuristic.

Run with ``python examples/key_repair_cleaning.py``.
"""

import random

from repro import AUDatabase, DetRelation, evaluate_audb, key_repair_lens, parse_sql
from repro.accuracy import audb_certain_keys


def dirty_catalog() -> DetRelation:
    """A product catalog where some SKUs appear with conflicting data."""
    rel = DetRelation(["sku", "price", "stock"])
    rows = [
        ("A-100", 9.99, 120),
        ("A-101", 4.50, 8),
        ("A-101", 6.00, 8),      # conflicting price for A-101
        ("A-102", 12.00, 55),
        ("A-103", 3.25, 0),
        ("A-103", 3.25, 40),     # conflicting stock for A-103
        ("A-104", 99.00, 3),
        ("A-104", 79.00, 30),    # conflicting price AND stock
        ("A-104", 89.00, 12),
    ]
    for row in rows:
        rel.add(row)
    return rel


def main() -> None:
    raw = dirty_catalog()
    print(f"Raw catalog: {raw.total_rows()} rows, key = sku")

    lens = key_repair_lens(raw, ["sku"], rng=random.Random(7))
    print(
        f"Key-repair lens: {lens.n_violating_keys} violating keys, "
        f"{lens.avg_alternatives:.1f} candidates each on average"
    )
    print("\nRepaired AU-relation (ranges record the rejected repairs):")
    print(lens.audb.pretty())

    db = AUDatabase({"catalog": lens.audb})

    # -- a query whose answer depends on the repairs --------------------
    sql = "SELECT sum(price * stock) AS inventory_value FROM catalog"
    result = evaluate_audb(parse_sql(sql), db)
    ((t, _ann),) = list(result.tuples())
    value = t[0]
    print(f"\n{sql}")
    print(
        f"  inventory value = {value.sg:,.2f} "
        f"(guaranteed within [{value.lb:,.2f}, {value.ub:,.2f}])"
    )

    # -- a filter where repairs decide membership ------------------------
    sql2 = "SELECT sku FROM catalog WHERE price > 5.0"
    result2 = evaluate_audb(parse_sql(sql2), db)
    certain = audb_certain_keys(result2, ["sku"])
    print(f"\n{sql2}")
    for t, (lb, _sg, ub) in sorted(result2.tuples(), key=lambda x: repr(x[0])):
        status = "certain" if lb > 0 else "depends on the repair choice"
        print(f"  {t[0].sg}: {status}")
    print(f"  -> {len(certain)} certain answers out of {len(result2)} reported")


if __name__ == "__main__":
    main()
