"""Uncertain TPC-H: PDBench-style analytics with bounds.

Generates a small TPC-H instance, injects PDBench-style cell-level
uncertainty (conflicting extracted values), and contrasts three ways of
answering TPC-H Q1 and Q3:

* ``Det`` — query the selected-guess world and hope for the best;
* ``MCDB`` — sample 10 possible worlds and look at the spread;
* ``AU-DB`` — one run, hard bounds.

Run with ``python examples/tpch_uncertain.py``.
"""

from repro import AUDatabase, Connection, EvalConfig
from repro.baselines.mcdb import run_mcdb
from repro.tpch.pdbench import make_pdbench
from repro.tpch.queries import q1, q3


def main() -> None:
    instance = make_pdbench(scale=0.3, uncertainty=0.05)
    det_world = instance.selected_world()
    audb = AUDatabase(instance.audb().relations)
    # one query session per engine: the sessions own the statistics
    # catalog, so Q1 and Q3 share one harvest instead of re-scanning
    det_conn = Connection(det_world)
    au_conn = Connection(
        audb, config=EvalConfig(join_buckets=64, aggregation_buckets=64)
    )

    lineitems = det_world["lineitem"].total_rows()
    uncertain_pct = instance.xdb["lineitem"].uncertain_tuple_fraction() * 100
    print(
        f"TPC-H instance: {lineitems} lineitems, "
        f"{uncertain_pct:.1f}% of lineitem tuples carry uncertainty\n"
    )

    # ------------------------------------------------------------ Q1 --
    plan = q1()
    det = det_conn.execute(plan)
    au = au_conn.execute(plan)
    mcdb = run_mcdb(plan, instance.xdb, n_samples=10)
    mcdb_bounds = mcdb.attribute_bounds(["l_returnflag", "l_linestatus"])

    print("Q1 (pricing summary) — sum_qty per (returnflag, linestatus):")
    au_by_key = {
        (t[0].sg, t[1].sg): t for t, _ann in au.tuples()
    }
    for key in sorted(det.rows, key=repr):
        flag, status = key[0], key[1]
        det_qty = key[2]
        au_t = au_by_key.get((flag, status))
        qty = au_t[2] if au_t else None
        sampled = mcdb_bounds.get((flag, status))
        mc = f"sampled [{sampled[0][0]}, {sampled[0][1]}]" if sampled else "-"
        print(
            f"  ({flag},{status}): Det={det_qty}  "
            f"AU-DB=[{qty.lb}, {qty.ub}] (guess {qty.sg})  MCDB {mc}"
        )
    print(
        "  MCDB's sampled spread can under-cover the truth; the AU-DB "
        "interval is a guarantee.\n"
    )

    # ------------------------------------------------------------ Q3 --
    plan3 = q3()
    det3 = det_conn.execute(plan3)
    au3 = au_conn.execute(plan3)
    certain_orders = sum(1 for _t, (lb, _s, _u) in au3.tuples() if lb > 0)
    print("Q3 (shipping priority):")
    print(f"  Det reports {det3.total_rows()} qualifying orders")
    print(
        f"  AU-DB reports {len(au3)} possible orders, "
        f"{certain_orders} of which certainly qualify"
    )
    print(
        "  The difference is exactly the set of orders whose qualification "
        "depends on uncertain dates/prices."
    )


if __name__ == "__main__":
    main()
