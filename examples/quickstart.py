"""Quickstart: open a session on an AU-DB, query it with SQL, read the bounds.

Run with ``python examples/quickstart.py``.

An AU-DB annotates one *selected-guess* database with attribute-level
ranges ``[lb/sg/ub]`` and tuple-level multiplicity bounds ``(lb, sg, ub)``.
Queries preserve those bounds: whatever the true state of the data is
(within the declared uncertainty), the true query answer lies inside the
reported ranges.

Queries run through a :class:`repro.session.Connection` — the session
owns the statistics catalog and a plan cache, so a prepared (optionally
parameterized) statement is parsed and optimized once and then executed
with many bindings, staying current as the data changes.
"""

from repro import AUDatabase, AURelation, Connection, between


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Declare uncertain data.
    #
    # Sensor readings: reading 2's temperature is somewhere in [19, 23]
    # with a best guess of 21; reading 3 may be a duplicate (its tuple
    # multiplicity is between 1 and 2); reading 4 might not exist at all
    # (multiplicity lower bound 0).
    # ------------------------------------------------------------------
    readings = AURelation(["sensor", "temp"])
    readings.add(["north", 18.0], (1, 1, 1))                    # certain
    readings.add(["north", between(19.0, 21.0, 23.0)], (1, 1, 1))
    readings.add(["south", 25.0], (1, 1, 2))                    # maybe dup
    readings.add(["south", between(24.0, 26.0, 30.0)], (0, 1, 1))  # maybe absent

    db = AUDatabase({"readings": readings})
    conn = Connection(db)
    print("Input AU-relation:")
    print(readings.pretty())

    # ------------------------------------------------------------------
    # 2. Query with SQL.  The result carries sound bounds.
    # ------------------------------------------------------------------
    result = conn.execute(
        "SELECT sensor, count(*) AS n, avg(temp) AS avg_temp "
        "FROM readings GROUP BY sensor"
    )
    print("\nSELECT sensor, count(*), avg(temp) ... GROUP BY sensor:")
    print(result.pretty())

    # ------------------------------------------------------------------
    # 3. Read the three layers of every answer.
    # ------------------------------------------------------------------
    print("\nInterpretation:")
    for t, (lb, sg, ub) in result.tuples():
        sensor, n, avg_temp = t
        certainty = "certainly exists" if lb > 0 else "may exist"
        print(
            f"  group {sensor.sg!r}: {certainty}; "
            f"count in [{n.lb}, {n.ub}] (best guess {n.sg}); "
            f"avg temp in [{avg_temp.lb:.1f}, {avg_temp.ub:.1f}] "
            f"(best guess {avg_temp.sg:.1f})"
        )

    # ------------------------------------------------------------------
    # 4. Prepared statements: `?` placeholders survive planning, so one
    # compiled plan serves many bindings — and stays valid across
    # writes (the session re-plans only when statistics drift).
    # ------------------------------------------------------------------
    hot = conn.prepare("SELECT sensor, temp FROM readings WHERE temp >= ?")
    print("\nPrepared: SELECT sensor, temp FROM readings WHERE temp >= ?")
    for threshold in (20.0, 25.0):
        rows = sorted(
            (t[0].sg, repr(t[1])) for t, _ann in hot.execute([threshold]).tuples()
        )
        print(f"  temp >= {threshold}: {rows}")
    readings.add(["east", 31.0], (1, 1, 1))  # a write lands...
    rows = sorted(
        (t[0].sg, repr(t[1])) for t, _ann in hot.execute([25.0]).tuples()
    )
    print(f"  temp >= 25.0 after insert: {rows}")
    m = conn.metrics
    print(
        f"  (parsed {m.parses}x, optimized {m.optimizations}x "
        f"for {m.executions} executions)"
    )

    # ------------------------------------------------------------------
    # 5. The selected-guess world is always recoverable: ignoring the
    # bounds gives exactly what a deterministic database would have said.
    # ------------------------------------------------------------------
    print("\nSelected-guess world of the result (what SGQP would report):")
    for row, mult in result.selected_guess_world().items():
        print(f"  {row} x{mult}")


if __name__ == "__main__":
    main()
