"""The paper's running example (Example 1): COVID infection rates.

Alice tracks infection rates scraped from the web.  Parts of the data are
trustworthy, others are ambiguous (conflicting sources) or missing.  The
usual practice — pick one interpretation and query it deterministically
("selected-guess query processing") — silently produces misleading
results; certain-answer semantics returns nothing at all.  An AU-DB keeps
the convenient selected guess *and* sound bounds.

Run with ``python examples/covid_tracking.py``.
"""

from repro import (
    AUDatabase,
    AURelation,
    DetDatabase,
    DetRelation,
    between,
    evaluate_audb,
    evaluate_det,
    parse_sql,
)

QUERY = "SELECT size, avg(rate) AS rate FROM locales GROUP BY size"


def build_audb() -> AURelation:
    """Figure 1c: the AU-DB encoding of the uncertain locale data.

    Note on ordering: the repo's universal string order is lexicographic
    (city < metro < town < village), so interval endpoints below follow
    that order rather than the paper's by-size ordinal scale.
    """
    locales = AURelation(["locale", "rate", "size"])
    # rate known to lie in [3%, 4%], ETL picked 3%
    locales.add(["Los Angeles", between(3.0, 3.0, 4.0), "metro"], (1, 1, 1))
    # source conflict: Austin is a city or a metro
    locales.add(["Austin", 18.0, between("city", "city", "metro")], (1, 1, 1))
    locales.add(["Houston", 14.0, "metro"], (1, 1, 1))
    locales.add(["Berlin", between(1.0, 3.0, 3.0), between("city", "town", "town")], (1, 1, 1))
    # Sacramento's size is completely unknown: bounds cover the domain
    locales.add(["Sacramento", 1.0, between("city", "town", "village")], (1, 1, 1))
    # Springfield's rate is missing: bounds cover 0..100%
    locales.add(["Springfield", between(0.0, 5.0, 100.0), "town"], (1, 1, 1))
    return locales


def selected_guess_only(locales: AURelation) -> DetRelation:
    """What Alice's heuristic pipeline would do: keep the guesses only."""
    rel = DetRelation(["locale", "rate", "size"])
    for row, mult in locales.selected_guess_world().items():
        rel.add(row, mult)
    return rel


def main() -> None:
    locales = build_audb()
    plan = parse_sql(QUERY)

    print("Query:", QUERY)

    # -- selected-guess query processing (today's practice) -------------
    sgqp = evaluate_det(plan, DetDatabase({"locales": selected_guess_only(locales)}))
    print("\nSGQP result (no uncertainty information — looks authoritative):")
    for t in sorted(sgqp.rows, key=repr):
        print(f"  size={t[0]:<8} avg rate = {t[1]:.2f}%")

    # -- AU-DB query processing -----------------------------------------
    result = evaluate_audb(plan, AUDatabase({"locales": locales}))
    print("\nAU-DB result (same guesses, plus sound bounds):")
    for t, (lb, _sg, ub) in sorted(result.tuples(), key=lambda x: repr(x[0])):
        size, rate = t
        exists = "exists certainly" if lb > 0 else f"may exist (0..{ub} groups)"
        print(
            f"  size={size.sg:<8} avg rate = {rate.sg:.2f}%  "
            f"bounds [{rate.lb:.2f}%, {rate.ub:.2f}%]  ({exists})"
        )

    print(
        "\nTakeaways (cf. Example 2 in the paper):\n"
        "  * the 18% 'city' rate SGQP reports is built on a single ambiguous\n"
        "    tuple — the AU-DB marks that group as possibly non-existent;\n"
        "  * the metro group certainly exists, and its rate is certain to lie\n"
        "    within the reported interval no matter how the ambiguity resolves;\n"
        "  * Springfield's unknown rate blows up the town group's upper bound —\n"
        "    visibly, instead of silently biasing the average."
    )


if __name__ == "__main__":
    main()
