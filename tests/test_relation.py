"""Unit tests for AU-relations, SGW extraction, and Enc/Dec (Sec. 6, 10.1)."""

import pytest

from repro.core.ranges import between, certain
from repro.core.relation import AUDatabase, AURelation, decode, encode


def example7_relation() -> AURelation:
    """The AU-relation of paper Figure 5a."""
    r = AURelation(["A", "B"])
    r.add([certain(1), certain(1)], (2, 2, 3))
    r.add([certain(1), between(1, 1, 3)], (2, 3, 3))
    r.add([between(1, 2, 2), certain(3)], (1, 1, 1))
    return r


class TestConstruction:
    def test_plain_values_lifted(self):
        r = AURelation(["a"])
        r.add([5], (1, 1, 1))
        ((t, ann),) = list(r.tuples())
        assert t[0] == certain(5)
        assert ann == (1, 1, 1)

    def test_value_equivalent_tuples_merge(self):
        r = AURelation(["a"])
        r.add([5], (1, 1, 1))
        r.add([5], (0, 1, 2))
        assert len(r) == 1
        assert r.annotation((certain(5),)) == (1, 2, 3)

    def test_zero_annotation_ignored(self):
        r = AURelation(["a"])
        r.add([5], (0, 0, 0))
        assert len(r) == 0

    def test_invalid_annotation_rejected(self):
        r = AURelation(["a"])
        with pytest.raises(ValueError):
            r.add([5], (2, 1, 1))

    def test_arity_mismatch_rejected(self):
        r = AURelation(["a", "b"])
        with pytest.raises(ValueError):
            r.add([5], (1, 1, 1))

    def test_from_certain_rows(self):
        r = AURelation.from_certain_rows(["a"], [[1], [1], [2]])
        assert r.annotation((certain(1),)) == (2, 2, 2)

    def test_attr_index_error(self):
        r = AURelation(["a"])
        with pytest.raises(KeyError):
            r.attr_index("zzz")


class TestSelectedGuessWorld:
    def test_example_7(self):
        # Figure 5b: tuples (1,1)x5 and (2,3)x1
        world = example7_relation().selected_guess_world()
        assert world == {(1, 1): 5, (2, 3): 1}

    def test_zero_sg_excluded(self):
        r = AURelation(["a"])
        r.add([1], (0, 0, 4))
        assert r.selected_guess_world() == {}


class TestEncodeDecode:
    def test_schema_layout(self):
        r = AURelation(["A", "B"])
        schema, _rows = encode(r)
        assert schema == (
            "A_sg", "B_sg", "A_lb", "B_lb", "A_ub", "B_ub",
            "row_lb", "row_sg", "row_ub",
        )

    def test_roundtrip(self):
        r = example7_relation()
        schema, rows = encode(r)
        back = decode(["A", "B"], rows)
        assert set(back.tuples()) == set(r.tuples())

    def test_decode_merges_value_equivalent(self):
        # two encoded rows for the same AU-tuple sum their annotations
        rows = [
            (1, 2, 1, 2, 1, 2, 1, 1, 1),
            (1, 2, 1, 2, 1, 2, 0, 1, 2),
        ]
        back = decode(["A", "B"], rows)
        assert len(back) == 1
        assert back.annotation((certain(1), certain(2))) == (1, 2, 3)

    def test_decode_arity_check(self):
        with pytest.raises(ValueError):
            decode(["A"], [(1, 2, 3)])


class TestDatabase:
    def test_lookup(self):
        db = AUDatabase({"r": example7_relation()})
        assert "r" in db
        assert len(db["r"]) == 3
        with pytest.raises(KeyError):
            db["missing"]

    def test_sgw_of_database(self):
        db = AUDatabase({"r": example7_relation()})
        assert db.selected_guess_world()["r"] == {(1, 1): 5, (2, 3): 1}

    def test_pretty_renders(self):
        text = example7_relation().pretty()
        assert "A" in text and "N^AU" in text
