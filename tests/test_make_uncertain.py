"""Tests for the MakeUncertain lens construct (Example 16)."""

import pytest

from repro.algebra.evaluator import evaluate_audb
from repro.core.expressions import Const, MakeUncertain, Var
from repro.core.ranges import between, certain
from repro.core.relation import AUDatabase, AURelation
from repro.sql.parser import parse_sql


class TestExpression:
    def test_det_eval_returns_guess(self):
        e = MakeUncertain(Const(1), Const(2), Const(3))
        assert e.eval({}) == 2

    def test_range_eval_builds_interval(self):
        e = MakeUncertain(Var("lo"), Var("mid"), Var("hi"))
        r = e.eval_range({"lo": certain(1), "mid": certain(2), "hi": certain(5)})
        assert (r.lb, r.sg, r.ub) == (1, 2, 5)

    def test_nested_uncertainty_widens(self):
        # if the inputs are themselves uncertain the envelope covers them
        e = MakeUncertain(Var("lo"), Var("mid"), Var("hi"))
        r = e.eval_range(
            {"lo": between(0, 1, 2), "mid": between(1, 3, 4), "hi": certain(5)}
        )
        assert r.lb <= 0 and r.ub >= 5 and r.sg == 3

    def test_variables_collected(self):
        e = MakeUncertain(Var("a"), Var("b"), Const(9))
        assert e.variables() == frozenset({"a", "b"})


class TestSqlIntegration:
    def test_parses_as_function(self):
        plan = parse_sql(
            "SELECT k, MAKEUNCERTAIN(lo, mid, hi) AS v FROM stats"
        )
        expr = plan.columns[1][0]
        assert isinstance(expr, MakeUncertain)

    def test_example_16_key_repair_in_sql(self):
        """The paper's Example 16: repair keys inside a query."""
        stats = AURelation.from_certain_rows(
            ["k", "num_b", "min_b", "max_b"],
            [
                ["a", 1, 10, 10],
                ["b", 2, 5, 9],
            ],
        )
        plan = parse_sql(
            "SELECT k, CASE WHEN num_b > 1 "
            "THEN MAKEUNCERTAIN(min_b, min_b, max_b) ELSE min_b END AS b "
            "FROM stats"
        )
        out = evaluate_audb(plan, AUDatabase({"stats": stats}))
        rows = {t[0].sg: t[1] for t, _ann in out.tuples()}
        assert rows["a"] == certain(10)
        assert (rows["b"].lb, rows["b"].sg, rows["b"].ub) == (5, 5, 9)

    def test_sgw_unchanged_by_makeuncertain(self):
        stats = AURelation.from_certain_rows(["v"], [[7]])
        plan = parse_sql("SELECT MAKEUNCERTAIN(0, v, 100) AS v FROM stats")
        out = evaluate_audb(plan, AUDatabase({"stats": stats}))
        assert out.selected_guess_world() == {(7,): 1}
