"""Smoke-test the runnable examples as real subprocesses.

The ``examples/`` scripts are documentation that executes; running them
exactly the way the README tells users to (``python examples/<name>.py``
with the package on ``PYTHONPATH``) keeps them from silently rotting as
the API evolves.  Output is only sanity-checked, not golden-filed: the
scripts print uncertainty bounds whose exact text may legitimately
tighten as the engines improve.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"
SRC = REPO_ROOT / "src"


def _run(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )


@pytest.mark.parametrize(
    "script, expected_fragments",
    [
        ("quickstart.py", ["Input AU-relation", "GROUP BY sensor", "count in ["]),
        ("tpch_uncertain.py", ["TPC-H instance", "Q1", "Q3", "AU-DB"]),
    ],
)
def test_example_runs_clean(script, expected_fragments):
    result = _run(script)
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    for fragment in expected_fragments:
        assert fragment in result.stdout, (
            f"{script}: expected {fragment!r} in output:\n{result.stdout}"
        )
    assert "Traceback" not in result.stderr
