"""Smoke tests: every experiment harness runs at tiny sizes and produces
sane rows (the full-size runs live in benchmarks/ and EXPERIMENTS.md)."""

import math

import pytest

from repro.experiments import (
    fig10_pdbench,
    fig11_agg_chain,
    fig12_tpch,
    fig13_micro,
    fig14_join_opt,
    fig15_agg_accuracy,
    fig16_multijoin,
    fig17_realworld,
)
from repro.experiments.common import format_table, time_call


class TestCommon:
    def test_time_call(self):
        seconds, result = time_call(lambda: 42, repeat=2)
        assert result == 42
        assert seconds >= 0

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 2, "b": 1e-6}])
        assert "a" in text and "---" in text

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"


class TestFig10:
    def test_uncertainty_sweep(self):
        rows = fig10_pdbench.run_uncertainty_sweep(
            scale=0.05, uncertainties=(0.05,)
        )
        systems = {r["system"] for r in rows}
        assert systems == set(fig10_pdbench.SYSTEMS)
        det = next(r for r in rows if r["system"] == "Det")
        assert det["ratio_vs_det"] > 0  # timing noise dominates at tiny scale

    def test_scale_sweep(self):
        rows = fig10_pdbench.run_scale_sweep(scales=(0.05,), uncertainty=0.05)
        assert all(r["seconds"] >= 0 for r in rows)


class TestFig11:
    def test_chain(self):
        rows = fig11_agg_chain.run(n_rows=120, ops_range=(1, 2))
        assert len(rows) == 2
        assert all(r["AU-DB"] > 0 and r["Det"] > 0 for r in rows)

    def test_chain_plan_validation(self):
        with pytest.raises(ValueError):
            fig11_agg_chain.make_chain_plan(0)
        with pytest.raises(ValueError):
            fig11_agg_chain.make_chain_plan(99)


class TestFig12:
    def test_single_config(self):
        from repro.tpch.queries import q1

        rows = fig12_tpch.run(
            configs=[("test", 0.05, 0.05)], queries={"Q1": q1()}
        )
        assert len(rows) == 1
        assert rows[0]["AU-DB/Det"] > 0


class TestFig13:
    def test_group_by_sweep(self):
        rows = fig13_micro.run_group_by_sweep(
            n_rows=150, n_cols=6, group_counts=(1, 3)
        )
        assert [r["group_by_attrs"] for r in rows] == [1, 3]

    def test_agg_function_sweep(self):
        rows = fig13_micro.run_agg_function_sweep(
            n_rows=150, n_cols=6, agg_counts=(1, 3)
        )
        assert len(rows) == 2

    def test_attribute_range_sweep(self):
        rows = fig13_micro.run_attribute_range_sweep(
            n_rows=150, range_fractions=(0.5,), cts=(4,)
        )
        assert len(rows) == 1

    def test_compression_tradeoff_monotone_accuracy(self):
        rows = fig13_micro.run_compression_tradeoff(n_rows=300, cts=(2, 64))
        # more buckets -> no looser mean range
        assert rows[-1]["mean_range"] <= rows[0]["mean_range"] + 1e-9


class TestFig14:
    def test_run(self):
        rows = fig14_join_opt.run(sizes=(80,), cts=(None, 4))
        variants = {r["variant"] for r in rows}
        assert variants == {"Non-Op", "CT=4"}
        ct4 = next(r for r in rows if r["variant"] == "CT=4")
        assert ct4["result_tuples"] > 0


class TestFig15:
    def test_run(self):
        rows = fig15_agg_accuracy.run(
            n_rows=150, uncertainties=(0.05,), range_fractions=(0.05,)
        )
        assert len(rows) == 1
        assert rows[0]["range_overestimation"] >= 1.0
        assert rows[0]["over_grouping_pct"] >= 0.0


class TestFig16:
    def test_run(self):
        rows = fig16_multijoin.run(
            n_rows=60, join_counts=(1, 2), cts=(4, None), uncertainties=(0.05,)
        )
        assert len(rows) == 4  # 2 compression settings x 2 chain lengths
        assert all(r["result_tuples"] >= 0 for r in rows)


class TestFig17:
    def test_run_small(self):
        rows = fig17_realworld.run(
            sizes={"netflix": 250, "crimes": 300, "healthcare": 250}
        )
        systems = {r["system"] for r in rows}
        assert systems == {"AU-DB", "Trio", "MCDB", "UA-DB"}
        audb_rows = [r for r in rows if r["system"] == "AU-DB"]
        # AU-DB never misses possible answers and never misses certain ones
        for r in audb_rows:
            assert r["pos_by_id"] == 1.0
            assert r["pos_by_val"] == 1.0
            assert r["cert_recall"] == 1.0

    def test_groundtruth_helpers(self):
        from repro.experiments.groundtruth import (
            exact_count_bounds,
            exact_minmax_bounds,
            exact_sum_bounds,
        )
        from repro.incomplete.xdb import XRelation

        xrel = XRelation(["g", "v"])
        xrel.add_certain(("a", 3))
        xrel.add([("a", 1), ("b", 2)])
        sums = exact_sum_bounds(xrel, [0], lambda alt: alt[1])
        assert sums[("a",)] == (3.0, 4.0)
        assert sums[("b",)] == (0.0, 2.0)
        counts = exact_count_bounds(xrel, [0])
        assert counts[("a",)] == (1, 2)
        maxes = exact_minmax_bounds(xrel, [0], lambda alt: alt[1], "max")
        assert maxes[("a",)] == (3, 3)

    def test_spj_ground_truth(self):
        from repro.experiments.groundtruth import (
            spj_certain_tuples,
            spj_possible_tuples,
        )
        from repro.incomplete.xdb import XRelation

        xrel = XRelation(["k", "v"])
        xrel.add_certain(("a", 10))
        xrel.add([("b", 5), ("b", 20)])
        pred = lambda row: row["v"] >= 10
        possible = spj_possible_tuples(xrel, pred, [0, 1])
        certain = spj_certain_tuples(xrel, pred, [0, 1])
        assert possible == {("a", 10), ("b", 20)}
        assert certain == {("a", 10)}
