"""Failure-injection tests: malformed inputs raise clear errors everywhere."""

import pytest

from repro.algebra.ast import TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import AggregateSpec
from repro.core.compression import compress
from repro.core.ranges import RangeValue
from repro.core.relation import AUDatabase, AURelation, decode
from repro.core.expressions import Const, Div, Var
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.incomplete.xdb import XTuple
from repro.sql.parser import SqlSyntaxError, parse_sql


class TestModelValidation:
    def test_range_value_rejects_unordered(self):
        with pytest.raises(ValueError, match="lb <= sg <= ub"):
            RangeValue(5, 1, 9)

    def test_annotation_rejects_unordered(self):
        r = AURelation(["a"])
        with pytest.raises(ValueError, match="K\\^AU"):
            r.add([1], (3, 2, 1))

    def test_annotation_rejects_negative(self):
        r = AURelation(["a"])
        with pytest.raises(ValueError):
            r.add([1], (-1, 0, 0))

    def test_decode_rejects_bad_arity(self):
        with pytest.raises(ValueError, match="arity"):
            decode(["a", "b"], [(1, 2, 3)])

    def test_aggregate_spec_validation(self):
        with pytest.raises(ValueError, match="unsupported aggregate"):
            AggregateSpec("median", Var("x"), "m")
        with pytest.raises(ValueError, match="requires an expression"):
            AggregateSpec("sum", None, "s")

    def test_xtuple_validation(self):
        with pytest.raises(ValueError):
            XTuple((), ())
        with pytest.raises(ValueError, match="probabilit"):
            XTuple(((1,), (2,)), (0.8, 0.8))


class TestEngineErrors:
    def test_unknown_table(self):
        with pytest.raises(KeyError, match="not found"):
            evaluate_det(TableRef("nope"), DetDatabase({}))
        with pytest.raises(KeyError, match="not found"):
            evaluate_audb(TableRef("nope"), AUDatabase({}))

    def test_unknown_attribute_in_condition(self):
        db = DetDatabase({"r": DetRelation(["a"], [(1,)])})
        with pytest.raises(KeyError):
            evaluate_det(TableRef("r").where(Var("zzz") > Const(0)), db)

    def test_union_schema_mismatch(self):
        from repro.algebra.ast import Union

        db = AUDatabase(
            {
                "r": AURelation.from_certain_rows(["a"], [[1]]),
                "s": AURelation.from_certain_rows(["a", "b"], [[1, 2]]),
            }
        )
        with pytest.raises(ValueError, match="union"):
            evaluate_audb(Union(TableRef("r"), TableRef("s")), db)

    def test_division_by_uncertain_zero(self):
        from repro.core.ranges import between

        rel = AURelation(["a"])
        rel.add([between(-1, 0, 1)], (1, 1, 1))
        db = AUDatabase({"r": rel})
        plan = TableRef("r").select((Div(Const(1), Var("a")), "inv"))
        with pytest.raises(ZeroDivisionError):
            evaluate_audb(plan, db)

    def test_compress_invalid_attribute(self):
        rel = AURelation.from_certain_rows(["a"], [[1], [2], [3]])
        with pytest.raises(KeyError):
            compress(rel, "nope", 2)


class TestSqlErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "SELECT sum( FROM t",
            "SELECT a b c FROM t",
            "FROM t SELECT a",
            "SELECT a FROM t LIMIT x",
        ],
    )
    def test_malformed_sql(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse_sql(sql)

    def test_aggregate_in_where_is_rejected_downstream(self):
        # aggregates are only legal in the select list; in WHERE the parser
        # treats sum(...) as an unknown construct and fails cleanly
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t WHERE sum(a) > 1 GROUP BY a")


class TestEvalConfigEdges:
    def test_zero_buckets_rejected(self):
        rel = AURelation.from_certain_rows(["a", "b"], [[1, 2]])
        db = AUDatabase({"r": rel, "s": rel})
        with pytest.raises(ValueError):
            compress(rel, "a", 0)

    def test_missing_equi_pair_falls_back(self):
        # optimized join requested but the condition has no equi pair:
        # evaluator silently falls back to the naive theta join
        left = AURelation.from_certain_rows(["a"], [[1], [2]])
        right = AURelation.from_certain_rows(["b"], [[1]])
        db = AUDatabase({"l": left, "r": right})
        plan = TableRef("l").join(TableRef("r"), Var("a") > Var("b"))
        out = evaluate_audb(plan, db, EvalConfig(join_buckets=4))
        assert len(out) == 1
