"""Unit tests for range-annotated values (Definitions 6 and 10)."""

import math

import pytest

from repro.core.ranges import (
    NEG_INF,
    POS_INF,
    RangeValue,
    between,
    certain,
    domain_key,
    domain_le,
    domain_max,
    domain_min,
)


class TestConstruction:
    def test_certain_value(self):
        v = certain(5)
        assert v.lb == v.sg == v.ub == 5
        assert v.is_certain

    def test_between(self):
        v = between(1, 2, 3)
        assert (v.lb, v.sg, v.ub) == (1, 2, 3)
        assert not v.is_certain

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            RangeValue(3, 2, 1)

    def test_sg_below_lb_rejected(self):
        with pytest.raises(ValueError):
            RangeValue(2, 1, 3)

    def test_string_ranges(self):
        v = between("city", "city", "metro")
        assert v.bounds_value("city")
        assert v.bounds_value("metro")
        assert not v.bounds_value("z-town")

    def test_boolean_domain(self):
        # Example 5: the four elements of the boolean range domain
        for lb, sg, ub in [
            (True, True, True),
            (False, True, True),
            (False, False, True),
            (False, False, False),
        ]:
            RangeValue(lb, sg, ub)
        with pytest.raises(ValueError):
            RangeValue(True, False, True)

    def test_hashable_and_frozen(self):
        v = between(1, 2, 3)
        assert hash(v) == hash(between(1, 2, 3))
        with pytest.raises(Exception):
            v.lb = 0


class TestBounding:
    def test_bounds_value(self):
        v = between(1, 2, 4)
        assert v.bounds_value(1)
        assert v.bounds_value(4)
        assert not v.bounds_value(0)
        assert not v.bounds_value(5)

    def test_bounds_set_requires_sg_member(self):
        # Example 6: x = [0/2/3] bounds {1,2,3}; [0/2/2] would not bound
        # a set missing 2... here: sg must be realized by the set.
        assert between(0, 2, 3).bounds_set([1, 2, 3])
        assert not between(0, 2, 3).bounds_set([1, 3])

    def test_bounds_set_containment(self):
        assert not between(0, 2, 2).bounds_set([1, 2, 3])

    def test_bounds_empty_set(self):
        assert not certain(1).bounds_set([])


class TestOverlap:
    def test_overlapping(self):
        assert between(1, 2, 3).overlaps(between(3, 4, 5))
        assert between(1, 2, 3).overlaps(between(0, 0, 10))

    def test_disjoint(self):
        assert not between(1, 2, 3).overlaps(between(4, 5, 6))

    def test_certainly_equal(self):
        assert certain(2).certainly_equal(certain(2))
        assert not certain(2).certainly_equal(certain(3))
        assert not between(1, 2, 3).certainly_equal(between(1, 2, 3))


class TestMerge:
    def test_merge_keeps_sg(self):
        merged = between(1, 2, 3).merge(between(0, 9, 10))
        assert (merged.lb, merged.sg, merged.ub) == (0, 2, 10)

    def test_width(self):
        assert between(1, 2, 5).width() == 4.0
        assert certain("x").width() == 0.0
        assert between("a", "b", "c").width() == math.inf


class TestDomainOrder:
    def test_total_order_across_types(self):
        values = ["b", 3, None, True, "a", 2.5, False]
        ordered = sorted(values, key=domain_key)
        assert ordered[0] is None
        # booleans rank with the numbers (False=0, True=1), numbers
        # before strings
        assert ordered[1:3] == [False, True]
        assert ordered[3:5] == [2.5, 3]
        assert ordered[5:] == ["a", "b"]

    def test_bools_interleave_with_numbers(self):
        # regression: True used to rank below every number, so a value
        # could be "certain" (True == 1) yet unequal in the domain order
        assert sorted([2, True, -1, False, 0.5], key=domain_key) == [
            -1,
            False,
            0.5,
            True,
            2,
        ]

    def test_bool_int_keys_coincide(self):
        assert domain_key(True) == domain_key(1)
        assert domain_key(False) == domain_key(0)

    def test_infinity_sentinels(self):
        assert domain_le(NEG_INF, None)
        assert domain_le("zzz", POS_INF)
        assert not domain_le(POS_INF, "zzz")

    def test_min_max(self):
        assert domain_min([3, 1, 2]) == 1
        assert domain_max(["a", "c", "b"]) == "c"


class TestBoolIntConsistency:
    """Property coverage for the unified bool/number domain order: a value
    is ``is_certain`` exactly when its bounds coincide under the domain
    order, even when booleans and numbers mix."""

    MIXED = [True, False, 0, 1, 2, -1, 0.0, 1.0, 0.5, "a", None]

    def test_certain_iff_bounds_share_domain_key(self):
        from hypothesis import given, strategies as st

        @given(a=st.sampled_from(self.MIXED), b=st.sampled_from(self.MIXED))
        def check(a, b):
            lo, hi = sorted([a, b], key=domain_key)
            rv = RangeValue(lo, lo, hi)
            assert rv.is_certain == (domain_key(lo) == domain_key(hi))

        check()

    def test_antisymmetry_matches_equality(self):
        from hypothesis import given, strategies as st

        @given(a=st.sampled_from(self.MIXED), b=st.sampled_from(self.MIXED))
        def check(a, b):
            if domain_le(a, b) and domain_le(b, a):
                assert domain_key(a) == domain_key(b)

        check()
