"""Unit tests for the baseline system reimplementations (Section 12)."""

import random

import pytest

from repro.algebra.ast import TableRef
from repro.core.aggregation import agg_count, agg_sum
from repro.core.expressions import Const, Var
from repro.baselines.libkin import (
    LabeledNull,
    evaluate_libkin,
    fresh_null,
    null_db_from_xdb,
)
from repro.baselines.maybms import evaluate_maybms_possible
from repro.baselines.mcdb import run_mcdb
from repro.baselines.symbolic import (
    SymAdd,
    SymChoice,
    SymConst,
    SymMul,
    chain_symbolic_aggregates,
    sym_bounds,
    symbolic_sum,
)
from repro.baselines.trio import trio_aggregate, trio_spj_possible
from repro.baselines.uadb import UADatabase, UARelation, evaluate_uadb
from repro.db.storage import DetDatabase, DetRelation
from repro.incomplete.xdb import XDatabase, XRelation


@pytest.fixture
def xdb():
    r = XRelation(["a", "b"])
    r.add_certain((1, 10))
    r.add([(2, 20), (2, 25)])       # uncertain b
    r.add([(3, 30)], [0.4])          # optional
    return XDatabase({"R": r})


class TestUADB:
    def test_labeling_from_xdb(self, xdb):
        ua = UADatabase.from_xdb(xdb)["R"]
        rows = dict(ua.tuples())
        assert rows[(1, 10)] == (1, 1)
        assert rows[(2, 20)] == (0, 1)
        assert (3, 30) not in rows  # optional tuple absent from SGW

    def test_ra_plus_propagates(self, xdb):
        ua = UADatabase.from_xdb(xdb)
        plan = TableRef("R").where(Var("b") >= Const(10)).select("a")
        out = evaluate_uadb(plan, ua)
        rows = dict(out.tuples())
        assert rows[(1,)] == (1, 1)
        assert rows[(2,)] == (0, 1)

    def test_aggregation_fallback_marks_uncertain(self, xdb):
        ua = UADatabase.from_xdb(xdb)
        plan = TableRef("R").grouped(["a"], [agg_count("n")])
        out = evaluate_uadb(plan, ua)
        assert all(lb == 0 for _t, (lb, _sg) in out.tuples())

    def test_invalid_annotation(self):
        rel = UARelation(["a"])
        with pytest.raises(ValueError):
            rel.add((1,), (2, 1))


class TestLibkin:
    def test_null_injection(self, xdb):
        db = null_db_from_xdb(xdb)
        rows = list(db["R"].rows)
        # certain tuple unchanged; uncertain cell became a null; optional dropped
        assert (1, 10) in rows
        assert len(rows) == 2
        uncertain_row = [t for t in rows if t != (1, 10)][0]
        assert uncertain_row[0] == 2
        assert isinstance(uncertain_row[1], LabeledNull)

    def test_selection_keeps_only_certain(self, xdb):
        db = null_db_from_xdb(xdb)
        plan = TableRef("R").where(Var("b") > Const(5))
        out = evaluate_libkin(plan, db)
        assert set(out.rows) == {(1, 10)}  # null comparison is unknown

    def test_same_null_certainly_equal(self):
        null = fresh_null()
        r = DetRelation(["a", "b"], [(null, null)])
        db = DetDatabase({"R": r})
        plan = TableRef("R").where(Var("a") == Var("b"))
        out = evaluate_libkin(plan, db)
        assert len(out.rows) == 1

    def test_difference_under_approximates(self):
        r = DetRelation(["a"], [(1,), (2,)])
        s = DetRelation(["a"], [(fresh_null(),)])
        db = DetDatabase({"R": r, "S": s})
        from repro.algebra.ast import Difference

        out = evaluate_libkin(Difference(TableRef("R"), TableRef("S")), db)
        assert len(out.rows) == 0  # the null might equal either tuple


class TestMCDB:
    def test_sampling_and_summaries(self, xdb):
        plan = TableRef("R").select("a")
        result = run_mcdb(plan, xdb, n_samples=10, seed=1)
        assert len(result.samples) == 10
        possible = result.possible_tuples()
        assert (1,) in possible and (2,) in possible
        certain = result.certain_estimate()
        assert (1,) in certain

    def test_attribute_bounds_from_samples(self, xdb):
        plan = TableRef("R")
        result = run_mcdb(plan, xdb, n_samples=20, seed=2)
        bounds = result.attribute_bounds(["a"])
        lo, hi = bounds[(2,)][0]
        assert 20 <= lo <= hi <= 25

    def test_expectation(self, xdb):
        plan = TableRef("R").select("b")
        result = run_mcdb(plan, xdb, n_samples=30, seed=3)
        assert 10 <= result.expectation("b") <= 30


class TestMayBMS:
    def test_possible_answers(self, xdb):
        plan = TableRef("R").where(Var("b") >= Const(25)).select("a")
        out = evaluate_maybms_possible(plan, xdb)
        assert set(out.rows) == {(2,), (3,)}

    def test_block_consistency_in_self_join(self):
        r = XRelation(["a"])
        r.add([(1,), (2,)])
        xdb = XDatabase({"R": r})
        left = TableRef("R")
        right = TableRef("R").rename({"a": "a2"})
        plan = left.join(right, Var("a") != Var("a2"))
        out = evaluate_maybms_possible(plan, xdb)
        # alternatives 1 and 2 of the same block can never co-occur
        assert len(out.rows) == 0

    def test_rejects_nonpositive(self, xdb):
        from repro.algebra.ast import Difference

        with pytest.raises(TypeError):
            evaluate_maybms_possible(
                Difference(TableRef("R"), TableRef("R")), xdb
            )


class TestTrio:
    def make_xrel(self):
        r = XRelation(["g", "v"])
        r.add_certain(("a", 10))
        r.add([("a", 5), ("a", 8)])          # uncertain value, certain group
        r.add([("a", 1), ("b", 1)])          # uncertain group -> dropped
        r.add([("b", 7)], [0.5])             # optional
        return r

    def test_aggregate_bounds(self):
        rows = trio_aggregate(self.make_xrel(), ["g"], agg_sum("v", "s"))
        by_group = {r.group: r for r in rows}
        a = by_group[("a",)]
        assert a.lower == 15 and a.upper == 18  # 10 + [5,8]
        b = by_group[("b",)]
        assert b.lower == 0 and b.upper == 7

    def test_uncertain_group_dropped(self):
        rows = trio_aggregate(self.make_xrel(), ["g"], agg_count("n"))
        by_group = {r.group: r for r in rows}
        # the uncertain-group block contributes to neither group
        assert by_group[("a",)].upper == 2

    def test_min_max(self):
        from repro.core.aggregation import agg_max, agg_min

        rows = trio_aggregate(self.make_xrel(), ["g"], agg_min("v", "lo"))
        a = {r.group: r for r in rows}[("a",)]
        assert a.lower == 5
        assert a.upper == 8  # worst case: uncertain block realizes 8, min(10,8)

    def test_spj(self):
        rel = self.make_xrel()
        out, certainty = trio_spj_possible(
            rel, lambda row: row["v"] >= 7
        )
        assert ("a", 10) in out.rows
        assert certainty[("a", 10)]
        assert ("a", 8) in out.rows
        assert not certainty[("a", 8)]


class TestSymbolic:
    def test_bounds_of_sum(self):
        r = XRelation(["v"])
        r.add_certain((10,))
        r.add([(1,), (5,)])
        r.add([(3,)], [0.5])
        expr = symbolic_sum(r, "v")
        lo, hi = sym_bounds(expr)
        assert lo == 11 and hi == 18

    def test_mul_corners(self):
        e = SymMul(SymConst(-2.0), SymChoice(0, (1.0, 3.0), False))
        assert sym_bounds(e) == (-6.0, -2.0)

    def test_chain_grows(self):
        r = XRelation(["v"])
        for i in range(5):
            r.add([(i,), (i + 1,)])
        expr1, b1 = chain_symbolic_aggregates(r, "v", 1)
        expr3, b3 = chain_symbolic_aggregates(r, "v", 3)
        assert b3[0] <= b3[1]

        def size(e):
            if isinstance(e, SymAdd):
                return 1 + sum(size(t) for t in e.terms)
            if isinstance(e, SymMul):
                return 1 + size(e.left) + size(e.right)
            return 1

        assert size(expr3) > size(expr1)
