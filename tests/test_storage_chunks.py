"""Paged chunked columnar storage: chunks, zone maps, skip predicates.

Unit-level coverage for :mod:`repro.db.chunks` — chunk store builds and
round-trips, skip-predicate derivation, the per-operator zone-map skip
rules, incremental maintenance through the relations' write paths, and
the delete-boundary staleness protocol (a delete touching a zone
boundary must *invalidate* the zone, never silently keep the too-wide
bound as authoritative) — plus the end-to-end surfaces: chunk-skip
telemetry in ``explain_analyze``, metrics counters, morsel/chunk
alignment, and the materialization budget that chunked streaming stays
under.
"""

import math

import pytest

from repro.core.expressions import (
    And,
    Const,
    Eq,
    Geq,
    Gt,
    IsNull,
    Leq,
    Lt,
    Neq,
    Not,
    Or,
    Parameter,
    Var,
)
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation
from repro.db import chunks as chunks_mod
from repro.db.chunks import (
    DEFAULT_CHUNK_SIZE,
    AUChunkStore,
    DetChunkStore,
    au_store,
    derive_skip,
    det_store,
    resolve_chunk_size,
)
from repro.db.storage import DetDatabase, DetRelation
from repro.exec.batch import (
    MATERIALIZATION_BUDGET,
    ColumnBatch,
    MaterializationBudgetError,
    materialization_budget,
)


def _det_rel(n=10, chunk=None):
    r = DetRelation(["a", "b"])
    for i in range(n):
        r.add((i, i * 10), 1)
    return r


def _au_rel(n=10):
    r = AURelation(["a", "b"])
    for i in range(n):
        r.add(
            [RangeValue(i, i, i + 1), RangeValue(i * 10, i * 10, i * 10)],
            (1, 1, 1),
        )
    return r


# ----------------------------------------------------------------------
# chunk size resolution
# ----------------------------------------------------------------------
def test_resolve_chunk_size():
    assert resolve_chunk_size(None) == DEFAULT_CHUNK_SIZE
    assert resolve_chunk_size(0) == 0
    assert resolve_chunk_size(7) == 7
    with pytest.raises(ValueError):
        resolve_chunk_size(-1)


def test_store_accessors_cache_on_relation():
    r = _det_rel()
    assert det_store(r, 0) is None
    s = det_store(r, 3)
    assert det_store(r, 3) is s  # cached at the same size
    assert det_store(r, 4) is not s  # different size rebuilds
    au = _au_rel()
    assert au_store(au, 0) is None
    t = au_store(au, 3)
    assert au_store(au, 3) is t


# ----------------------------------------------------------------------
# skip-predicate derivation
# ----------------------------------------------------------------------
def test_derive_skip_conjuncts_and_flip():
    cond = And(Gt(Var("a"), Const(7)), Leq(Const(100), Var("b")))
    skip = derive_skip(cond)
    assert skip is not None and len(skip) == 2
    assert str(skip) == "a>7 AND b>=100"
    assert skip.columns() == ("a", "b")


def test_derive_skip_ignores_non_atoms():
    # Or is not a conjunct; Var-Var atoms and Parameter comparisons are
    # not zone-testable; NaN constants break the domain order
    assert derive_skip(Or(Gt(Var("a"), Const(1)), Lt(Var("a"), Const(0)))) is None
    assert derive_skip(Eq(Var("a"), Var("b"))) is None
    assert derive_skip(Leq(Var("a"), Parameter(0))) is None
    assert derive_skip(Gt(Var("a"), Const(float("nan")))) is None
    assert derive_skip(None) is None
    # ... but a qualifying conjunct next to an unusable one still counts
    skip = derive_skip(And(Eq(Var("a"), Var("b")), Geq(Var("a"), Const(3))))
    assert skip is not None and str(skip) == "a>=3"


@pytest.mark.parametrize(
    "cond,expect_kept",
    [
        (Leq(Var("a"), Const(2)), 1),  # first chunk only
        (Lt(Var("a"), Const(3)), 1),
        (Geq(Var("a"), Const(9)), 1),  # last chunk only
        (Gt(Var("a"), Const(8)), 1),
        (Eq(Var("a"), Const(4)), 1),  # middle chunk
        (Neq(Var("a"), Const(99)), 4),  # nothing provably empty
    ],
)
def test_zone_skip_rules(cond, expect_kept):
    store = DetChunkStore.build(_det_rel(10), 3)  # chunks [0-2][3-5][6-8][9]
    kept, total, skipped = store.survivors(derive_skip(cond))
    assert total == 4
    assert len(kept) == expect_kept
    assert skipped == 4 - expect_kept


def test_ne_skips_constant_chunk():
    r = DetRelation(["a", "b"])
    for i in range(6):
        r.add((5, i), 1)  # column a is constant 5
    store = DetChunkStore.build(r, 3)
    _, total, skipped = store.survivors(derive_skip(Neq(Var("a"), Const(5))))
    assert (total, skipped) == (2, 2)


def test_skip_unknown_column_and_nan_are_permissive():
    r = DetRelation(["a", "b"])
    r.add((float("nan"), 1), 1)
    r.add((2.0, 2), 1)
    store = DetChunkStore.build(r, 2)
    # NaN disables column a's zone entry: never skipped on a
    kept, total, skipped = store.survivors(derive_skip(Gt(Var("a"), Const(99))))
    assert (len(kept), skipped) == (1, 0)
    # a constraint on a column the store does not know is ignored
    kept, _, skipped = store.survivors(derive_skip(Gt(Var("zz"), Const(99))))
    assert (len(kept), skipped) == (1, 0)


def test_derive_skip_null_atoms():
    skip = derive_skip(And(IsNull(Var("a")), Not(IsNull(Var("b")))))
    assert skip is not None and len(skip) == 2
    assert str(skip) == "a IS NULL AND b IS NOT NULL"
    assert [c.op for c in skip.constraints] == ["isnull", "notnull"]


def test_null_skip_rules_det():
    r = DetRelation(["a", "b"])
    for i in range(3):
        r.add((i + 1, i), 1)  # chunk 0: provably no nulls in a
    for i in range(3):
        r.add((None, 10 + i), 1)  # chunk 1: a is all-null
    r.add((7, 20), 1)  # chunk 2: mixed — never skippable
    r.add((None, 21), 1)
    store = DetChunkStore.build(r, 3)
    # IS NULL proves the null-free chunk empty (zero null count and a
    # min key strictly above None's bottom-of-domain key)
    _, total, skipped = store.survivors(derive_skip(IsNull(Var("a"))))
    assert (total, skipped) == (3, 1)
    # IS NOT NULL proves the all-null chunk empty
    _, total, skipped = store.survivors(derive_skip(Not(IsNull(Var("a")))))
    assert (total, skipped) == (3, 1)


def test_null_skip_rules_au():
    r = AURelation(["a", "b"])
    for i in range(3):  # chunk 0: certainly non-null
        r.add([RangeValue(i + 1, i + 1, i + 1), i], (1, 1, 1))
    for i in range(3):  # chunk 1: certainly null (lb = sg = ub = None)
        r.add([RangeValue(None, None, None), 10 + i], (1, 1, 1))
    for i in range(3):  # chunk 2: possibly null (lb None, guess 5)
        r.add([RangeValue(None, 5, 9), 20 + i], (1, 1, 1))
    store = AUChunkStore.build(r, 3)
    # IS NULL skips only the certainly-non-null chunk: the possibly-null
    # rows pull the chunk's min key down to None, so it must be read
    _, total, skipped = store.survivors(derive_skip(IsNull(Var("a"))))
    assert (total, skipped) == (3, 1)
    # IS NOT NULL skips only the certainly-null chunk: the possibly-null
    # chunk is non-null in some world (its guesses are not null)
    _, total, skipped = store.survivors(derive_skip(Not(IsNull(Var("a")))))
    assert (total, skipped) == (3, 1)


def test_scan_roundtrip_matches_monolithic_image():
    r = _det_rel(10)
    flat = ColumnBatch.from_relation(r)
    for size in (1, 3, 64):
        store = DetChunkStore.build(r, size)
        batch, total, skipped = store.scan(None)
        assert skipped == 0
        assert [tuple(col) for col in map(list, batch.columns)] == [
            tuple(col) for col in map(list, flat.columns)
        ]
        assert list(batch.mult) == list(flat.mult)


# ----------------------------------------------------------------------
# incremental maintenance through the relation write paths
# ----------------------------------------------------------------------
def test_relation_add_maintains_cached_store():
    r = _det_rel(10)
    store = det_store(r, 3)
    r.add((42, 420), 2)  # new row appends and widens the zone
    assert r._chunk_cache is store
    batch, _, _ = store.scan(None)
    assert list(batch.mult) == [1] * 10 + [2]
    kept, _, skipped = store.survivors(derive_skip(Geq(Var("a"), Const(42))))
    assert len(kept) == 1 and skipped >= 1  # new bound is visible
    r.add((42, 420), 1)  # merge: multiplicity update in place
    batch, _, _ = store.scan(None)
    assert list(batch.mult)[-1] == 3


def test_interior_delete_keeps_zone_fresh():
    r = _det_rel(10)
    store = det_store(r, 10)
    rebuilds = chunks_mod._ZONE_REBUILDS.value
    r.delete((4, 40), 1)  # interior row of [0..9]: no boundary touched
    ch = store.chunks[0]
    assert not ch.zone.stale
    assert store.zone(ch).rows == 9
    assert chunks_mod._ZONE_REBUILDS.value == rebuilds
    # partial delete (multiplicity decrement) never goes stale either
    r2 = DetRelation(["a"])
    r2.add((0,), 3)
    s2 = det_store(r2, 4)
    r2.delete((0,), 1)
    assert not s2.chunks[0].zone.stale
    b, _, _ = s2.scan(None)
    assert list(b.mult) == [2]


def test_delete_boundary_invalidates_zone_not_widens():
    """Satellite regression: a delete that removes a zone-boundary row
    must mark the zone stale (mirroring StatsAccumulator.rescan_needed)
    and the next use must rebuild it *exactly* — keeping the old max as
    authoritative would leave chunks unskippable forever; silently
    narrowing without a rescan could wrongly skip chunks."""
    r = _det_rel(10)
    store = det_store(r, 10)
    ch = store.chunks[0]
    old_max = ch.zone.max_keys[0]
    r.delete((9, 90), 1)  # (9, 90) is the max of both columns
    assert r._chunk_cache is store  # store survived the delete
    assert ch.zone.stale  # invalidated, not silently narrowed
    assert ch.zone.max_keys[0] == old_max  # untouched until rebuild
    rebuilds = chunks_mod._ZONE_REBUILDS.value
    # next zone use rebuilds exactly: max is now 8, so a>8 skips
    kept, total, skipped = store.survivors(derive_skip(Gt(Var("a"), Const(8))))
    assert chunks_mod._ZONE_REBUILDS.value == rebuilds + 1
    assert (len(kept), total, skipped) == (0, 1, 1)
    assert not ch.zone.stale
    assert ch.zone.rows == 9
    # and the rebuilt zone is not over-narrow: a>=8 must keep the chunk
    kept, _, skipped = store.survivors(derive_skip(Geq(Var("a"), Const(8))))
    assert (len(kept), skipped) == (1, 0)


def test_au_delete_boundary_invalidates_zone():
    r = _au_rel(6)
    store = au_store(r, 6)
    ch = store.chunks[0]
    assert not ch.zone.stale
    # remove the row holding the upper bound of column a ([5, 6])
    r.delete([RangeValue(5, 5, 6), RangeValue(50, 50, 50)], (1, 1, 1))
    assert r._chunk_cache is store
    assert ch.zone.stale
    kept, total, skipped = store.survivors(derive_skip(Gt(Var("a"), Const(5))))
    assert (len(kept), total, skipped) == (0, 1, 1)  # new max ub is 5
    assert store.zone(ch).rows == 5


def test_au_store_roundtrip_and_certain_fraction():
    r = AURelation(["a"])
    r.add([RangeValue(0, 1, 2)], (1, 1, 1))  # uncertain value
    r.add([RangeValue(3, 3, 3)], (1, 1, 1))  # certain value
    store = au_store(r, 4)
    zone = store.zone(store.chunks[0])
    assert zone.rows == 2 and zone.certain == 1
    assert zone.certain_fraction() == pytest.approx(0.5)
    batch, _, skipped = store.scan(None)
    assert skipped == 0
    got = {
        ((batch.columns[0][i],), (batch.ann_lb[i], batch.ann_sg[i], batch.ann_ub[i]))
        for i in range(len(batch))
    }
    assert got == set(r.tuples())
    # AU skipping brackets [lb, ub]: a<=2 may hold for the first row
    # only, a>=3 for both (ub of row 1 is 2 < 3?  no - row 2 has lb 3)
    kept, _, skipped = store.survivors(derive_skip(Gt(Var("a"), Const(3))))
    assert (len(kept), skipped) == (0, 1)  # max ub is 3: a>3 impossible
    kept, _, skipped = store.survivors(derive_skip(Lt(Var("a"), Const(0))))
    assert (len(kept), skipped) == (0, 1)  # min lb is 0: a<0 impossible


def test_au_nan_range_disables_zone_entry():
    r = AURelation(["a"])
    # mixed-type triple smuggles NaN past RangeValue validation (the
    # domain order short-circuits on type rank before comparing values)
    r.add([RangeValue(float("nan"), "x", "y")], (1, 1, 1))
    r.add([RangeValue(1, 1, 1)], (1, 1, 1))
    store = au_store(r, 4)
    zone = store.zone(store.chunks[0])
    assert not zone.enabled[0]
    kept, _, skipped = store.survivors(derive_skip(Gt(Var("a"), Const(10**9))))
    assert (len(kept), skipped) == (1, 0)  # disabled entry never skips


# ----------------------------------------------------------------------
# morsel/chunk alignment
# ----------------------------------------------------------------------
def test_morsel_batches_align_with_chunks():
    store = DetChunkStore.build(_det_rel(10), 3)  # 4 chunks: 3+3+3+1
    morsels, total, skipped = store.morsel_batches(4, None)
    assert (total, skipped) == (4, 0)
    assert 1 < len(morsels) <= 4
    # never splits a chunk: every morsel is a contiguous run of chunks
    assert [len(m) for m in morsels] == [3, 3, 3, 1]
    assert sum(len(m) for m in morsels) == 10
    # rows appear in build order across the morsel sequence
    rows = [m.columns[0][i] for m in morsels for i in range(len(m))]
    assert rows == list(range(10))
    # skipping prunes chunks before grouping
    morsels, total, skipped = store.morsel_batches(
        4, derive_skip(Gt(Var("a"), Const(5)))
    )
    assert skipped == 2
    assert sum(len(m) for m in morsels) == 4


# ----------------------------------------------------------------------
# materialization budget
# ----------------------------------------------------------------------
def test_materialization_budget_restores_global():
    assert MATERIALIZATION_BUDGET is None
    with materialization_budget(5):
        from repro.exec import batch as batch_mod

        assert batch_mod.MATERIALIZATION_BUDGET == 5
    from repro.exec import batch as batch_mod

    assert batch_mod.MATERIALIZATION_BUDGET is None


def test_streaming_select_stays_under_budget():
    """The chunked streaming scan path never materializes the base table
    whole, so a selective query completes under a budget the monolithic
    columnar image cannot."""
    from repro.db.engine import evaluate_det
    from repro.algebra.ast import Selection, TableRef

    r = DetRelation(["a", "b"])
    for i in range(400):
        r.add((i, i % 7), 1)
    db = DetDatabase({"t": r})
    plan = Selection(TableRef("t"), Gt(Var("a"), Const(390)))
    want = evaluate_det(plan, db)
    with materialization_budget(100):
        # chunk_size=0 must concat all 400 rows: over budget
        with pytest.raises(MaterializationBudgetError):
            evaluate_det(plan, db, backend="vectorized", chunk_size=0)
        # chunked streaming reads 50-row pages and skips most of them
        got = evaluate_det(plan, db, backend="vectorized", chunk_size=50)
    assert got.rows == want.rows


# ----------------------------------------------------------------------
# end-to-end telemetry
# ----------------------------------------------------------------------
def test_explain_analyze_shows_chunk_skips():
    from repro.session import Connection
    from repro.algebra.evaluator import EvalConfig

    r = DetRelation(["a", "b"])
    for i in range(100):
        r.add((i, i * 2), 1)
    db = DetDatabase({"t": r})
    conn = Connection(
        db, config=EvalConfig(backend="vectorized", chunk_size=10)
    )
    scanned = chunks_mod._CHUNKS_SCANNED.value
    skipped = chunks_mod._CHUNKS_SKIPPED.value
    text = conn.explain_analyze("SELECT a FROM t WHERE a >= 95")
    assert "skipped 9/10 chunks" in text
    assert chunks_mod._CHUNKS_SCANNED.value == scanned + 1
    assert chunks_mod._CHUNKS_SKIPPED.value == skipped + 9
    # and the plan rendering names the derived skip predicate
    assert "[skip: a>=95]" in text


def test_parallel_exchange_morsels_follow_chunks():
    from repro import telemetry as _tm
    from repro.exec import parallel as exec_parallel
    from repro.session import Connection
    from repro.algebra.evaluator import EvalConfig

    r = DetRelation(["a", "b"])
    for i in range(100):
        r.add((i, i % 5), 1)
    db = DetDatabase({"t": r})
    conn = Connection(
        db,
        config=EvalConfig(backend="vectorized", parallelism=4, chunk_size=10),
        trace=True,
    )
    old = exec_parallel.PARALLEL_MIN_ROWS
    exec_parallel.PARALLEL_MIN_ROWS = 0
    try:
        got = conn.execute("SELECT a, sum(b) AS s FROM t WHERE a >= 60 GROUP BY a")
    finally:
        exec_parallel.PARALLEL_MIN_ROWS = old
    assert len(got) == 40
    spans = [s for s in conn.last_trace.spans() if "chunks_skipped" in s.attrs]
    assert spans, "Exchange span should carry chunk-skip attributes"
    attrs = spans[0].attrs
    assert attrs["chunks_total"] == 10 and attrs["chunks_skipped"] == 6
    assert attrs["driver_rows"] == 40  # post-skip morsel rows
