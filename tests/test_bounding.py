"""Unit tests for tuple matchings and bound verification (Defs 14-17)."""

import pytest

from repro.core.bounding import MaxFlow, bounds_incomplete, bounds_world, find_tuple_matching
from repro.core.ranges import between, certain
from repro.core.relation import AURelation


def rel(schema, rows):
    r = AURelation(schema)
    for values, ann in rows:
        r.add(values, ann)
    return r


class TestMaxFlow:
    def test_simple_path(self):
        net = MaxFlow(3)
        net.add_edge(0, 1, 5)
        net.add_edge(1, 2, 3)
        assert net.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        net = MaxFlow(4)
        net.add_edge(0, 1, 2)
        net.add_edge(0, 2, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(2, 3, 2)
        assert net.max_flow(0, 3) == 4

    def test_flow_readback(self):
        net = MaxFlow(2)
        e = net.add_edge(0, 1, 7)
        assert net.max_flow(0, 1) == 7
        assert net.flow_on(e) == 7


class TestExample8:
    """Paper Example 8: the Figure 5a relation bounds both worlds."""

    def setup_method(self):
        self.r = rel(
            ["A", "B"],
            [
                ([certain(1), certain(1)], (2, 2, 3)),
                ([certain(1), between(1, 1, 3)], (2, 3, 3)),
                ([between(1, 2, 2), certain(3)], (1, 1, 1)),
            ],
        )

    def test_bounds_world_d1(self):
        assert bounds_world(self.r, {(1, 1): 5, (2, 3): 1})

    def test_bounds_world_d2(self):
        assert bounds_world(self.r, {(1, 1): 2, (1, 3): 2, (2, 3): 1})

    def test_matching_is_returned(self):
        matching = find_tuple_matching(self.r, {(1, 1): 5, (2, 3): 1})
        assert matching is not None
        assert sum(matching.values()) == 6

    def test_rejects_uncoverable_world(self):
        assert not bounds_world(self.r, {(9, 9): 1})

    def test_rejects_lower_bound_violation(self):
        # tuple (1,1) appears at least 2+2=4 times in every bounded world
        assert not bounds_world(self.r, {(1, 1): 1, (2, 3): 1})

    def test_rejects_upper_bound_violation(self):
        # at most 3+3=6 copies of (1,1)+(1,B) tuples are allowed
        assert not bounds_world(self.r, {(1, 1): 9, (2, 3): 1})

    def test_bounds_incomplete_with_sgw(self):
        worlds = [
            {(1, 1): 5, (2, 3): 1},  # this is the SGW
            {(1, 1): 2, (1, 3): 2, (2, 3): 1},
        ]
        assert bounds_incomplete(self.r, worlds)

    def test_bounds_incomplete_missing_sgw(self):
        worlds = [{(1, 1): 2, (1, 3): 2, (2, 3): 1}]
        assert not bounds_incomplete(self.r, worlds)
        assert bounds_incomplete(self.r, worlds, require_sgw=False)


class TestSharedCoverage:
    def test_multiplicty_split_across_tuples(self):
        # one world tuple's multiplicity may be split over two AU tuples
        r = rel(
            ["A"],
            [
                ([between(0, 1, 2)], (1, 1, 1)),
                ([between(1, 1, 3)], (1, 1, 1)),
            ],
        )
        assert bounds_world(r, {(1,): 2})

    def test_lower_bounds_force_distribution(self):
        # both AU tuples need at least one match; world has only one tuple
        r = rel(
            ["A"],
            [
                ([certain(1)], (1, 1, 1)),
                ([certain(2)], (1, 1, 1)),
            ],
        )
        assert not bounds_world(r, {(1,): 2})
        assert bounds_world(r, {(1,): 1, (2,): 1})

    def test_empty_world_needs_zero_lower_bounds(self):
        r = rel(["A"], [([certain(1)], (0, 1, 1))])
        assert bounds_world(r, {})
        r2 = rel(["A"], [([certain(1)], (1, 1, 1))])
        assert not bounds_world(r2, {})
