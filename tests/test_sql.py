"""Unit tests for the SQL frontend (lexer, parser, planner)."""

import pytest

from repro.algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Projection,
    Selection,
    TableRef,
    Union,
)
from repro.core.expressions import Const, Var
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.sql.lexer import SqlSyntaxError, tokenize
from repro.sql.parser import parse_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select FROM WhErE")
        assert [t.value for t in toks[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_string_literals_with_escapes(self):
        toks = tokenize("'don''t'")
        assert toks[0].value == "don't"

    def test_numbers(self):
        toks = tokenize("1 2.5 .75")
        assert [t.value for t in toks[:-1]] == ["1", "2.5", ".75"]

    def test_comments_skipped(self):
        toks = tokenize("SELECT -- comment\n1")
        assert [t.kind for t in toks] == ["keyword", "number", "eof"]

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unknown_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParserStructure:
    def test_simple_select(self):
        plan = parse_sql("SELECT a, b FROM t")
        assert isinstance(plan, Projection)
        assert isinstance(plan.child, TableRef)

    def test_star(self):
        plan = parse_sql("SELECT * FROM t WHERE a = 1")
        assert isinstance(plan, Selection)

    def test_join_on(self):
        plan = parse_sql("SELECT * FROM r JOIN s ON r.a = s.b")
        assert isinstance(plan, Join)

    def test_comma_cross(self):
        plan = parse_sql("SELECT * FROM r, s WHERE a = b")
        assert isinstance(plan, Selection)
        assert isinstance(plan.child, CrossProduct)

    def test_group_by_with_having(self):
        plan = parse_sql(
            "SELECT g, sum(v) AS s FROM t GROUP BY g HAVING s > 10"
        )
        assert isinstance(plan, Aggregate)
        assert plan.having is not None

    def test_aggregate_without_group(self):
        plan = parse_sql("SELECT count(*) AS n FROM t")
        assert isinstance(plan, Aggregate)
        assert plan.group_by == ()

    def test_distinct(self):
        plan = parse_sql("SELECT DISTINCT a FROM t")
        assert isinstance(plan, Distinct)

    def test_union_except(self):
        plan = parse_sql("SELECT a FROM r UNION SELECT a FROM s")
        assert isinstance(plan, Union)
        plan2 = parse_sql("SELECT a FROM r EXCEPT SELECT a FROM s")
        assert isinstance(plan2, Difference)

    def test_order_limit(self):
        plan = parse_sql("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, OrderBy)
        assert plan.child.descending

    def test_subquery(self):
        plan = parse_sql("SELECT a FROM (SELECT a FROM t WHERE a > 1) s")
        assert isinstance(plan, Projection)

    def test_non_grouped_column_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a, sum(b) AS s FROM t GROUP BY c")

    def test_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT FROM WHERE")


class TestExpressions:
    def test_precedence(self):
        plan = parse_sql("SELECT a + b * 2 AS x FROM t")
        expr = plan.columns[0][0]
        assert expr.eval({"a": 1, "b": 3}) == 7

    def test_parentheses(self):
        plan = parse_sql("SELECT (a + b) * 2 AS x FROM t")
        assert plan.columns[0][0].eval({"a": 1, "b": 3}) == 8

    def test_unary_minus(self):
        plan = parse_sql("SELECT -a AS x FROM t")
        assert plan.columns[0][0].eval({"a": 4}) == -4

    def test_between_and_in(self):
        plan = parse_sql("SELECT * FROM t WHERE a BETWEEN 1 AND 3 AND b IN (5, 6)")
        cond = plan.condition
        assert cond.eval({"a": 2, "b": 5})
        assert not cond.eval({"a": 4, "b": 5})
        assert not cond.eval({"a": 2, "b": 7})

    def test_case_when(self):
        plan = parse_sql(
            "SELECT CASE WHEN a > 1 THEN 'big' WHEN a = 1 THEN 'one' "
            "ELSE 'small' END AS label FROM t"
        )
        expr = plan.columns[0][0]
        assert expr.eval({"a": 5}) == "big"
        assert expr.eval({"a": 1}) == "one"
        assert expr.eval({"a": 0}) == "small"

    def test_is_null(self):
        plan = parse_sql("SELECT * FROM t WHERE a IS NULL")
        assert plan.condition.eval({"a": None})
        plan2 = parse_sql("SELECT * FROM t WHERE a IS NOT NULL")
        assert plan2.condition.eval({"a": 3})


class TestEndToEnd:
    @pytest.fixture
    def db(self):
        sales = DetRelation(
            ["product", "region", "amount"],
            [
                ("widget", "east", 10),
                ("widget", "west", 20),
                ("gadget", "east", 5),
                ("gadget", "east", 5),
            ],
        )
        return DetDatabase({"sales": sales})

    def test_group_by_query(self, db):
        plan = parse_sql(
            "SELECT product, sum(amount) AS total FROM sales GROUP BY product"
        )
        out = evaluate_det(plan, db)
        assert out.rows == {("widget", 30): 1, ("gadget", 10): 1}

    def test_filter_and_project(self, db):
        plan = parse_sql(
            "SELECT product FROM sales WHERE region = 'east' AND amount > 5"
        )
        out = evaluate_det(plan, db)
        assert out.rows == {("widget",): 1}

    def test_audb_evaluation_from_sql(self, db):
        from repro.algebra.evaluator import evaluate_audb
        from repro.core.relation import AUDatabase, AURelation

        audb = AUDatabase(
            {"sales": AURelation.from_certain_rows(
                ["product", "region", "amount"],
                [t for t, m in db["sales"].tuples() for _ in range(m)],
            )}
        )
        plan = parse_sql(
            "SELECT region, count(*) AS n FROM sales GROUP BY region"
        )
        out = evaluate_audb(plan, audb)
        world = out.selected_guess_world()
        assert world == {("east", 3): 1, ("west", 1): 1}


class TestParameters:
    def test_lexer_tokenizes_placeholders(self):
        toks = tokenize("WHERE a >= ? AND b = :low_2")
        kinds = [(t.kind, t.value) for t in toks if t.kind == "param"]
        assert kinds == [("param", "?"), ("param", "low_2")]

    def test_bare_colon_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("a : b")

    def test_positional_parameters_number_left_to_right(self):
        from repro.core.expressions import Parameter
        from repro.session import collect_parameters

        plan = parse_sql("SELECT a FROM t WHERE a >= ? AND b <= ?")
        assert collect_parameters(plan) == [0, 1]
        cond = next(
            n.condition for n in plan.walk() if isinstance(n, Selection)
        )
        assert isinstance(cond.left.right, Parameter)
        assert cond.left.right.key == 0 and cond.right.right.key == 1

    def test_named_parameters(self):
        from repro.session import collect_parameters

        plan = parse_sql(
            "SELECT a, sum(v * :scale) AS s FROM t "
            "WHERE v >= :low GROUP BY a HAVING s <= :cap"
        )
        # collection order follows the plan's pre-order walk; the set of
        # declared names is what binding validates against
        assert sorted(collect_parameters(plan)) == ["cap", "low", "scale"]

    def test_unbound_parameter_raises_at_execution(self):
        from repro.core.expressions import UnboundParameterError

        table = DetRelation(["a"], [(1,), (2,)])
        plan = parse_sql("SELECT a FROM t WHERE a = ?")
        with pytest.raises(UnboundParameterError):
            evaluate_det(plan, DetDatabase({"t": table}))

    def test_bind_parameters_round_trip(self):
        from repro.session import bind_parameters

        table = DetRelation(["a", "b"], [(1, 10), (2, 20), (3, 30)])
        db = DetDatabase({"t": table})
        plan = parse_sql("SELECT a FROM t WHERE b >= ? AND b <= ?")
        bound = bind_parameters(plan, [15, 25])
        assert evaluate_det(bound, db).rows == {(2,): 1}
        named = parse_sql("SELECT a FROM t WHERE b = :want")
        assert evaluate_det(
            bind_parameters(named, {"want": 30}), db
        ).rows == {(3,): 1}
