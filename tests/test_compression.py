"""Unit tests for split / Cpr / optimized join (Section 10.4, Figure 9)."""

import pytest

from repro.core.compression import compress, optimized_join, split_sg, split_up
from repro.core.expressions import Var
from repro.core.operators import join as naive_join
from repro.core.ranges import between, certain
from repro.core.relation import AURelation


def figure8_r():
    r = AURelation(["A"])
    r.add([between(1, 1, 2)], (2, 2, 3))
    r.add([between(1, 2, 2)], (1, 1, 2))
    return r


def figure8_s():
    s = AURelation(["C"])
    s.add([between(1, 3, 3)], (1, 1, 1))
    s.add([between(1, 2, 2)], (1, 2, 2))
    return s


class TestSplit:
    def test_split_sg_figure9a(self):
        out = split_sg(figure8_r())
        rows = dict(out.tuples())
        assert rows[(certain(1),)] == (0, 2, 2)
        assert rows[(certain(2),)] == (0, 1, 1)

    def test_split_sg_keeps_certain_lower_bounds(self):
        r = AURelation(["A"])
        r.add([certain(5)], (2, 2, 4))
        out = split_sg(r)
        assert out.annotation((certain(5),)) == (2, 2, 2)

    def test_split_up_figure9c(self):
        out = split_up(figure8_r())
        rows = dict(out.tuples())
        assert rows[(between(1, 1, 2),)] == (0, 0, 3)
        assert rows[(between(1, 2, 2),)] == (0, 0, 2)

    def test_split_sg_drops_sg_absent_tuples(self):
        r = AURelation(["A"])
        r.add([certain(1)], (0, 0, 3))
        assert len(split_sg(r)) == 0
        assert len(split_up(r)) == 1


class TestCompress:
    def test_figure9e(self):
        # Cpr_{A,1}(split_up(R)) = ([1/1/2]) -> (0,0,5)
        out = compress(split_up(figure8_r()), "A", 1)
        ((t, ann),) = list(out.tuples())
        assert ann == (0, 0, 5)
        assert t[0].lb == 1 and t[0].ub == 2

    def test_bucket_count_respected(self):
        r = AURelation(["A"])
        for i in range(100):
            r.add([i], (0, 0, 1))
        out = compress(r, "A", 4)
        assert len(out) <= 4
        total = sum(ann[2] for _t, ann in out.tuples())
        assert total == 100

    def test_no_compression_needed(self):
        r = AURelation(["A"])
        r.add([1], (1, 1, 1))
        out = compress(r, "A", 10)
        assert out.annotation((certain(1),)) == (0, 0, 1)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            compress(AURelation(["A"]), "A", 0)


class TestOptimizedJoin:
    def test_sgw_matches_naive(self):
        left, right = figure8_r(), figure8_s()
        cond = Var("A") == Var("C")
        naive = naive_join(left, right, cond)
        fast = optimized_join(left, right, cond, "A", "C", buckets=1)
        assert fast.selected_guess_world() == naive.selected_guess_world()

    def test_result_smaller_than_naive(self):
        import random

        rng = random.Random(1)
        left = AURelation(["A"])
        right = AURelation(["C"])
        for i in range(100):
            a = rng.randint(0, 50)
            left.add([between(a - 5, a, a + 5)], (0, 1, 1))
            right.add([between(a - 5, a, a + 5)], (0, 1, 1))
        cond = Var("A") == Var("C")
        naive = naive_join(left, right, cond)
        fast = optimized_join(left, right, cond, "A", "C", buckets=4)
        assert len(fast) < len(naive)

    def test_possible_mass_preserved_or_grown(self):
        # compression may only loosen upper bounds, never lose mass
        left, right = figure8_r(), figure8_s()
        cond = Var("A") == Var("C")
        naive = naive_join(left, right, cond)
        fast = optimized_join(left, right, cond, "A", "C", buckets=1)
        naive_ub = sum(ann[2] for _t, ann in naive.tuples())
        fast_ub = sum(ann[2] for _t, ann in fast.tuples())
        assert fast_ub >= naive_ub or len(fast) < len(naive)
