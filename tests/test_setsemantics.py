"""Unit + property tests for set-semantics (B^AU) evaluation."""

import itertools
import random

import pytest

from repro.core.expressions import Const, Var
from repro.core.ranges import between, certain
from repro.core.relation import AURelation
from repro.core.setsemantics import (
    normalize,
    set_bounds_world,
    set_difference,
    set_join,
    set_projection,
    set_selection,
    set_union,
)
from repro.incomplete.xdb import XRelation


def rel(schema, rows):
    r = AURelation(schema)
    for values, ann in rows:
        r.add(values, ann)
    return r


class TestNormalize:
    def test_clamps_to_booleans(self):
        r = rel(["a"], [([1], (2, 3, 5))])
        out = normalize(r)
        assert out.annotation((certain(1),)) == (1, 1, 1)

    def test_uncertain_attribute_loses_certainty(self):
        r = rel(["a"], [([between(1, 1, 2)], (1, 1, 1))])
        out = normalize(r)
        ((_, ann),) = list(out.tuples())
        assert ann == (0, 1, 1)

    def test_merges_sg_equivalent(self):
        r = rel(["a"], [([between(1, 2, 2)], (1, 1, 1)), ([between(2, 2, 3)], (0, 1, 1))])
        out = normalize(r)
        assert len(out) == 1


class TestSetOperators:
    def test_union_is_idempotent_on_membership(self):
        a = rel(["x"], [([1], (1, 1, 1))])
        out = set_union(a, a)
        assert out.annotation((certain(1),)) == (1, 1, 1)

    def test_projection_dedups(self):
        r = rel(["a", "b"], [([1, 10], (1, 1, 1)), ([1, 20], (1, 1, 1))])
        out = set_projection(r, [(Var("a"), "a")])
        assert out.annotation((certain(1),)) == (1, 1, 1)

    def test_difference_boolean_monus(self):
        # Example 3 (set version): IN is possible-only in the difference
        r = rel(["s"], [(["IL"], (1, 1, 1)), (["IN"], (0, 1, 1))])
        s = rel(["s"], [(["IN"], (0, 0, 1))])
        out = set_difference(r, s)
        assert out.annotation((certain("IL"),)) == (1, 1, 1)
        # IN may be cancelled (RHS possible) but may also survive
        assert out.annotation((certain("IN"),)) == (0, 1, 1)

    def test_join_membership(self):
        left = rel(["a"], [([1], (1, 1, 1))])
        right = rel(["b"], [([1], (0, 1, 1))])
        out = set_join(left, right, Var("a") == Var("b"))
        assert out.annotation((certain(1), certain(1))) == (0, 1, 1)

    def test_selection(self):
        r = rel(["a"], [([between(1, 2, 3)], (1, 1, 1))])
        out = set_selection(r, Var("a") == Const(2))
        ((_, ann),) = list(out.tuples())
        assert ann == (0, 1, 1)


class TestSetBoundsWorld:
    def test_certain_tuple_must_be_covered(self):
        r = rel(["a"], [([1], (1, 1, 1))])
        assert set_bounds_world(r, {(1,)})
        assert not set_bounds_world(r, set())

    def test_one_range_tuple_covers_many_elements(self):
        # the key difference to bag semantics: ub=1 suffices for any number
        # of distinct covered elements
        r = rel(["a"], [([between(1, 1, 5)], (0, 1, 1))])
        assert set_bounds_world(r, {(1,), (2,), (5,)})

    def test_uncovered_world_tuple_fails(self):
        r = rel(["a"], [([between(1, 1, 5)], (0, 1, 1))])
        assert not set_bounds_world(r, {(9,)})


class TestSetPropertyRandomized:
    """Set-semantics bound preservation against enumerated set worlds."""

    def worlds_as_sets(self, xrel: XRelation):
        return [set(w.rows) for w in xrel.enumerate_worlds(limit=2000)]

    def rand_xrel(self, rng):
        r = XRelation(("a", "b"))
        for _ in range(rng.randint(0, 4)):
            alts = [
                (rng.randint(0, 3), rng.randint(0, 3))
                for _ in range(rng.randint(1, 3))
            ]
            if rng.random() < 0.4:
                r.add(alts, [0.9 / len(alts)] * len(alts))
            else:
                r.add(alts)
        return r

    def test_operators_preserve_set_bounds(self):
        rng = random.Random(17)
        for trial in range(120):
            xr = self.rand_xrel(rng)
            xs = self.rand_xrel(rng)
            left = normalize(xr.to_audb())
            right = normalize(xs.to_audb())
            results = {
                "sel": set_selection(left, Var("a") <= Const(2)),
                "proj": set_projection(left, [(Var("b"), "b")]),
                "union": set_union(left, right),
                "diff": set_difference(left, right),
            }
            for lw in self.worlds_as_sets(xr):
                for rw in self.worlds_as_sets(xs):
                    world_results = {
                        "sel": {t for t in lw if t[0] <= 2},
                        "proj": {(t[1],) for t in lw},
                        "union": lw | rw,
                        "diff": lw - rw,
                    }
                    for name, result in results.items():
                        assert set_bounds_world(result, world_results[name]), (
                            f"trial {trial}: {name} failed on {world_results[name]}"
                        )
