"""Unit tests for incomplete database models and translations (Sec. 11)."""

import random

import pytest

from repro.core.bounding import bounds_incomplete, bounds_world
from repro.core.expressions import Const, Var
from repro.core.ranges import between, certain
from repro.db.storage import DetDatabase, DetRelation
from repro.incomplete.ctable import CTable, VTable, codd_table
from repro.incomplete.tidb import TIDatabase, TIRelation, TIRow
from repro.incomplete.worlds import (
    IncompleteDatabase,
    certain_bag,
    exact_attribute_bounds,
    possible_bag,
    query_worlds,
)
from repro.incomplete.xdb import XDatabase, XRelation, XTuple


class TestWorldsOracle:
    def make(self):
        w1 = DetDatabase({"R": DetRelation(["a"], {(1,): 2, (2,): 1})})
        w2 = DetDatabase({"R": DetRelation(["a"], {(1,): 3, (3,): 1})})
        return IncompleteDatabase([w1, w2])

    def test_certain_possible_bags(self):
        from repro.algebra.ast import TableRef

        results = query_worlds(TableRef("R"), self.make())
        assert certain_bag(results) == {(1,): 2}
        assert possible_bag(results) == {(1,): 3, (2,): 1, (3,): 1}

    def test_selection_over_worlds(self):
        from repro.algebra.ast import TableRef

        plan = TableRef("R").where(Var("a") >= Const(2))
        results = query_worlds(plan, self.make())
        assert certain_bag(results) == {}
        assert possible_bag(results) == {(2,): 1, (3,): 1}

    def test_exact_attribute_bounds(self):
        r1 = DetRelation(["k", "v"], {("x", 1): 1})
        r2 = DetRelation(["k", "v"], {("x", 5): 1})
        bounds = exact_attribute_bounds([r1, r2], ["k"])
        assert bounds[("x",)] == [(1, 5)]

    def test_empty_inputs(self):
        assert certain_bag([]) == {}
        assert possible_bag([]) == {}
        with pytest.raises(ValueError):
            IncompleteDatabase([])


class TestTIDB:
    def make(self):
        rel = TIRelation(["a"])
        rel.add([1], 1.0)   # certain
        rel.add([2], 0.7)   # likely (in SGW)
        rel.add([3], 0.2)   # unlikely (not in SGW)
        return rel

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            TIRow((1,), 0.0)

    def test_to_audb_annotations(self):
        audb = self.make().to_audb()
        assert audb.annotation((certain(1),)) == (1, 1, 1)
        assert audb.annotation((certain(2),)) == (0, 1, 1)
        assert audb.annotation((certain(3),)) == (0, 0, 1)

    def test_theorem9_bounds_all_worlds(self):
        rel = self.make()
        audb = rel.to_audb()
        worlds = rel.enumerate_worlds()
        assert len(worlds) == 4
        for w in worlds:
            assert bounds_world(audb, w.as_bag())
        assert audb.selected_guess_world() == rel.selected_world().as_bag()

    def test_sample_world_respects_certainty(self):
        rel = self.make()
        for seed in range(5):
            w = rel.sample_world(random.Random(seed))
            assert w.multiplicity((1,)) == 1

    def test_database_wrapper(self):
        db = TIDatabase()
        db["R"] = self.make()
        inc = db.enumerate_incomplete()
        assert len(inc) == 4
        audb = db.to_audb()
        assert "R" in audb.relations or audb["R"] is not None


class TestXDB:
    def test_pickmax_and_optional(self):
        xt = XTuple(((1,), (2,)), (0.3, 0.4))
        assert xt.pick_max() == (2,)
        assert xt.optional
        assert xt.sg_present()  # absent prob 0.3 <= 0.4

    def test_sg_absent_when_absence_most_likely(self):
        xt = XTuple(((1,), (2,)), (0.2, 0.25))
        assert not xt.sg_present()  # absent prob 0.55 > 0.25

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            XTuple(((1,),), (1.5,))
        with pytest.raises(ValueError):
            XTuple((), ())

    def test_to_audb_ranges(self):
        rel = XRelation(["a", "b"])
        rel.add([(1, 10), (3, 5)])
        audb = rel.to_audb()
        ((t, ann),) = list(audb.tuples())
        assert t[0] == between(1, 1, 3)
        assert t[1] == between(5, 10, 10)
        assert ann == (1, 1, 1)

    def test_theorem10_bounds(self):
        rel = XRelation(["a"])
        rel.add([(1,), (2,)])
        rel.add([(5,)], [0.4])  # optional
        audb = rel.to_audb()
        worlds = [w.as_bag() for w in rel.enumerate_worlds()]
        assert len(worlds) == 4
        for w in worlds:
            assert bounds_world(audb, w)

    def test_enumerate_limit(self):
        rel = XRelation(["a"])
        for i in range(20):
            rel.add([(i,), (i + 100,)])
        with pytest.raises(ValueError):
            rel.enumerate_worlds(limit=100)

    def test_uncertain_fraction(self):
        rel = XRelation(["a"])
        rel.add_certain([1])
        rel.add([(2,), (3,)])
        assert rel.uncertain_tuple_fraction() == 0.5


class TestCTable:
    def test_three_colorability_style_conditions(self):
        # a tuple with a local condition over a variable domain
        table = CTable(["a"], {"x": [1, 2, 3]})
        table.add([Var("x")], Var("x") > Const(1))
        worlds = table.enumerate_worlds()
        bags = [w.as_bag() for w in worlds]
        assert {(2,): 1} in bags and {(3,): 1} in bags and {} in bags

    def test_global_condition_filters_valuations(self):
        table = CTable(["a"], {"x": [1, 2, 3]}, global_condition=Var("x") != Const(2))
        assert len(table.valuations()) == 2

    def test_to_audb_bounds_worlds(self):
        table = CTable(["a", "b"], {"x": [1, 2, 3], "y": [10, 20]})
        table.add([Var("x"), 5])
        table.add([7, Var("y")], Var("x") > Const(1))
        audb = table.to_audb()
        for world in table.enumerate_worlds():
            assert bounds_world(audb, world.as_bag())

    def test_tautology_detection(self):
        table = CTable(["a"], {"x": [1, 2]})
        table.add([1], Var("x") >= Const(1))  # tautology
        table.add([2], Var("x") == Const(1))  # contingent
        audb = table.to_audb()
        assert audb.annotation((certain(1),))[0] == 1
        anns = dict(audb.tuples())
        assert anns[(certain(2),)][0] == 0

    def test_never_satisfiable_row_dropped(self):
        table = CTable(["a"], {"x": [1, 2]})
        table.add([1], Var("x") > Const(5))
        assert len(table.to_audb()) == 0

    def test_undeclared_variable_rejected(self):
        table = CTable(["a"], {"x": [1]})
        with pytest.raises(KeyError):
            table.add([Var("y")])
        with pytest.raises(KeyError):
            table.add([1], Var("z") == Const(1))

    def test_unsatisfiable_global(self):
        table = CTable(["a"], {"x": [1]}, global_condition=Const(False))
        table.add([1])
        with pytest.raises(ValueError):
            table.to_audb()


class TestVCoddTables:
    def test_vtable_rejects_conditions(self):
        v = VTable(["a"], {"x": [1, 2]})
        with pytest.raises(ValueError):
            v.add([Var("x")], Var("x") == Const(1))

    def test_vtable_shared_variable(self):
        v = VTable(["a", "b"], {"x": [1, 2]})
        v.add([Var("x"), Var("x")])
        worlds = [w.as_bag() for w in v.enumerate_worlds()]
        assert {(1, 1): 1} in worlds and {(2, 2): 1} in worlds
        assert {(1, 2): 1} not in worlds

    def test_codd_table_fresh_nulls(self):
        table = codd_table(
            ["a", "b"], [[1, None], [None, 2]], null_domain=[7, 8]
        )
        worlds = table.enumerate_worlds()
        assert len(worlds) == 4  # two independent nulls
        audb = table.to_audb()
        for w in worlds:
            assert bounds_world(audb, w.as_bag())
