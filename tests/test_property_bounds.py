"""Property-based verification of the paper's central soundness theorems.

Strategy: generate a small random x-DB (block-independent incomplete
database), translate it to an AU-DB (Theorem 10 guarantees the translation
bounds the incomplete database), run a random ``RA_agg`` plan over (a) the
AU-DB with the paper's semantics and (b) every possible world with
deterministic semantics, then check with the tuple-matching oracle that
the AU-DB result bounds every world's result and that its SGW equals the
query result in the selected world.

This exercises Theorems 3 (RA+), 4 (difference), 6 (aggregation), and
Lemmas 6/7/10.1/10.2 (compression) end to end.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.ast import Aggregate, Difference, Plan, Selection, TableRef, Union
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_count, agg_max, agg_min, agg_sum
from repro.core.bounding import bounds_world
from repro.core.expressions import Const, Var
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.incomplete.xdb import XDatabase, XRelation

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
@st.composite
def xrelations(draw, schema=("a", "b"), max_blocks=4, domain=(0, 4)):
    """A small x-relation over integer attributes."""
    n_blocks = draw(st.integers(0, max_blocks))
    rel = XRelation(schema)
    lo, hi = domain
    for _ in range(n_blocks):
        n_alts = draw(st.integers(1, 3))
        alts = [
            tuple(draw(st.integers(lo, hi)) for _ in schema)
            for _ in range(n_alts)
        ]
        optional = draw(st.booleans())
        if optional:
            probs = [0.9 / n_alts] * n_alts
            rel.add(alts, probs)
        else:
            rel.add(alts)
    return rel


def plan_strategies():
    a, b = Var("a"), Var("b")
    r = TableRef("R")
    s = TableRef("S")
    candidates = [
        r.where(a <= Const(2)),
        r.where((a == Const(1)) | (b > Const(2))),
        r.select(("a", "a")),
        r.select(((a + b), "t")),
        Union(r, s),
        Difference(r, s),
        r.join(s.rename({"a": "c", "b": "d"}), Var("a") == Var("c")),
        r.distinct(),
        r.grouped(["a"], [agg_sum("b", "s"), agg_count("c")]),
        r.grouped(["a"], [agg_min("b", "lo"), agg_max("b", "hi")]),
        r.aggregate(agg_sum("b", "s")),
        r.where(b > Const(1)).grouped(["a"], [agg_count("c")]),
        Union(r, s).grouped(["a"], [agg_sum("b", "s")]),
        Difference(r, s).select(("b", "b")),
    ]
    return st.sampled_from(candidates)


def check_bound_preservation(plan: Plan, xdb: XDatabase, config: EvalConfig):
    incomplete = xdb.enumerate_incomplete(limit=3000)
    audb = xdb.to_audb()
    result = evaluate_audb(plan, AUDatabase(audb.relations), config)

    # (1) the SGW of the result equals the query over the selected world
    selected = incomplete.selected_world
    det_result = evaluate_det(plan, selected)
    assert result.selected_guess_world() == det_result.as_bag(), (
        f"SGW mismatch for {plan!r}"
    )

    # (2) the result bounds the query result in every possible world
    for world in incomplete.worlds:
        world_result = evaluate_det(plan, world)
        assert bounds_world(result, world_result.as_bag()), (
            f"{plan!r} result does not bound world {world_result.rows}"
        )


@SETTINGS
@given(
    plan=plan_strategies(),
    xr=xrelations(),
    xs=xrelations(),
)
def test_bound_preservation_naive(plan, xr, xs):
    xdb = XDatabase({"R": xr, "S": xs})
    try:
        xdb.enumerate_incomplete(limit=3000)
    except ValueError:
        pytest.skip("too many worlds")
    check_bound_preservation(plan, xdb, EvalConfig())


@SETTINGS
@given(
    plan=plan_strategies(),
    xr=xrelations(),
    xs=xrelations(),
)
def test_bound_preservation_compressed(plan, xr, xs):
    xdb = XDatabase({"R": xr, "S": xs})
    try:
        xdb.enumerate_incomplete(limit=3000)
    except ValueError:
        pytest.skip("too many worlds")
    check_bound_preservation(
        plan, xdb, EvalConfig(join_buckets=2, aggregation_buckets=2)
    )


@SETTINGS
@given(xr=xrelations(max_blocks=5))
def test_translation_bounds_all_worlds(xr):
    """Theorem 10: trans_x-DB bounds the x-relation's worlds."""
    audb = xr.to_audb()
    for world in xr.enumerate_worlds(limit=3000):
        assert bounds_world(audb, world.as_bag())


@SETTINGS
@given(xr=xrelations(max_blocks=5))
def test_translation_sgw_is_selected_world(xr):
    audb = xr.to_audb()
    assert audb.selected_guess_world() == xr.selected_world().as_bag()


@SETTINGS
@given(xr=xrelations(max_blocks=5), buckets=st.integers(1, 4))
def test_compression_preserves_bounds(xr, buckets):
    """Lemmas 6 and 7: split + Cpr keep bounding every world."""
    from repro.core.compression import compress, split_sg, split_up
    from repro.core.operators import union

    audb = xr.to_audb()
    split = union(split_sg(audb), split_up(audb))
    compressed = union(
        split_sg(audb), compress(split_up(audb), "a", buckets)
    )
    for world in xr.enumerate_worlds(limit=2000):
        bag = world.as_bag()
        assert bounds_world(split, bag), "split broke bounding"
        assert bounds_world(compressed, bag), "Cpr broke bounding"
    # split preserves the SGW (Lemma 6)
    assert split.selected_guess_world() == audb.selected_guess_world()


@SETTINGS
@given(xr=xrelations(max_blocks=4), xs=xrelations(max_blocks=4))
def test_optimized_join_bounds(xr, xs):
    """Lemma 10.1: the optimized join preserves bounds and the SGW."""
    from repro.core.compression import optimized_join

    plan_cond = Var("a") == Var("c")
    left = xr.to_audb()
    from repro.core.operators import rename

    right = rename(xs.to_audb(), {"a": "c", "b": "d"})
    result = optimized_join(left, right, plan_cond, "a", "c", buckets=2)

    import itertools

    left_worlds = xr.enumerate_worlds(limit=200)
    right_worlds = xs.enumerate_worlds(limit=200)
    if len(left_worlds) * len(right_worlds) > 400:
        left_worlds = left_worlds[:20]
        right_worlds = right_worlds[:20]
    for lw, rw in itertools.product(left_worlds, right_worlds):
        joined = {}
        for lt, lm in lw.rows.items():
            for rt, rm in rw.rows.items():
                if lt[0] == rt[0]:
                    joined[lt + rt] = joined.get(lt + rt, 0) + lm * rm
        assert bounds_world(result, joined)
