"""Property-based tests for expression evaluation and the Enc/Dec encoding.

* Theorem 1 at scale: random expression trees over random incomplete
  valuations — the range evaluation must bound every possible outcome.
* Enc/Dec: encoding an AU-relation to flat rows and decoding it back is
  the identity (Theorem 8's invertibility half).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.expressions import (
    Add,
    And,
    Const,
    Eq,
    If,
    Leq,
    Mul,
    Not,
    Or,
    Sub,
    Var,
    eval_incomplete,
)
from repro.core.ranges import RangeValue
from repro.core.relation import AURelation, decode, encode

SETTINGS = settings(max_examples=120, deadline=None)

VARS = ["x", "y", "z"]


def numeric_exprs(depth: int):
    if depth == 0:
        return st.one_of(
            st.sampled_from([Var(v) for v in VARS]),
            st.integers(-5, 5).map(Const),
        )
    sub = numeric_exprs(depth - 1)
    return st.one_of(
        sub,
        st.tuples(sub, sub).map(lambda p: Add(*p)),
        st.tuples(sub, sub).map(lambda p: Sub(*p)),
        st.tuples(sub, sub).map(lambda p: Mul(*p)),
        st.tuples(boolean_exprs(0), sub, sub).map(lambda t: If(*t)),
    )


def boolean_exprs(depth: int):
    base = st.one_of(
        st.tuples(numeric_exprs(0), numeric_exprs(0)).map(lambda p: Leq(*p)),
        st.tuples(numeric_exprs(0), numeric_exprs(0)).map(lambda p: Eq(*p)),
    )
    if depth == 0:
        return base
    sub = boolean_exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(sub, sub).map(lambda p: And(*p)),
        st.tuples(sub, sub).map(lambda p: Or(*p)),
        sub.map(Not),
    )


@st.composite
def incomplete_valuations(draw):
    """Per variable: a non-empty list of possible integer values."""
    return {
        v: draw(st.lists(st.integers(-4, 4), min_size=1, max_size=3))
        for v in VARS
    }


def range_valuation(bindings):
    return {
        v: RangeValue(min(vals), vals[0], max(vals))
        for v, vals in bindings.items()
    }


def all_worlds(bindings):
    names = sorted(bindings)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(bindings[n] for n in names))
    ]


@SETTINGS
@given(expr=numeric_exprs(3), bindings=incomplete_valuations())
def test_numeric_range_eval_bounds_outcomes(expr, bindings):
    outcomes = eval_incomplete(expr, all_worlds(bindings))
    bound = expr.eval_range(range_valuation(bindings))
    for outcome in outcomes:
        assert bound.bounds_value(outcome)


@SETTINGS
@given(expr=boolean_exprs(3), bindings=incomplete_valuations())
def test_boolean_range_eval_bounds_outcomes(expr, bindings):
    outcomes = eval_incomplete(expr, all_worlds(bindings))
    bound = expr.eval_range(range_valuation(bindings))
    for outcome in outcomes:
        assert (not bound.lb) or outcome  # lb=T -> certainly true
        assert bound.ub or (not outcome)  # ub=F -> certainly false


@SETTINGS
@given(expr=numeric_exprs(2), bindings=incomplete_valuations())
def test_sg_component_is_deterministic_eval(expr, bindings):
    """The SG component of range evaluation equals deterministic
    evaluation over the SG valuation (Definition 9's J e K^sg)."""
    sg_world = {v: vals[0] for v, vals in bindings.items()}
    bound = expr.eval_range(range_valuation(bindings))
    assert bound.sg == expr.eval(sg_world)


# ----------------------------------------------------------------------
# Enc / Dec roundtrip
# ----------------------------------------------------------------------
@st.composite
def au_relations(draw):
    rel = AURelation(["a", "b"])
    for _ in range(draw(st.integers(0, 6))):
        values = []
        for _col in range(2):
            lo = draw(st.integers(-5, 5))
            mid = lo + draw(st.integers(0, 3))
            hi = mid + draw(st.integers(0, 3))
            values.append(RangeValue(lo, mid, hi))
        lb = draw(st.integers(0, 2))
        sg = lb + draw(st.integers(0, 2))
        ub = sg + draw(st.integers(0, 2))
        if ub > 0:
            rel.add(values, (lb, sg, ub))
    return rel


@SETTINGS
@given(rel=au_relations())
def test_enc_dec_roundtrip(rel):
    schema, rows = encode(rel)
    assert len(schema) == 3 * len(rel.schema) + 3
    back = decode(rel.schema, rows)
    assert dict(back.tuples()) == dict(rel.tuples())


@SETTINGS
@given(rel=au_relations())
def test_sgw_invariant_under_roundtrip(rel):
    _schema, rows = encode(rel)
    back = decode(rel.schema, rows)
    assert back.selected_guess_world() == rel.selected_guess_world()
