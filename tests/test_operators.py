"""Unit tests for RA+ operators, SG-combiner, and set difference
(Sections 7 and 8)."""

import pytest

from repro.core import operators as ops
from repro.core.expressions import Const, Var
from repro.core.ranges import between, certain
from repro.core.relation import AURelation


def rel(schema, rows):
    r = AURelation(schema)
    for values, ann in rows:
        r.add(values, ann)
    return r


class TestSelection:
    def test_example_9(self):
        # paper Example 9: sigma_{A=2} over ([1/2/3], 2) -> (1,2,3) gives (0,2,3)
        r = rel(["A", "B"], [(([between(1, 2, 3), certain(2)]), (1, 2, 3))])
        out = ops.selection(r, Var("A") == Const(2))
        ((t, ann),) = list(out.tuples())
        assert ann == (0, 2, 3)

    def test_certainly_false_dropped(self):
        r = rel(["A"], [([between(1, 2, 3)], (1, 1, 1))])
        out = ops.selection(r, Var("A") == Const(99))
        assert len(out) == 0

    def test_certainly_true_kept_whole(self):
        r = rel(["A"], [([certain(5)], (2, 2, 4))])
        out = ops.selection(r, Var("A") == Const(5))
        assert out.annotation((certain(5),)) == (2, 2, 4)


class TestProjection:
    def test_expression_projection(self):
        r = rel(["A"], [([between(1, 2, 3)], (1, 1, 2))])
        out = ops.projection(r, [(Var("A") + Const(10), "B")])
        ((t, ann),) = list(out.tuples())
        assert t[0] == between(11, 12, 13)
        assert ann == (1, 1, 2)

    def test_annotations_sum_on_collision(self):
        r = rel(["A", "B"], [([1, 10], (1, 1, 1)), ([1, 20], (1, 1, 1))])
        out = ops.projection(r, [(Var("A"), "A")])
        assert out.annotation((certain(1),)) == (2, 2, 2)


class TestJoin:
    def test_certain_hash_join(self):
        left = rel(["A"], [([1], (1, 1, 1)), ([2], (1, 1, 1))])
        right = rel(["B"], [([1], (2, 2, 2))])
        out = ops.join(left, right, Var("A") == Var("B"))
        assert len(out) == 1
        assert out.annotation((certain(1), certain(1))) == (2, 2, 2)

    def test_uncertain_overlap_join(self):
        # Figure 8: joining loose ranges degenerates to near-cross-product
        left = rel(["A"], [([between(1, 1, 2)], (2, 2, 3)), ([between(1, 2, 2)], (1, 1, 2))])
        right = rel(["C"], [([between(1, 3, 3)], (1, 1, 1)), ([between(1, 2, 2)], (1, 2, 2))])
        out = ops.join(left, right, Var("A") == Var("C"))
        assert len(out) == 4  # all four combinations overlap
        ann = out.annotation((between(1, 2, 2), between(1, 2, 2)))
        # Figure 8d prints (1,2,4) for this pair, but under Definition 9 the
        # equality [1/2/2] = [1/2/2] is not *certainly* true (one side may
        # be 1 while the other is 2), so the sound lower bound is 0.
        assert ann == (0, 2, 4)

    def test_annotation_multiplies(self):
        left = rel(["A"], [([1], (1, 2, 3))])
        right = rel(["B"], [([1], (2, 2, 2))])
        out = ops.join(left, right, Var("A") == Var("B"))
        assert out.annotation((certain(1), certain(1))) == (2, 4, 6)

    def test_theta_join_falls_back(self):
        left = rel(["A"], [([1], (1, 1, 1)), ([5], (1, 1, 1))])
        right = rel(["B"], [([3], (1, 1, 1))])
        out = ops.join(left, right, Var("A") < Var("B"))
        assert len(out) == 1

    def test_overlapping_schemas_rejected_for_cross(self):
        left = rel(["A"], [([1], (1, 1, 1))])
        with pytest.raises(ValueError):
            ops.cross_product(left, left)


class TestUnion:
    def test_annotations_add(self):
        a = rel(["A"], [([1], (1, 1, 1))])
        b = rel(["A"], [([1], (0, 1, 2))])
        out = ops.union(a, b)
        assert out.annotation((certain(1),)) == (1, 2, 3)

    def test_incompatible_schemas(self):
        a = rel(["A"], [([1], (1, 1, 1))])
        b = rel(["A", "B"], [([1, 2], (1, 1, 1))])
        with pytest.raises(ValueError):
            ops.union(a, b)


class TestSGCombiner:
    def test_paper_example(self):
        # Section 8.1: ([1/2/2],[1/3/5])->(1,2,2) and ([2/2/4],[3/3/4])->(3,3,4)
        # combine into ([1/2/4],[1/3/5]) -> (4,5,6)
        r = rel(
            ["A", "B"],
            [
                ([between(1, 2, 2), between(1, 3, 5)], (1, 2, 2)),
                ([between(2, 2, 4), between(3, 3, 4)], (3, 3, 4)),
            ],
        )
        out = ops.sg_combine(r)
        ((t, ann),) = list(out.tuples())
        assert t == (between(1, 2, 4), between(1, 3, 5))
        assert ann == (4, 5, 6)

    def test_distinct_sg_values_untouched(self):
        r = rel(["A"], [([between(1, 1, 2)], (1, 1, 1)), ([between(1, 2, 2)], (1, 1, 1))])
        out = ops.sg_combine(r)
        assert len(out) == 2


class TestDifference:
    def test_section8_example(self):
        # Section 8.2: R(1)->(1,2,2), R(2)->(0,0,1); S(1)->(0,0,3), S(2)->(0,1,1)
        r = rel(["A"], [([1], (1, 2, 2)), ([2], (0, 0, 1))])
        s = rel(["A"], [([1], (0, 0, 3)), ([2], (0, 1, 1))])
        out = ops.difference(r, s)
        # bound-preserving semantics: lb uses RHS ub, ub uses RHS lb
        assert out.annotation((certain(1),)) == (0, 2, 2)

    def test_range_overlap_lowers_lb(self):
        # RHS tuple [1/1/2] may equal LHS tuple (1) in some world
        r = rel(["A"], [([1], (1, 1, 1))])
        s = rel(["A"], [([between(1, 1, 2)], (1, 1, 3))])
        out = ops.difference(r, s)
        ann = out.annotation((certain(1),))
        assert ann[0] == 0  # cannot guarantee survival
        assert ann[2] == 1  # but RHS lb only subtracts when certainly equal
        # RHS is uncertain, so ub stays 1 - 0 = 1... unless certainly equal
        # here [1/1/2] is not certain, so nothing subtracts from ub

    def test_certain_cancellation(self):
        r = rel(["A"], [([1], (2, 2, 2))])
        s = rel(["A"], [([1], (1, 1, 1))])
        out = ops.difference(r, s)
        assert out.annotation((certain(1),)) == (1, 1, 1)

    def test_fully_cancelled_dropped(self):
        r = rel(["A"], [([1], (1, 1, 1))])
        s = rel(["A"], [([1], (2, 2, 2))])
        out = ops.difference(r, s)
        assert len(out) == 0


class TestDistinct:
    def test_certain_tuple_stays_certain(self):
        r = rel(["A"], [([1], (3, 3, 5))])
        out = ops.distinct(r)
        assert out.annotation((certain(1),)) == (1, 1, 1)

    def test_uncertain_attribute_loses_lb_keeps_ub(self):
        # the two copies of [1/1/2] may be the two DISTINCT values 1 and 2
        # in some world, so dedup cannot clamp the upper bound
        r = rel(["A"], [([between(1, 1, 2)], (2, 2, 2))])
        out = ops.distinct(r)
        ((_, ann),) = list(out.tuples())
        assert ann == (0, 1, 2)


class TestRename:
    def test_rename(self):
        r = rel(["A"], [([1], (1, 1, 1))])
        out = ops.rename(r, {"A": "Z"})
        assert out.schema == ("Z",)
