"""The physical plan layer: lowering choices, golden explains, parallelism.

Covers what the differential fuzzer's random plans check only
statistically:

* cost-based lowering picks the intended algorithms (hash vs nested
  loop from the catalog, ``Cpr`` with resolved budgets, AU
  ``TupleFallback`` boundaries);
* golden ``explain_physical`` snapshots so plan-shape changes are
  diff-reviewable;
* morsel partitioning and every Exchange merge kind (concat, partial
  aggregate, top-k, limit, distinct) — in-process and through the
  forked worker pool;
* order-independent exact summation (:mod:`repro.core.sums`) — the
  PR 3 float round-off carve-out is gone.
"""

import math

import pytest

from repro.algebra.ast import (
    Aggregate,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Projection,
    Selection,
    TableRef,
)
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.algebra.optimizer import Statistics, optimize
from repro.core.aggregation import agg_avg, agg_count, agg_max, agg_min, agg_sum
from repro.core.expressions import Const, Eq, Gt, Var
from repro.core.ranges import between
from repro.core.relation import AUDatabase, AURelation
from repro.core.sums import add_exact, exact_sum, finish, merge_acc, new_acc
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.exec import PhysicalConfig, explain_physical, lower
from repro.exec import parallel as exec_parallel
from repro.exec import physical as phys
from repro.exec.batch import ColumnBatch


# ----------------------------------------------------------------------
# lowering choices
# ----------------------------------------------------------------------
class TestLoweringChoices:
    def test_tiny_inputs_pick_the_nested_loop(self):
        small = DetRelation(["a"], [(i,) for i in range(3)])
        big = DetRelation(["b"], [(i,) for i in range(500)])
        db = DetDatabase({"small": small, "big": big})
        stats = Statistics.from_database(db)
        cfg = PhysicalConfig(engine="det", backend="tuple")
        tiny = Join(
            TableRef("small"),
            TableRef("small"),
            Eq(Var("a"), Var("a")),
        )
        assert isinstance(lower(tiny, stats, cfg), phys.NLJoin)
        large = Join(TableRef("small"), TableRef("big"), Eq(Var("a"), Var("b")))
        lowered = lower(large, stats, cfg)
        assert isinstance(lowered, phys.HashJoin)
        assert lowered.eq_pairs == (("a", "b"),)
        assert lowered.pure_equi

    def test_residual_condition_flagged_at_plan_time(self):
        big = DetRelation(["a", "b"], [(i, i) for i in range(50)])
        db = DetDatabase({"r": big, "s": DetRelation(["c"], [(i,) for i in range(50)])})
        stats = Statistics.from_database(db)
        plan = Join(
            TableRef("r"),
            TableRef("s"),
            Eq(Var("a"), Var("c")) & Gt(Var("b"), Const(3)),
        )
        lowered = lower(plan, stats, PhysicalConfig(engine="det"))
        assert isinstance(lowered, phys.HashJoin)
        assert not lowered.pure_equi

    def test_au_fallback_boundaries_and_buckets(self):
        rel = AURelation(["a", "b"])
        for i in range(20):
            rel.add([i, between(i, i + 1, i + 2)], (1, 1, 1))
        db = AUDatabase({"r": rel})
        stats = Statistics.from_database(db)
        cfg = PhysicalConfig(
            engine="au", backend="vectorized", aggregation_buckets=16
        )
        agg = lower(
            Aggregate(TableRef("r"), ["a"], [agg_sum("b", "t")]), stats, cfg
        )
        assert isinstance(agg, phys.TupleFallback)
        assert agg.kind == "aggregate" and agg.buckets == 16
        dis = lower(Distinct(TableRef("r")), stats, cfg)
        assert isinstance(dis, phys.TupleFallback) and dis.kind == "distinct"
        diff = lower(Difference(TableRef("r"), TableRef("r")), stats, cfg)
        assert isinstance(diff, phys.TupleFallback) and diff.kind == "difference"
        topk = lower(
            Limit(OrderBy(TableRef("r"), ["a"], False), 3), stats, cfg
        )
        assert isinstance(topk, phys.TupleFallback) and topk.kind == "topk"
        # bare LIMIT under AU lowers to the identity (sound superset)
        bare = lower(Limit(TableRef("r"), 3), stats, cfg)
        assert isinstance(bare, phys.Scan)

    def test_au_compressed_join_gets_resolved_budget(self):
        r = AURelation(["a"])
        s = AURelation(["c"])
        for i in range(30):
            r.add([i], (1, 1, 1))
            s.add([i], (1, 1, 1))
        db = AUDatabase({"r": r, "s": s})
        stats = Statistics.from_database(db)
        plan = Join(TableRef("r"), TableRef("s"), Eq(Var("a"), Var("c")))
        lowered = lower(
            plan,
            stats,
            PhysicalConfig(engine="au", join_buckets=8),
        )
        assert isinstance(lowered, phys.CompressedJoin)
        assert lowered.buckets == 8 and lowered.pair == ("a", "c")
        # adaptive placement: inputs fit the budget -> naive (hash) join
        adaptive = lower(
            plan,
            stats,
            PhysicalConfig(
                engine="au", join_buckets=64, adaptive_compression=True
            ),
        )
        assert isinstance(adaptive, phys.HashJoin)

    def test_hash_join_disabled_lowers_to_nested_loop(self):
        r = AURelation(["a"])
        s = AURelation(["c"])
        for i in range(30):
            r.add([i], (1, 1, 1))
            s.add([i], (1, 1, 1))
        db = AUDatabase({"r": r, "s": s})
        stats = Statistics.from_database(db)
        plan = Join(TableRef("r"), TableRef("s"), Eq(Var("a"), Var("c")))
        lowered = lower(
            plan, stats, PhysicalConfig(engine="au", hash_join=False)
        )
        assert isinstance(lowered, phys.NLJoin)
        assert not lowered.check_overlap

    def test_unknown_logical_node_rejected(self):
        from repro.algebra.ast import Plan

        class Strange(Plan):
            pass

        with pytest.raises(TypeError):
            lower(Strange(), None, PhysicalConfig())


# ----------------------------------------------------------------------
# golden explain-physical snapshots
# ----------------------------------------------------------------------
@pytest.fixture
def tpch_like_db():
    orders = DetRelation(["o_id", "o_cust"], [(i, i % 7) for i in range(50)])
    lineitem = DetRelation(
        ["l_oid", "l_qty"], [(i % 50, i % 9) for i in range(200)]
    )
    return DetDatabase({"orders": orders, "lineitem": lineitem})


def _join_agg_plan():
    return Aggregate(
        Selection(
            Join(
                TableRef("orders"),
                TableRef("lineitem"),
                Eq(Var("o_id"), Var("l_oid")),
            ),
            Gt(Var("l_qty"), Const(2)),
        ),
        ["o_cust"],
        [agg_sum("l_qty", "qty"), agg_count("n")],
    )


class TestGoldenExplains:
    def test_det_serial_plan(self, tpch_like_db):
        stats = Statistics.from_database(tpch_like_db)
        opt = optimize(_join_agg_plan(), stats)
        rendered = explain_physical(
            lower(opt, stats, PhysicalConfig(engine="det", backend="vectorized"))
        )
        assert rendered == (
            "HashAggregate γ[o_cust; sum(l_qty)→qty, count(None)→n]  (~7 rows)\n"
            "  FusedSelectProject π[o_cust, l_qty]  (~154 rows)\n"
            "    HashJoin ⋈[o_id=l_oid]  (~154 rows)\n"
            "      Scan orders  (~50 rows)\n"
            "      FusedSelectProject σ[(l_qty > 2)]  (~154 rows)\n"
            "        Scan lineitem [skip: l_qty>2]  (~200 rows)"
        )

    def test_det_parallel_plan(self, tpch_like_db):
        stats = Statistics.from_database(tpch_like_db)
        opt = optimize(_join_agg_plan(), stats)
        rendered = explain_physical(
            lower(
                opt,
                stats,
                PhysicalConfig(
                    engine="det", backend="vectorized", parallelism=4
                ),
            )
        )
        # adaptive morsel sizing: the ~50-row driver needs only the
        # minimum 2 partitions at parallelism 4
        assert rendered == (
            "Exchange merge=aggregate [2 partitions]  (~7 rows)\n"
            "  HashAggregate γ[o_cust; sum(l_qty)→qty, count(None)→n]"
            " (partial)  (~7 rows)\n"
            "    FusedSelectProject π[o_cust, l_qty]  (~154 rows)\n"
            "      HashJoin ⋈[o_id=l_oid]  (~154 rows)\n"
            "        ParallelScan orders [2 morsels]  (~50 rows)\n"
            "        FusedSelectProject σ[(l_qty > 2)]  (~154 rows)\n"
            "          Scan lineitem [skip: l_qty>2]  (~200 rows)"
        )

    def test_au_compressed_plan(self):
        r = AURelation(["a", "b"])
        for i in range(30):
            r.add([i, between(i, i + 1, i + 2)], (1, 1, 1))
        s = AURelation(["c", "d"])
        for i in range(30):
            s.add([i % 10, i], (1, 1, 1))
        audb = AUDatabase({"r": r, "s": s})
        stats = Statistics.from_database(audb)
        plan = Aggregate(
            Join(TableRef("r"), TableRef("s"), Eq(Var("a"), Var("c"))),
            ["d"],
            [agg_sum("b", "t")],
        )
        opt = optimize(plan, stats)
        rendered = explain_physical(
            lower(
                opt,
                stats,
                PhysicalConfig(
                    engine="au",
                    backend="vectorized",
                    join_buckets=8,
                    aggregation_buckets=16,
                ),
            )
        )
        assert rendered == (
            "TupleFallback[aggregate] (exact tuple operator, CT=16)  (~30 rows)\n"
            "  FusedSelectProject π[b, d]  (~30 rows)\n"
            "    CompressedJoin ⋈[a=c] Cpr[CT=8]  (~30 rows)\n"
            "      Scan r  (~30 rows)\n"
            "      Scan s  (~30 rows)"
        )

    @pytest.mark.parametrize("backend", ["tuple", "vectorized"])
    def test_explain_analyze_golden(self, tpch_like_db, backend):
        # same shape as the serial golden above, but executed through
        # the session layer with per-operator actuals, estimation-error
        # factors, and span times merged in; wall times are the only
        # nondeterminism, normalized to "Tms"
        import re

        from repro.session import Connection

        conn = Connection(
            tpch_like_db, config=EvalConfig(backend=backend)
        )
        text = conn.explain_analyze(
            "SELECT o_cust, sum(l_qty) AS qty, count(*) AS n "
            "FROM orders JOIN lineitem ON o_id = l_oid "
            "WHERE l_qty > 2 GROUP BY o_cust"
        )
        normalized = re.sub(
            r"\d+\.\d{3}ms(?: in \d+ loops)?", "Tms", text
        )
        assert normalized == (
            f"EXPLAIN ANALYZE (det, backend={backend}): 7 rows in Tms\n"
            "HashAggregate γ[o_cust; sum(l_qty)→qty, count(None)→n]"
            "  (~7 rows, actual 7, err 1.00x, Tms)\n"
            "  FusedSelectProject π[o_cust, l_qty]"
            "  (~154 rows, actual 132, err 1.17x, Tms)\n"
            "    HashJoin ⋈[o_id=l_oid]"
            "  (~154 rows, actual 132, err 1.17x, Tms)\n"
            "      Scan orders  (~50 rows, actual 50, err 1.00x, Tms)\n"
            "      FusedSelectProject σ[(l_qty > 2)]"
            "  (~154 rows, actual 132, err 1.17x, Tms)\n"
            "        Scan lineitem [skip: l_qty>2]"
            "  (~200 rows, actual 200, err 1.00x, Tms)\n"
            "stages: execute Tms"
        )

    def test_actuals_annotate_physical_nodes(self, tpch_like_db):
        stats = Statistics.from_database(tpch_like_db)
        opt = optimize(_join_agg_plan(), stats)
        pplan = lower(
            opt, stats, PhysicalConfig(engine="det", backend="vectorized")
        )
        from repro.exec import execute_det

        actuals = {}
        execute_det(pplan, tpch_like_db, actuals=actuals)
        rendered = explain_physical(pplan, actuals=actuals)
        for line in rendered.splitlines():
            assert "actual" in line, rendered
        assert "Scan lineitem [skip: l_qty>2]  (~200 rows, actual 200)" in rendered


# ----------------------------------------------------------------------
# partition-parallel execution
# ----------------------------------------------------------------------
@pytest.fixture
def wide_db():
    rows = [(i, i % 13, (i * 7) % 101) for i in range(500)]
    fact = DetRelation(["f_id", "f_key", "f_val"], rows)
    dim = DetRelation(["d_key", "d_name"], [(i, f"d{i}") for i in range(13)])
    return DetDatabase({"fact": fact, "dim": dim})


@pytest.fixture
def force_partitioning(monkeypatch):
    monkeypatch.setattr(exec_parallel, "PARALLEL_MIN_ROWS", 0)


def _parallel_matches_serial(plan, db, parallelism=4, **kwargs):
    serial = evaluate_det(plan, db, backend="vectorized", **kwargs)
    parallel = evaluate_det(
        plan, db, backend="vectorized", parallelism=parallelism, **kwargs
    )
    assert parallel.schema == serial.schema
    assert parallel.rows == serial.rows
    return parallel


class TestParallelExecution:
    def test_split_batch_shapes(self):
        batch = ColumnBatch(("x",), [list(range(10))], list(range(10)))
        parts = exec_parallel.split_batch(batch, 4)
        assert [len(p) for p in parts] == [3, 3, 3, 1]
        assert exec_parallel.split_batch(batch, 1) == [batch]
        empty = ColumnBatch(("x",), [[]], [])
        assert exec_parallel.split_batch(empty, 4) == [empty]

    def test_aggregate_region(self, wide_db, force_partitioning):
        plan = Aggregate(
            Selection(
                Join(
                    TableRef("fact"),
                    TableRef("dim"),
                    Eq(Var("f_key"), Var("d_key")),
                ),
                Gt(Var("f_val"), Const(20)),
            ),
            ["d_name"],
            [
                agg_sum("f_val", "total"),
                agg_count("n"),
                agg_min("f_val", "lo"),
                agg_max("f_val", "hi"),
                agg_avg("f_val", "mean"),
            ],
        )
        _parallel_matches_serial(plan, wide_db)

    def test_global_aggregate_and_empty_input(self, wide_db, force_partitioning):
        plan = Aggregate(
            TableRef("fact"), [], [agg_sum("f_val", "t"), agg_count("n")]
        )
        _parallel_matches_serial(plan, wide_db)
        empty = Aggregate(
            Selection(TableRef("fact"), Const(False)),
            [],
            [agg_count("n"), agg_min("f_val", "lo")],
        )
        _parallel_matches_serial(empty, wide_db, optimize=False)

    def test_topk_limit_distinct_concat_regions(self, wide_db, force_partitioning):
        topk = Limit(OrderBy(TableRef("fact"), ["f_val"], True), 7)
        _parallel_matches_serial(topk, wide_db)
        bare_limit = Limit(TableRef("fact"), 9)
        _parallel_matches_serial(bare_limit, wide_db, optimize=False)
        distinct = Distinct(
            Projection(TableRef("fact"), [(Var("f_key"), "f_key")])
        )
        _parallel_matches_serial(distinct, wide_db)
        linear = Selection(TableRef("fact"), Gt(Var("f_val"), Const(50)))
        out = _parallel_matches_serial(linear, wide_db)
        assert out.total_rows() > 0

    def test_forked_worker_pool(self, wide_db, monkeypatch):
        """Force the process-pool transport on small data once."""
        monkeypatch.setattr(exec_parallel, "PARALLEL_MIN_ROWS", 0)
        monkeypatch.setattr(exec_parallel, "PROCESS_MIN_ROWS", 0)
        plan = Aggregate(
            TableRef("fact"),
            ["f_key"],
            [agg_sum("f_val", "t"), agg_avg("f_val", "m")],
        )
        _parallel_matches_serial(plan, wide_db, parallelism=2)

    def test_threshold_collapses_to_single_partition(self, wide_db):
        # default PARALLEL_MIN_ROWS far exceeds 500 rows: the Exchange
        # runs one partition, still through the merge path
        plan = Aggregate(TableRef("fact"), ["f_key"], [agg_count("n")])
        _parallel_matches_serial(plan, wide_db)

    def test_au_parallelism_knob_is_accepted_and_serial(self):
        rel = AURelation(["a"])
        rel.add([between(1, 2, 3)], (1, 1, 1))
        db = AUDatabase({"r": rel})
        ref = evaluate_audb(TableRef("r"), db, EvalConfig())
        par = evaluate_audb(TableRef("r"), db, EvalConfig(parallelism=4))
        assert dict(par.tuples()) == dict(ref.tuples())


# ----------------------------------------------------------------------
# exact summation (bit-stable SUM/AVG)
# ----------------------------------------------------------------------
ADVERSARIAL = [1e16, 1.0, -1e16, 0.1, 1e-9, -0.1, 3.5, 1e16, -1e16, 2.5e-10]


class TestExactSums:
    def test_order_and_partition_independent(self):
        values = [(v, 1) for v in ADVERSARIAL] * 13
        reference = exact_sum(values)
        assert reference == math.fsum(v for v, _m in values)
        assert exact_sum(reversed(values)) == reference
        # any partitioning merges to the same bits
        for cut in (1, 3, 7):
            left, right = new_acc(), new_acc()
            for v, m in values[:cut]:
                add_exact(left, v * m)
            for v, m in values[cut:]:
                add_exact(right, v * m)
            merge_acc(left, right)
            assert finish(left) == reference

    def test_int_sums_stay_ints(self):
        assert exact_sum([(2, 3), (4, 1)]) == 10
        assert isinstance(exact_sum([(2, 3)]), int)
        assert exact_sum([]) == 0

    def test_running_sum_overflow_saturates_like_ieee(self):
        """Sums leaving the double range return ±inf (the old left-fold
        ``sum()`` convention), not a ValueError from degenerate partials."""
        assert exact_sum([(1e308, 1), (9e307, 1)]) == math.inf
        assert exact_sum([(-1e308, 1), (-9e307, 1)]) == -math.inf
        a, b = new_acc(), new_acc()
        add_exact(a, 1e308)
        add_exact(b, 9e307)
        merge_acc(a, b)
        assert finish(a) == math.inf
        db = DetDatabase(
            {"r": DetRelation(["a"], [(1e308,), (9e307,)])}
        )
        plan = Aggregate(TableRef("r"), [], [agg_sum("a", "s")])
        for backend in ("tuple", "vectorized"):
            assert evaluate_det(plan, db, backend=backend).rows == {
                (math.inf,): 1
            }

    def test_nonfinite_values_are_order_independent(self):
        inf = float("inf")
        a = exact_sum([(inf, 1), (1.0, 1), (-inf, 1)])
        b = exact_sum([(-inf, 1), (inf, 1), (1.0, 1)])
        assert math.isnan(a) and math.isnan(b)
        assert exact_sum([(inf, 1), (5.0, 1)]) == inf

    def test_float_aggregates_bit_identical_across_backends(self):
        rel = DetRelation(["g", "v"])
        for i, v in enumerate(ADVERSARIAL * 7):
            rel.add((i % 3, v), 1 + i % 2)
        db = DetDatabase({"t": rel})
        plan = Aggregate(
            TableRef("t"), ["g"], [agg_sum("v", "s"), agg_avg("v", "m")]
        )
        ref = evaluate_det(plan, db, physical=False)
        for kwargs in (
            dict(),
            dict(backend="vectorized"),
            dict(backend="vectorized", parallelism=4),
        ):
            out = evaluate_det(plan, db, **kwargs)
            assert out.rows == ref.rows, kwargs

    def test_float_parallel_bits_with_forced_partitioning(self, monkeypatch):
        monkeypatch.setattr(exec_parallel, "PARALLEL_MIN_ROWS", 0)
        rel = DetRelation(["g", "v"])
        for i, v in enumerate(ADVERSARIAL * 11):
            rel.add((i % 4, v + i), 1)
        db = DetDatabase({"t": rel})
        plan = Aggregate(
            TableRef("t"), ["g"], [agg_sum("v", "s"), agg_avg("v", "m")]
        )
        ref = evaluate_det(plan, db, backend="vectorized")
        for parallelism in (2, 3, 4, 7):
            out = evaluate_det(
                plan, db, backend="vectorized", parallelism=parallelism
            )
            assert out.rows == ref.rows, parallelism
