"""The static plan verifier: schema inference, golden diagnostics for
deliberately-broken logical and physical plans, the semiring-safety
lint, and the prepare-time / CLI wiring."""

import subprocess
import sys

import pytest

from repro import analysis
from repro.algebra.ast import (
    Aggregate,
    Difference,
    Distinct,
    Projection,
    Rename,
    TableRef,
    TopK,
    Union,
)
from repro.algebra.optimizer import Statistics, optimize
from repro.analysis import (
    PlanCompatibilityError,
    PlanReferenceError,
    PlanTypeError,
    PlanVerificationError,
    SemiringSafetyError,
    check_semiring_safety,
    infer_logical,
    rule_allowed,
    verify_bound,
    verify_logical,
    verify_physical,
)
from repro.core.aggregation import agg_count, agg_sum
from repro.core.expressions import Add, Const, Div, Parameter, Var
from repro.core.ranges import between
from repro.core.relation import AUDatabase, AURelation
from repro.db.storage import DetDatabase, DetRelation
from repro.exec import physical as phys
from repro.session import Connection
from repro.sql.parser import SqlSyntaxError, parse_sql


@pytest.fixture
def det_conn():
    db = DetDatabase(
        {
            "r": DetRelation(["a", "b"], [(1, 2), (3, 4), (3, 4)]),
            "s": DetRelation(["c", "d"], [(1, "x")]),
        }
    )
    return Connection(db)


@pytest.fixture
def stats(det_conn):
    return det_conn.statistics()


# ======================================================================
# typed schema inference
# ======================================================================
class TestSchemaInference:
    def test_base_table_types_and_flags(self, stats):
        schema = infer_logical(TableRef("s"), stats)
        assert schema.names == ("c", "d")
        assert schema.get("c").type == analysis.TYPE_NUMBER
        assert schema.get("d").type == analysis.TYPE_STRING
        assert schema.get("c").certain  # det data is fully certain

    def test_uncertain_column_not_certain(self):
        rel = AURelation(["a"])
        rel.add([between(1, 2, 3)], (1, 1, 1))
        conn = Connection(AUDatabase({"t": rel}))
        schema = infer_logical(TableRef("t"), conn.statistics())
        assert not schema.get("a").certain

    def test_projection_computes_types(self, stats):
        plan = Projection(TableRef("r"), [(Add(Var("a"), Const(1)), "a1")])
        schema = infer_logical(plan, stats)
        assert schema.get("a1").type == analysis.TYPE_NUMBER

    def test_aggregate_output(self, stats):
        plan = Aggregate(
            TableRef("r"), ("a",), (agg_sum("b", "t"), agg_count("n"))
        )
        schema = infer_logical(plan, stats)
        assert schema.names == ("a", "t", "n")
        assert schema.get("n").type == analysis.TYPE_NUMBER
        assert not schema.get("n").nullable
        # aggregate outputs are conservatively uncertain
        assert not schema.get("t").certain

    def test_unknown_table_is_permissive_not_fatal(self):
        # inference over an absent catalog yields None, not an error —
        # table existence is checked separately (verify_logical)
        assert infer_logical(TableRef("anything"), None) is None

    def test_unknown_plan_node_is_opaque(self, stats):
        from repro.algebra.ast import Plan

        class Strange(Plan):
            def children(self):
                return ()

        assert infer_logical(Strange(), stats) is None


# ======================================================================
# golden diagnostics: broken logical plans
# ======================================================================
class TestLogicalDiagnostics:
    def test_unresolved_column(self, stats):
        plan = TableRef("r").where(Var("zzz") > Const(0))
        with pytest.raises(PlanReferenceError) as exc:
            verify_logical(plan, stats)
        message = str(exc.value)
        assert "unbound variable 'zzz'" in message
        assert "Selection" in message  # the node is named
        assert "'a'" in message and "'b'" in message  # and the candidates

    def test_unresolved_column_is_a_key_error(self, stats):
        # existing callers catch KeyError; the diagnostic must satisfy them
        plan = TableRef("r").where(Var("zzz") > Const(0))
        with pytest.raises(KeyError, match="unbound variable"):
            verify_logical(plan, stats)

    def test_unknown_table(self, stats):
        with pytest.raises(PlanReferenceError, match="not found"):
            verify_logical(TableRef("nope"), stats)

    def test_empty_catalog_skips_table_check(self):
        conn = Connection(DetDatabase({}))
        # nothing provably missing: the storage layer reports at run time
        assert verify_logical(TableRef("nope"), conn.statistics()) is None

    def test_union_incompatible(self, stats):
        plan = Union(TableRef("r"), Projection(TableRef("s"), [(Var("c"), "c")]))
        with pytest.raises(PlanCompatibilityError, match="union"):
            verify_logical(plan, stats)
        with pytest.raises(ValueError, match="union"):
            verify_logical(plan, stats)

    def test_difference_incompatible(self, stats):
        plan = Difference(
            TableRef("r"), Projection(TableRef("s"), [(Var("c"), "c")])
        )
        with pytest.raises(PlanCompatibilityError, match="difference"):
            verify_logical(plan, stats)

    def test_rename_unknown_column(self, stats):
        with pytest.raises(PlanReferenceError, match="Rename"):
            verify_logical(Rename(TableRef("r"), {"zzz": "q"}), stats)

    def test_aggregate_unknown_group_key(self, stats):
        plan = Aggregate(TableRef("r"), ("zzz",), (agg_sum("b", "t"),))
        with pytest.raises(PlanReferenceError, match="group-by"):
            verify_logical(plan, stats)

    def test_having_sees_output_schema_only(self, stats):
        good = Aggregate(
            TableRef("r"), ("a",), (agg_sum("b", "t"),), Var("t") > Const(0)
        )
        verify_logical(good, stats)
        bad = Aggregate(
            TableRef("r"), ("a",), (agg_sum("b", "t"),), Var("b") > Const(0)
        )
        with pytest.raises(PlanReferenceError, match="HAVING"):
            verify_logical(bad, stats)

    def test_topk_unknown_key(self, stats):
        with pytest.raises(PlanReferenceError, match="TopK"):
            verify_logical(TopK(TableRef("r"), ("zzz",), False, 3), stats)

    def test_string_arithmetic_is_a_type_error(self, stats):
        plan = Projection(TableRef("s"), [(Add(Var("d"), Var("c")), "x")])
        with pytest.raises(PlanTypeError, match="add"):
            verify_logical(plan, stats)
        with pytest.raises(TypeError):  # builtin-compatible
            verify_logical(plan, stats)

    def test_sum_over_string_is_a_type_error(self, stats):
        plan = Aggregate(TableRef("s"), ("c",), (agg_sum("d", "t"),))
        with pytest.raises(PlanTypeError, match="sum"):
            verify_logical(plan, stats)

    def test_division_is_not_statically_rejected(self, stats):
        # uncertain-zero division is a runtime property; the verifier
        # must not reject Div (tests/test_validation.py relies on the
        # ZeroDivisionError surfacing at execution)
        plan = TableRef("r").select((Div(Const(1), Var("a")), "inv"))
        verify_logical(plan, stats)

    def test_comparisons_never_type_error(self, stats):
        # the universal domain order totalizes comparisons
        plan = TableRef("s").where(Var("d") > Var("c"))
        verify_logical(plan, stats)


# ======================================================================
# parameter completeness
# ======================================================================
class TestParameters:
    def test_parameters_allowed_by_default(self, stats):
        plan = TableRef("r").where(Var("a") > Parameter(0))
        verify_logical(plan, stats)

    def test_expect_parameters_false_rejects(self, stats):
        plan = TableRef("r").where(Var("a") > Parameter(0))
        with pytest.raises(PlanReferenceError, match="unbound parameter"):
            verify_logical(plan, stats, expect_parameters=False)

    def test_verify_bound(self, stats):
        plan = TableRef("r").where(Var("a") > Parameter("lo"))
        verify_bound(plan, {"lo": 3})
        with pytest.raises(PlanReferenceError, match="unbound parameter"):
            verify_bound(plan, {})
        with pytest.raises(PlanReferenceError, match="lo"):
            verify_bound(plan, {"hi": 3})


# ======================================================================
# semiring-safety lint
# ======================================================================
class TestSemiringLint:
    def test_bag_only_rewrite_rejected_for_au(self):
        for rule in ("distinct-pushdown", "difference-pushdown"):
            assert rule_allowed(rule, "bag")
            assert not rule_allowed(rule, "au")
            check_semiring_safety([rule], "bag")
            with pytest.raises(SemiringSafetyError, match=rule):
                check_semiring_safety([rule], "au")
            with pytest.raises(SemiringSafetyError):
                check_semiring_safety([rule], "both")

    def test_au_safe_rules_pass_everywhere(self):
        trace = [
            "selection-pushdown",
            "join-promotion",
            "join-reorder-dp",
            "topk-fusion",
            "projection-pruning",
        ]
        for semantics in ("bag", "au", "both"):
            check_semiring_safety(trace, semantics)

    def test_undeclared_rewrite_rejected(self):
        with pytest.raises(SemiringSafetyError, match="declaration"):
            check_semiring_safety(["totally-new-rewrite"], "bag")

    def test_unknown_semantics_rejected(self):
        with pytest.raises(SemiringSafetyError, match="semantics"):
            check_semiring_safety([], "quantum")

    def test_optimizer_gates_bag_only_rewrites(self, det_conn):
        # det session: selection above Distinct commutes (bag-only)
        plan = Distinct(TableRef("r")).where(Var("a") > Const(2))
        prepared = det_conn.prepare(plan)
        assert "distinct-pushdown" in prepared.rewrite_trace
        assert sorted(prepared.execute().tuples()) == [((3, 4), 1)]

        # the same plan on an AU session must NOT cross the rewrite
        rel = AURelation.from_certain_rows(["a", "b"], [[1, 2], [3, 4], [3, 4]])
        au_conn = Connection(AUDatabase({"r": rel}), verify=True)
        au_prepared = au_conn.prepare(plan)
        assert "distinct-pushdown" not in au_prepared.rewrite_trace
        check_semiring_safety(au_prepared.rewrite_trace, "au")

    def test_difference_pushdown_fires_and_matches_reference(self, det_conn):
        from repro.db.engine import evaluate_det

        plan = Difference(TableRef("r"), Distinct(TableRef("r"))).where(
            Var("a") > Const(0)
        )
        prepared = det_conn.prepare(plan)
        assert "difference-pushdown" in prepared.rewrite_trace
        reference = evaluate_det(plan, det_conn.db, optimize=False)
        assert sorted(prepared.execute().tuples()) == sorted(reference.tuples())

    def test_forged_bag_trace_rejected_at_au_optimize(self, det_conn):
        # the integration path: optimize(semantics="au") never records a
        # bag-only rule, and a forged trace fails the session-level check
        with pytest.raises(SemiringSafetyError):
            check_semiring_safety(["selection-pushdown", "distinct-pushdown"], "au")
        trace = []
        optimize(
            Distinct(TableRef("r")).where(Var("a") > Const(2)),
            det_conn.statistics(),
            semantics="au",
            verify=True,
            trace=trace,
        )
        assert "distinct-pushdown" not in trace


# ======================================================================
# golden diagnostics: broken physical plans
# ======================================================================
class TestPhysicalDiagnostics:
    def _cfg(self, **kwargs):
        return phys.PhysicalConfig(**kwargs)

    def test_partial_aggregate_without_exchange(self, stats):
        agg = phys.HashAggregate(
            phys.Scan("r"), ("a",), (agg_sum("b", "t"),), None, partial=True
        )
        with pytest.raises(
            PlanCompatibilityError, match="partial HashAggregate"
        ):
            verify_physical(
                agg,
                stats,
                self._cfg(engine="det", backend="vectorized", parallelism=4),
            )

    def test_parallel_scan_outside_region(self, stats):
        with pytest.raises(PlanCompatibilityError, match="ParallelScan"):
            verify_physical(
                phys.ParallelScan("r", 4),
                stats,
                self._cfg(engine="det", backend="vectorized", parallelism=4),
            )

    def test_exchange_merge_child_mismatch(self, stats):
        # merge="aggregate" requires a partial HashAggregate child
        bad = phys.Exchange(
            phys.HashDistinct(phys.ParallelScan("r", 4)),
            "aggregate",
            4,
            final=phys.HashDistinct(phys.Scan("r")),
        )
        with pytest.raises(PlanCompatibilityError, match="HashAggregate"):
            verify_physical(
                bad,
                stats,
                self._cfg(engine="det", backend="vectorized", parallelism=4),
            )

    def test_exchange_concat_must_not_carry_final(self, stats):
        bad = phys.Exchange(
            phys.FusedSelectProject(
                phys.ParallelScan("r", 4), Var("a") > Const(0), None
            ),
            "concat",
            4,
            final=phys.Scan("r"),
        )
        with pytest.raises(PlanCompatibilityError, match="concat"):
            verify_physical(
                bad,
                stats,
                self._cfg(engine="det", backend="vectorized", parallelism=4),
            )

    def test_exchange_partition_mismatch(self, stats):
        region = phys.FusedSelectProject(
            phys.ParallelScan("r", 2), Var("a") > Const(0), None
        )
        bad = phys.Exchange(region, "concat", 4)
        with pytest.raises(PlanCompatibilityError, match="partitions"):
            verify_physical(
                bad,
                stats,
                self._cfg(engine="det", backend="vectorized", parallelism=4),
            )

    def test_adaptive_exchange_may_use_fewer_partitions(self, stats):
        # adaptive morsel sizing picks <= parallelism partitions: legal
        region = phys.FusedSelectProject(
            phys.ParallelScan("r", 2), Var("a") > Const(0), None
        )
        verify_physical(
            phys.Exchange(region, "concat", 2),
            stats,
            self._cfg(engine="det", backend="vectorized", parallelism=4),
        )

    def test_negative_chunk_size_rejected(self, stats):
        with pytest.raises(PlanCompatibilityError, match="chunk_size"):
            verify_physical(
                phys.Scan("r", chunk_size=-1), stats, self._cfg(engine="det")
            )

    def test_skip_predicate_on_unchunked_scan_rejected(self, stats):
        from repro.db.chunks import derive_skip

        scan = phys.Scan(
            "r", chunk_size=0, skip=derive_skip(Var("a") > Const(0))
        )
        with pytest.raises(PlanCompatibilityError, match="disabled"):
            verify_physical(scan, stats, self._cfg(engine="det"))

    def test_skip_predicate_must_use_zone_mapped_columns(self, stats):
        from repro.db.chunks import derive_skip

        scan = phys.Scan("r", skip=derive_skip(Var("zz") > Const(0)))
        with pytest.raises(PlanReferenceError, match="zone-mapped"):
            verify_physical(scan, stats, self._cfg(engine="det"))

    def test_parallel_scan_chunk_size_must_match_config(self, stats):
        region = phys.FusedSelectProject(
            phys.ParallelScan("r", 2, chunk_size=16), Var("a") > Const(0), None
        )
        with pytest.raises(PlanCompatibilityError, match="align"):
            verify_physical(
                phys.Exchange(region, "concat", 2),
                stats,
                self._cfg(
                    engine="det",
                    backend="vectorized",
                    parallelism=2,
                    chunk_size=32,
                ),
            )

    def test_unresolved_cpr_budget(self, stats):
        join = phys.CompressedJoin(
            phys.Scan("r"),
            phys.Scan("s"),
            Var("a") == Var("c"),
            ("a", "c"),
            buckets=0,
        )
        with pytest.raises(PlanCompatibilityError, match="Cpr"):
            verify_physical(join, stats, self._cfg(engine="au"))

    def test_compressed_join_rejected_in_det_plan(self, stats):
        join = phys.CompressedJoin(
            phys.Scan("r"),
            phys.Scan("s"),
            Var("a") == Var("c"),
            ("a", "c"),
            buckets=4,
        )
        with pytest.raises(PlanCompatibilityError, match="deterministic"):
            verify_physical(join, stats, self._cfg(engine="det"))

    def test_au_plan_must_close_nonlinear_fragment(self, stats):
        # a HashAggregate in an AU plan means a fallback boundary is open
        agg = phys.HashAggregate(
            phys.Scan("r"), ("a",), (agg_sum("b", "t"),), None
        )
        with pytest.raises(PlanCompatibilityError, match="TupleFallback"):
            verify_physical(agg, stats, self._cfg(engine="au"))

    def test_tuple_fallback_arity_and_logical_class(self, stats):
        bad_arity = phys.TupleFallback(
            "difference", Difference(TableRef("r"), TableRef("r")), (phys.Scan("r"),)
        )
        with pytest.raises(PlanCompatibilityError, match="input"):
            verify_physical(bad_arity, stats, self._cfg(engine="au"))
        wrong_logical = phys.TupleFallback(
            "distinct", TableRef("r"), (phys.Scan("r"),)
        )
        with pytest.raises(PlanCompatibilityError, match="Distinct"):
            verify_physical(wrong_logical, stats, self._cfg(engine="au"))

    def test_join_key_side_check(self, stats):
        bad = phys.HashJoin(
            phys.Scan("r"),
            phys.Scan("s"),
            Var("a") == Var("c"),
            eq_pairs=(("c", "a"),),  # sides swapped
            pure_equi=True,
        )
        with pytest.raises(PlanReferenceError, match="left input"):
            verify_physical(bad, stats, self._cfg(engine="det"))

    def test_good_plans_verify(self, det_conn, stats):
        # every lowering shape the planner actually produces passes
        plan = parse_sql(
            "SELECT a, sum(b) AS t FROM r WHERE a > 0 GROUP BY a"
        )
        for backend, parallelism in (("tuple", 1), ("vectorized", 4)):
            config = self._cfg(
                engine="det", backend=backend, parallelism=parallelism
            )
            import repro.exec.parallel as exec_parallel

            old = exec_parallel.PARALLEL_MIN_ROWS
            exec_parallel.PARALLEL_MIN_ROWS = 0
            try:
                pplan = phys.lower(optimize(plan, stats), stats, config)
            finally:
                exec_parallel.PARALLEL_MIN_ROWS = old
            schema = verify_physical(pplan, stats, config)
            assert schema is not None and schema.names == ("a", "t")


# ======================================================================
# prepare-time wiring
# ======================================================================
class TestPrepareTimeDiagnostics:
    def test_unknown_column_in_sql(self, det_conn):
        with pytest.raises(PlanReferenceError, match="unbound variable"):
            det_conn.prepare("SELECT zzz FROM r")

    def test_unknown_table_in_sql(self, det_conn):
        with pytest.raises(KeyError, match="not found"):
            det_conn.prepare("SELECT a FROM missing")

    def test_diagnostic_is_one_line_prose(self, det_conn):
        with pytest.raises(PlanReferenceError) as exc:
            det_conn.prepare("SELECT a FROM r WHERE ghost > 1")
        message = str(exc.value)
        assert "\n" not in message
        assert not message.startswith('"')  # KeyError repr-quoting defeated

    def test_verify_knob_tristate(self, det_conn):
        assert det_conn.verify is None
        assert det_conn.verify_plans == analysis.verification_enabled()
        with analysis.verified():
            assert det_conn.verify_plans
        explicit = Connection(det_conn.db, verify=False)
        with analysis.verified():
            assert not explicit.verify_plans

    def test_verified_context_manager_restores(self):
        before = analysis.verification_enabled()
        with analysis.verified():
            assert analysis.verification_enabled()
        assert analysis.verification_enabled() == before

    def test_having_without_group_by_is_syntax_error(self):
        with pytest.raises(SqlSyntaxError, match="HAVING"):
            parse_sql("SELECT a FROM r HAVING a > 1")


# ======================================================================
# verifier over sampled fuzzer plans
# ======================================================================
class TestFuzzerCorpusSample:
    def test_sampled_seeds_verify(self):
        # a fast inline sample; CI runs the full 400-seed corpus through
        # check_case (which forces verification) in a dedicated job
        import os
        import sys

        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from test_fuzz_differential import BASE_SEED, check_case

        for offset in (0, 17, 101):
            check_case(BASE_SEED + offset)


# ======================================================================
# CLI
# ======================================================================
class TestCliVerifyFlag:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=__file__.rsplit("/tests/", 1)[0],
        )

    def test_verify_plans_flag_runs(self):
        out = self._run(
            "--verify-plans", "SELECT locale FROM locales WHERE rate > 2"
        )
        assert out.returncode == 0, out.stderr
        assert "selected-guess world" in out.stdout

    def test_prepare_error_named_column(self):
        out = self._run("SELECT ghost FROM locales")
        assert out.returncode == 0
        assert "error:" in out.stdout
        assert "ghost" in out.stdout


# ======================================================================
# mypy gate (runs only where mypy is installed — the CI job)
# ======================================================================
def test_mypy_strict_on_analysis_modules():
    pytest.importorskip("mypy")
    root = __file__.rsplit("/tests/", 1)[0]
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        capture_output=True,
        text=True,
        cwd=root,
    )
    assert result.returncode == 0, result.stdout + result.stderr
