"""The query-session layer: prepared statements, plan cache, epochs.

Covers the PR's acceptance bar: a prepared parameterized query
re-executed 100x after interleaved writes returns results bit-identical
to fresh evaluation on all of {tuple, vectorized} x {det, AU}, while
skipping re-parse/re-optimize (asserted via the plan-cache hit counters
on ``Connection.metrics``) — plus staleness-driven re-lowering, epoch
band rotation, write-path cache invalidation on both engines, and the
relation identity-hash contract.
"""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.expressions import UnboundParameterError
from repro.core.ranges import between
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.session import (
    _METRIC_FIELDS,
    Connection,
    ConnectionMetrics,
    bind_parameters,
    collect_parameters,
    connect,
)
from repro.sql.parser import parse_sql
from repro.telemetry import MetricsRegistry, get_registry


def make_det_db(n: int = 24) -> DetDatabase:
    orders = DetRelation(["okey", "cust", "price"])
    customers = DetRelation(["ckey", "segment"])
    for i in range(n):
        orders.add((i, i % 5, float(i) + 0.25), 1 + i % 2)
    for c in range(5):
        customers.add((c, f"seg{c % 2}"), 1)
    return DetDatabase({"orders": orders, "customers": customers})


def make_au_db(n: int = 16) -> AUDatabase:
    orders = AURelation(["okey", "cust", "price"])
    customers = AURelation(["ckey", "segment"])
    for i in range(n):
        price = (
            between(float(i), float(i) + 0.5, float(i) + 2.0)
            if i % 3 == 0
            else float(i) + 0.25
        )
        orders.add([i, i % 5, price], (1, 1, 1 + i % 2))
    for c in range(5):
        customers.add([c, f"seg{c % 2}"], (1, 1, 1))
    return AUDatabase({"orders": orders, "customers": customers})


SQL = (
    "SELECT segment, sum(price) AS total, count(*) AS n "
    "FROM orders JOIN customers ON cust = ckey "
    "WHERE price >= ? GROUP BY segment"
)


def det_bits(rel):
    return (rel.schema, dict(rel.rows))


def au_bits(rel):
    return (rel.schema, dict(rel.tuples()))


class TestAcceptance:
    """The PR acceptance criterion, verbatim."""

    @pytest.mark.parametrize("backend", ["tuple", "vectorized"])
    def test_det_100x_reexecution_with_interleaved_writes(self, backend):
        db = make_det_db()
        conn = Connection(db, config=EvalConfig(backend=backend))
        raw_plan = parse_sql(SQL)
        thresholds = [0.0, 5.5, 11.25, 17.0]
        for i in range(100):
            # a write lands between every pair of executions
            db["orders"].add((100 + i, i % 5, 50.0 + i), 1)
            params = [thresholds[i % len(thresholds)]]
            got = conn.execute(SQL, params)
            fresh = evaluate_det(
                bind_parameters(raw_plan, params), db, backend=backend
            )
            assert det_bits(got) == det_bits(fresh), f"iteration {i}"
        m = conn.metrics
        # prepared once: every re-execution skipped re-parse/re-optimize
        assert m.parses == 1
        assert m.optimizations == 1
        assert m.cache_misses == 1
        assert m.cache_hits == 99
        assert m.executions == 100
        # 100 writes against the default staleness of 64: the physical
        # plan re-lowered against fresh statistics at least once, and
        # re-lowering is NOT a re-optimize
        assert m.relowerings >= 1
        assert m.lowerings == 1 + m.relowerings

    @pytest.mark.parametrize("backend", ["tuple", "vectorized"])
    def test_au_100x_reexecution_with_interleaved_writes(self, backend):
        db = make_au_db()
        conn = Connection(db, config=EvalConfig(backend=backend))
        raw_plan = parse_sql(SQL)
        thresholds = [0.0, 4.5, 9.25]
        for i in range(100):
            db["orders"].add(
                [100 + i, i % 5, between(40.0 + i, 50.0 + i, 60.0 + i)],
                (1, 1, 1),
            )
            params = [thresholds[i % len(thresholds)]]
            got = conn.execute(SQL, params)
            fresh = evaluate_audb(
                bind_parameters(raw_plan, params),
                db,
                EvalConfig(backend=backend),
            )
            assert au_bits(got) == au_bits(fresh), f"iteration {i}"
        m = conn.metrics
        assert m.parses == 1
        assert m.optimizations == 1
        assert m.cache_hits == 99
        assert m.relowerings >= 1
        assert m.lowerings == 1 + m.relowerings


class TestPreparedQuery:
    def test_prepared_plan_objects_amortize_without_the_cache(self):
        db = make_det_db()
        conn = Connection(db)
        plan = parse_sql("SELECT okey FROM orders WHERE price >= :p")
        prepared = conn.prepare(plan)
        assert prepared.parameters == ["p"]
        a = prepared.execute({"p": 3.0})
        b = prepared.execute({"p": 1000.0})
        assert len(b.rows) == 0 and len(a.rows) > 0
        assert conn.metrics.parses == 0  # plans arrive pre-parsed
        assert conn.metrics.optimizations == 1

    def test_binding_validation(self):
        conn = Connection(make_det_db())
        prepared = conn.prepare("SELECT okey FROM orders WHERE price >= ?")
        with pytest.raises(UnboundParameterError):
            prepared.execute()  # missing
        with pytest.raises(UnboundParameterError):
            prepared.execute([1.0, 2.0])  # surplus
        with pytest.raises(UnboundParameterError):
            prepared.execute({"p": 1.0})  # named for positional
        named = conn.prepare("SELECT okey FROM orders WHERE price >= :p")
        with pytest.raises(UnboundParameterError):
            named.execute([1.0])  # positional for named
        with pytest.raises(UnboundParameterError):
            named.execute({"p": 1.0, "q": 2.0})  # unknown name
        parameterless = conn.prepare("SELECT okey FROM orders")
        with pytest.raises(UnboundParameterError):
            parameterless.execute([1.0])

    def test_range_value_bindings_reach_the_au_engine(self):
        db = make_au_db()
        conn = Connection(db)
        prepared = conn.prepare("SELECT okey FROM orders WHERE price <= ?")
        exact = prepared.execute([3.0])
        fuzzy = prepared.execute([between(2.0, 3.0, 8.0)])
        # an uncertain bound can only widen the possible answers
        assert set(dict(exact.tuples())) <= set(dict(fuzzy.tuples()))

    def test_legacy_lowering_through_the_session(self):
        db = make_det_db()
        conn = Connection(db, config=EvalConfig(physical=False))
        got = conn.execute(SQL, [5.0])
        fresh = evaluate_det(
            bind_parameters(parse_sql(SQL), [5.0]), db, physical=False
        )
        assert det_bits(got) == det_bits(fresh)
        au = make_au_db()
        au_conn = Connection(au, config=EvalConfig(physical=False))
        got_au = au_conn.execute(SQL, [5.0])
        fresh_au = evaluate_audb(
            bind_parameters(parse_sql(SQL), [5.0]),
            au,
            EvalConfig(physical=False),
        )
        assert au_bits(got_au) == au_bits(fresh_au)

    def test_explain_helpers(self):
        conn = Connection(make_det_db())
        prepared = conn.prepare(SQL)
        assert "HashJoin" in prepared.explain_physical()
        assert "rows" in prepared.explain_logical()


class TestStalenessAndBands:
    def test_relowering_triggers_after_staleness_drift(self):
        db = make_det_db()
        conn = Connection(db, staleness=4)
        prepared = conn.prepare("SELECT cust FROM orders WHERE price >= ?")
        prepared.execute([1.0])
        assert conn.metrics.relowerings == 0
        for i in range(5):  # drift past the threshold
            db["orders"].add((500 + i, 0, 1.0), 1)
        prepared.execute([1.0])
        assert conn.metrics.relowerings == 1
        assert conn.metrics.optimizations == 1  # still never re-optimized
        # within the window nothing re-lowers
        prepared.execute([2.0])
        assert conn.metrics.relowerings == 1

    def test_staleness_zero_relowers_on_any_drift_and_minus_one_never(self):
        db = make_det_db()
        eager = Connection(db, staleness=0)
        prepared = eager.prepare("SELECT cust FROM orders")
        prepared.execute()
        db["orders"].add((900, 0, 1.0), 1)
        prepared.execute()
        assert eager.metrics.relowerings == 1
        frozen = Connection(db, staleness=-1)
        p2 = frozen.prepare("SELECT cust FROM orders")
        p2.execute()
        for i in range(50):
            db["orders"].add((901 + i, 0, 1.0), 1)
        p2.execute()
        assert frozen.metrics.relowerings == 0

    def test_epoch_band_rotation_reprepares(self):
        db = make_det_db()
        conn = Connection(db, staleness=1)  # band width = 16 writes
        sql = "SELECT cust FROM orders WHERE price >= ?"
        conn.execute(sql, [1.0])
        conn.execute(sql, [1.0])
        assert conn.metrics.cache_misses == 1 and conn.metrics.cache_hits == 1
        for i in range(16):  # cross into the next epoch band
            db["orders"].add((700 + i, 0, 1.0), 1)
        conn.execute(sql, [1.0])
        assert conn.metrics.cache_misses == 2  # fresh prepare, new band
        assert conn.metrics.optimizations == 2

    def test_statistics_cached_by_epoch(self):
        db = make_det_db()
        conn = Connection(db)
        s1 = conn.statistics()
        assert conn.statistics() is s1  # no writes: same snapshot
        db["orders"].add((999, 0, 9.0), 1)
        s2 = conn.statistics()
        assert s2 is not s1
        assert s2.cardinalities["orders"] == s1.cardinalities["orders"] + 1
        assert conn.metrics.stats_refreshes == 2

    def test_lru_eviction(self):
        conn = Connection(make_det_db(), cache_size=2)
        q = "SELECT cust FROM orders WHERE price >= {}"
        for i in range(3):
            conn.execute(q.format(i))
        conn.execute(q.format(0))  # evicted by the third query
        assert conn.metrics.cache_misses == 4


class TestWritePathInvalidation:
    """Satellite audit: every supported write path must invalidate (or
    incrementally maintain) the statistics and columnar caches."""

    @pytest.mark.parametrize("backend", ["tuple", "vectorized"])
    def test_det_mutation_after_cached_read(self, backend):
        db = make_det_db()
        conn = Connection(db, config=EvalConfig(backend=backend))
        sql = "SELECT sum(price) AS s FROM orders"
        before = conn.execute(sql)
        # the columnar image and the stats snapshot are now warm; the
        # write must not leak into either
        db["orders"].add((800, 1, 100.0), 1)
        after = conn.execute(sql)
        assert det_bits(after) != det_bits(before)
        assert det_bits(after) == det_bits(
            evaluate_det(parse_sql(sql), db, backend=backend)
        )

    @pytest.mark.parametrize("backend", ["tuple", "vectorized"])
    def test_au_mutation_after_cached_read(self, backend):
        db = make_au_db()
        conn = Connection(db, config=EvalConfig(backend=backend))
        sql = "SELECT sum(price) AS s FROM orders"
        before = conn.execute(sql)
        db["orders"].add([800, 1, between(90.0, 100.0, 110.0)], (1, 1, 1))
        after = conn.execute(sql)
        assert au_bits(after) != au_bits(before)
        assert au_bits(after) == au_bits(
            evaluate_audb(parse_sql(sql), db, EvalConfig(backend=backend))
        )

    def test_au_annotation_merge_after_cached_read(self, backend="vectorized"):
        # merging an annotation into an existing tuple goes through the
        # columnar cache too (the annotation arrays change)
        db = make_au_db()
        conn = Connection(db, config=EvalConfig(backend=backend))
        sql = "SELECT count(*) AS n FROM orders"
        before = conn.execute(sql)
        t0 = next(iter(db["orders"]))
        db["orders"].add(t0, (0, 0, 3))  # ub-only merge, same tuple
        after = conn.execute(sql)
        assert au_bits(after) != au_bits(before)

    def test_relation_rebinding_invalidates_connection_stats(self):
        db = make_det_db()
        conn = Connection(db)
        assert conn.statistics().cardinalities["customers"] == 5
        db["customers"] = DetRelation(["ckey", "segment"], [(0, "seg0")])
        assert conn.statistics().cardinalities["customers"] == 1


class TestRelationIdentity:
    """DetRelation now uses identity eq/hash consistently (the old
    value-__eq__ / identity-__hash__ pair broke dict-key safety)."""

    def test_identity_semantics(self):
        a = DetRelation(["x"], [(1,)])
        b = DetRelation(["x"], [(1,)])
        assert a != b and a == a
        assert a.same_contents(b)
        assert hash(a) != hash(b) or a is b

    def test_safe_as_dict_keys(self):
        a = DetRelation(["x"], [(1,)])
        b = DetRelation(["x"], [(1,)])
        cache = {a: "a", b: "b"}
        assert len(cache) == 2
        assert cache[a] == "a" and cache[b] == "b"
        a.add((2,))  # mutation must not move it to another bucket
        assert cache[a] == "a"

    def test_same_contents_detects_differences(self):
        a = DetRelation(["x"], [(1,)])
        assert not a.same_contents(DetRelation(["y"], [(1,)]))
        assert not a.same_contents(DetRelation(["x"], [(2,)]))


class TestConnectionBasics:
    def test_engine_inference_and_validation(self):
        assert Connection(make_det_db()).engine == "det"
        assert Connection(make_au_db()).engine == "au"
        assert connect(make_det_db()).engine == "det"
        with pytest.raises(TypeError):
            Connection({"not": "a database"})
        with pytest.raises(ValueError):
            Connection(make_det_db(), engine="postgres")
        with pytest.raises(ValueError):
            Connection(make_det_db(), config=EvalConfig(backend="gpu"))

    def test_per_call_config_gets_its_own_cache_entry(self):
        conn = Connection(make_det_db())
        sql = "SELECT cust FROM orders"
        conn.execute(sql)
        conn.execute(sql, config=EvalConfig(backend="vectorized"))
        conn.execute(sql)
        assert conn.metrics.cache_misses == 2
        assert conn.metrics.cache_hits == 1

    def test_parameters_survive_optimization(self):
        # pushdown must not lose or duplicate placeholders
        conn = Connection(make_det_db())
        prepared = conn.prepare(
            "SELECT segment, okey FROM orders JOIN customers ON cust = ckey "
            "WHERE price >= ? AND segment = ?"
        )
        assert collect_parameters(prepared.optimized) == sorted(
            collect_parameters(prepared.plan)
        ) or sorted(collect_parameters(prepared.optimized)) == [0, 1]
        got = prepared.execute([2.0, "seg0"])
        fresh = evaluate_det(
            bind_parameters(prepared.plan, [2.0, "seg0"]), conn.db
        )
        assert det_bits(got) == det_bits(fresh)


class TestBindingCoverage:
    """Parameter binding must reach every physical operator kind."""

    def test_parameter_inside_a_compressed_join_condition(self):
        db = make_au_db()
        config = EvalConfig(join_buckets=2)
        conn = Connection(db, config=config)
        sql = (
            "SELECT okey FROM orders JOIN customers "
            "ON cust = ckey AND price >= ?"
        )
        prepared = conn.prepare(sql)
        for p in (0.0, 6.5):
            got = prepared.execute([p])
            fresh = evaluate_audb(
                bind_parameters(parse_sql(sql), [p]), db, config
            )
            assert au_bits(got) == au_bits(fresh)

    def test_parameter_inside_a_parallel_region(self):
        from repro.exec import parallel as exec_parallel

        db = make_det_db()
        config = EvalConfig(backend="vectorized", parallelism=4)
        old = exec_parallel.PARALLEL_MIN_ROWS
        exec_parallel.PARALLEL_MIN_ROWS = 0
        try:
            conn = Connection(db, config=config)
            prepared = conn.prepare(SQL)
            for p in (0.0, 8.5):
                got = prepared.execute([p])
                fresh = evaluate_det(
                    bind_parameters(parse_sql(SQL), [p]),
                    db,
                    backend="vectorized",
                    parallelism=4,
                )
                assert det_bits(got) == det_bits(fresh)
        finally:
            exec_parallel.PARALLEL_MIN_ROWS = old

    def test_legacy_adaptive_compression_hints_via_session(self):
        db = make_au_db()
        config = EvalConfig(
            physical=False, join_buckets=4, adaptive_compression=True
        )
        conn = Connection(db, config=config)
        sql = (
            "SELECT okey FROM orders JOIN customers ON cust = ckey "
            "WHERE price >= ?"
        )
        got = conn.execute(sql, [2.0])
        fresh = evaluate_audb(
            bind_parameters(parse_sql(sql), [2.0]), db, config
        )
        assert au_bits(got) == au_bits(fresh)

    def test_parameter_in_projection_aggregate_and_having(self):
        db = make_det_db()
        conn = Connection(db)
        sql = (
            "SELECT cust, sum(price * :scale) AS s FROM orders "
            "GROUP BY cust HAVING s >= :floor"
        )
        prepared = conn.prepare(sql)
        for binding in ({"scale": 2.0, "floor": 0.0},
                        {"scale": 0.5, "floor": 40.0}):
            got = prepared.execute(binding)
            fresh = evaluate_det(
                bind_parameters(parse_sql(sql), binding), db
            )
            assert det_bits(got) == det_bits(fresh)

    def test_hot_bindings_reuse_compiled_closures(self):
        # re-executing the same binding must reuse the bound plan (and
        # therefore the vectorized backend's compiled closures, whose
        # cache keys on expression identity) instead of re-codegenning
        from repro.exec import compile as exec_compile

        conn = Connection(
            make_det_db(), config=EvalConfig(backend="vectorized")
        )
        prepared = conn.prepare("SELECT okey FROM orders WHERE price >= ?")
        first = prepared.execute([2.0])
        assert det_bits(prepared.execute([2.0])) == det_bits(first)
        assert len(prepared._bound_plans) == 1
        before = len(exec_compile._CACHE)
        for _ in range(5):
            prepared.execute([2.0])
        assert len(exec_compile._CACHE) == before  # no closure churn
        # values that compare equal but differ in type must NOT share
        # a bound plan (okey * 2 is an int, okey * 2.0 a float)
        scale = conn.prepare("SELECT okey * :s AS v FROM orders")
        as_int = scale.execute({"s": 2})
        as_float = scale.execute({"s": 2.0})
        assert len(scale._bound_plans) == 2
        assert all(isinstance(t[0], int) for t in as_int.rows)
        assert all(isinstance(t[0], float) for t in as_float.rows)


class TestMetricsRegistryView:
    """Satellite: ``ConnectionMetrics`` is a view over the process-wide
    :class:`repro.telemetry.MetricsRegistry` — every local increment
    must appear as an equal delta on the matching
    ``repro_session_<field>_total`` registry counter, and the counters
    stay monotone."""

    @staticmethod
    def _registry_values(engine):
        reg = get_registry()
        return {
            name: reg.counter(
                f"repro_session_{name}_total", engine=engine
            ).value
            for name in _METRIC_FIELDS
        }

    def test_increments_route_to_registry(self):
        reg = MetricsRegistry()
        m = ConnectionMetrics("det", registry=reg)
        m.parses += 1
        m.executions += 3
        assert m.parses == 1 and m.executions == 3
        assert (
            reg.counter("repro_session_parses_total", engine="det").value
            == 1
        )
        assert (
            reg.counter(
                "repro_session_executions_total", engine="det"
            ).value
            == 3
        )
        assert m.snapshot()["executions"] == 3

    def test_monotone_contract_rejects_decrements(self):
        m = ConnectionMetrics("det", registry=MetricsRegistry())
        m.executions = 2
        with pytest.raises(ValueError):
            m.executions = 1
        assert m.executions == 2  # the rejected write changed nothing

    def test_connections_share_registry_but_not_views(self):
        reg = MetricsRegistry()
        a = ConnectionMetrics("det", registry=reg)
        b = ConnectionMetrics("det", registry=reg)
        a.executions += 1
        b.executions += 1
        assert a.executions == 1 and b.executions == 1
        assert (
            reg.counter(
                "repro_session_executions_total", engine="det"
            ).value
            == 2  # the registry aggregates over both connections
        )

    @pytest.mark.parametrize("backend", ["tuple", "vectorized"])
    def test_live_paths_keep_view_and_registry_consistent(self, backend):
        # the interesting session paths — plan-cache hit, result-memo
        # hit, staleness re-lowering, subscribe — must all advance the
        # local view and the global registry by identical deltas
        before = self._registry_values("det")
        db = make_det_db()
        conn = Connection(
            db, config=EvalConfig(backend=backend), staleness=1
        )
        prepared = conn.prepare(SQL)  # miss: parse+optimize+lower
        conn.execute(SQL, [2.0])  # plan-cache hit, fresh execution
        conn.execute(SQL, [2.0])  # plan-cache hit + result-memo hit
        for i in range(5):
            db["orders"].add((600 + i, 0, 1.0), 1)
        prepared.execute([2.0])  # epoch drift past staleness: re-lower
        view = conn.subscribe("SELECT cust FROM orders")
        conn.unsubscribe(view)
        snap = conn.metrics.snapshot()
        assert snap["cache_hits"] == 2
        assert snap["cache_misses"] >= 1
        assert snap["result_cache_hits"] == 1
        assert snap["relowerings"] == 1
        assert snap["subscriptions"] == 1
        assert snap["executions"] == 3
        after = self._registry_values("det")
        deltas = {k: after[k] - before[k] for k in after}
        assert deltas == snap
