"""Integration tests: TPC-H generator, PDBench injection, query suite."""

import random

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.db.engine import evaluate_det
from repro.tpch.datagen import TPCH_SCHEMAS, generate_tpch
from repro.tpch.pdbench import UNCERTAIN_COLUMNS, make_pdbench
from repro.tpch.queries import pdbench_spj_queries, q1, q3, tpch_queries
from repro.workloads.uncertainty import inject_uncertainty


class TestDatagen:
    def test_schemas(self):
        db = generate_tpch(scale=0.2, seed=1)
        for name, schema in TPCH_SCHEMAS.items():
            assert db[name].schema == schema

    def test_deterministic_by_seed(self):
        a = generate_tpch(scale=0.2, seed=5)
        b = generate_tpch(scale=0.2, seed=5)
        assert a["lineitem"].rows == b["lineitem"].rows
        c = generate_tpch(scale=0.2, seed=6)
        assert a["lineitem"].rows != c["lineitem"].rows

    def test_scaling(self):
        small = generate_tpch(scale=0.2, seed=1)
        large = generate_tpch(scale=1.0, seed=1)
        assert large["customer"].total_rows() > small["customer"].total_rows()
        assert large["orders"].total_rows() == large["customer"].total_rows() * 10

    def test_foreign_keys_resolve(self):
        db = generate_tpch(scale=0.2, seed=1)
        custkeys = {t[0] for t in db["customer"].rows}
        for t in db["orders"].rows:
            assert t[1] in custkeys

    def test_dates_are_yyyymmdd(self):
        db = generate_tpch(scale=0.2, seed=1)
        for t in db["orders"].rows:
            assert 19920101 <= t[4] <= 19981231


class TestInjection:
    def test_uncertainty_fraction_tracks_parameter(self):
        db = generate_tpch(scale=0.5, seed=2)
        xrel = inject_uncertainty(
            db["lineitem"], cell_fraction=0.3, rng=random.Random(1)
        )
        frac = xrel.uncertain_tuple_fraction()
        assert frac > 0.5  # 30% per cell over 11 columns -> most tuples hit

        xrel_low = inject_uncertainty(
            db["lineitem"], cell_fraction=0.01, rng=random.Random(1)
        )
        assert xrel_low.uncertain_tuple_fraction() < frac

    def test_alternative_count_capped(self):
        db = generate_tpch(scale=0.2, seed=2)
        xrel = inject_uncertainty(
            db["lineitem"], 0.5, n_alternatives=8, rng=random.Random(1)
        )
        assert max(len(xt.alternatives) for xt in xrel.xtuples) <= 8

    def test_pdbench_keys_stay_certain(self):
        inst = make_pdbench(scale=0.2, uncertainty=0.3)
        for xt in inst.xdb["lineitem"].xtuples:
            orderkeys = {alt[0] for alt in xt.alternatives}
            assert len(orderkeys) == 1  # l_orderkey never injected

    def test_selected_world_same_size(self):
        inst = make_pdbench(scale=0.2, uncertainty=0.1)
        det = inst.det["lineitem"].total_rows()
        sgw = inst.selected_world()["lineitem"].total_rows()
        assert det == sgw


class TestQueries:
    @pytest.fixture(scope="class")
    def instance(self):
        return make_pdbench(scale=0.2, uncertainty=0.05)

    def test_all_queries_run_det(self, instance):
        world = instance.selected_world()
        for name, plan in {**tpch_queries(), **pdbench_spj_queries()}.items():
            result = evaluate_det(plan, world)
            assert result is not None

    def test_q1_group_count(self, instance):
        result = evaluate_det(q1(), instance.selected_world())
        # 3 return flags x 2 line statuses = at most 6 groups
        assert 1 <= len(result) <= 6

    def test_audb_sgw_matches_det(self, instance):
        audb = instance.audb()
        world = instance.selected_world()
        config = EvalConfig(join_buckets=16, aggregation_buckets=16)
        for name, plan in pdbench_spj_queries().items():
            au = evaluate_audb(plan, audb, config)
            det = evaluate_det(plan, world)
            assert au.selected_guess_world() == det.as_bag(), name

    def test_q3_audb_bounds_sgw_result(self, instance):
        audb = instance.audb()
        world = instance.selected_world()
        plan = q3()
        au = evaluate_audb(plan, audb, EvalConfig(join_buckets=16, aggregation_buckets=16))
        det = evaluate_det(plan, world)
        from repro.core.bounding import bounds_world

        assert bounds_world(au, det.as_bag())
