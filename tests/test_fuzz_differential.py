"""Differential query fuzzer: optimized ≡ naive, vectorized ≡ tuple,
physical ≡ legacy lowering, parallel ≡ serial, and AU bounds Det.

A *seeded* random generator (plain :mod:`random`, no Hypothesis — every
case is reproducible from its integer seed, which CI pins) produces small
AU-databases and random ``RA_agg`` plans, then machine-checks the
equivalences the optimizer, the physical planner, the vectorized
backend, and the paper's semantics promise:

1. **Optimizer differential** — for BOTH engines and BOTH join-order
   strategies (``greedy`` and the cost-based ``dp``), the optimized plan
   returns exactly the naive (``--no-optimize``) result: identical
   schemas, identical bags (Det), identical ``K^AU`` annotations (AU).
2. **Physical-planner differential** — the default path (cost-based
   lowering through :func:`repro.exec.physical.lower`) returns exactly
   the legacy direct interpretation (``physical=False``) on both
   engines, naive and optimized shapes.
3. **Backend and parallelism differential** — for BOTH engines, the
   vectorized backend (:mod:`repro.exec`) returns exactly the tuple
   interpreter's result on every plan shape, and BOTH engines return
   identical results at ``parallelism`` 1 and 4 (partition thresholds
   pinned to 0 so the 4-way morsel partition-and-merge machinery — AU
   partial aggregates with SG-combine-aware merges included — really
   runs); the tuple-at-a-time AU executor is knob-inert under the same
   setting.
4. **Float bit-stability** — on a float-valued copy of the database,
   SUM/AVG results are *bit-identical* across backends, lowerings, and
   parallelism levels (exact summation, :mod:`repro.core.sums`); the
   PR 3 "round-off may differ" carve-out is gone.
4b. **Prepared-statement differential** — every plan, wrapped in a
   parameterized selection, is ``prepare``d once on a
   :class:`repro.session.Connection` (``staleness=1`` so epoch-drift
   re-lowering actually fires) and executed with three bindings
   interleaved with writes; each execution must equal fresh unprepared
   evaluation bit-for-bit, on both engines and both backends, and the
   session counters must show zero re-parses/re-optimizes.
4c. **Incremental-view-maintenance differential** — every plan is
   ``subscribe``d on a connection and a random interleaving of
   inserts/deletes/updates (AU deletes with valid delta/remainder
   ``K^AU`` triples) is applied; after every write the maintained
   :class:`~repro.ivm.MaterializedView` result must equal fresh
   re-execution, on both engines and both backends, whatever the
   delta-plan classification (linear / aggregate-merge / epoch-gated
   refresh); after ``unsubscribe`` maintenance must stop and the
   registry entry must be freed.
5. **Det-vs-AU containment** — the AU result must bound the certain
   answer: its selected-guess world equals the Det engine's result over
   the SGW database, and the tuple-matching oracle
   (:func:`repro.core.bounding.bounds_world`) certifies the AU relation
   bounds that world.  ``LIMIT``/top-k plans only require sub-bag
   containment (the AU engine keeps a sound superset — exact when the
   order keys are certain, everything otherwise).
6. **Compression soundness** — with a join compression budget and
   planner-placed (adaptive) budgets, the result still bounds the Det
   answer, on both backends.
7. **Telemetry transparency** — on a slice of the seeds (every third
   case) the plan is re-executed on ``trace=True`` connections: tracing
   must be invisible (bit-identical results on both engines and both
   backends) and the recorded :class:`repro.telemetry.QueryTrace` must
   be well formed — ``problems()`` empty, so no orphan spans, no
   negative durations, no child interval escaping its parent.

Run the CI gate standalone (exits non-zero on the first mismatch)::

    PYTHONPATH=src python tests/test_fuzz_differential.py --cases 200 --seed 20260728
"""

from __future__ import annotations

import argparse
import os
import random
from typing import List, Set, Tuple

import pytest

from repro import analysis
from repro.algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_avg, agg_count, agg_max, agg_min, agg_sum
from repro.core.bounding import bounds_world
from repro.core.expressions import (
    And,
    Const,
    Eq,
    Gt,
    Leq,
    Not,
    Or,
    Parameter,
    Var,
)
from repro.core.ranges import RangeValue
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.exec import parallel as exec_parallel
from repro.experiments.common import sgw_database
from repro.session import Connection, bind_parameters

BASE_SEED = 20260728
N_CASES = int(os.environ.get("FUZZ_CASES", "200"))
_CHUNK = 20

TABLES = {"r": ("a", "b"), "s": ("c", "d"), "u": ("e", "f")}


# ----------------------------------------------------------------------
# seeded generators
# ----------------------------------------------------------------------
def make_audb(rng: random.Random) -> AUDatabase:
    relations = {}
    for name, schema in TABLES.items():
        rel = AURelation(schema)
        for _ in range(rng.randint(0, 5)):
            values = []
            for _column in schema:
                lo = rng.randint(-2, 5)
                mid = lo + rng.randint(0, 2)
                hi = mid + rng.randint(0, 2)
                values.append(RangeValue(lo, mid, hi))
            lb = rng.randint(0, 1)
            sg = lb + rng.randint(0, 1)
            ub = sg + rng.randint(0, 1)
            if ub > 0:
                rel.add(values, (lb, sg, ub))
        relations[name] = rel
    return AUDatabase(relations)


def make_condition(rng: random.Random, schema: List[str]):
    def atom():
        lhs = Var(rng.choice(schema))
        if rng.random() < 0.5:
            rhs = Const(rng.randint(-2, 6))
        else:
            rhs = Var(rng.choice(schema))
        op = rng.choice([Eq, Leq, Gt])
        return op(lhs, rhs)

    cond = atom()
    for _ in range(rng.randint(0, 2)):
        combiner = rng.choice(["and", "or", "not"])
        if combiner == "and":
            cond = And(cond, atom())
        elif combiner == "or":
            cond = Or(cond, atom())
        else:
            cond = Not(cond)
    return cond


def make_plan(
    rng: random.Random, depth: int
) -> Tuple[Plan, List[str], Set[str]]:
    if depth <= 0:
        name = rng.choice(sorted(TABLES))
        return TableRef(name), list(TABLES[name]), {name}

    choice = rng.randint(0, 9)
    plan, schema, used = make_plan(rng, depth - 1)

    if choice == 0:  # fresh leaf
        name = rng.choice(sorted(TABLES))
        return TableRef(name), list(TABLES[name]), {name}
    if choice == 1:  # selection
        return Selection(plan, make_condition(rng, schema)), schema, used
    if choice == 2:  # projection (subset + one computed column)
        kept = rng.sample(schema, rng.randint(1, len(schema)))
        cols = [(Var(a), a) for a in kept]
        if rng.random() < 0.5:
            x = rng.choice(schema)
            cols.append((Var(x) + Const(1), f"w{depth}"))
        return Projection(plan, cols), [n for _, n in cols], used
    if choice == 3:  # equi-join with an unused table
        free = sorted(set(TABLES) - used)
        if not free:
            return Selection(plan, make_condition(rng, schema)), schema, used
        name = rng.choice(free)
        other_schema = list(TABLES[name])
        condition = Eq(Var(rng.choice(schema)), Var(rng.choice(other_schema)))
        plan = Join(plan, TableRef(name), condition)
        return plan, schema + other_schema, used | {name}
    if choice == 4:  # cross product with an unused table
        free = sorted(set(TABLES) - used)
        if not free:
            return Distinct(plan), schema, used
        name = rng.choice(free)
        return (
            CrossProduct(plan, TableRef(name)),
            schema + list(TABLES[name]),
            used | {name},
        )
    if choice == 5:  # union / difference against a filtered copy
        other = Selection(plan, make_condition(rng, schema))
        node = Union if rng.random() < 0.5 else Difference
        return node(plan, other), schema, used
    if choice == 6:  # distinct
        return Distinct(plan), schema, used
    if choice == 7:  # group-by aggregate
        keys = rng.sample(schema, rng.randint(1, len(schema)))
        value = rng.choice(schema)
        spec = rng.choice(
            [
                agg_sum(value, "agg"),
                agg_min(value, "agg"),
                agg_max(value, "agg"),
                agg_avg(value, "agg"),
                agg_count("agg"),
            ]
        )
        return Aggregate(plan, keys, [spec]), keys + ["agg"], used
    if choice == 8:  # ORDER BY ... LIMIT (exercises TopK fusion)
        keys = rng.sample(schema, rng.randint(1, len(schema)))
        return (
            Limit(OrderBy(plan, keys, rng.random() < 0.5), rng.randint(1, 4)),
            schema,
            used,
        )
    # rename one column to a fresh name
    old = rng.choice(schema)
    new = f"{old}_{depth}"
    return (
        Rename(plan, {old: new}),
        [new if a == old else a for a in schema],
        used,
    )


# ----------------------------------------------------------------------
# the differential oracle
# ----------------------------------------------------------------------
def _limit_shape(plan: Plan) -> Tuple[bool, bool]:
    """``(contains_limit, containment_claimable)``.

    The AU engine evaluates ``Limit``/top-k as the identity (keeping
    everything is the only sound choice over unordered uncertain data),
    so the Det result is only a *sub-bag* of the AU selected-guess world
    — and that claim survives exactly the bag-monotone operators above
    the Limit.  ``Aggregate`` over a limited input (its values summarize
    more rows on the AU side) and a Limit in the *right* branch of a
    ``Difference`` (more gets subtracted) break it; for such plans the
    fuzzer only checks the optimizer differential.
    """
    if isinstance(plan, (Limit, TopK)):
        _, ok = _limit_shape(plan.child)
        return True, ok
    if isinstance(plan, Aggregate):
        has, ok = _limit_shape(plan.child)
        return has, ok and not has
    if isinstance(plan, Difference):
        left_has, left_ok = _limit_shape(plan.left)
        right_has, right_ok = _limit_shape(plan.right)
        return left_has or right_has, left_ok and right_ok and not right_has
    has, ok = False, True
    for child in plan.children():
        child_has, child_ok = _limit_shape(child)
        has = has or child_has
        ok = ok and child_ok
    return has, ok


def _is_subbag(small, big) -> bool:
    return all(big.get(t, 0) >= m for t, m in small.items())


def _clone_det(det: DetDatabase) -> DetDatabase:
    return DetDatabase(
        {
            name: DetRelation(rel.schema, dict(rel.rows))
            for name, rel in det.relations.items()
        }
    )


def _clone_audb(audb: AUDatabase) -> AUDatabase:
    out = AUDatabase({})
    for name, rel in audb.relations.items():
        clone = AURelation(rel.schema)
        for t, ann in rel.tuples():
            clone.add(t, ann)
        out[name] = clone
    return out


def _check_prepared_lane(rng, plan, schema, used, det, audb, context) -> None:
    """Prepared-statement lane: ``prepare`` once, execute with three
    bindings interleaved with writes, and compare against fresh
    unprepared evaluation on both engines and both backends.

    ``staleness=1`` forces the epoch-drift re-lowering machinery to run
    mid-sequence, so plan-cache staleness is fuzzed too.
    """
    param_plan = Selection(
        plan, Leq(Var(rng.choice(schema)), Parameter(0))
    )
    bindings = [rng.randint(-2, 6) for _ in range(3)]
    writes = []
    for _ in bindings:
        table = rng.choice(sorted(used))
        writes.append((table, [rng.randint(-2, 5) for _ in TABLES[table]]))
    for backend in ("tuple", "vectorized"):
        det_db = _clone_det(det)
        au_db = _clone_audb(audb)
        config = EvalConfig(backend=backend)
        det_conn = Connection(det_db, config=config, staleness=1)
        au_conn = Connection(au_db, config=config, staleness=1)
        det_prepared = det_conn.prepare(param_plan)
        au_prepared = au_conn.prepare(param_plan)
        for (table, row), value in zip(writes, bindings):
            bound = bind_parameters(param_plan, [value])
            got_det = det_prepared.execute([value])
            want_det = evaluate_det(bound, det_db, backend=backend)
            assert got_det.schema == want_det.schema, (
                f"prepared det schema [{backend} ?={value}] {context}"
            )
            assert got_det.rows == want_det.rows, (
                f"prepared det bag [{backend} ?={value}] {context}"
            )
            got_au = au_prepared.execute([value])
            want_au = evaluate_audb(bound, au_db, config)
            assert got_au.schema == want_au.schema, (
                f"prepared AU schema [{backend} ?={value}] {context}"
            )
            assert dict(got_au.tuples()) == dict(want_au.tuples()), (
                f"prepared AU annotations [{backend} ?={value}] {context}"
            )
            det_db[table].add(tuple(row), 1)
            au_db[table].add(row, (1, 1, 1))
        # the whole point of preparing: one parse/optimize per statement
        for conn in (det_conn, au_conn):
            assert conn.metrics.optimizations == 1, f"re-optimized {context}"
            assert conn.metrics.parses == 0, f"re-parsed {context}"


def _sample_au_delete(wrng: random.Random, ann) -> Tuple[int, int, int]:
    """A valid ``K^AU`` delta to delete from a tuple annotated ``ann``:
    both the delta and the remainder must satisfy ``0 <= lb <= sg <= ub``.
    Rejection-samples; falls back to removing the full annotation."""
    lb, sg, ub = ann
    for _ in range(8):
        dlb = wrng.randint(0, lb)
        dsg = wrng.randint(dlb, sg)
        dub = wrng.randint(dsg, ub)
        if lb - dlb <= sg - dsg <= ub - dub:
            return (dlb, dsg, dub)
    return ann


def _random_write(wrng: random.Random, det_db, au_db) -> None:
    """One random insert/delete/update applied to *both* databases.

    Both relations advance through their own sink/epoch machinery; the
    det and AU sides evolve independently (the det database is the AU
    database's SGW projection only at step 0 — maintenance correctness
    is per-engine, not cross-engine)."""
    table = wrng.choice(sorted(TABLES))
    op = wrng.choice(("insert", "delete", "update"))
    det_rel = det_db[table]
    au_rel = au_db[table]
    if op in ("delete", "update") and len(det_rel):
        t = wrng.choice(sorted(det_rel.rows, key=repr))
        det_rel.delete(t, wrng.randint(1, det_rel.rows[t]))
    elif op != "delete":
        det_rel.add(
            tuple(wrng.randint(-2, 5) for _ in det_rel.schema),
            wrng.randint(1, 2),
        )
    if op in ("delete", "update") and len(au_rel):
        t, ann = wrng.choice(sorted(au_rel.tuples(), key=repr))
        au_rel.delete(t, _sample_au_delete(wrng, ann))
    elif op != "delete":
        values = []
        for _column in au_rel.schema:
            lo = wrng.randint(-2, 5)
            mid = lo + wrng.randint(0, 2)
            values.append(RangeValue(lo, mid, mid + wrng.randint(0, 2)))
        lb = wrng.randint(0, 1)
        sg = lb + wrng.randint(0, 1)
        au_rel.add(values, (lb, sg, sg + wrng.randint(0, 1)))


def _check_ivm_lane(rng, plan, det, audb, context) -> None:
    """Incremental-view-maintenance lane: ``subscribe`` to the plan and
    interleave random inserts/deletes/updates with reads, asserting the
    maintained result equals fresh re-execution after every write, for
    both engines and both backends.  After ``unsubscribe`` a further
    write must not be maintained and the registry entry must be freed.

    The subscribed connections run on a randomly chosen chunk size while
    the fresh reference evaluation runs unchunked (``chunk_size=0``), so
    delta-plan maintenance over incrementally maintained chunk stores is
    cross-checked against chunkless evaluation too.
    """
    lane_seed = rng.randrange(2**31)
    chunk_size = rng.choice((0, 1, 3, 64, None))
    for backend in ("tuple", "vectorized"):
        wrng = random.Random(lane_seed)
        det_db = _clone_det(det)
        au_db = _clone_audb(audb)
        config = EvalConfig(backend=backend, chunk_size=chunk_size)
        flat_config = EvalConfig(backend=backend, chunk_size=0)
        det_conn = Connection(det_db, config=config)
        au_conn = Connection(au_db, config=config)
        det_view = det_conn.subscribe(plan)
        au_view = au_conn.subscribe(plan)
        for step in range(4):
            _random_write(wrng, det_db, au_db)
            where = (
                f"[{backend} ivm/{det_view.kind} chunk={chunk_size} "
                f"step {step}] {context}"
            )
            got = det_view.result()
            want = evaluate_det(plan, det_db, backend=backend, chunk_size=0)
            assert got.schema == want.schema, f"ivm det schema {where}"
            assert got.rows == want.rows, f"ivm det bag {where}"
            got_au = au_view.result()
            want_au = evaluate_audb(plan, au_db, flat_config)
            assert got_au.schema == want_au.schema, f"ivm AU schema {where}"
            assert dict(got_au.tuples()) == dict(want_au.tuples()), (
                f"ivm AU annotations {where}"
            )
        for conn, view in ((det_conn, det_view), (au_conn, au_view)):
            conn.unsubscribe(view)
            assert view.closed and not conn.subscriptions, (
                f"unsubscribe left registry entry [{backend}] {context}"
            )
        _random_write(wrng, det_db, au_db)
        for view in (det_view, au_view):
            try:
                view.result()
            except RuntimeError:
                pass
            else:
                raise AssertionError(
                    f"closed view still served [{backend}] {context}"
                )


def _check_chunk_lane(rng, plan, det, audb, context) -> None:
    """Chunked-storage lane: paged chunked storage must be invisible.

    For chunk sizes 1 (one row per page), 3 (ragged pages), 64, and the
    default page size, both engines on both backends must return results
    bit-identical to ``chunk_size=0`` (no chunk stores: whole-table
    columnar images, no zone-map skipping).  A round of random writes
    between reads exercises the stores' incremental maintenance paths
    (zone widening on insert, boundary invalidation on delete) — the
    second read runs over maintained chunk stores, not fresh builds."""
    lane_seed = rng.randrange(2**31)
    sizes = (1, 3, 64, None)
    for backend in ("tuple", "vectorized"):
        wrng = random.Random(lane_seed)
        det_db = _clone_det(det)
        au_db = _clone_audb(audb)
        for step in range(2):
            if step:
                for _ in range(3):
                    _random_write(wrng, det_db, au_db)
            where = f"[{backend} chunk step {step}] {context}"
            want_det = evaluate_det(
                plan, det_db, backend=backend, chunk_size=0
            )
            want_au = evaluate_audb(
                plan, au_db, EvalConfig(backend=backend, chunk_size=0)
            )
            for size in sizes:
                got = evaluate_det(
                    plan, det_db, backend=backend, chunk_size=size
                )
                assert got.schema == want_det.schema, (
                    f"chunked det schema [size={size}] {where}"
                )
                assert got.rows == want_det.rows, (
                    f"chunked det bag [size={size}] {where}"
                )
                got_au = evaluate_audb(
                    plan, au_db, EvalConfig(backend=backend, chunk_size=size)
                )
                assert got_au.schema == want_au.schema, (
                    f"chunked AU schema [size={size}] {where}"
                )
                assert dict(got_au.tuples()) == dict(want_au.tuples()), (
                    f"chunked AU annotations [size={size}] {where}"
                )


def _check_telemetry_lane(plan, det, audb, context) -> None:
    """Telemetry lane: re-execute the plan on ``trace=True`` connections
    and assert tracing is invisible — results bit-identical to untraced
    evaluation on both engines and both backends — and that the recorded
    span tree is well formed (``QueryTrace.problems()`` is empty: no
    orphan spans, no negative durations, no interval escaping its
    parent, and an operator span for the executed plan)."""
    for backend in ("tuple", "vectorized"):
        config = EvalConfig(backend=backend)
        det_conn = Connection(_clone_det(det), config=config, trace=True)
        au_conn = Connection(_clone_audb(audb), config=config, trace=True)
        got_det = det_conn.execute(plan)
        want_det = evaluate_det(plan, det, backend=backend)
        assert got_det.schema == want_det.schema, (
            f"traced det schema [{backend}] {context}"
        )
        assert got_det.rows == want_det.rows, (
            f"traced det bag [{backend}] {context}"
        )
        got_au = au_conn.execute(plan)
        want_au = evaluate_audb(plan, audb, config)
        assert got_au.schema == want_au.schema, (
            f"traced AU schema [{backend}] {context}"
        )
        assert dict(got_au.tuples()) == dict(want_au.tuples()), (
            f"traced AU annotations [{backend}] {context}"
        )
        for label, conn in (("det", det_conn), ("au", au_conn)):
            trace = conn.last_trace
            assert trace is not None, (
                f"no trace recorded [{label} {backend}] {context}"
            )
            assert trace.root.end is not None, (
                f"trace never finished [{label} {backend}] {context}"
            )
            problems = trace.problems()
            assert problems == [], (
                f"malformed trace {problems} [{label} {backend}] {context}"
            )
            spans = trace.spans()
            assert any(s.cat == "operator" for s in spans), (
                f"no operator spans [{label} {backend}] {context}"
            )


def _float_database(det: DetDatabase) -> DetDatabase:
    """A float-valued copy of the SGW database (every value +0.5), so
    SUM/AVG exercise floating-point accumulation on every path."""
    out = DetDatabase({})
    for name, rel in det.relations.items():
        d = DetRelation(rel.schema)
        for row, m in rel.tuples():
            d.add(tuple(v + 0.5 for v in row), m)
        out[name] = d
    return out


def check_case(seed: int) -> None:
    """One fuzz case, with plan verification forced on: every
    optimize/lower inside runs the :mod:`repro.analysis` checks.  On any
    mismatch or verifier failure a standalone repro script is written to
    ``failures/`` (or ``$FUZZ_FAILURE_DIR``) and the error re-raised
    with the script path appended."""
    try:
        with analysis.verified():
            _check_case(seed)
    except (AssertionError, analysis.PlanVerificationError) as exc:
        path = _dump_repro(seed, exc)
        exc.args = (f"{exc} [repro script: {path}]",)
        raise


def _dump_repro(seed: int, exc: BaseException) -> str:
    """Write a minimized standalone repro script for a failing seed."""
    directory = os.environ.get("FUZZ_FAILURE_DIR") or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "failures",
    )
    os.makedirs(directory, exist_ok=True)
    # regenerate the case inputs so the script documents what failed
    rng = random.Random(seed)
    audb = make_audb(rng)
    plan, schema, used = make_plan(rng, rng.randint(1, 4))
    cards = {name: len(rel) for name, rel in audb.relations.items()}
    error = " ".join(str(exc).splitlines())[:400]
    path = os.path.join(directory, f"fuzz_seed_{seed}.py")
    with open(path, "w") as fh:
        fh.write(
            "#!/usr/bin/env python\n"
            f"# Differential-fuzzer failure repro (seed {seed}).\n"
            f"# error: {error}\n"
            f"# plan: {plan!r}\n"
            f"# output schema: {schema}  tables used: {sorted(used)}\n"
            f"# AU table cardinalities: {cards}\n"
            "# Run from the repo root:\n"
            f"#   PYTHONPATH=src:tests python failures/fuzz_seed_{seed}.py\n"
            "import sys\n"
            "\n"
            "sys.path[:0] = ['src', 'tests']\n"
            "\n"
            "from repro import analysis\n"
            "from test_fuzz_differential import _check_case\n"
            "\n"
            "with analysis.verified():\n"
            f"    _check_case({seed})\n"
            "print('seed reproduced cleanly (failure no longer occurs)')\n"
        )
    return path


def _check_case(seed: int) -> None:
    """One fuzz case; raises AssertionError (with the seed) on mismatch."""
    rng = random.Random(seed)
    audb = make_audb(rng)
    det = sgw_database(audb)
    plan, _schema, _used = make_plan(rng, rng.randint(1, 4))
    context = f"seed={seed} plan={plan!r}"

    # 1a. Det engine: optimized (both strategies) == naive, and the
    # physical planner == the legacy direct lowering on every shape
    det_naive = evaluate_det(plan, det, optimize=False, physical=False)
    det_shapes = [("naive", dict(optimize=False))]
    for join_order in ("greedy", "dp"):
        det_shapes.append(
            (join_order, dict(optimize=True, join_order=join_order))
        )
    for shape, kwargs in det_shapes:
        det_phys = evaluate_det(plan, det, **kwargs)
        assert det_phys.schema == det_naive.schema, (
            f"Det schema [{shape}] {context}"
        )
        assert det_phys.rows == det_naive.rows, f"Det bag [{shape}] {context}"
        det_legacy = evaluate_det(plan, det, physical=False, **kwargs)
        assert det_legacy.rows == det_naive.rows, (
            f"Det legacy lowering [{shape}] {context}"
        )

    # 1b. AU engine: optimized (both strategies) == naive, physical ==
    # legacy lowering
    au_naive = evaluate_audb(plan, audb, EvalConfig(optimize=False, physical=False))
    au_shapes = [("naive", dict(optimize=False))]
    for join_order in ("greedy", "dp"):
        au_shapes.append((join_order, dict(optimize=True, join_order=join_order)))
    for shape, cfg_kwargs in au_shapes:
        au_phys = evaluate_audb(plan, audb, EvalConfig(**cfg_kwargs))
        assert au_phys.schema == au_naive.schema, f"AU schema [{shape}] {context}"
        assert dict(au_phys.tuples()) == dict(au_naive.tuples()), (
            f"AU annotations [{shape}] {context}"
        )
        au_legacy = evaluate_audb(
            plan, audb, EvalConfig(physical=False, **cfg_kwargs)
        )
        assert dict(au_legacy.tuples()) == dict(au_naive.tuples()), (
            f"AU legacy lowering [{shape}] {context}"
        )

    # 1c. vectorized backend == tuple backend on every plan shape, and —
    # with the partition threshold pinned to 0 so 4-way morsel
    # partitioning really happens — parallelism ∈ {1, 4} are identical
    old_threshold = exec_parallel.PARALLEL_MIN_ROWS
    exec_parallel.PARALLEL_MIN_ROWS = 0
    try:
        for shape, kwargs in det_shapes:
            for parallelism in (1, 4):
                det_vec = evaluate_det(
                    plan,
                    det,
                    backend="vectorized",
                    parallelism=parallelism,
                    **kwargs,
                )
                assert det_vec.schema == det_naive.schema, (
                    f"Det vec schema [{shape} x{parallelism}] {context}"
                )
                assert det_vec.rows == det_naive.rows, (
                    f"Det vec bag [{shape} x{parallelism}] {context}"
                )
        for shape, cfg_kwargs in au_shapes:
            for parallelism in (1, 4):
                au_vec = evaluate_audb(
                    plan,
                    audb,
                    EvalConfig(
                        backend="vectorized",
                        parallelism=parallelism,
                        **cfg_kwargs,
                    ),
                )
                assert au_vec.schema == au_naive.schema, (
                    f"AU vec schema [{shape} x{parallelism}] {context}"
                )
                assert dict(au_vec.tuples()) == dict(au_naive.tuples()), (
                    f"AU vec annotations [{shape} x{parallelism}] {context}"
                )
        # the tuple-at-a-time AU executor has no parallel regions; the
        # parallelism knob must be inert there even with thresholds at 0
        au_tuple_x4 = evaluate_audb(
            plan, audb, EvalConfig(backend="tuple", parallelism=4)
        )
        assert dict(au_tuple_x4.tuples()) == dict(au_naive.tuples()), (
            f"AU tuple x4 annotations {context}"
        )

        # 1d. float bit-stability: on a float-valued database SUM/AVG are
        # bit-identical across lowerings, backends, and parallelism
        fdb = _float_database(det)
        float_ref = evaluate_det(plan, fdb, optimize=False, physical=False)
        for label, result in (
            ("physical", evaluate_det(plan, fdb, optimize=False)),
            ("optimized", evaluate_det(plan, fdb)),
            ("vec", evaluate_det(plan, fdb, backend="vectorized")),
            (
                "vec x4",
                evaluate_det(plan, fdb, backend="vectorized", parallelism=4),
            ),
        ):
            assert result.schema == float_ref.schema, (
                f"float schema [{label}] {context}"
            )
            assert result.rows == float_ref.rows, (
                f"float bits differ [{label}] {context}"
            )
    finally:
        exec_parallel.PARALLEL_MIN_ROWS = old_threshold

    # 1e. prepared statements: a plan prepared once and re-executed with
    # changing bindings across interleaved writes matches fresh
    # unprepared evaluation bit-for-bit on both engines and backends
    _check_prepared_lane(rng, plan, _schema, _used, det, audb, context)

    # 1f. incremental view maintenance: a subscribed view interleaved
    # with random inserts/deletes/updates equals fresh re-execution
    # after every write, on both engines and both backends
    _check_ivm_lane(rng, plan, det, audb, context)

    # 1g. chunked storage is invisible: every chunk size (including the
    # degenerate one-row pages) matches chunk_size=0 bit-for-bit, across
    # a round of writes that exercises incremental store maintenance
    _check_chunk_lane(rng, plan, det, audb, context)

    # 1h. telemetry transparency on a slice of the seeds: tracing must
    # not change any result, and the span tree must be well formed
    if seed % 3 == 0:
        _check_telemetry_lane(plan, det, audb, context)

    # 2. the AU result must bound the certain (SGW) answer
    det_bag = det_naive.as_bag()
    sgw = au_naive.selected_guess_world()
    has_limit, containment_ok = _limit_shape(plan)
    if not containment_ok:
        return  # limited input consumed by an aggregate/difference: no claim
    if has_limit:
        # AU keeps everything under LIMIT; Det keeps a sub-bag of it
        assert _is_subbag(det_bag, sgw), f"LIMIT sub-bag {context}"
    else:
        assert sgw == det_bag, f"SGW mismatch {context}"
        assert bounds_world(au_naive, det_bag), f"AU does not bound Det {context}"

        # 3. compression (fixed and optimizer-placed budgets) stays sound,
        # on both backends
        for backend in ("tuple", "vectorized"):
            compressed = evaluate_audb(
                plan,
                audb,
                EvalConfig(
                    join_buckets=2,
                    aggregation_buckets=2,
                    adaptive_compression=True,
                    backend=backend,
                ),
            )
            assert bounds_world(compressed, det_bag), (
                f"compressed AU unsound [{backend}] {context}"
            )


# ----------------------------------------------------------------------
# pytest entry points (chunked so failures name a narrow seed range)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk", range((N_CASES + _CHUNK - 1) // _CHUNK))
def test_fuzz_differential(chunk):
    start = chunk * _CHUNK
    for i in range(start, min(start + _CHUNK, N_CASES)):
        check_case(BASE_SEED + i)


def test_known_regression_seeds():
    """Seeds that once exposed interesting shapes stay pinned forever."""
    for seed in (BASE_SEED, BASE_SEED + 17, BASE_SEED + 101):
        check_case(seed)


# ----------------------------------------------------------------------
# CI gate
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cases", type=int, default=200)
    parser.add_argument("--seed", type=int, default=BASE_SEED)
    args = parser.parse_args(argv)

    failures = 0
    for i in range(args.cases):
        seed = args.seed + i
        try:
            check_case(seed)
        except (AssertionError, analysis.PlanVerificationError) as exc:
            failures += 1
            print(f"MISMATCH at seed {seed}: {exc}")
    status = "FAIL" if failures else "ok"
    print(
        f"differential fuzzer: {args.cases} cases from seed {args.seed}: "
        f"{failures} mismatches [{status}]"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
