"""Unit tests for semirings and K^AU annotations (Section 3.1, Def. 11)."""

import pytest

from repro.core.semirings import (
    B,
    N,
    au_add,
    au_is_valid,
    au_multiply,
    au_one,
    au_zero,
)


class TestNaturalSemiring:
    def test_ops(self):
        assert N.add(2, 3) == 5
        assert N.multiply(2, 3) == 6
        assert N.zero == 0 and N.one == 1

    def test_monus_truncates(self):
        assert N.monus(5, 3) == 2
        assert N.monus(3, 5) == 0

    def test_natural_order(self):
        assert N.leq(2, 5)
        assert not N.leq(5, 2)

    def test_glb_lub(self):
        assert N.glb([2, 3, 5]) == 2
        assert N.lub([2, 3, 5]) == 5

    def test_delta(self):
        assert N.delta(0) == 0
        assert N.delta(7) == 1

    def test_sum(self):
        assert N.sum([1, 2, 3]) == 6
        assert N.sum([]) == 0


class TestBooleanSemiring:
    def test_ops(self):
        assert B.add(False, True) is True
        assert B.multiply(True, False) is False

    def test_monus(self):
        assert B.monus(True, False) is True
        assert B.monus(True, True) is False
        assert B.monus(False, True) is False

    def test_glb_lub_match_certain_possible(self):
        # Section 3.2.1: certain = glb = conjunction; possible = lub
        assert B.glb([True, True]) is True
        assert B.glb([True, False]) is False
        assert B.lub([False, True]) is True

    def test_order(self):
        assert B.leq(False, True)
        assert not B.leq(True, False)


class TestAUAnnotations:
    def test_validity(self):
        assert au_is_valid((0, 1, 2))
        assert au_is_valid((1, 1, 1))
        assert not au_is_valid((2, 1, 3))
        assert not au_is_valid((0, 2, 1))
        assert not au_is_valid((-1, 0, 0))

    def test_pointwise_ops_preserve_membership(self):
        a, b = (1, 2, 3), (0, 1, 5)
        assert au_add(a, b) == (1, 3, 8)
        assert au_multiply(a, b) == (0, 2, 15)
        assert au_is_valid(au_add(a, b))
        assert au_is_valid(au_multiply(a, b))

    def test_identities(self):
        k = (1, 2, 3)
        assert au_add(k, au_zero()) == k
        assert au_multiply(k, au_one()) == k
        assert au_multiply(k, au_zero()) == (0, 0, 0)


class TestSemiringLaws:
    """Spot-check the semiring axioms on sampled elements."""

    def test_natural_laws(self):
        samples = [0, 1, 2, 5]
        for a in samples:
            for b in samples:
                assert N.add(a, b) == N.add(b, a)
                assert N.multiply(a, b) == N.multiply(b, a)
                for c in samples:
                    assert N.multiply(a, N.add(b, c)) == N.add(
                        N.multiply(a, b), N.multiply(a, c)
                    )

    def test_boolean_laws(self):
        samples = [False, True]
        for a in samples:
            for b in samples:
                assert B.add(a, b) == B.add(b, a)
                for c in samples:
                    assert B.multiply(a, B.add(b, c)) == B.add(
                        B.multiply(a, b), B.multiply(a, c)
                    )
