"""Tests for the plan AST helpers, evaluator edges, and the demo CLI."""

import pytest

from repro.algebra.ast import (
    Aggregate,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Selection,
    TableRef,
    Union,
)
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_count, agg_sum
from repro.core.expressions import Const, RowView, Var
from repro.core.relation import AUDatabase, AURelation


class TestFluentBuilders:
    def test_chaining(self):
        plan = (
            TableRef("r")
            .where(Var("a") > Const(1))
            .select("a", (Var("a") * Const(2), "double"))
            .distinct()
            .order_by(["a"])
            .limit(10)
        )
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, OrderBy)

    def test_walk_and_table_names(self):
        plan = TableRef("r").join(TableRef("s"), Var("a") == Var("b")).union(
            TableRef("t")
        )
        assert sorted(plan.table_names()) == ["r", "s", "t"]
        assert len(list(plan.walk())) == 5

    def test_grouped_and_aggregate(self):
        g = TableRef("r").grouped(["a"], [agg_sum("b", "s")])
        assert isinstance(g, Aggregate)
        assert g.group_by == ("a",)
        a = TableRef("r").aggregate(agg_count("n"))
        assert a.group_by == ()

    def test_repr_smoke(self):
        plan = TableRef("r").where(Var("a") > Const(1)).minus(TableRef("s"))
        text = repr(plan)
        assert "σ" in text and "−" in text


class TestEvaluatorEdges:
    @pytest.fixture
    def db(self):
        rel = AURelation.from_certain_rows(["a"], [[3], [1], [2]])
        return AUDatabase({"r": rel})

    def test_order_by_is_noop(self, db):
        plan = TableRef("r").order_by(["a"], descending=True)
        out = evaluate_audb(plan, db)
        assert len(out) == 3

    def test_limit_keeps_everything_soundly(self, db):
        plan = TableRef("r").limit(1)
        out = evaluate_audb(plan, db)
        assert len(out) == 3  # LIMIT over uncertain data cannot drop tuples

    def test_unsupported_node(self, db):
        class Strange(Plan):
            pass

        with pytest.raises(TypeError):
            evaluate_audb(Strange(), db)

    def test_config_is_frozen(self):
        cfg = EvalConfig(join_buckets=4)
        with pytest.raises(Exception):
            cfg.join_buckets = 8


class TestRowView:
    def test_lookup(self):
        index = RowView.index_of(["a", "b"])
        view = RowView(index, (10, 20))
        assert view["a"] == 10
        assert view["b"] == 20
        assert "a" in view and "z" not in view
        assert view.get("z", 99) == 99
        assert set(view.keys()) == {"a", "b"}

    def test_missing_key_raises(self):
        view = RowView({"a": 0}, (1,))
        with pytest.raises(KeyError):
            view["zzz"]


class TestCli:
    def test_single_query(self, capsys):
        from repro.__main__ import main

        code = main(["SELECT size, avg(rate) AS rate FROM locales GROUP BY size"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected-guess world" in out
        assert "AU-DB" in out
        assert "metro" in out

    def test_syntax_error_reported(self, capsys):
        from repro.__main__ import main

        assert main(["SELECT FROM"]) == 0
        assert "syntax error" in capsys.readouterr().out

    def test_unknown_table_reported(self, capsys):
        from repro.__main__ import main

        assert main(["SELECT a FROM missing"]) == 0
        assert "error" in capsys.readouterr().out

    def test_explain_flag_prints_plan(self, capsys):
        from repro.__main__ import main

        code = main(["--explain", "SELECT locale FROM locales WHERE rate > 5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- logical plan --" in out
        assert "Table locales" in out
        assert "rows" in out
        # the lowered physical plan is printed too, with actual rows
        assert "-- physical plan (Det, backend=tuple) --" in out
        assert "Scan locales" in out
        assert "actual" in out

    def test_explain_vectorized_parallel(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "--explain",
                "--backend=vectorized",
                "--parallelism",
                "4",
                "SELECT size, count(*) AS n FROM locales GROUP BY size",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # adaptive morsel sizing: the tiny demo table needs only the
        # minimum 2 partitions at parallelism 4
        assert "Exchange merge=aggregate [2 partitions]" in out
        assert "HashAggregate" in out and "(partial)" in out
        assert "ParallelScan locales [2 morsels]" in out

    def test_no_optimize_flag_matches_optimized_results(self, capsys):
        from repro.__main__ import main

        main(["SELECT locale FROM locales WHERE rate > 5"])
        optimized = capsys.readouterr().out
        main(["--no-optimize", "SELECT locale FROM locales WHERE rate > 5"])
        plain = capsys.readouterr().out
        assert optimized == plain

    def test_join_order_flag_matches_default_results(self, capsys):
        from repro.__main__ import main

        sql = "SELECT locale FROM locales WHERE rate > 5"
        main([sql])
        default = capsys.readouterr().out
        main(["--join-order", "greedy", sql])
        greedy = capsys.readouterr().out
        assert default == greedy

    def test_explain_reports_estimated_vs_actual_rows(self, capsys):
        from repro.__main__ import main

        code = main(["--explain", "SELECT locale FROM locales WHERE rate > 5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated vs actual" in out
        assert "actual" in out
        assert "~" in out

    def test_explain_warns_about_unknown_tables(self, capsys):
        from repro.__main__ import main

        assert main(["--explain", "SELECT a FROM missing"]) == 0
        out = capsys.readouterr().out
        assert "no statistics for table 'missing'" in out
        assert "error" in out  # evaluation still fails afterwards
