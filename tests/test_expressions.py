"""Unit tests for scalar expressions: Definitions 3-10, Theorem 1."""

import itertools

import pytest

from repro.core.expressions import (
    Add,
    And,
    Const,
    Div,
    Eq,
    Geq,
    Gt,
    If,
    IsNull,
    Leq,
    Lt,
    Mul,
    Neg,
    Neq,
    Not,
    Or,
    Sub,
    Var,
    eval_incomplete,
)
from repro.core.ranges import RangeValue, between, certain


class TestDeterministicEval:
    def test_arithmetic(self):
        e = (Var("x") + Const(1)) * Var("y") - Const(2)
        assert e.eval({"x": 2, "y": 3}) == 7

    def test_division(self):
        assert (Var("x") / Const(4)).eval({"x": 2}) == 0.5

    def test_comparisons(self):
        assert (Var("x") <= Const(3)).eval({"x": 3})
        assert not (Var("x") < Const(3)).eval({"x": 3})
        assert (Var("x") >= Const(3)).eval({"x": 3})
        assert not (Var("x") > Const(3)).eval({"x": 3})
        assert (Var("x") == Const(3)).eval({"x": 3})
        assert (Var("x") != Const(4)).eval({"x": 3})

    def test_boolean_connectives(self):
        e = (Var("a") & ~Var("b")) | Const(False)
        assert e.eval({"a": True, "b": False})
        assert not e.eval({"a": True, "b": True})

    def test_if(self):
        e = If(Var("c"), Const("yes"), Const("no"))
        assert e.eval({"c": True}) == "yes"
        assert e.eval({"c": False}) == "no"

    def test_unbound_variable(self):
        with pytest.raises(KeyError):
            Var("missing").eval({})

    def test_variables_collected(self):
        e = If(Var("a") > Var("b"), Var("c"), Const(0))
        assert e.variables() == frozenset({"a", "b", "c"})


class TestIncompleteEval:
    def test_example_4(self):
        # paper Example 4: x + y over three bindings yields {5, 6}
        e = Var("x") + Var("y")
        worlds = [{"x": 1, "y": 4}, {"x": 2, "y": 4}, {"x": 1, "y": 5}]
        assert eval_incomplete(e, worlds) == {5, 6}


class TestRangeEval:
    def test_var_and_const(self):
        v = between(1, 2, 3)
        assert Var("x").eval_range({"x": v}) == v
        assert Const(7).eval_range({}) == certain(7)

    def test_addition(self):
        r = (Var("x") + Var("y")).eval_range(
            {"x": between(1, 2, 3), "y": between(10, 10, 20)}
        )
        assert (r.lb, r.sg, r.ub) == (11, 12, 23)

    def test_subtraction_flips_bounds(self):
        r = (Var("x") - Var("y")).eval_range(
            {"x": between(1, 2, 3), "y": between(10, 10, 20)}
        )
        assert (r.lb, r.sg, r.ub) == (1 - 20, -8, 3 - 10)

    def test_multiplication_negative_corners(self):
        r = (Var("x") * Var("y")).eval_range(
            {"x": between(-2, 1, 3), "y": between(-5, 2, 4)}
        )
        assert r.lb == min(-2 * -5, -2 * 4, 3 * -5, 3 * 4)
        assert r.ub == max(-2 * -5, -2 * 4, 3 * -5, 3 * 4)
        assert r.sg == 2

    def test_division_straddling_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            (Const(1) / Var("x")).eval_range({"x": between(-1, 1, 1)})

    def test_division(self):
        r = (Const(10) / Var("x")).eval_range({"x": between(2, 4, 5)})
        assert (r.lb, r.sg, r.ub) == (2.0, 2.5, 5.0)

    def test_leq_certain_true(self):
        r = (Var("x") <= Var("y")).eval_range(
            {"x": between(1, 2, 3), "y": between(3, 4, 5)}
        )
        assert (r.lb, r.sg, r.ub) == (True, True, True)

    def test_leq_uncertain(self):
        r = (Var("x") <= Var("y")).eval_range(
            {"x": between(1, 4, 5), "y": between(3, 3, 4)}
        )
        assert (r.lb, r.ub) == (False, True)

    def test_eq_semantics(self):
        # Example 9: [1/2/3] = [2/2/2] is [F/T/T]
        r = Eq(Var("a"), Const(2)).eval_range({"a": between(1, 2, 3)})
        assert (r.lb, r.sg, r.ub) == (False, True, True)

    def test_eq_certain(self):
        r = Eq(Var("a"), Const(2)).eval_range({"a": certain(2)})
        assert (r.lb, r.sg, r.ub) == (True, True, True)

    def test_eq_disjoint(self):
        r = Eq(Var("a"), Const(9)).eval_range({"a": between(1, 2, 3)})
        assert (r.lb, r.sg, r.ub) == (False, False, False)

    def test_not_flips(self):
        r = Not(Var("b")).eval_range({"b": RangeValue(False, False, True)})
        assert (r.lb, r.sg, r.ub) == (False, True, True)

    def test_if_uncertain_condition_takes_envelope(self):
        e = If(Var("c"), Const(10), Const(0))
        r = e.eval_range({"c": RangeValue(False, True, True)})
        assert (r.lb, r.sg, r.ub) == (0, 10, 10)

    def test_if_certain_condition(self):
        e = If(Var("c"), Var("x"), Const(0))
        r = e.eval_range({"c": certain(True), "x": between(1, 2, 3)})
        assert r == between(1, 2, 3)

    def test_neg(self):
        r = Neg(Var("x")).eval_range({"x": between(1, 2, 3)})
        assert (r.lb, r.sg, r.ub) == (-3, -2, -1)

    def test_is_null(self):
        r = IsNull(Var("x")).eval_range({"x": certain(None)})
        assert (r.lb, r.sg, r.ub) == (True, True, True)
        r2 = IsNull(Var("x")).eval_range({"x": RangeValue(None, None, 5)})
        assert (r2.lb, r2.ub) == (False, True)

    def test_plain_values_lifted(self):
        r = (Var("x") + Const(1)).eval_range({"x": 4})
        assert r == certain(5)


class TestTheorem1:
    """Range evaluation bounds incomplete evaluation (Theorem 1)."""

    def check(self, expression, bindings_per_var):
        names = sorted(bindings_per_var)
        worlds = [
            dict(zip(names, combo))
            for combo in itertools.product(*(bindings_per_var[n] for n in names))
        ]
        outcomes = eval_incomplete(expression, worlds)
        valuation = {
            n: RangeValue(min(vs), vs[0], max(vs)) for n, vs in bindings_per_var.items()
        }
        bound = expression.eval_range(valuation)
        for outcome in outcomes:
            assert bound.bounds_value(outcome), (
                f"{expression!r}: {outcome} outside {bound}"
            )

    def test_arithmetic_mix(self):
        self.check(
            (Var("x") + Var("y")) * Var("x") - Const(3),
            {"x": [1, -2, 3], "y": [0, 5]},
        )

    def test_conditionals(self):
        self.check(
            If(Var("x") > Var("y"), Var("x") * Const(2), Var("y") - Var("x")),
            {"x": [1, 4], "y": [2, 3]},
        )

    def test_boolean_formula(self):
        self.check(
            (Var("x") <= Var("y")) & ~(Var("y") == Const(3)),
            {"x": [1, 4], "y": [2, 3, 5]},
        )


class TestSymbolicGuards:
    def test_bool_raises(self):
        with pytest.raises(TypeError):
            bool(Var("x") == Const(1))

    def test_repr_roundtrips_reasonably(self):
        assert "AND" in repr(Var("a") & Var("b"))
        assert "IS NULL" in repr(IsNull(Var("a")))
