"""Telemetry: traces, EXPLAIN ANALYZE, metrics registry, event log.

Unit-tests the span model and its well-formedness checker, the Chrome
trace-event export, the metrics registry's three instrument kinds and
both expositions (Prometheus text, JSON dump), the slow-query /
misestimation log, the structured event log's sequence-number and
write-capture contracts, and EXPLAIN ANALYZE output on all four
physical executors ({tuple, vectorized} x {det, AU}).
"""

import json
import re

import pytest

from repro import telemetry as tm
from repro.algebra.evaluator import EvalConfig
from repro.core.ranges import between
from repro.core.relation import AUDatabase, AURelation
from repro.db.storage import DetDatabase, DetRelation
from repro.session import Connection
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    QueryTrace,
    clear_slow_log,
    configure_slow_log,
    estimation_error,
    set_tracing,
    slow_queries,
    tracing_enabled,
)


def make_det_db(n: int = 24) -> DetDatabase:
    orders = DetRelation(["okey", "cust", "price"])
    customers = DetRelation(["ckey", "segment"])
    for i in range(n):
        orders.add((i, i % 5, float(i) + 0.25), 1 + i % 2)
    for c in range(5):
        customers.add((c, f"seg{c % 2}"), 1)
    return DetDatabase({"orders": orders, "customers": customers})


def make_au_db(n: int = 16) -> AUDatabase:
    orders = AURelation(["okey", "cust", "price"])
    customers = AURelation(["ckey", "segment"])
    for i in range(n):
        price = (
            between(float(i), float(i) + 0.5, float(i) + 2.0)
            if i % 3 == 0
            else float(i) + 0.25
        )
        orders.add([i, i % 5, price], (1, 1, 1 + i % 2))
    for c in range(5):
        customers.add([c, f"seg{c % 2}"], (1, 1, 1))
    return AUDatabase({"orders": orders, "customers": customers})


SQL = (
    "SELECT segment, sum(price) AS total, count(*) AS n "
    "FROM orders JOIN customers ON cust = ckey "
    "WHERE price >= ? GROUP BY segment"
)


@pytest.fixture(autouse=True)
def _clean_slow_log():
    yield
    configure_slow_log()  # disarm
    clear_slow_log()


# ======================================================================
# span model
# ======================================================================
class TestSpans:
    def test_nesting_and_walk(self):
        tr = QueryTrace("q")
        outer = tr.begin("optimize")
        tr.mark("push_selection")
        inner = tr.begin("lower")
        tr.end(inner)
        tr.end(outer)
        tr.finish()
        names = [s.name for s in tr.spans()]
        assert names == ["q", "optimize", "push_selection", "lower"]
        assert tr.root.children[0].children[0].cat == "mark"
        assert tr.problems() == []
        assert tr.duration >= inner.duration >= 0.0

    def test_finish_closes_stragglers(self):
        tr = QueryTrace()
        tr.begin("execute")
        tr.begin("op")
        tr.finish()  # both spans still open
        assert tr.root.end is not None
        assert all(s.end is not None for s in tr.spans())

    def test_out_of_order_end_is_flagged(self):
        tr = QueryTrace()
        outer = tr.begin("outer")
        tr.begin("inner")
        tr.end(outer)  # inner never ended: mis-nested
        tr.finish()
        assert any("out of order" in p for p in tr.problems())

    def test_unfinished_and_negative_spans_are_problems(self):
        tr = QueryTrace()
        span = tr.begin("op")
        assert "trace not finished" in tr.problems()
        tr.end(span)
        span.end = span.start - 1.0  # corrupt: negative duration
        tr.finish()
        assert any("negative duration" in p for p in tr.problems())

    def test_operator_spans_accumulate_node_times(self):
        class Node:  # stand-in physical node
            pass

        node = Node()
        tr = QueryTrace()
        for _ in range(3):  # same node re-evaluated (morsels)
            span = tr.begin_op(node)
            tr.end_op(span, rows=7)
        tr.finish()
        seconds, loops = tr.node_times[id(node)]
        assert loops == 3 and seconds >= 0.0
        assert all(
            s.attrs.get("rows_out") == 7
            for s in tr.spans()
            if s.cat == "operator"
        )
        # alias mirrors the bound-copy entry onto the cached template
        template = Node()
        tr.alias_node(id(template), id(node))
        assert tr.node_times[id(template)] is tr.node_times[id(node)]

    def test_render_shows_tree_and_attrs(self):
        tr = QueryTrace("query")
        span = tr.begin("execute")
        tr.annotate(backend="tuple")
        tr.end(span)
        tr.finish()
        text = tr.render()
        assert re.search(r"^query\s+\d+\.\d{3}ms", text)
        assert re.search(r"^  execute\s+.*\[backend=tuple\]", text, re.M)


class TestTracingSwitch:
    def test_stage_and_annotate_are_noops_when_inactive(self):
        assert tm.current_trace() is None
        with tm.stage("parse") as span:
            assert span is None
        tm.annotate(rows=1)  # must not raise

    def test_start_trace_stacks(self):
        with tm.start_trace("outer") as outer:
            assert tm.current_trace() is outer
            with tm.start_trace("inner") as inner:
                assert tm.current_trace() is inner
            assert tm.current_trace() is outer
        assert tm.current_trace() is None
        assert outer.root.end is not None  # finished on exit

    def test_process_wide_switch_round_trips(self):
        old = set_tracing(True)
        try:
            assert tracing_enabled()
            with tm.traced(False):
                assert not tracing_enabled()
            assert tracing_enabled()
        finally:
            set_tracing(old)


class TestChromeTrace:
    def test_events_shape_and_file_export(self, tmp_path):
        with tm.start_trace("q") as tr:
            with tm.stage("execute"):
                tr.mark("result-memo-hit")
        events = tr.chrome_trace()
        by_name = {e["name"]: e for e in events}
        assert by_name["q"]["ph"] == "X" and by_name["q"]["ts"] == 0.0
        assert by_name["execute"]["dur"] >= 0.0
        assert by_name["result-memo-hit"]["ph"] == "i"
        path = tmp_path / "trace.json"
        tr.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 3


# ======================================================================
# metrics registry
# ======================================================================
class TestMetricsRegistry:
    def test_counter_get_or_create_and_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "help", engine="det")
        assert reg.counter("hits_total", engine="det") is c
        assert reg.counter("hits_total", engine="au") is not c
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5.0)
        g.dec(2.0)
        g.inc(1.0)
        assert g.value == 4.0

    def test_histogram_buckets_are_cumulative_in_text(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1] and h.count == 4
        text = reg.prometheus_text()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert "lat_seconds_sum 6.05" in text
        assert "lat_seconds_count 4" in text

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("q_total", "Queries run.", engine="det").inc(2)
        text = reg.prometheus_text()
        assert "# HELP q_total Queries run." in text
        assert "# TYPE q_total counter" in text
        assert 'q_total{engine="det"} 2' in text
        assert text.endswith("\n")
        assert MetricsRegistry().prometheus_text() == ""

    def test_dump_is_jsonable(self):
        reg = MetricsRegistry()
        reg.counter("c_total", engine="au").inc()
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        dump = json.loads(json.dumps(reg.dump()))
        assert dump["c_total"]["type"] == "counter"
        assert dump["c_total"]["series"][0]["labels"] == {"engine": "au"}
        assert dump["h_seconds"]["series"][0]["buckets"] == {
            "1.0": 1, "+Inf": 0,
        }

    def test_reset_drops_everything(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        reg.reset()
        assert reg.dump() == {}
        assert reg.counter("c_total").value == 0


# ======================================================================
# slow-query / misestimation log
# ======================================================================
class TestSlowQueryLog:
    def test_threshold_trips_and_snapshots_plan(self):
        configure_slow_log(threshold=0.0)  # everything is "slow"
        assert tm.timing_enabled()
        conn = Connection(make_det_db())
        conn.execute(SQL, [2.0])
        (record,) = slow_queries()
        assert record.reason == "slow"
        assert record.engine == "det" and record.sql == SQL
        assert record.seconds >= 0.0 and record.rows == 2
        assert "Scan orders" in record.plan

    def test_misestimation_arms_actuals_and_reports_factor(self):
        configure_slow_log(misestimation=1.0)  # any plan trips
        conn = Connection(make_det_db())
        conn.execute(SQL, [2.0])
        (record,) = slow_queries()
        assert "misestimate" in record.reason
        assert record.worst_factor >= 1.0
        assert "actual" in record.plan  # snapshot rendered with actuals

    def test_memo_hits_are_not_offered(self):
        configure_slow_log(threshold=0.0)
        conn = Connection(make_det_db())
        conn.execute(SQL, [2.0])
        conn.execute(SQL, [2.0])  # result-memo hit: no executor ran
        assert len(slow_queries()) == 1

    def test_disarmed_log_records_nothing(self):
        configure_slow_log(threshold=0.0)
        configure_slow_log()  # disarm
        assert not tm.timing_enabled()
        Connection(make_det_db()).execute(SQL, [2.0])
        assert slow_queries() == ()

    def test_capacity_bounds_the_ring(self):
        configure_slow_log(threshold=0.0, capacity=2)
        conn = Connection(make_det_db())
        for cutoff in (1.0, 2.0, 3.0):
            conn.execute(SQL, [cutoff])
        records = slow_queries()
        assert len(records) == 2  # oldest evicted

    def test_estimation_error_is_symmetric(self):
        assert estimation_error(10, 10) == 1.0
        assert estimation_error(0, 0) == 1.0  # smoothing keeps it finite
        assert estimation_error(1, 9) == estimation_error(9, 1) == 5.0


# ======================================================================
# structured event log
# ======================================================================
class TestEventLog:
    def test_query_and_write_events_with_monotone_seq(self):
        db = make_det_db()
        conn = Connection(db, events=True)
        conn.execute(SQL, [2.0])
        db["orders"].add((900, 0, 1.0), 2)
        db["orders"].delete((900, 0, 1.0), 1)
        conn.execute(SQL, [3.0])
        kinds = [e.kind for e in conn.events]
        assert kinds == [
            "query_begin", "query_end",
            "write", "write",
            "query_begin", "query_end",
        ]
        seqs = [e.seq for e in conn.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        begin, end = conn.events.events()[:2]
        assert begin.data["sql"] == SQL and begin.data["params"] == "[2.0]"
        assert end.data["rows"] == 2 and end.data["cached"] is False
        assert end.data["seconds"] >= 0.0
        insert, delete = conn.events.events()[2:4]
        assert insert.data == {
            "table": "orders", "row": (900, 0, 1.0),
            "sign": 1, "count": 2, "epoch": insert.data["epoch"],
        }
        assert delete.data["sign"] == -1

    def test_memo_hit_is_marked_cached(self):
        conn = Connection(make_det_db(), events=True)
        conn.execute(SQL, [2.0])
        conn.execute(SQL, [2.0])
        last = conn.events.events()[-1]
        assert last.kind == "query_end" and last.data["cached"] is True

    def test_epoch_advance_on_rebinding(self):
        db = make_det_db()
        conn = Connection(db, events=True)
        conn.execute(SQL, [2.0])
        fresh = DetRelation(["okey", "cust", "price"])
        fresh.add((0, 0, 9.0), 1)
        db["orders"] = fresh  # rebinding: epoch moves with no sinked write
        conn.execute(SQL, [2.0])
        kinds = [e.kind for e in conn.events]
        assert "epoch_advance" in kinds
        advance = next(e for e in conn.events if e.kind == "epoch_advance")
        assert advance.data["after"] > advance.data["before"]
        # sinks re-attached: writes to the new relation are captured
        fresh.add((1, 1, 3.0), 1)
        assert conn.events.events()[-1].kind == "write"

    def test_capacity_ring_and_close(self):
        db = make_det_db()
        conn = Connection(db, events=4)
        for cutoff in (1.0, 2.0, 3.0):
            conn.execute(SQL, [cutoff])
        assert len(conn.events) == 4  # ring kept the last four
        assert conn.events.last_seq == 6
        conn.events.close()
        db["orders"].add((901, 0, 1.0), 1)
        assert all(e.kind != "write" for e in conn.events)

    def test_au_connection_captures_annotated_writes(self):
        db = make_au_db()
        conn = Connection(db, events=True)
        db["orders"].add([90, 0, between(1.0, 2.0, 3.0)], (1, 1, 2))
        (event,) = conn.events.events()
        assert event.kind == "write" and event.data["count"] == (1, 1, 2)

    def test_standalone_eventlog_records(self):
        conn = Connection(make_det_db())
        assert conn.events is None  # default off
        log = EventLog(conn)
        log.query_begin(SQL, params="[1]")
        log.query_end(5)
        assert [e.kind for e in log] == ["query_begin", "query_end"]
        log.close()


# ======================================================================
# tracing through the session layer + EXPLAIN ANALYZE
# ======================================================================
ENGINES = [
    ("det", "tuple"), ("det", "vectorized"),
    ("au", "tuple"), ("au", "vectorized"),
]


def _connect(engine: str, backend: str, **kwargs) -> Connection:
    db = make_det_db() if engine == "det" else make_au_db()
    config = EvalConfig(backend=backend)
    return Connection(db, config=config, **kwargs)


class TestSessionTracing:
    @pytest.mark.parametrize("engine,backend", ENGINES)
    def test_trace_covers_stages_and_operators(self, engine, backend):
        conn = _connect(engine, backend, trace=True)
        conn.execute(SQL, [2.0])
        trace = conn.last_trace
        assert trace is not None and trace.problems() == []
        stages = [s.name for s in trace.root.children]
        assert stages[:4] == ["parse", "analyze", "optimize", "lower"]
        assert stages[-1] == "execute"
        ops = [s for s in trace.spans() if s.cat == "operator"]
        assert ops, "no operator spans recorded"
        assert any("Scan" in s.name for s in ops)
        assert any(s.attrs.get("rows_out") is not None for s in ops)
        # the optimizer's fired rewrites appear as marks under optimize
        optimize = trace.root.children[2]
        assert all(c.cat == "mark" for c in optimize.children)

    def test_trace_off_records_nothing(self):
        conn = _connect("det", "tuple")
        conn.execute(SQL, [2.0])
        assert conn.last_trace is None
        assert tm.current_trace() is None

    def test_connection_knob_overrides_process_default(self):
        old = set_tracing(True)
        try:
            on = _connect("det", "tuple")
            assert on.tracing
            off = _connect("det", "tuple", trace=False)
            assert not off.tracing
            off.execute(SQL, [2.0])
            assert off.last_trace is None
        finally:
            set_tracing(old)

    def test_hash_join_spans_carry_build_sizes(self):
        conn = _connect("det", "vectorized", trace=True)
        conn.execute(SQL, [2.0])
        joins = [
            s for s in conn.last_trace.spans()
            if s.cat == "operator" and "Join" in s.name
        ]
        assert joins and all("build_rows" in s.attrs for s in joins)


class TestExplainAnalyze:
    @pytest.mark.parametrize("engine,backend", ENGINES)
    def test_all_four_executors(self, engine, backend):
        conn = _connect(engine, backend)
        text = conn.explain_analyze(SQL, [2.0])
        assert text.startswith(
            f"EXPLAIN ANALYZE ({engine}, backend={backend})"
        )
        assert re.search(r"rows in \d+\.\d{3}ms", text)
        # every plan line carries estimate, actual, error factor, time
        plan_lines = [
            line for line in text.splitlines()
            if re.search(r"~\d+ rows", line)
        ]
        assert plan_lines, text
        for line in plan_lines:
            assert re.search(
                r"\(~\d+ rows, actual \d+(\.\d+)?, "
                r"err \d+\.\d{2}x, \d+\.\d{3}ms", line
            ), line
        assert re.search(r"^stages: .*execute \d+\.\d{3}ms", text, re.M)
        assert conn.last_trace is not None
        assert conn.last_trace.problems() == []

    def test_results_unchanged_by_explain_analyze(self):
        conn = _connect("det", "tuple")
        want = conn.execute(SQL, [2.0])
        conn.explain_analyze(SQL, [2.0])
        got = conn.execute(SQL, [3.0])  # session still healthy after
        assert tm.current_trace() is None
        assert want.schema == got.schema

    def test_cached_statement_reports_actuals(self):
        # explain_analyze on an already-hot statement must still show
        # actuals: the bound-copy times are mirrored onto the template
        conn = _connect("det", "vectorized")
        for _ in range(3):
            conn.execute(SQL, [2.0])
        text = conn.explain_analyze(SQL, [2.0])
        assert "actual" in text and "err" in text

    def test_legacy_lowering_falls_back_to_logical(self):
        conn = Connection(
            make_det_db(), config=EvalConfig(physical=False)
        )
        text = conn.explain_analyze(SQL, [2.0])
        assert "backend=legacy" in text
