"""Unit tests for the key-repair lens, workloads, and accuracy metrics."""

import random

import pytest

from repro.core.bounding import bounds_world
from repro.core.ranges import between, certain
from repro.core.relation import AURelation
from repro.db.storage import DetRelation
from repro.lenses import key_repair_lens, make_uncertain
from repro.accuracy import (
    audb_certain_keys,
    audb_possible_keys,
    bound_tightness,
    certain_tuple_recall,
    mean_numeric_range,
    possible_recall_by_id,
    possible_recall_by_value,
    range_overestimation_factor,
)
from repro.workloads.micro import micro_instance, wide_table
from repro.workloads.realworld import (
    make_crimes,
    make_healthcare,
    make_netflix,
    realworld_queries,
)


class TestKeyRepairLens:
    def make_dirty(self):
        rel = DetRelation(
            ["k", "v"],
            [
                ("a", 1),
                ("b", 2),
                ("b", 5),   # key violation: two candidates for b
                ("c", 3),
            ],
        )
        return rel

    def test_violations_detected(self):
        result = key_repair_lens(self.make_dirty(), ["k"], random.Random(0))
        assert result.n_violating_keys == 1
        assert result.avg_alternatives == 2.0

    def test_audb_ranges_cover_candidates(self):
        result = key_repair_lens(self.make_dirty(), ["k"], random.Random(0))
        b_tuple = next(
            t for t, _a in result.audb.tuples() if t[0].sg == "b"
        )
        assert b_tuple[1].lb == 2 and b_tuple[1].ub == 5

    def test_selected_world_is_a_repair(self):
        result = key_repair_lens(self.make_dirty(), ["k"], random.Random(0))
        keys = [t[0] for t in result.selected.rows]
        assert sorted(keys) == ["a", "b", "c"]

    def test_audb_bounds_every_repair(self):
        result = key_repair_lens(self.make_dirty(), ["k"], random.Random(0))
        for world in result.xdb.enumerate_worlds():
            assert bounds_world(result.audb, world.as_bag())

    def test_xdb_sg_matches_audb_sg(self):
        result = key_repair_lens(self.make_dirty(), ["k"], random.Random(7))
        assert (
            result.xdb.selected_world().as_bag()
            == result.audb.selected_guess_world()
        )

    def test_make_uncertain(self):
        v = make_uncertain(1, 2, 3)
        assert (v.lb, v.sg, v.ub) == (1, 2, 3)


class TestWorkloads:
    def test_wide_table_shape(self):
        t = wide_table(50, n_cols=10, seed=1)
        assert len(t.schema) == 10
        assert t.total_rows() == 50

    def test_micro_instance(self):
        det, xrel = micro_instance(100, n_cols=5, uncertainty=0.2, seed=2)
        assert len(xrel.xtuples) == 100
        assert xrel.uncertain_tuple_fraction() > 0

    def test_realworld_statistics(self):
        for maker in (make_netflix, make_crimes, make_healthcare):
            ds = maker()
            assert ds.relation.total_rows() > 0
        queries = realworld_queries()
        assert set(queries) == {"Qn1", "Qn2", "Qc1", "Qc2", "Qh1", "Qh2"}

    def test_netflix_violation_rate(self):
        ds = make_netflix(n_rows=3000, seed=1)
        lens = key_repair_lens(ds.relation, list(ds.key_columns))
        rate = lens.n_violating_keys / 3000
        assert 0.01 < rate < 0.03  # target 1.9%
        assert 1.5 < lens.avg_alternatives < 3.0  # target 2.1


class TestMetrics:
    def make_audb(self):
        r = AURelation(["k", "v"])
        r.add(["a", certain(1)], (1, 1, 1))
        r.add(["b", between(1, 2, 4)], (0, 1, 1))
        return r

    def test_certain_and_possible_keys(self):
        r = self.make_audb()
        assert audb_certain_keys(r, ["k"]) == {("a",)}
        assert audb_possible_keys(r, ["k"]) == {("a",), ("b",)}

    def test_certain_recall(self):
        true_certain = {("a", 1): 1, ("c", 9): 1}
        recall = certain_tuple_recall(
            audb_certain_keys(self.make_audb(), ["k"]), true_certain, [0]
        )
        assert recall == 0.5

    def test_possible_recall_by_id(self):
        r = self.make_audb()
        true_possible = {("a", 1): 1, ("b", 3): 1}
        assert possible_recall_by_id(r, true_possible, ["k"], [0]) == 1.0
        missing = {("z", 0): 1}
        assert possible_recall_by_id(r, missing, ["k"], [0]) == 0.0

    def test_possible_recall_by_value(self):
        r = self.make_audb()
        assert possible_recall_by_value(r, {("a", 1): 1, ("b", 3): 1}) == 1.0
        assert possible_recall_by_value(r, {("b", 9): 1}) == 0.0

    def test_bound_tightness(self):
        r = AURelation(["k", "v"])
        r.add(["a", between(0, 5, 10)], (1, 1, 1))
        exact = {("a",): [(0, 10)]}
        lo, hi = bound_tightness(r, exact, ["k"])
        assert lo == hi == 1.0
        loose = {("a",): [(4, 6)]}
        lo2, _hi2 = bound_tightness(r, loose, ["k"])
        assert lo2 == 5.0  # width 10 vs tight width 2

    def test_range_overestimation(self):
        r = AURelation(["k", "v"])
        r.add(["a", between(0, 5, 20)], (1, 1, 1))
        exact = {("a",): [(0, 10)]}
        factor = range_overestimation_factor(r, "v", ["k"], exact)
        assert factor == 2.0

    def test_mean_numeric_range(self):
        r = self.make_audb()
        assert mean_numeric_range(r, "v") == pytest.approx(1.5)


def test_repro_metrics_shim_warns_and_reexports():
    # the paper accuracy metrics moved to repro.accuracy; the old name
    # keeps working through a DeprecationWarning shim
    import importlib
    import sys
    import warnings

    sys.modules.pop("repro.metrics", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.metrics")
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    assert shim.certain_tuple_recall is certain_tuple_recall
