"""Incremental view maintenance: delta-fold properties, fallback
boundaries, and the write-epoch bookkeeping it leans on.

Hypothesis properties:

* folding a random interleaving of per-write deltas into maintained
  aggregate state (:func:`repro.exec.vectorized.fold_delta_groups`)
  finalizes **bit-identically** to the tuple engine's from-scratch
  aggregation of the surviving bag — inverting exact float sums, group
  births/deaths, and the min/max rescan fallback included;
* an AU union view maintained per write (``K^AU`` partials merged
  componentwise) equals fresh re-execution bit-for-bit under random
  valid add/delete interleavings;
* empty-delta writes are complete no-ops (no epoch advance, no
  maintenance work, cached result object preserved);
* ``unsubscribe`` stops maintenance and frees the registry entry.

Plus golden ``explain_delta`` snapshots locking where the refresh
boundary lands for the non-linear operators (``Difference`` /
``Distinct`` / ``TopK``), bit-identity of those views under writes, the
delete-aware statistics regression (delete-heavy streams must advance
the catalog epoch fast enough to re-trigger lowering), the incremental
columnar append, and the session layer's read-only-epoch result memo.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.ast import (
    Difference,
    Distinct,
    Limit,
    OrderBy,
    Projection,
    Selection,
    TableRef,
    Union,
)
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.algebra.optimizer import derive_delta
from repro.core.aggregation import (
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
)
from repro.core.expressions import Const, Gt, Leq, Var
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import _aggregate, evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.exec import AUColumnBatch
from repro.exec.vectorized import (
    DeltaFoldError,
    finalize_delta_groups,
    fold_delta_groups,
)
from repro.session import Connection

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

AGGREGATES = [
    agg_sum("v", "s"),
    agg_count("n"),
    agg_avg("v", "av"),
    agg_min("v", "mn"),
    agg_max("v", "mx"),
]


def _bits(rel) -> list:
    """A bit-exact, order-insensitive rendering of a relation's bag
    (``repr`` distinguishes 1 from 1.0 and -0.0 from 0.0)."""
    return sorted(repr(item) for item in rel.tuples())


# ----------------------------------------------------------------------
# delta-merge of semiring partials ≡ from-scratch (bag aggregates)
# ----------------------------------------------------------------------
# Per-example the value column is all-int or all-float: equal-valued
# mixed-type keys (0 vs 0.0) merge in the storage dict keeping the
# first-written tuple, so the delta stream and the stored bag can
# disagree about the value's type — a documented storage caveat
# (docs/ivm.md), not a fold property.  ``x + 0.0`` canonicalizes -0.0.
_INT_VALUES = st.integers(min_value=-50, max_value=50)
_FLOAT_VALUES = st.floats(
    min_value=-50, max_value=50, allow_nan=False, allow_infinity=False
).map(lambda x: x + 0.0)


@SETTINGS
@given(data=st.data())
def test_fold_delta_groups_matches_from_scratch(data):
    group_by = data.draw(st.sampled_from([["g"], []]))
    values = data.draw(st.sampled_from([_INT_VALUES, _FLOAT_VALUES]))
    state: dict = {}
    bag: dict = {}

    def refold():
        fresh: dict = {}
        rel = DetRelation(("g", "v"))
        rel.rows.update(bag)
        fold_delta_groups(fresh, rel, group_by, AGGREGATES, 1)
        return fresh

    n_ops = data.draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        deletable = [t for t, m in bag.items() if m > 0]
        if deletable and data.draw(st.booleans()):
            t = data.draw(st.sampled_from(deletable))
            m = data.draw(st.integers(min_value=1, max_value=bag[t]))
            sign = -1
        else:
            t = (
                data.draw(st.integers(min_value=0, max_value=2)),
                data.draw(values),
            )
            m = data.draw(st.integers(min_value=1, max_value=3))
            sign = 1
        delta = DetRelation(("g", "v"))
        delta.rows[t] = m
        bag[t] = bag.get(t, 0) + sign * m
        if bag[t] == 0:
            del bag[t]
        try:
            fold_delta_groups(state, delta, group_by, AGGREGATES, sign)
        except DeltaFoldError:
            # the runtime's reaction: an epoch-gated from-scratch refold
            state = refold()

    maintained = finalize_delta_groups(state, group_by, AGGREGATES)
    survivors = DetRelation(("g", "v"))
    survivors.rows.update(bag)
    reference = _aggregate(survivors, group_by, AGGREGATES)
    assert maintained.schema == reference.schema
    assert _bits(maintained) == _bits(reference)


# ----------------------------------------------------------------------
# K^AU partial merge ≡ from-scratch (AU linear views)
# ----------------------------------------------------------------------
def _au_annotations(draw):
    lb = draw(st.integers(min_value=0, max_value=1))
    sg = lb + draw(st.integers(min_value=0, max_value=1))
    return (lb, sg, sg + draw(st.integers(min_value=0, max_value=1)))


@SETTINGS
@given(data=st.data())
def test_au_union_view_maintained_equals_fresh(data):
    rel = AURelation(("a", "b"))
    db = AUDatabase({"r": rel})
    plan = Union(
        Selection(TableRef("r"), Gt(Var("b"), Const(1))),
        Selection(TableRef("r"), Leq(Var("a"), Const(2))),
    )
    conn = Connection(db, verify=True)
    view = conn.subscribe(plan)
    assert view.kind == "linear"
    for _ in range(data.draw(st.integers(min_value=1, max_value=8))):
        existing = sorted(rel.tuples(), key=repr)
        if existing and data.draw(st.booleans()):
            t, (lb, sg, ub) = data.draw(st.sampled_from(existing))
            dub = data.draw(st.integers(min_value=1, max_value=ub))
            dsg = data.draw(st.integers(min_value=0, max_value=min(sg, dub)))
            dlb = data.draw(st.integers(min_value=0, max_value=min(lb, dsg)))
            if not (lb - dlb <= sg - dsg <= ub - dub):
                dlb, dsg, dub = lb, sg, ub  # full removal is always valid
            rel.delete(t, (dlb, dsg, dub))
        else:
            t = (
                data.draw(st.integers(min_value=0, max_value=3)),
                data.draw(st.integers(min_value=0, max_value=3)),
            )
            ann = _au_annotations(data.draw)
            if ann[2] == 0:
                ann = (ann[0], ann[1], 1)
            rel.add(t, ann)
        got = view.result()
        want = evaluate_audb(plan, db, conn.config)
        assert got.schema == want.schema
        assert _bits(got) == _bits(want)
    assert view.full_refreshes == 0  # the linear fragment never refreshes


# ----------------------------------------------------------------------
# empty deltas, unsubscribe, registry
# ----------------------------------------------------------------------
def _small_det_db() -> DetDatabase:
    db = DetDatabase()
    db["r"] = DetRelation(
        ("a", "b"), {(0, 1): 1, (1, 2): 2, (2, 5): 1, (3, 7): 3}
    )
    db["s"] = DetRelation(("c", "d"), {(1, 10): 1, (2, 20): 1})
    return db


def test_empty_delta_writes_are_noops():
    db = _small_det_db()
    conn = Connection(db, verify=True)
    view = conn.subscribe(Selection(TableRef("r"), Gt(Var("b"), Const(1))))
    before = view.result()
    epoch = db.epoch
    db["r"].add((9, 9), 0)  # zero-multiplicity insert
    db["r"].delete((1, 2), 0)  # zero-multiplicity delete
    assert db.epoch == epoch  # no write happened as far as epochs go
    assert view.writes_applied == 0
    assert view.result() is before  # cached object survives untouched

    au = AUDatabase({"r": AURelation(("a",), {})})
    au["r"].add((1,), (1, 1, 1))
    au_conn = Connection(au, verify=True)
    au_view = au_conn.subscribe(TableRef("r"))
    au_before = au_view.result()
    au_epoch = au.epoch
    au["r"].delete((1,), (0, 0, 0))  # the K^AU zero
    assert au.epoch == au_epoch
    assert au_view.writes_applied == 0
    assert au_view.result() is au_before


def test_unsubscribe_stops_maintenance_and_frees_registry():
    db = _small_det_db()
    conn = Connection(db, verify=True)
    view = conn.subscribe(TableRef("r"))
    assert conn.subscriptions == (view,)
    assert conn.metrics.subscriptions == 1
    sinks_attached = len(db["r"]._delta_sinks)
    assert sinks_attached == 1
    conn.unsubscribe(view)
    assert view.closed
    assert conn.subscriptions == ()
    assert db["r"]._delta_sinks == ()  # write sinks detached
    db["r"].add((8, 8))
    assert view.writes_applied == 0
    with pytest.raises(RuntimeError):
        view.result()
    conn.unsubscribe(view)  # idempotent


# ----------------------------------------------------------------------
# non-linear fallback: refresh boundary goldens + bit-identity
# ----------------------------------------------------------------------
_NONLINEAR_PLANS = {
    "difference": Difference(
        Selection(TableRef("r"), Gt(Var("b"), Const(1))),
        Selection(TableRef("r"), Leq(Var("a"), Const(1))),
    ),
    "distinct": Distinct(Projection(TableRef("r"), ((Var("a"), "a"),))),
    "topk": Limit(OrderBy(TableRef("r"), ("b",), True), 2),
}


@pytest.mark.parametrize("name", sorted(_NONLINEAR_PLANS))
def test_nonlinear_views_bit_identical_under_writes(name):
    for backend in ("tuple", "vectorized"):
        db = _small_det_db()
        conn = Connection(db, verify=True, config=EvalConfig(backend=backend))
        plan = _NONLINEAR_PLANS[name]
        view = conn.subscribe(plan)
        assert view.kind == "refresh"
        writes = [
            ("add", (1, 9), 2),
            ("delete", (1, 2), 1),
            ("add", (4, 2), 1),
            ("delete", (3, 7), 3),
        ]
        for op, t, m in writes:
            getattr(db["r"], op)(t, m)
            got = view.result()
            want = evaluate_det(plan, db, backend=backend)
            assert got.schema == want.schema
            assert _bits(got) == _bits(want), (name, backend, op, t)
        assert view.writes_applied > 0  # segments really were maintained


GOLDEN_DELTA_PLANS = {
    "difference": """\
DeltaPlan[kind=refresh]
  Δ-maintain segment __ivm_seg0:
    FusedSelectProject σ[(b > 1)]  (~7 rows)
      Scan r [skip: b>1]  (~7 rows)
  Δ-maintain segment __ivm_seg1:
    FusedSelectProject σ[(a <= 1)]  (~2 rows)
      Scan r [skip: a<=1]  (~7 rows)
  refresh-boundary (re-executed per epoch):
    TupleFallback[difference] (exact tuple operator)  (~7 rows)
      Scan __ivm_seg0  (~7 rows)
      Scan __ivm_seg1  (~1 rows)""",
    "distinct": """\
DeltaPlan[kind=refresh]
  Δ-maintain segment __ivm_seg0:
    FusedSelectProject π[a]  (~7 rows)
      Scan r  (~7 rows)
  refresh-boundary (re-executed per epoch):
    HashDistinct δ  (~7 rows)
      Scan __ivm_seg0  (~7 rows)""",
    "topk": """\
DeltaPlan[kind=refresh]
  refresh-boundary (re-executed per epoch):
    TopK [b desc; n=2]  (~2 rows)
      Scan r  (~7 rows)""",
}


@pytest.mark.parametrize("name", sorted(_NONLINEAR_PLANS))
def test_explain_delta_refresh_boundary_goldens(name):
    db = _small_det_db()
    conn = Connection(db, verify=True)
    view = conn.subscribe(_NONLINEAR_PLANS[name])
    assert view.explain_delta() == GOLDEN_DELTA_PLANS[name]


def test_derive_delta_classification_and_trace():
    trace: list = []
    delta = derive_delta(
        Selection(TableRef("r"), Gt(Var("b"), Const(1))), trace=trace
    )
    assert delta.kind == "linear" and trace == ["delta-derivation"]
    # a self-joined table cannot absorb one-sided deltas
    from repro.algebra.ast import Join

    self_join = Join(TableRef("r"), TableRef("r"), Gt(Var("a"), Const(0)))
    delta = derive_delta(self_join)
    assert delta.kind == "linear"
    assert delta.segments[0].multi_ref == ("r",)


# ----------------------------------------------------------------------
# delete-aware statistics: epochs, accumulator, re-lowering
# ----------------------------------------------------------------------
def test_delete_epoch_counts_double():
    rel = DetRelation(("a",), {(1,): 2})
    e = rel.stats_epoch
    rel.add((2,))
    assert rel.stats_epoch == e + 1
    rel.delete((2,))
    assert rel.stats_epoch == e + 3  # a delete advances the epoch by 2


def test_delete_heavy_stream_triggers_relowering():
    """Regression: with deletes netted against inserts (or ignored), a
    delete-heavy stream looked idle to the staleness heuristic and the
    prepared plan was never re-lowered against shrunken statistics."""
    db = DetDatabase()
    db["r"] = DetRelation(("a", "b"), {(i, i % 3): 1 for i in range(8)})
    conn = Connection(db, staleness=6)
    prepared = conn.prepare(Selection(TableRef("r"), Gt(Var("a"), Const(2))))
    for i in range(3):
        db["r"].add((10 + i, 0))
    prepared.execute()
    assert conn.metrics.relowerings == 0  # 3 inserts: drift 3 <= 6
    for i in range(3):
        db["r"].delete((10 + i, 0))
    prepared.execute()
    # 3 deletes count double: drift 3 + 6 > 6 forces the re-lowering
    assert conn.metrics.relowerings == 1


def test_stats_accumulator_counts_deletes_separately():
    from repro.algebra.stats import harvest_column_stats

    db = DetDatabase()
    db["r"] = DetRelation(("a",), {(v,): 2 for v in (1, 2, 3, 4)})
    harvest_column_stats(db)  # attaches + builds the accumulator
    acc = db["r"]._stats_acc
    assert acc.total == 8 and acc.deletes == 0
    db["r"].delete((2,), 2)
    assert acc.total == 6
    assert acc.deletes == 2  # not netted against the insert stream
    assert not acc.rescan_needed  # interior value: decremented in place
    db["r"].delete((4,), 2)
    assert acc.rescan_needed  # max boundary touched: only a rescan knows


def test_harvest_after_deletes_matches_fresh_scan():
    from repro.algebra.stats import harvest_column_stats

    db = DetDatabase()
    db["r"] = DetRelation(("a",), {(float(i),): 1 for i in range(40)})
    harvest_column_stats(db)
    db["r"].delete((39.0,))  # extremum: forces the rescan path
    db["r"].delete((7.0,))
    after = harvest_column_stats(db)
    fresh_db = DetDatabase()
    fresh_db["r"] = DetRelation(
        ("a",), {(float(i),): 1 for i in range(39) if i != 7}
    )
    fresh = harvest_column_stats(fresh_db)
    got, want = after["r"]["a"], fresh["r"]["a"]
    assert (got.min_value, got.max_value, got.count) == (
        want.min_value,
        want.max_value,
        want.count,
    )


# ----------------------------------------------------------------------
# incremental columnar append (delta batch == appended column image)
# ----------------------------------------------------------------------
def test_au_columnar_cache_appends_in_place():
    rel = AURelation(("v",))
    rel.add((1,), (1, 1, 1))
    batch = AUColumnBatch.from_relation(rel)
    rel.add((2,), (0, 1, 2))  # new tuple: appended to the cached image
    assert AUColumnBatch.from_relation(rel) is batch
    assert dict(batch.to_relation().tuples()) == dict(rel.tuples())
    rel.add((1,), (0, 0, 1))  # annotation merge: invalidates
    batch2 = AUColumnBatch.from_relation(rel)
    assert batch2 is not batch
    rel.delete((2,), (0, 1, 2))  # deletes invalidate too
    batch3 = AUColumnBatch.from_relation(rel)
    assert batch3 is not batch2
    assert dict(batch3.to_relation().tuples()) == dict(rel.tuples())


# ----------------------------------------------------------------------
# session layer: read-only-epoch result memo
# ----------------------------------------------------------------------
def test_prepared_result_memo_on_read_only_epochs():
    db = _small_det_db()
    conn = Connection(db)
    prepared = conn.prepare(
        Selection(TableRef("r"), Gt(Var("b"), Const(0)))
    )
    r1 = prepared.execute()
    r2 = prepared.execute()
    assert r2 is r1  # no write in between: memoized object
    assert conn.metrics.result_cache_hits == 1
    assert conn.metrics.executions == 2
    db["r"].add((7, 7))
    r3 = prepared.execute()
    assert r3 is not r1  # epoch moved: fresh execution
    assert dict(r3.tuples())[(7, 7)] == 1
    assert conn.metrics.result_cache_hits == 1


def test_prepared_result_memo_is_per_binding():
    from repro.core.expressions import Parameter

    db = _small_det_db()
    conn = Connection(db)
    prepared = conn.prepare(
        Selection(TableRef("r"), Leq(Var("b"), Parameter(0)))
    )
    a1 = prepared.execute([2])
    b1 = prepared.execute([5])
    assert dict(a1.tuples()) != dict(b1.tuples())
    assert prepared.execute([2]) is a1
    assert prepared.execute([5]) is b1
    # the value's type is part of the key: 2 and 2.0 memoize separately
    assert prepared.execute([2.0]) is not a1
    assert conn.metrics.result_cache_hits == 2
