"""Column-statistics catalog and selectivity-estimation properties.

Hypothesis properties:

* every selectivity estimate lies in ``[0, 1]``, whatever the condition
  shape or the (possibly empty / inconsistent) catalog;
* the equi-join size estimate ``|R|·|S| / max(d_R, d_S)`` is *exact* on
  key–foreign-key data with uniform distinct counts;

plus unit tests for harvesting from both storage layers, the
scaled/capped derivations, and the compression-budget placement policy.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.ast import Join, Selection, TableRef
from repro.algebra.optimizer import Statistics, compression_hints, estimate
from repro.algebra.stats import (
    DEFAULT_SELECTIVITY,
    ColumnStats,
    Histogram,
    equi_join_selectivity,
    harvest_column_stats,
    predicate_selectivity,
)
from repro.core.compression import recommended_buckets
from repro.core.expressions import (
    And,
    Const,
    Eq,
    Geq,
    Gt,
    IsNull,
    Leq,
    Lt,
    Neq,
    Not,
    Or,
    Var,
)
from repro.core.ranges import RangeValue, between
from repro.core.relation import AUDatabase, AURelation
from repro.db.storage import DetDatabase, DetRelation

SETTINGS = settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

COLUMNS = ("a", "b", "c")


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def histograms(draw):
    lo = draw(st.integers(-50, 50))
    hi = lo + draw(st.integers(1, 100))
    n_buckets = draw(st.integers(1, 8))
    counts = tuple(draw(st.integers(0, 20)) for _ in range(n_buckets))
    return Histogram(float(lo), float(hi), counts)


@st.composite
def column_stats(draw):
    count = draw(st.integers(0, 500))
    distinct = draw(st.integers(0, max(count, 1)))
    lo = draw(st.integers(-50, 50))
    hi = lo + draw(st.integers(0, 100))
    return ColumnStats(
        count=count,
        distinct=distinct,
        min_value=lo,
        max_value=hi,
        null_fraction=draw(st.floats(0, 1)),
        uncertain_fraction=draw(st.floats(0, 1)),
        avg_width=draw(st.floats(0, 10)),
        histogram=draw(st.one_of(st.none(), histograms())),
    )


@st.composite
def catalogs(draw):
    # some columns deliberately missing from the catalog
    return {
        name: draw(column_stats())
        for name in COLUMNS
        if draw(st.booleans())
    }


@st.composite
def conditions(draw, depth=3):
    def atom():
        lhs = Var(draw(st.sampled_from(COLUMNS)))
        rhs = draw(
            st.one_of(
                st.integers(-100, 100).map(Const),
                st.sampled_from(COLUMNS).map(Var),
            )
        )
        op = draw(st.sampled_from([Eq, Neq, Leq, Lt, Geq, Gt]))
        return op(lhs, rhs)

    if depth <= 0 or draw(st.booleans()):
        return draw(
            st.one_of(
                st.just(atom()),
                st.sampled_from(COLUMNS).map(lambda c: IsNull(Var(c))),
                st.booleans().map(Const),
            )
        )
    combiner = draw(st.sampled_from(["and", "or", "not"]))
    left = draw(conditions(depth=depth - 1))
    if combiner == "not":
        return Not(left)
    right = draw(conditions(depth=depth - 1))
    return And(left, right) if combiner == "and" else Or(left, right)


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@SETTINGS
@given(cond=conditions(), catalog=catalogs())
def test_selectivity_always_in_unit_interval(cond, catalog):
    s = predicate_selectivity(cond, catalog)
    assert 0.0 <= s <= 1.0, f"{cond!r} -> {s}"
    assert math.isfinite(s)


@SETTINGS
@given(left=st.one_of(st.none(), column_stats()), right=st.one_of(st.none(), column_stats()))
def test_equi_join_selectivity_in_unit_interval(left, right):
    s = equi_join_selectivity(left, right)
    assert 0.0 < s <= 1.0


@SETTINGS
@given(
    n_keys=st.integers(1, 40),
    fanout=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_equi_join_estimate_exact_on_key_fk_data(n_keys, fanout, seed):
    """PK–FK join with uniform distinct counts: the estimate is the true
    join size, ``|S|`` — every foreign key matches exactly one key."""
    rng = random.Random(seed)
    pk = DetRelation(["k", "p"], [(i, i * 10) for i in range(n_keys)])
    fk_rows = [
        (rng.randrange(n_keys) if rng.random() < 0.5 else i % n_keys, i)
        for i in range(n_keys * fanout)
    ]
    # make the distinct counts uniform: ensure every key value appears
    fk_rows[:n_keys] = [(i, -i) for i in range(n_keys)]
    fk = DetRelation(["f", "q"], fk_rows)
    db = DetDatabase({"pk": pk, "fk": fk})
    stats = Statistics.from_database(db)

    plan = Join(TableRef("pk"), TableRef("fk"), Eq(Var("k"), Var("f")))
    est = estimate(plan, stats)
    from repro.db.engine import evaluate_det

    actual = evaluate_det(plan, db, optimize=False).total_rows()
    assert actual == fk.total_rows()
    assert est == pytest.approx(actual)


@SETTINGS
@given(catalog=catalogs(), cond=conditions())
def test_selection_estimate_never_exceeds_input(catalog, cond):
    stats = Statistics(
        {"t": 100},
        {"t": COLUMNS},
        {"t": catalog},
    )
    base = TableRef("t")
    assert estimate(Selection(base, cond), stats) <= estimate(base, stats)


@SETTINGS
@given(hist=histograms(), points=st.lists(st.integers(-200, 200), min_size=2, max_size=6))
def test_histogram_fraction_below_monotone_in_unit_interval(hist, points):
    """Cumulative fractions stay in [0, 1] and are monotone in the cut."""
    fracs = [hist.fraction_below(float(c)) for c in sorted(points)]
    assert all(0.0 <= f <= 1.0 for f in fracs)
    assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))
    assert hist.fraction_below(hist.lo - 1) == 0.0
    assert hist.fraction_below(hist.hi + 1) == 1.0


class TestHistogram:
    def test_harvested_for_numeric_columns_only(self):
        rel = DetRelation(["x", "s"], [(i, f"v{i}") for i in range(32)])
        cols = harvest_column_stats(DetDatabase({"t": rel}))["t"]
        assert cols["x"].histogram is not None
        assert cols["x"].histogram.total == 32
        assert cols["s"].histogram is None  # strings: min/max only

    def test_degenerate_single_point_column_has_no_histogram(self):
        rel = DetRelation(["x"], [(7,) for _ in range(5)])
        cols = harvest_column_stats(DetDatabase({"t": rel}))["t"]
        assert cols["x"].histogram is None  # hi == lo

    def test_skew_beats_min_max_interpolation(self):
        """90% of the mass at the low end: the histogram prices
        ``x <= 10`` near 0.9 where min/max interpolation says ~0.1."""
        rows = [(i % 10,) for i in range(90)] + [(100 + i,) for i in range(10)]
        rel = DetRelation(["x"], rows)
        cols = harvest_column_stats(DetDatabase({"t": rel}))["t"]
        with_hist = predicate_selectivity(Leq(Var("x"), Const(10)), cols)
        flat = {"x": ColumnStats(
            count=100, distinct=20, min_value=0, max_value=109
        )}
        without = predicate_selectivity(Leq(Var("x"), Const(10)), flat)
        true_fraction = 0.9
        # intra-bucket interpolation keeps some error, but the histogram
        # sees the skew (min/max interpolation estimates ~0.1)
        assert abs(with_hist - true_fraction) < 0.2
        assert abs(without - true_fraction) > 0.5  # uniformity is way off
        assert abs(with_hist - true_fraction) < abs(without - true_fraction) / 3

    def test_au_histogram_uses_sg_values(self):
        rel = AURelation(["v"])
        for i in range(20):
            rel.add([between(i - 1, i, i + 1)], (1, 1, 1))
        cols = harvest_column_stats(AUDatabase({"t": rel}))["t"]
        assert cols["v"].histogram is not None
        assert cols["v"].histogram.lo == 0 and cols["v"].histogram.hi == 19

    def test_fingerprint_sees_histogram_changes(self):
        base = ColumnStats(count=10, distinct=5, min_value=0, max_value=9)
        with_hist = ColumnStats(
            count=10, distinct=5, min_value=0, max_value=9,
            histogram=Histogram(0.0, 9.0, (5, 5)),
        )
        assert base.fingerprint() != with_hist.fingerprint()


# ----------------------------------------------------------------------
# harvesting
# ----------------------------------------------------------------------
class TestHarvest:
    def test_det_relation(self):
        rel = DetRelation(
            ["x", "y"], [(1, "a"), (2, "b"), (2, "b"), (None, "c")]
        )
        rel.add((2, "b"), 2)  # multiplicities weigh the fractions
        cols = harvest_column_stats(DetDatabase({"t": rel}))["t"]
        x = cols["x"]
        assert x.count == rel.total_rows() == 6
        assert x.distinct == 2
        assert x.min_value == 1 and x.max_value == 2
        assert x.null_fraction == pytest.approx(1 / 6)
        assert x.uncertain_fraction == 0.0
        assert cols["y"].distinct == 3

    def test_au_relation_summarizes_bounds(self):
        rel = AURelation(["v"])
        rel.add([between(0, 5, 9)], (1, 1, 1))
        rel.add([RangeValue(2, 2, 2)], (0, 1, 2))
        rel.add([between(-3, 1, 4)], (1, 1, 1))
        cols = harvest_column_stats(AUDatabase({"t": rel}))["t"]
        v = cols["v"]
        assert v.count == 3  # tuple count, matching Statistics cardinality
        assert v.distinct == 3  # distinct SG values 5, 2, 1
        assert v.min_value == -3  # smallest lower bound
        assert v.max_value == 9  # largest upper bound
        assert v.uncertain_fraction == pytest.approx(2 / 3)
        assert v.avg_width == pytest.approx((9 + 0 + 7) / 3)

    def test_statistics_carries_catalog_and_fingerprint_changes(self):
        rel = DetRelation(["x"], [(1,), (2,)])
        db = DetDatabase({"t": rel})
        s1 = Statistics.from_database(db)
        assert s1.columns["t"]["x"].distinct == 2
        rel.add((3,))
        s2 = Statistics.from_database(db)
        assert s1.fingerprint() != s2.fingerprint()
        bare = Statistics.from_database(db, column_stats=False)
        assert bare.columns == {}


class TestDerivations:
    def test_scaled_shrinks_but_keeps_a_survivor(self):
        col = ColumnStats(count=100, distinct=40, min_value=0, max_value=9)
        half = col.scaled(0.5)
        assert half.count == 50 and half.distinct == 20
        tiny = col.scaled(1e-9)
        assert tiny.distinct == 1  # never 0 while rows remain
        none = col.scaled(0.0)
        assert none.count == 0 and none.distinct == 0

    def test_capped(self):
        col = ColumnStats(count=100, distinct=40)
        assert col.capped(10).distinct == 10
        assert col.capped(1000).distinct == 40


# ----------------------------------------------------------------------
# compression-budget placement
# ----------------------------------------------------------------------
class TestCompressionHints:
    def test_recommended_buckets_policy(self):
        assert recommended_buckets(10, 10, None) is None
        # both inputs fit in the budget: compression is a no-op, skip it
        assert recommended_buckets(10, 20, 32) is None
        # a large input gets the full budget
        assert recommended_buckets(10, 2000, 32) == 32

    def test_adaptive_compression_runs_tight_joins_on_small_inputs(self):
        """With inputs far below the budget the hint skips the split/Cpr
        rewrite, so the adaptive run is bit-identical to the naive
        (tightest) join — while the forced-compression run is looser."""
        from repro.algebra.evaluator import EvalConfig, evaluate_audb

        left = AURelation(["a", "x"])
        right = AURelation(["b", "y"])
        for i in range(4):
            left.add([between(i, i, i + 2), i], (1, 1, 1))
            right.add([between(i, i + 1, i + 3), 10 * i], (0, 1, 2))
        db = AUDatabase({"l": left, "r": right})
        plan = Join(TableRef("l"), TableRef("r"), Eq(Var("a"), Var("b")))

        naive = evaluate_audb(plan, db, EvalConfig())
        adaptive = evaluate_audb(
            plan, db, EvalConfig(join_buckets=64, adaptive_compression=True)
        )
        forced = evaluate_audb(plan, db, EvalConfig(join_buckets=2))
        assert dict(adaptive.tuples()) == dict(naive.tuples())
        assert dict(forced.tuples()) != dict(naive.tuples())

    def test_hints_map_join_nodes(self):
        small = DetRelation(["a"], [(i,) for i in range(4)])
        big = DetRelation(["b"], [(i,) for i in range(500)])
        db = DetDatabase({"small": small, "big": big})
        stats = Statistics.from_database(db)
        join = Join(TableRef("small"), TableRef("big"), Eq(Var("a"), Var("b")))
        hints = compression_hints(join, stats, 32)
        assert hints == {id(join): 32}
        tiny = Join(TableRef("small"), TableRef("small"), Eq(Var("a"), Var("a")))
        assert compression_hints(tiny, stats, 32) == {id(tiny): None}
        assert compression_hints(join, stats, None) == {}


# ----------------------------------------------------------------------
# incremental maintenance (the session layer's epoch-friendly harvest)
# ----------------------------------------------------------------------
@st.composite
def det_add_sequences(draw):
    n_cols = draw(st.integers(1, 3))
    rows = draw(
        st.lists(
            st.tuples(
                st.lists(
                    st.one_of(
                        st.integers(-30, 30),
                        st.floats(
                            -30, 30, allow_nan=False, allow_infinity=False
                        ),
                        st.sampled_from(["a", "b", "c"]),
                        st.none(),
                    ),
                    min_size=n_cols,
                    max_size=n_cols,
                ),
                st.integers(1, 3),
            ),
            max_size=25,
        )
    )
    return n_cols, rows


@st.composite
def au_add_sequences(draw):
    n_cols = draw(st.integers(1, 2))

    @st.composite
    def au_value(draw_inner):
        lo = draw_inner(st.integers(-10, 10))
        mid = lo + draw_inner(st.integers(0, 3))
        hi = mid + draw_inner(st.integers(0, 3))
        if draw_inner(st.booleans()):
            return RangeValue(lo, mid, hi)
        return mid

    rows = draw(
        st.lists(
            st.tuples(
                st.lists(au_value(), min_size=n_cols, max_size=n_cols),
                st.tuples(
                    st.integers(0, 1), st.integers(0, 1), st.integers(1, 2)
                ),
            ),
            max_size=20,
        )
    )
    # make the annotations valid (lb <= sg <= ub)
    rows = [
        (vals, (lb, lb + sg, lb + sg + ub)) for vals, (lb, sg, ub) in rows
    ]
    return n_cols, rows


class TestIncrementalStats:
    """Incrementally maintained ColumnStats equal a from-scratch harvest
    after ANY add-sequence.

    The per-column distinct "sketch" is currently an exact set of domain
    keys, so the documented sketch tolerance for ``distinct`` is zero —
    these properties assert full equality (histograms included).  If a
    lossy sketch ever replaces the sets, relax the ``distinct`` check to
    the sketch's error bound and keep the rest exact.
    """

    @SETTINGS
    @given(det_add_sequences(), st.data())
    def test_det_incremental_equals_scratch(self, seq, data):
        n_cols, rows = seq
        schema = [f"c{i}" for i in range(n_cols)]
        live = DetRelation(schema)
        # interleave harvests with the adds so later adds really do
        # maintain a warm accumulator instead of starting cold
        harvest_points = {
            data.draw(st.integers(0, max(len(rows) - 1, 0)), label="warmup")
        }
        for i, (row, mult) in enumerate(rows):
            if i in harvest_points:
                harvest_column_stats(DetDatabase({"t": live}))
            live.add(tuple(row), mult)
        incremental = harvest_column_stats(DetDatabase({"t": live}))["t"]
        scratch_rel = DetRelation(schema, dict(live.rows))
        scratch = harvest_column_stats(DetDatabase({"t": scratch_rel}))["t"]
        assert incremental == scratch

    @SETTINGS
    @given(au_add_sequences(), st.data())
    def test_au_incremental_equals_scratch(self, seq, data):
        n_cols, rows = seq
        schema = [f"c{i}" for i in range(n_cols)]
        live = AURelation(schema)
        harvest_points = {
            data.draw(st.integers(0, max(len(rows) - 1, 0)), label="warmup")
        }
        for i, (row, ann) in enumerate(rows):
            if i in harvest_points:
                harvest_column_stats(AUDatabase({"t": live}))
            live.add(row, ann)
        incremental = harvest_column_stats(AUDatabase({"t": live}))["t"]
        scratch_rel = AURelation(schema)
        for t, ann in live.tuples():
            scratch_rel.add(t, ann)
        scratch = harvest_column_stats(AUDatabase({"t": scratch_rel}))["t"]
        assert incremental == scratch

    def test_histogram_out_of_range_write_rebuilds(self):
        rel = DetRelation(["x"], [(float(i),) for i in range(32)])
        first = harvest_column_stats(DetDatabase({"t": rel}))["t"]["x"]
        assert first.histogram is not None
        assert first.histogram.hi == 31.0
        rel.add((1000.0,))  # outside the built range: dirties, no rescan
        second = harvest_column_stats(DetDatabase({"t": rel}))["t"]["x"]
        assert second.histogram.hi == 1000.0
        assert second.histogram.total == 33
        scratch = harvest_column_stats(
            DetDatabase({"t": DetRelation(["x"], dict(rel.rows))})
        )["t"]["x"]
        assert second == scratch

    def test_in_range_write_bumps_bucket_counters_in_place(self):
        rel = DetRelation(["x"], [(float(i),) for i in range(32)])
        harvest_column_stats(DetDatabase({"t": rel}))
        acc = rel._stats_acc
        assert acc is not None and not acc.hist_dirty[0]
        rel.add((15.5,), 3)
        assert not acc.hist_dirty[0]  # maintained in place, not rebuilt
        stats = harvest_column_stats(DetDatabase({"t": rel}))["t"]["x"]
        scratch = harvest_column_stats(
            DetDatabase({"t": DetRelation(["x"], dict(rel.rows))})
        )["t"]["x"]
        assert stats == scratch

    def test_epoch_bumps_on_every_write_path(self):
        rel = DetRelation(["x"], [(1,)])
        db = DetDatabase({"t": rel})
        e0 = db.epoch
        rel.add((2,))
        assert db.epoch > e0
        e1 = db.epoch
        db["t"] = DetRelation(["x"], [(9,)])  # rebinding also bumps
        assert db.epoch > e1
        au = AURelation(["x"])
        audb = AUDatabase({"t": au})
        a0 = audb.epoch
        au.add([1], (1, 1, 1))
        assert audb.epoch > a0
        a1 = audb.epoch
        au.add([1], (0, 0, 1))  # annotation merge still counts as a write
        assert audb.epoch > a1
        a2 = audb.epoch
        audb["u"] = AURelation(["y"])
        assert audb.epoch > a2

    def test_sample_cap_bounds_retention_and_rescans_on_range_growth(
        self, monkeypatch
    ):
        from repro.algebra import stats as stats_mod

        monkeypatch.setattr(stats_mod, "HISTOGRAM_SAMPLE_CAP", 8)
        rel = DetRelation(["x"], [(float(i),) for i in range(20)])
        harvest_column_stats(DetDatabase({"t": rel}))
        acc = rel._stats_acc
        assert acc.samples[0] is None  # dropped past the cap
        rel.add((10.5,))  # in range: bucket counters maintained exactly
        mid = harvest_column_stats(DetDatabase({"t": rel}))["t"]["x"]
        scratch = harvest_column_stats(
            DetDatabase({"t": DetRelation(["x"], dict(rel.rows))})
        )["t"]["x"]
        assert mid == scratch
        assert rel._stats_acc is acc  # no rescan was needed
        rel.add((500.0,))  # out of range, no samples retained
        assert acc.rescan_needed
        out = harvest_column_stats(DetDatabase({"t": rel}))["t"]["x"]
        scratch2 = harvest_column_stats(
            DetDatabase({"t": DetRelation(["x"], dict(rel.rows))})
        )["t"]["x"]
        assert out == scratch2
        assert rel._stats_acc is not acc  # rebuilt by a full rescan
