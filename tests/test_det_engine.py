"""Unit tests for the deterministic bag engine (the Det/SGQP substrate)."""

import math

import pytest

from repro.algebra.ast import TableRef, Union, Difference
from repro.core.aggregation import agg_avg, agg_count, agg_max, agg_min, agg_sum
from repro.core.expressions import Const, Var
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation


@pytest.fixture
def db():
    emp = DetRelation(
        ["name", "dept", "salary"],
        [
            ("ann", "eng", 100),
            ("bob", "eng", 80),
            ("cat", "ops", 60),
            ("dan", "ops", 60),
        ],
    )
    dept = DetRelation(["dept", "city"], [("eng", "nyc"), ("ops", "sfo")])
    return DetDatabase({"emp": emp, "dept": dept})


class TestBagSemantics:
    def test_duplicates_accumulate(self):
        r = DetRelation(["a"])
        r.add((1,), 2)
        r.add((1,), 3)
        assert r.multiplicity((1,)) == 5
        assert r.total_rows() == 5
        assert len(r) == 1

    def test_negative_multiplicity_rejected(self):
        r = DetRelation(["a"])
        with pytest.raises(ValueError):
            r.add((1,), -1)

    def test_arity_check(self):
        r = DetRelation(["a", "b"])
        with pytest.raises(ValueError):
            r.add((1,))


class TestOperators:
    def test_selection(self, db):
        plan = TableRef("emp").where(Var("salary") > Const(70))
        out = evaluate_det(plan, db)
        assert set(out.rows) == {("ann", "eng", 100), ("bob", "eng", 80)}

    def test_projection_sums_multiplicities(self, db):
        plan = TableRef("emp").select("dept")
        out = evaluate_det(plan, db)
        assert out.rows == {("eng",): 2, ("ops",): 2}

    def test_hash_join(self, db):
        plan = TableRef("emp").join(TableRef("dept"), Var("dept") == Var("dept"))
        # self-referencing condition is ambiguous; use rename
        dept = TableRef("dept").rename({"dept": "d2"})
        plan = TableRef("emp").join(dept, Var("dept") == Var("d2"))
        out = evaluate_det(plan, db)
        assert out.total_rows() == 4
        assert ("ann", "eng", 100, "eng", "nyc") in out.rows

    def test_theta_join(self, db):
        dept = TableRef("dept").rename({"dept": "d2"})
        plan = TableRef("emp").join(dept, Var("salary") > Const(90))
        out = evaluate_det(plan, db)
        assert out.total_rows() == 2  # ann x both cities

    def test_union_and_difference(self, db):
        r = TableRef("emp").select("dept")
        out = evaluate_det(Union(r, r), db)
        assert out.rows == {("eng",): 4, ("ops",): 4}
        out2 = evaluate_det(Difference(Union(r, r), r), db)
        assert out2.rows == {("eng",): 2, ("ops",): 2}

    def test_distinct(self, db):
        plan = TableRef("emp").select("dept").distinct()
        out = evaluate_det(plan, db)
        assert out.rows == {("eng",): 1, ("ops",): 1}

    def test_limit_is_deterministic(self, db):
        plan = TableRef("emp").limit(2)
        out = evaluate_det(plan, db)
        assert out.total_rows() == 2


class TestAggregation:
    def test_group_by(self, db):
        plan = TableRef("emp").grouped(
            ["dept"],
            [
                agg_sum("salary", "total"),
                agg_count("n"),
                agg_min("salary", "lo"),
                agg_max("salary", "hi"),
                agg_avg("salary", "mean"),
            ],
        )
        out = evaluate_det(plan, db)
        assert out.rows[("eng", 180, 2, 80, 100, 90.0)] == 1
        assert out.rows[("ops", 120, 2, 60, 60, 60.0)] == 1

    def test_multiplicity_weighting(self):
        r = DetRelation(["g", "v"])
        r.add(("a", 10), 3)
        db = DetDatabase({"r": r})
        plan = TableRef("r").grouped(
            ["g"], [agg_sum("v", "s"), agg_count("n"), agg_avg("v", "m")]
        )
        out = evaluate_det(plan, db)
        assert out.rows == {("a", 30, 3, 10.0): 1}

    def test_aggregate_no_group_empty_input(self):
        db = DetDatabase({"r": DetRelation(["v"])})
        plan = TableRef("r").aggregate(agg_sum("v", "s"), agg_count("n"))
        out = evaluate_det(plan, db)
        assert out.rows == {(0, 0): 1}

    def test_having(self, db):
        from repro.algebra.ast import Aggregate

        plan = Aggregate(
            TableRef("emp"),
            ["dept"],
            [agg_sum("salary", "total")],
            having=Var("total") > Const(150),
        )
        out = evaluate_det(plan, db)
        assert set(out.rows) == {("eng", 180)}

    def test_expression_aggregate(self, db):
        plan = TableRef("emp").grouped(
            ["dept"], [agg_sum(Var("salary") * Const(2), "double")]
        )
        out = evaluate_det(plan, db)
        assert ("eng", 360) in out.rows
