"""Unit tests for the deterministic bag engine (the Det/SGQP substrate)."""

import math

import pytest

from repro.algebra.ast import TableRef, TopK, Union, Difference
from repro.core.aggregation import agg_avg, agg_count, agg_max, agg_min, agg_sum
from repro.core.expressions import Const, Var
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation


@pytest.fixture
def db():
    emp = DetRelation(
        ["name", "dept", "salary"],
        [
            ("ann", "eng", 100),
            ("bob", "eng", 80),
            ("cat", "ops", 60),
            ("dan", "ops", 60),
        ],
    )
    dept = DetRelation(["dept", "city"], [("eng", "nyc"), ("ops", "sfo")])
    return DetDatabase({"emp": emp, "dept": dept})


class TestBagSemantics:
    def test_duplicates_accumulate(self):
        r = DetRelation(["a"])
        r.add((1,), 2)
        r.add((1,), 3)
        assert r.multiplicity((1,)) == 5
        assert r.total_rows() == 5
        assert len(r) == 1

    def test_negative_multiplicity_rejected(self):
        r = DetRelation(["a"])
        with pytest.raises(ValueError):
            r.add((1,), -1)

    def test_arity_check(self):
        r = DetRelation(["a", "b"])
        with pytest.raises(ValueError):
            r.add((1,))


class TestOperators:
    def test_selection(self, db):
        plan = TableRef("emp").where(Var("salary") > Const(70))
        out = evaluate_det(plan, db)
        assert set(out.rows) == {("ann", "eng", 100), ("bob", "eng", 80)}

    def test_projection_sums_multiplicities(self, db):
        plan = TableRef("emp").select("dept")
        out = evaluate_det(plan, db)
        assert out.rows == {("eng",): 2, ("ops",): 2}

    def test_hash_join(self, db):
        plan = TableRef("emp").join(TableRef("dept"), Var("dept") == Var("dept"))
        # self-referencing condition is ambiguous; use rename
        dept = TableRef("dept").rename({"dept": "d2"})
        plan = TableRef("emp").join(dept, Var("dept") == Var("d2"))
        out = evaluate_det(plan, db)
        assert out.total_rows() == 4
        assert ("ann", "eng", 100, "eng", "nyc") in out.rows

    def test_theta_join(self, db):
        dept = TableRef("dept").rename({"dept": "d2"})
        plan = TableRef("emp").join(dept, Var("salary") > Const(90))
        out = evaluate_det(plan, db)
        assert out.total_rows() == 2  # ann x both cities

    def test_union_and_difference(self, db):
        r = TableRef("emp").select("dept")
        out = evaluate_det(Union(r, r), db)
        assert out.rows == {("eng",): 4, ("ops",): 4}
        out2 = evaluate_det(Difference(Union(r, r), r), db)
        assert out2.rows == {("eng",): 2, ("ops",): 2}

    def test_distinct(self, db):
        plan = TableRef("emp").select("dept").distinct()
        out = evaluate_det(plan, db)
        assert out.rows == {("eng",): 1, ("ops",): 1}

    def test_limit_is_deterministic(self, db):
        plan = TableRef("emp").limit(2)
        out = evaluate_det(plan, db)
        assert out.total_rows() == 2

    def test_union_rejects_arity_mismatch(self, db):
        plan = Union(TableRef("emp"), TableRef("dept"))
        with pytest.raises(ValueError, match="union-compatible"):
            evaluate_det(plan, db)

    def test_difference_rejects_arity_mismatch(self, db):
        plan = Difference(TableRef("emp"), TableRef("dept"))
        with pytest.raises(ValueError, match="union-compatible"):
            evaluate_det(plan, db)


class TestOrderByLimit:
    """Regression: ORDER BY … LIMIT k must return the top-k under the
    requested sort keys, not the top-k of an arbitrary tuple order."""

    @pytest.mark.parametrize("optimize", [True, False], ids=["opt", "noopt"])
    def test_order_by_desc_limit_returns_top_k(self, db, optimize):
        plan = TableRef("emp").order_by(["salary"], descending=True).limit(2)
        out = evaluate_det(plan, db, optimize=optimize)
        assert set(out.rows) == {("ann", "eng", 100), ("bob", "eng", 80)}

    @pytest.mark.parametrize("optimize", [True, False], ids=["opt", "noopt"])
    def test_order_by_asc_limit_returns_bottom_k(self, db, optimize):
        plan = TableRef("emp").order_by(["salary"]).limit(2)
        out = evaluate_det(plan, db, optimize=optimize)
        assert all(t[2] == 60 for t in out.rows)
        assert out.total_rows() == 2

    def test_sql_order_by_limit(self, db):
        from repro.sql.parser import parse_sql

        plan = parse_sql("SELECT name FROM emp ORDER BY salary DESC LIMIT 1")
        out = evaluate_det(plan, db)
        assert set(out.rows) == {("ann",)}

    def test_limit_respects_multiplicities(self):
        r = DetRelation(["v"])
        r.add((5,), 3)
        r.add((9,), 1)
        db = DetDatabase({"r": r})
        plan = TableRef("r").order_by(["v"], descending=True).limit(3)
        out = evaluate_det(plan, db)
        assert out.rows == {(9,): 1, (5,): 2}

    def test_topk_node_directly(self, db):
        plan = TopK(TableRef("emp"), ["salary"], True, 1)
        out = evaluate_det(plan, db, optimize=False)
        assert set(out.rows) == {("ann", "eng", 100)}

    def test_order_by_alias_with_hidden_key(self, db):
        """ORDER BY mixing a select-list alias with a projected-away
        column must resolve the alias before sorting below the
        projection."""
        from repro.sql.parser import parse_sql

        plan = parse_sql("SELECT salary AS s2, name FROM emp ORDER BY s2, dept LIMIT 2")
        out = evaluate_det(plan, db)
        assert out.total_rows() == 2
        assert all(len(t) == 2 for t in out.rows)

    def test_order_by_alias_shadowing_base_column(self):
        """SQL resolves ORDER BY names against the select list first: an
        alias shadowing a base column sorts by the aliased expression."""
        from repro.sql.parser import parse_sql

        emp = DetRelation(["name", "dept", "salary"], [("ann", "z", 1), ("bob", "a", 100)])
        db = DetDatabase({"emp": emp})
        plan = parse_sql("SELECT dept AS salary FROM emp ORDER BY salary, name LIMIT 1")
        out = evaluate_det(plan, db)
        assert dict(out.rows) == {("a",): 1}

    def test_order_by_computed_alias_with_hidden_key(self):
        """A computed select alias may appear in ORDER BY together with a
        projected-away base column."""
        from repro.sql.parser import parse_sql

        emp = DetRelation(["name", "dept", "salary"], [("ann", "z", 1), ("bob", "a", 100)])
        db = DetDatabase({"emp": emp})
        plan = parse_sql("SELECT salary * 2 AS d FROM emp ORDER BY dept, d LIMIT 1")
        out = evaluate_det(plan, db)
        assert dict(out.rows) == {(200,): 1}

    def test_distinct_with_hidden_order_key_is_rejected(self):
        """Real SQL: for SELECT DISTINCT, ORDER BY expressions must appear
        in the select list."""
        from repro.sql.parser import SqlSyntaxError, parse_sql

        with pytest.raises(SqlSyntaxError, match="SELECT DISTINCT"):
            parse_sql("SELECT DISTINCT name FROM emp ORDER BY salary LIMIT 1")


class TestAggregation:
    def test_group_by(self, db):
        plan = TableRef("emp").grouped(
            ["dept"],
            [
                agg_sum("salary", "total"),
                agg_count("n"),
                agg_min("salary", "lo"),
                agg_max("salary", "hi"),
                agg_avg("salary", "mean"),
            ],
        )
        out = evaluate_det(plan, db)
        assert out.rows[("eng", 180, 2, 80, 100, 90.0)] == 1
        assert out.rows[("ops", 120, 2, 60, 60, 60.0)] == 1

    def test_multiplicity_weighting(self):
        r = DetRelation(["g", "v"])
        r.add(("a", 10), 3)
        db = DetDatabase({"r": r})
        plan = TableRef("r").grouped(
            ["g"], [agg_sum("v", "s"), agg_count("n"), agg_avg("v", "m")]
        )
        out = evaluate_det(plan, db)
        assert out.rows == {("a", 30, 3, 10.0): 1}

    def test_aggregate_no_group_empty_input(self):
        db = DetDatabase({"r": DetRelation(["v"])})
        plan = TableRef("r").aggregate(agg_sum("v", "s"), agg_count("n"))
        out = evaluate_det(plan, db)
        assert out.rows == {(0, 0): 1}

    def test_empty_min_max_is_null_not_inf(self):
        """Regression: SQL returns NULL for MIN/MAX over empty input."""
        db = DetDatabase({"r": DetRelation(["v"])})
        plan = TableRef("r").aggregate(agg_min("v", "lo"), agg_max("v", "hi"))
        out = evaluate_det(plan, db)
        assert out.rows == {(None, None): 1}
        assert not any(
            isinstance(x, float) and math.isinf(x) for t in out.rows for x in t
        )

    def test_empty_min_max_is_null_on_au_engine(self):
        from repro.algebra.evaluator import evaluate_audb
        from repro.core.ranges import certain
        from repro.core.relation import AUDatabase, AURelation

        audb = AUDatabase({"r": AURelation(["v"])})
        plan = TableRef("r").aggregate(agg_min("v", "lo"), agg_max("v", "hi"))
        out = evaluate_audb(plan, audb)
        ((t, ann),) = list(out.tuples())
        assert ann == (1, 1, 1)
        assert t[0] == certain(None)
        assert t[1] == certain(None)

    def test_having(self, db):
        from repro.algebra.ast import Aggregate

        plan = Aggregate(
            TableRef("emp"),
            ["dept"],
            [agg_sum("salary", "total")],
            having=Var("total") > Const(150),
        )
        out = evaluate_det(plan, db)
        assert set(out.rows) == {("eng", 180)}

    def test_expression_aggregate(self, db):
        plan = TableRef("emp").grouped(
            ["dept"], [agg_sum(Var("salary") * Const(2), "double")]
        )
        out = evaluate_det(plan, db)
        assert ("eng", 360) in out.rows
