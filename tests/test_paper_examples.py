"""Golden tests replaying the paper's running examples.

Covers Example 1/2 (the COVID tracking scenario of Figure 1), Example 3
(UA-DB bounds), Figure 5 / Example 7 (SGW extraction), Example 8 (tuple
matchings), Example 9 (selection), Example 10 (aggregation lower bound),
and the Figure 8/9 join compression walkthrough.
"""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_avg
from repro.core.bounding import bounds_world
from repro.core.ranges import between, certain
from repro.core.relation import AUDatabase, AURelation
from repro.sql.parser import parse_sql


@pytest.fixture
def locales():
    """Figure 1c: the COVID example AU-DB (rates as percentages)."""
    r = AURelation(["locale", "rate", "size"])
    r.add(["Los Angeles", between(3.0, 3.0, 4.0), "metro"], (1, 1, 1))
    r.add(["Austin", 18.0, between("city", "city", "metro")], (1, 1, 1))
    r.add(["Houston", 14.0, "metro"], (1, 1, 1))
    # note: the repo's universal order on strings is lexicographic, so the
    # size interval covering {town, city} is written [city .. town]
    r.add(["Berlin", between(1.0, 3.0, 3.0), between("city", "town", "town")], (1, 1, 1))
    r.add(["Sacramento", 1.0, between("city", "town", "village")], (1, 1, 1))
    r.add(["Springfield", between(0.0, 5.0, 100.0), "town"], (1, 1, 1))
    return r


class TestCovidExample:
    def test_sql_query_runs(self, locales):
        plan = parse_sql(
            "SELECT size, avg(rate) AS rate FROM locales GROUP BY size"
        )
        out = evaluate_audb(plan, AUDatabase({"locales": locales}))
        by_sg = {t[0].sg: (t, ann) for t, ann in out.tuples()}
        # the metro group certainly exists (Houston is certain metro)
        metro_t, metro_ann = by_sg["metro"]
        assert metro_ann[0] == 1
        # SGW average for metro = (3 + 14) / 2 = 8.5 (Figure 1c)
        assert metro_t[1].sg == pytest.approx(8.5)
        # the city group's existence is uncertain (lb = 0): only Austin or
        # Berlin might be cities
        city_t, city_ann = by_sg["city"]
        assert city_ann[0] == 0
        assert city_t[1].sg == pytest.approx(18.0)

    def test_metro_rate_bounds_cover_possibilities(self, locales):
        plan = parse_sql(
            "SELECT size, avg(rate) AS rate FROM locales GROUP BY size"
        )
        out = evaluate_audb(plan, AUDatabase({"locales": locales}))
        metro = next(t for t, _a in out.tuples() if t[0].sg == "metro")
        # paper reports [6 / 8.5 / 12]; our AVG envelope is sound but looser
        assert metro[1].lb <= 6.0
        assert metro[1].ub >= 12.0

    def test_sgw_extraction_matches_selected_guess(self, locales):
        world = locales.selected_guess_world()
        assert ("Los Angeles", 3.0, "metro") in world
        assert ("Austin", 18.0, "city") in world
        assert len(world) == 6


class TestExample3:
    """UA-DB bounds of the two-world bag database of Example 3."""

    def test_certain_multiplicities(self):
        from repro.incomplete.worlds import certain_bag, possible_bag
        from repro.db.storage import DetRelation

        d1 = DetRelation(["state"], {("IL",): 2, ("AZ",): 2})
        d2 = DetRelation(["state"], {("IL",): 3, ("AZ",): 1, ("IN",): 5})
        certain = certain_bag([d1, d2])
        possible = possible_bag([d1, d2])
        assert certain == {("IL",): 2, ("AZ",): 1}
        assert possible == {("IL",): 3, ("AZ",): 2, ("IN",): 5}


class TestFigure5:
    def test_sgw(self):
        r = AURelation(["A", "B"])
        r.add([certain(1), certain(1)], (2, 2, 3))
        r.add([certain(1), between(1, 1, 3)], (2, 3, 3))
        r.add([between(1, 2, 2), certain(3)], (1, 1, 1))
        assert r.selected_guess_world() == {(1, 1): 5, (2, 3): 1}


class TestFigure9Pipeline:
    def test_optimized_join_bounds_both_example_worlds(self):
        from repro.core.compression import optimized_join
        from repro.core.expressions import Var

        r = AURelation(["A"])
        r.add([between(1, 1, 2)], (2, 2, 3))
        r.add([between(1, 2, 2)], (1, 1, 2))
        s = AURelation(["C"])
        s.add([between(1, 3, 3)], (1, 1, 1))
        s.add([between(1, 2, 2)], (1, 2, 2))
        out = optimized_join(r, s, Var("A") == Var("C"), "A", "C", buckets=1)
        # Figure 9g: SG part ([2],[2]) with sg multiplicity 2
        sgw = out.selected_guess_world()
        assert sgw == {(2, 2): 2}
        # possible part compresses to a single wide tuple
        possible_rows = [
            (t, ann) for t, ann in out.tuples() if ann == (0, 0, 15)
        ]
        assert len(possible_rows) == 1
