"""The logical optimizer is semantics-preserving for BOTH engines.

Mirrors ``tests/test_property_expressions.py``: Hypothesis generates
random plans (with schema tracking, so joins combine disjoint tables and
conditions only mention visible attributes) over random AU-databases, and
we assert

* the AU engine returns identical annotations (and schema) with the
  optimizer on and off, and
* the Det engine returns identical bags over the selected-guess world,

plus unit tests for the individual rewrite rules, ``Statistics``
harvesting, and ``explain``.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.algebra.optimizer import (
    Statistics,
    estimate,
    explain,
    optimize,
    schema_of,
)
from repro.core.aggregation import agg_count, agg_max, agg_min, agg_sum
from repro.core.expressions import And, Const, Eq, Gt, Leq, Not, Or, Var
from repro.core.ranges import RangeValue
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation

SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TABLES = {"r": ("a", "b"), "s": ("c", "d"), "u": ("e", "f")}


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def _draw_condition(draw, schema):
    def atom():
        lhs = Var(draw(st.sampled_from(schema)))
        rhs = draw(
            st.one_of(
                st.integers(-2, 6).map(Const),
                st.sampled_from(schema).map(Var),
            )
        )
        op = draw(st.sampled_from([Eq, Leq, Gt]))
        return op(lhs, rhs)

    cond = atom()
    for _ in range(draw(st.integers(0, 2))):
        combiner = draw(st.sampled_from(["and", "or", "not"]))
        if combiner == "and":
            cond = And(cond, atom())
        elif combiner == "or":
            cond = Or(cond, atom())
        else:
            cond = Not(cond)
    return cond


def _draw_plan(draw, depth):
    """Returns ``(plan, schema, used_tables)``."""
    if depth <= 0:
        name = draw(st.sampled_from(sorted(TABLES)))
        return TableRef(name), list(TABLES[name]), {name}

    choice = draw(st.integers(0, 9))
    plan, schema, used = _draw_plan(draw, depth - 1)

    if choice == 0:  # leaf
        name = draw(st.sampled_from(sorted(TABLES)))
        return TableRef(name), list(TABLES[name]), {name}
    if choice == 1:  # selection
        return Selection(plan, _draw_condition(draw, schema)), schema, used
    if choice == 2:  # projection (subset + one computed column)
        kept = draw(
            st.lists(st.sampled_from(schema), min_size=1, unique=True)
        )
        cols = [(Var(a), a) for a in kept]
        if draw(st.booleans()):
            x = draw(st.sampled_from(schema))
            cols.append((Var(x) + Const(1), f"w{depth}"))
        return Projection(plan, cols), [n for _, n in cols], used
    if choice == 3:  # join with a table not yet used
        free = sorted(set(TABLES) - used)
        if not free:
            return Selection(plan, _draw_condition(draw, schema)), schema, used
        name = draw(st.sampled_from(free))
        other_schema = list(TABLES[name])
        left_key = draw(st.sampled_from(schema))
        right_key = draw(st.sampled_from(other_schema))
        plan = Join(plan, TableRef(name), Eq(Var(left_key), Var(right_key)))
        return plan, schema + other_schema, used | {name}
    if choice == 4:  # cross product with a table not yet used
        free = sorted(set(TABLES) - used)
        if not free:
            return Distinct(plan), schema, used
        name = draw(st.sampled_from(free))
        return (
            CrossProduct(plan, TableRef(name)),
            schema + list(TABLES[name]),
            used | {name},
        )
    if choice == 5:  # union / difference against a filtered copy
        other = Selection(plan, _draw_condition(draw, schema))
        node = Union if draw(st.booleans()) else Difference
        return node(plan, other), schema, used
    if choice == 6:  # distinct
        return Distinct(plan), schema, used
    if choice == 7:  # group-by aggregate
        keys = draw(st.lists(st.sampled_from(schema), min_size=1, unique=True))
        value = draw(st.sampled_from(schema))
        spec = draw(
            st.sampled_from(
                [
                    agg_sum(value, "agg"),
                    agg_min(value, "agg"),
                    agg_max(value, "agg"),
                    agg_count("agg"),
                ]
            )
        )
        return Aggregate(plan, keys, [spec]), keys + ["agg"], used
    if choice == 8:  # ORDER BY ... LIMIT (exercises TopK fusion)
        keys = draw(st.lists(st.sampled_from(schema), min_size=1, unique=True))
        descending = draw(st.booleans())
        n = draw(st.integers(1, 4))
        return (
            Limit(OrderBy(plan, keys, descending), n),
            schema,
            used,
        )
    # rename one column to a fresh name
    old = draw(st.sampled_from(schema))
    new = f"{old}_{depth}"
    return (
        Rename(plan, {old: new}),
        [new if a == old else a for a in schema],
        used,
    )


@st.composite
def plans(draw):
    plan, schema, used = _draw_plan(draw, draw(st.integers(1, 4)))
    return plan


@st.composite
def au_databases(draw):
    relations = {}
    for name, schema in TABLES.items():
        rel = AURelation(schema)
        for _ in range(draw(st.integers(0, 5))):
            values = []
            for _column in schema:
                lo = draw(st.integers(-2, 5))
                mid = lo + draw(st.integers(0, 2))
                hi = mid + draw(st.integers(0, 2))
                values.append(RangeValue(lo, mid, hi))
            lb = draw(st.integers(0, 1))
            sg = lb + draw(st.integers(0, 1))
            ub = sg + draw(st.integers(0, 1))
            if ub > 0:
                rel.add(values, (lb, sg, ub))
        relations[name] = rel
    return AUDatabase(relations)


def _sgw_det_db(audb: AUDatabase) -> DetDatabase:
    det = DetDatabase({})
    for name, rel in audb.relations.items():
        d = DetRelation(rel.schema)
        for row, mult in rel.selected_guess_world().items():
            d.add(row, mult)
        det[name] = d
    return det


# ----------------------------------------------------------------------
# the central property: optimize() is exact for both engines
# ----------------------------------------------------------------------
@SETTINGS
@given(plan=plans(), audb=au_databases())
def test_optimize_preserves_au_annotations(plan, audb):
    naive = evaluate_audb(plan, audb, EvalConfig(optimize=False))
    optimized = evaluate_audb(plan, audb, EvalConfig(optimize=True))
    assert optimized.schema == naive.schema, f"schema changed for {plan!r}"
    assert dict(optimized.tuples()) == dict(naive.tuples()), (
        f"AU annotations changed for {plan!r}"
    )


@SETTINGS
@given(plan=plans(), audb=au_databases())
def test_optimize_preserves_det_bags(plan, audb):
    det = _sgw_det_db(audb)
    naive = evaluate_det(plan, det, optimize=False)
    optimized = evaluate_det(plan, det, optimize=True)
    assert optimized.schema == naive.schema, f"schema changed for {plan!r}"
    assert optimized.rows == naive.rows, f"Det bag changed for {plan!r}"


@SETTINGS
@given(plan=plans(), audb=au_databases())
def test_optimize_without_stats_is_still_exact(plan, audb):
    """Even with no Statistics, the schema-free rules must be exact."""
    rewritten = optimize(plan)
    naive = evaluate_audb(plan, audb, EvalConfig(optimize=False))
    opt = evaluate_audb(rewritten, audb, EvalConfig(optimize=False))
    assert dict(opt.tuples()) == dict(naive.tuples())


@SETTINGS
@given(plan=plans(), audb=au_databases())
def test_optimize_is_idempotent_on_results(plan, audb):
    """Optimizing an already-optimized plan changes nothing observable."""
    stats = Statistics.from_database(audb)
    once = optimize(plan, stats)
    twice = optimize(once, stats)
    a = evaluate_audb(once, audb, EvalConfig(optimize=False))
    b = evaluate_audb(twice, audb, EvalConfig(optimize=False))
    assert dict(a.tuples()) == dict(b.tuples())


# ----------------------------------------------------------------------
# unit tests for the individual rules
# ----------------------------------------------------------------------
# selection pushdown through Aggregate group-by keys (AU-safe gate)
# ----------------------------------------------------------------------
@st.composite
def certain_au_databases(draw):
    """AU-databases whose *values* are all certain (multiplicity bounds
    may still be uncertain) — the catalog reports uncertain fraction 0
    for every column, so the aggregate pushdown rule is allowed to fire."""
    relations = {}
    for name, schema in TABLES.items():
        rel = AURelation(schema)
        for _ in range(draw(st.integers(0, 5))):
            values = [
                RangeValue(v, v, v)
                for v in (
                    draw(st.integers(-2, 5)) for _column in schema
                )
            ]
            lb = draw(st.integers(0, 1))
            sg = lb + draw(st.integers(0, 1))
            ub = sg + draw(st.integers(0, 1))
            if ub > 0:
                rel.add(values, (lb, sg, ub))
        relations[name] = rel
    return AUDatabase(relations)


@st.composite
def selection_over_aggregate_plans(draw):
    """``σ_c(γ_{keys}(subplan))`` with ``c`` over the group-by keys (the
    shape the new pushdown rule targets), sometimes wrapped further."""
    plan, schema, _used = _draw_plan(draw, draw(st.integers(0, 2)))
    keys = draw(st.lists(st.sampled_from(schema), min_size=1, unique=True))
    value = draw(st.sampled_from(schema))
    spec = draw(
        st.sampled_from(
            [agg_sum(value, "agg"), agg_min(value, "agg"), agg_count("agg")]
        )
    )
    agg = Aggregate(plan, keys, [spec])
    # condition over group-by keys only (the pushable case) or mixing in
    # the aggregate output (must stay above the barrier)
    cond_schema = keys if draw(st.booleans()) else keys + ["agg"]
    cond = _draw_condition(draw, cond_schema)
    selected = Selection(agg, cond)
    if draw(st.booleans()):
        selected = Selection(selected, _draw_condition(draw, keys + ["agg"]))
    return selected


class TestAggregatePushdown:
    @SETTINGS
    @given(plan=selection_over_aggregate_plans(), audb=certain_au_databases())
    def test_exact_for_au_on_certain_columns(self, plan, audb):
        naive = evaluate_audb(plan, audb, EvalConfig(optimize=False))
        optimized = evaluate_audb(plan, audb, EvalConfig(optimize=True))
        assert optimized.schema == naive.schema
        assert dict(optimized.tuples()) == dict(naive.tuples())

    @SETTINGS
    @given(plan=selection_over_aggregate_plans(), audb=au_databases())
    def test_exact_for_au_on_uncertain_columns(self, plan, audb):
        """With uncertain values the catalog gate blocks unsafe pushes —
        results must still be identical."""
        naive = evaluate_audb(plan, audb, EvalConfig(optimize=False))
        optimized = evaluate_audb(plan, audb, EvalConfig(optimize=True))
        assert dict(optimized.tuples()) == dict(naive.tuples())

    @SETTINGS
    @given(plan=selection_over_aggregate_plans(), audb=au_databases())
    def test_exact_for_det(self, plan, audb):
        det = _sgw_det_db(audb)
        naive = evaluate_det(plan, det, optimize=False)
        optimized = evaluate_det(plan, det, optimize=True)
        assert optimized.schema == naive.schema
        assert optimized.rows == naive.rows

    def test_pushes_below_aggregate_when_certain(self):
        db = DetDatabase({"r": DetRelation(["a", "b"], [(1, 2), (3, 4)])})
        plan = Selection(
            Aggregate(TableRef("r"), ["a"], [agg_sum("b", "t")]),
            Gt(Var("a"), Const(1)),
        )
        optimized = optimize(plan, Statistics.from_database(db))
        assert isinstance(optimized, Aggregate)
        assert isinstance(optimized.child, Selection)

    def test_blocked_on_uncertain_group_column(self):
        rel = AURelation(["a", "b"])
        rel.add([RangeValue(0, 1, 2), RangeValue(2, 2, 2)], (1, 1, 1))
        audb = AUDatabase({"r": rel})
        plan = Selection(
            Aggregate(TableRef("r"), ["a"], [agg_sum("b", "t")]),
            Gt(Var("a"), Const(1)),
        )
        optimized = optimize(plan, Statistics.from_database(audb))
        assert isinstance(optimized, Selection)  # still above the barrier

    def test_blocked_on_aggregate_output_and_variable_free(self):
        db = DetDatabase({"r": DetRelation(["a", "b"], [(1, 2)])})
        stats = Statistics.from_database(db)
        on_output = Selection(
            Aggregate(TableRef("r"), ["a"], [agg_sum("b", "t")]),
            Gt(Var("t"), Const(1)),
        )
        assert isinstance(optimize(on_output, stats), Selection)
        # a variable-free false filter above a *global* aggregate must not
        # suppress the empty-input result row by being pushed below it
        var_free = Selection(
            Aggregate(TableRef("r"), [], [agg_count("n")]),
            Gt(Const(0), Const(1)),
        )
        out = evaluate_det(var_free, db, optimize=True)
        naive = evaluate_det(var_free, db, optimize=False)
        assert out.rows == naive.rows


@pytest.fixture
def det_db():
    emp = DetRelation(
        ["name", "dept", "salary"],
        [("ann", "eng", 100), ("bob", "eng", 80), ("cat", "ops", 60)],
    )
    dept = DetRelation(["dept2", "city"], [("eng", "nyc"), ("ops", "sfo")])
    big = DetRelation(["k", "v"], [(i, 2 * i) for i in range(40)])
    return DetDatabase({"emp": emp, "dept": dept, "big": big})


class TestRules:
    def test_selection_pushes_into_join_sides(self, det_db):
        stats = Statistics.from_database(det_db)
        plan = Selection(
            Join(TableRef("emp"), TableRef("dept"), Eq(Var("dept"), Var("dept2"))),
            Gt(Var("salary"), Const(70)),
        )
        optimized = optimize(plan, stats)
        # the filter must now sit below the join, directly on emp
        assert isinstance(optimized, Join)
        text = explain(optimized, stats)
        join_line = next(i for i, l in enumerate(text.splitlines()) if "Join" in l)
        sel_line = next(
            i for i, l in enumerate(text.splitlines()) if "salary" in l
        )
        assert sel_line > join_line

    def test_cross_plus_selection_becomes_join(self, det_db):
        stats = Statistics.from_database(det_db)
        plan = Selection(
            CrossProduct(TableRef("emp"), TableRef("dept")),
            Eq(Var("dept"), Var("dept2")),
        )
        optimized = optimize(plan, stats)
        assert isinstance(optimized, Join)

    def test_join_reordering_restores_column_order(self, det_db):
        stats = Statistics.from_database(det_db)
        plan = Selection(
            CrossProduct(
                CrossProduct(TableRef("big"), TableRef("emp")), TableRef("dept")
            ),
            And(Eq(Var("dept"), Var("dept2")), Eq(Var("salary"), Var("v"))),
        )
        out = evaluate_det(plan, det_db, optimize=False)
        for join_order in ("greedy", "dp"):
            optimized = optimize(plan, stats, join_order=join_order)
            out2 = evaluate_det(optimized, det_db, optimize=False)
            assert out.schema == out2.schema, join_order
            assert out.rows == out2.rows, join_order
        # greedy order starts from the smallest table (dept), so a
        # restoring projection must be on top
        assert isinstance(optimize(plan, stats, join_order="greedy"), Projection)

    def test_orderby_limit_fuses_to_topk(self):
        plan = Limit(OrderBy(TableRef("emp"), ["salary"], True), 2)
        optimized = optimize(plan)
        assert isinstance(optimized, TopK)
        assert optimized.keys == ("salary",)
        assert optimized.descending
        assert optimized.n == 2

    def test_projection_pruning_narrows_join_inputs(self, det_db):
        stats = Statistics.from_database(det_db)
        plan = Projection(
            Join(TableRef("emp"), TableRef("dept"), Eq(Var("dept"), Var("dept2"))),
            [(Var("name"), "name")],
        )
        optimized = optimize(plan, stats)
        # the dept side only contributes the join key, so `city` is pruned
        pruned = [
            n
            for n in optimized.walk()
            if isinstance(n, Projection)
            and [name for _, name in n.columns] == ["dept2"]
        ]
        assert pruned
        out = evaluate_det(plan, det_db, optimize=False)
        out2 = evaluate_det(optimized, det_db, optimize=False)
        assert out.rows == out2.rows

    def test_pushdown_through_union_is_positional(self):
        r = DetRelation(["a"], [(1,), (2,), (3,)])
        s = DetRelation(["z"], [(2,), (9,)])
        db = DetDatabase({"r": r, "s": s})
        plan = Selection(
            Union(TableRef("r"), TableRef("s")), Gt(Var("a"), Const(1))
        )
        out = evaluate_det(plan, db, optimize=False)
        out2 = evaluate_det(plan, db, optimize=True)
        assert out.rows == out2.rows == {(2,): 2, (3,): 1, (9,): 1}

    def test_no_reorder_with_duplicate_names_across_join_leaves(self):
        """Regression: flatten/reattach must not move a conjunct into a
        scope where a duplicated attribute name re-binds it."""
        a = DetRelation(["a"], [(5,)])
        b = DetRelation(["b"], [(1,)])
        c = DetRelation(["a"], [(1,)])
        db = DetDatabase({"A": a, "B": b, "C": c})
        plan = Join(
            Join(TableRef("A"), TableRef("B"), Eq(Var("a"), Var("b"))),
            TableRef("C"),
            Eq(Var("b"), Const(1)),
        )
        naive = evaluate_det(plan, db, optimize=False)
        optimized = evaluate_det(plan, db, optimize=True)
        assert naive.rows == optimized.rows == {}

    def test_no_pushdown_into_duplicate_named_union_branch(self):
        """Regression: a union branch with duplicate attribute names must
        not receive pushed selections (positional translation would bind
        to the wrong column)."""
        left = DetRelation(["x", "y"], [(1, 10), (2, 20)])
        r = DetRelation(["a"], [(1,), (5,)])
        s = DetRelation(["a"], [(9,)])
        db = DetDatabase({"L": left, "R": r, "S": s})
        plan = Selection(
            Union(TableRef("L"), CrossProduct(TableRef("R"), TableRef("S"))),
            Eq(Var("x"), Const(1)),
        )
        naive = evaluate_det(plan, db, optimize=False)
        optimized = evaluate_det(plan, db, optimize=True)
        assert naive.rows == optimized.rows == {(1, 10): 1, (1, 9): 1}


class TestStatistics:
    def test_from_det_database(self, det_db):
        stats = Statistics.from_database(det_db)
        assert stats.cardinalities["big"] == 40
        assert stats.schemas["emp"] == ("name", "dept", "salary")

    def test_from_au_database(self):
        rel = AURelation.from_certain_rows(["a", "b"], [[1, 2], [3, 4]])
        stats = Statistics.from_database(AUDatabase({"r": rel}))
        assert stats.cardinalities["r"] == 2
        assert stats.schemas["r"] == ("a", "b")

    def test_estimates_monotone_under_selection(self, det_db):
        stats = Statistics.from_database(det_db)
        base = TableRef("big")
        filtered = Selection(base, Gt(Var("k"), Const(0)))
        assert estimate(filtered, stats) <= estimate(base, stats)

    def test_schema_inference(self, det_db):
        stats = Statistics.from_database(det_db)
        plan = Join(TableRef("emp"), TableRef("dept"), Eq(Var("dept"), Var("dept2")))
        assert schema_of(plan, stats) == ("name", "dept", "salary", "dept2", "city")
        assert schema_of(TableRef("missing"), stats) is None


class TestDPJoinOrdering:
    """The cost-based (DP) enumerator: correct, and skew-aware."""

    @pytest.fixture
    def skew_db(self):
        """R–S share a constant join key (a 1-distinct skew column), the
        S–T and T–U edges are selective; greedy (which only sees base
        cardinalities) starts from the small skewed table, DP does not."""
        r = DetRelation(["r_b", "r_x"], [(0, i) for i in range(4)])
        s = DetRelation(["s_b", "s_c"], [(0, i) for i in range(30)])
        t = DetRelation(["t_c", "t_d"], [(i, i) for i in range(30)])
        u = DetRelation(["u_d", "u_e"], [(i, i) for i in range(6)])
        return DetDatabase({"R": r, "S": s, "T": t, "U": u})

    def _skew_plan(self):
        return Selection(
            CrossProduct(
                CrossProduct(CrossProduct(TableRef("R"), TableRef("S")), TableRef("T")),
                TableRef("U"),
            ),
            And(
                And(Eq(Var("r_b"), Var("s_b")), Eq(Var("s_c"), Var("t_c"))),
                Eq(Var("t_d"), Var("u_d")),
            ),
        )

    def test_dp_equals_greedy_results_on_skew(self, skew_db):
        plan = self._skew_plan()
        naive = evaluate_det(plan, skew_db, optimize=False)
        for join_order in ("greedy", "dp"):
            out = evaluate_det(plan, skew_db, optimize=True, join_order=join_order)
            assert out.schema == naive.schema
            assert out.rows == naive.rows

    def test_dp_defers_the_skewed_join(self, skew_db):
        """DP must never materialize the 1-distinct (cartesian-like) R⋈S
        intermediate greedy starts with; the skewed edge is only applied
        once the selective S–T–U edges have shrunk the other side."""
        stats = Statistics.from_database(skew_db)
        plan = self._skew_plan()

        def join_table_sets(node):
            return {
                frozenset(n.table_names())
                for n in node.walk()
                if isinstance(n, (Join, CrossProduct))
            }

        dp = optimize(plan, stats, join_order="dp")
        assert frozenset({"R", "S"}) not in join_table_sets(dp)
        greedy = optimize(plan, stats, join_order="greedy")
        assert frozenset({"R", "S"}) in join_table_sets(greedy)

    def test_dp_falls_back_to_greedy_without_column_stats(self, det_db):
        cards_only = Statistics.from_database(det_db, column_stats=False)
        full = Statistics.from_database(det_db)
        plan = Selection(
            CrossProduct(
                CrossProduct(TableRef("big"), TableRef("emp")), TableRef("dept")
            ),
            And(Eq(Var("dept"), Var("dept2")), Eq(Var("salary"), Var("v"))),
        )
        fallback = optimize(plan, cards_only, join_order="dp")
        greedy = optimize(plan, cards_only, join_order="greedy")
        assert repr(fallback) == repr(greedy)
        out = evaluate_det(plan, det_db, optimize=False)
        for optimized in (fallback, optimize(plan, full, join_order="dp")):
            got = evaluate_det(optimized, det_db, optimize=False)
            assert got.rows == out.rows

    def test_unknown_join_order_rejected(self, det_db):
        with pytest.raises(ValueError, match="join_order"):
            optimize(TableRef("emp"), Statistics.from_database(det_db),
                     join_order="bogus")

    def test_dp_estimates_key_fk_join_exactly(self, det_db):
        """dept2 is a key for dept and dept a matching FK column of emp:
        the estimated join size must be |emp|."""
        stats = Statistics.from_database(det_db)
        plan = Join(TableRef("emp"), TableRef("dept"), Eq(Var("dept"), Var("dept2")))
        assert estimate(plan, stats) == pytest.approx(3.0)


class TestExplain:
    def test_explain_renders_tree_with_estimates(self, det_db):
        stats = Statistics.from_database(det_db)
        plan = Selection(TableRef("big"), Gt(Var("k"), Const(5)))
        text = explain(plan, stats)
        assert "Selection" in text
        assert "Table big" in text
        assert "rows" in text

    def test_explain_without_stats(self):
        text = explain(TableRef("anything"))
        assert "Table anything" in text

    def test_unknown_table_is_warned_not_silently_defaulted(self, det_db):
        stats = Statistics.from_database(det_db)
        text = explain(
            Join(TableRef("emp"), TableRef("ghost"), Eq(Var("dept"), Var("g"))),
            stats,
        )
        assert "no statistics for table 'ghost'" in text
        assert "1000 rows" in text
        # known tables never trigger the warning
        assert "no statistics" not in explain(TableRef("emp"), stats)
        warnings = []
        estimate(TableRef("ghost"), stats, warnings)
        estimate(TableRef("ghost"), stats, warnings)
        assert len(warnings) == 1  # deduplicated

    def test_explain_actual_vs_estimated_for_scan_join_topk(self, det_db):
        """The engines record per-node actual cardinalities which explain
        renders next to the estimates — exercised for scans, joins, and
        the fused TopK."""
        stats = Statistics.from_database(det_db)
        plan = Limit(
            OrderBy(
                Join(
                    TableRef("emp"), TableRef("dept"), Eq(Var("dept"), Var("dept2"))
                ),
                ["salary"],
                True,
            ),
            2,
        )
        optimized = optimize(plan, stats)
        assert isinstance(optimized, TopK)
        actuals = {}
        result = evaluate_det(optimized, det_db, optimize=False, actuals=actuals)
        text = explain(optimized, stats, actuals=actuals)
        lines = text.splitlines()
        topk_line = next(l for l in lines if "TopK" in l)
        join_line = next(l for l in lines if "Join" in l)
        scan_lines = [l for l in lines if "Table" in l]
        assert f"actual {result.total_rows():g}" in topk_line
        assert "actual 3" in join_line  # 3 emp rows each match one dept
        for line in scan_lines:
            assert "actual" in line
        # estimates are present alongside
        assert "~" in topk_line and "~" in join_line

    def test_audb_actuals_are_recorded_too(self):
        rel = AURelation.from_certain_rows(["a"], [[1], [2], [3]])
        db = AUDatabase({"r": rel})
        plan = Selection(TableRef("r"), Gt(Var("a"), Const(1)))
        actuals = {}
        evaluate_audb(plan, db, EvalConfig(optimize=False), actuals=actuals)
        assert actuals[id(plan)] == 2
        assert actuals[id(plan.child)] == 3
