"""Parallel AU execution: the SG-combine partial-aggregate merge
algebra, the AU-Exchange legality rules, and the persistent session
worker pool.

* A Hypothesis property certifies the heart of the tentpole claim: AU
  partial-aggregate states are **order- and grouping-invariant to the
  bit** — folding rows serially, or in any permutation partitioned into
  any number of worker states merged in any order, finalizes to the
  same ``AURelation`` with every float bound bit-equal (exact Shewchuk
  accumulation for SUM/AVG; pure min/max envelopes for the rest).
* ``verify_physical`` golden diagnostics for the AU parallel plans:
  engine-mismatched merge kinds, ``TupleFallback`` on the partitioned
  spine of a region, and ``AUPartialAggregate`` outside its Exchange.
* The session-owned :class:`~repro.exec.parallel.WorkerPool`: forked
  once, reused across prepared executions, invalidated and re-forked on
  a catalog epoch advance, shut down by ``Connection.close()`` — all
  observable through the ``repro_parallel_*`` registry counters.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import telemetry
from repro.algebra.ast import Aggregate, Limit, OrderBy, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.algebra.optimizer import optimize
from repro.analysis import PlanCompatibilityError, verify_physical
from repro.core.aggregation import (
    UncertainGroupError,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    finalize_partial_groups,
    fold_partial_groups,
    merge_partial_groups,
)
from repro.core.expressions import Const, Gt, Var
from repro.core.ranges import between, certain
from repro.core.relation import AUDatabase, AURelation
from repro.core.tuples import make_tuple
from repro.exec import parallel as exec_parallel
from repro.exec import physical as phys
from repro.session import Connection

SCHEMA = ("g", "v")
SPECS = (
    agg_sum("v", "s"),
    agg_avg("v", "a"),
    agg_min("v", "mn"),
    agg_max("v", "mx"),
    agg_count("n"),
)

#: adversarial float pool: catastrophic-cancellation magnitudes that
#: expose any naive (non-exact) accumulation order dependence; no -0.0
#: (min/max ties must be representation-unique for bit comparison)
FLOATS = st.sampled_from(
    [1e16, 1.0, -1e16, 0.1, 1e-9, -0.1, 3.5, 2.5e-10, -7.25, 1e6, 0.25]
)


def _fingerprint(rel: AURelation):
    """repr round-trips doubles: equal fingerprints ⇔ bit-equal values."""
    return sorted(
        (tuple(repr(v) for v in t), tuple(ann)) for t, ann in rel.tuples()
    )


@st.composite
def _au_rows(draw):
    """Rows with certain int group keys (partitionability requirement),
    uncertain float measures, and uncertain ``K^AU`` annotations."""
    n = draw(st.integers(min_value=1, max_value=24))
    rows = []
    for _ in range(n):
        g = draw(st.integers(min_value=0, max_value=2))
        lo, sg, hi = sorted(draw(st.tuples(FLOATS, FLOATS, FLOATS)))
        ann = tuple(
            sorted(draw(st.tuples(*[st.integers(0, 3)] * 3)))
        )
        if ann == (0, 0, 0):
            ann = (0, 0, 1)
        rows.append(
            (make_tuple([certain(g), between(lo, sg, hi)]), ann)
        )
    return rows


class TestPartialMergeAlgebra:
    @settings(
        deadline=None,
        max_examples=120,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data(), rows=_au_rows())
    def test_merge_order_and_grouping_invariant(self, data, rows):
        # serial reference: one fold over the rows as generated
        serial = {}
        fold_partial_groups(serial, SCHEMA, rows, ["g"], SPECS)
        reference = _fingerprint(
            finalize_partial_groups(serial, ["g"], SPECS)
        )

        # adversarial schedule: permute the rows, deal them into k
        # worker states, merge the states in dealing order
        shuffled = data.draw(st.permutations(rows))
        k = data.draw(st.integers(min_value=1, max_value=4))
        parts = [[] for _ in range(k)]
        for row in shuffled:
            parts[data.draw(st.integers(0, k - 1))].append(row)
        merged = {}
        for part in parts:
            partial = {}
            fold_partial_groups(partial, SCHEMA, part, ["g"], SPECS)
            merge_partial_groups(merged, partial, SPECS)
        assert (
            _fingerprint(finalize_partial_groups(merged, ["g"], SPECS))
            == reference
        )

    def test_uncertain_group_attribute_raises(self):
        rows = [(make_tuple([between(1, 1, 2), certain(1.0)]), (1, 1, 1))]
        with pytest.raises(UncertainGroupError):
            fold_partial_groups({}, SCHEMA, rows, ["g"], (agg_sum("v", "s"),))


# ======================================================================
# AU-Exchange legality (verify_physical golden diagnostics)
# ======================================================================
@pytest.fixture
def au_stats():
    rel = AURelation(["a", "b"])
    for i in range(8):
        rel.add([i, float(i)], (1, 1, 1))
    return Connection(AUDatabase({"r": rel})).statistics()


def _cfg(engine):
    return phys.PhysicalConfig(
        engine=engine, backend="vectorized", parallelism=4
    )


class TestAUExchangeLegality:
    def _region(self):
        return phys.FusedSelectProject(
            phys.ParallelScan("r", 2), Gt(Var("a"), Const(0)), None
        )

    def test_au_plan_rejects_det_merge_kind(self, au_stats):
        bad = phys.Exchange(self._region(), "aggregate", 2)
        with pytest.raises(PlanCompatibilityError, match="SG-combine-aware"):
            verify_physical(bad, au_stats, _cfg("au"))

    def test_det_plan_rejects_au_merge_kind(self, au_stats):
        bad = phys.Exchange(self._region(), "au_aggregate", 2)
        with pytest.raises(
            PlanCompatibilityError, match="only exist in the AU lowering"
        ):
            verify_physical(bad, au_stats, _cfg("det"))

    def test_fallback_on_partitioned_spine_rejected(self, au_stats):
        fallback = phys.TupleFallback(
            "aggregate",
            Aggregate(TableRef("r"), ["a"], [agg_sum("b", "t")]),
            [phys.ParallelScan("r", 2)],
        )
        bad = phys.Exchange(
            phys.FusedSelectProject(fallback, Gt(Var("a"), Const(0)), None),
            "concat",
            2,
        )
        with pytest.raises(PlanCompatibilityError, match="partitioned spine"):
            verify_physical(bad, au_stats, _cfg("au"))

    def test_au_partial_aggregate_without_exchange_rejected(self, au_stats):
        node = phys.AUPartialAggregate(
            phys.Scan("r"), ("a",), (agg_sum("b", "t"),)
        )
        with pytest.raises(
            PlanCompatibilityError, match="without a merging Exchange"
        ):
            verify_physical(node, au_stats, _cfg("au"))

    def test_au_partial_aggregate_in_det_plan_rejected(self, au_stats):
        node = phys.AUPartialAggregate(
            phys.Scan("r"), ("a",), (agg_sum("b", "t"),)
        )
        with pytest.raises(
            PlanCompatibilityError, match="deterministic plan"
        ):
            verify_physical(node, au_stats, _cfg("det"))


class TestAULoweringShape:
    @pytest.fixture
    def big_audb(self):
        rel = AURelation(["g", "v"])
        for i in range(9000):
            rel.add([i % 5, float(i % 97)], (1, 1, 1))
        return AUDatabase({"t": rel})

    def test_aggregate_lowers_to_au_exchange_and_verifies(self, big_audb):
        stats = Connection(big_audb, engine="au").statistics()
        plan = Aggregate(
            TableRef("t"), ["g"], [agg_sum("v", "s"), agg_avg("v", "a")]
        )
        config = _cfg("au")
        pplan = phys.lower(optimize(plan, stats, semantics="au"), stats, config)
        verify_physical(pplan, stats, config)
        text = phys.explain_physical(pplan)
        assert "Exchange merge=au_aggregate" in text
        assert "AUPartialAggregate" in text
        assert "ParallelScan" in text

    def test_topk_lowers_to_au_topk_and_verifies(self, big_audb):
        stats = Connection(big_audb, engine="au").statistics()
        plan = Limit(OrderBy(TableRef("t"), ["v"], True), 7)
        config = _cfg("au")
        pplan = phys.lower(optimize(plan, stats, semantics="au"), stats, config)
        verify_physical(pplan, stats, config)
        text = phys.explain_physical(pplan)
        assert "Exchange merge=au_topk" in text


# ======================================================================
# persistent worker pool lifecycle
# ======================================================================
_COUNTERS = (
    "repro_parallel_pool_forks_total",
    "repro_parallel_pool_reuses_total",
    "repro_parallel_pool_invalidations_total",
    "repro_parallel_tasks_total",
    "repro_parallel_au_serial_fallbacks_total",
)


def _counters():
    registry = telemetry.get_registry()
    return {name: registry.counter(name).value for name in _COUNTERS}


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="persistent pool needs fork()"
)
class TestWorkerPoolLifecycle:
    @pytest.fixture(autouse=True)
    def force_pool(self, monkeypatch):
        monkeypatch.setattr(exec_parallel, "PARALLEL_MIN_ROWS", 0)
        monkeypatch.setattr(exec_parallel, "PROCESS_MIN_ROWS", 0)

    def _connection(self):
        rel = AURelation(["g", "v"])
        for i in range(64):
            rel.add([i % 4, float(i)], (1, 1, 1))
        db = AUDatabase({"t": rel})
        conn = Connection(
            db,
            engine="au",
            # chunk_size=16: 64 rows make 4 storage chunks, so the
            # chunk-aligned morsels really split into 2 partitions
            config=EvalConfig(
                backend="vectorized", parallelism=2, chunk_size=16
            ),
        )
        return conn, rel, db

    def test_fork_reuse_invalidate_close(self):
        conn, rel, db = self._connection()
        plan = Aggregate(
            TableRef("t"), ["g"], [agg_sum("v", "s"), agg_count("n")]
        )
        prepared = conn.prepare(plan)

        before = _counters()
        first = prepared.execute(actuals={})
        after_fork = _counters()
        assert (
            after_fork["repro_parallel_pool_forks_total"]
            == before["repro_parallel_pool_forks_total"] + 1
        )

        second = prepared.execute(actuals={})
        after_reuse = _counters()
        assert (
            after_reuse["repro_parallel_pool_forks_total"]
            == after_fork["repro_parallel_pool_forks_total"]
        ), "a repeated prepared execution must not fork"
        assert (
            after_reuse["repro_parallel_pool_reuses_total"]
            == after_fork["repro_parallel_pool_reuses_total"] + 1
        )
        assert (
            after_reuse["repro_parallel_tasks_total"]
            > after_fork["repro_parallel_tasks_total"]
        )

        # a write advances the catalog epoch: the stale pool (workers
        # hold a fork-inherited snapshot) is invalidated and re-forked
        rel.add([0, 1.5], (1, 1, 1))
        third = prepared.execute(actuals={})
        after_write = _counters()
        assert (
            after_write["repro_parallel_pool_invalidations_total"]
            == after_reuse["repro_parallel_pool_invalidations_total"] + 1
        )
        assert (
            after_write["repro_parallel_pool_forks_total"]
            == after_reuse["repro_parallel_pool_forks_total"] + 1
        )

        serial = evaluate_audb(
            plan, db, EvalConfig(backend="vectorized", parallelism=1)
        )
        assert _fingerprint(third) == _fingerprint(serial)
        assert _fingerprint(first) == _fingerprint(second)

        pool = conn._pool
        assert pool is not None and pool.alive
        conn.close()
        assert conn._pool is None
        assert not pool.alive

    def test_uncertain_group_serial_fallback(self):
        conn, rel, db = self._connection()
        rel.add([between(0, 0, 1), 2.5], (1, 1, 1))  # uncertain group key
        plan = Aggregate(TableRef("t"), ["g"], [agg_sum("v", "s")])

        before = _counters()
        parallel = conn.execute(plan)
        after = _counters()
        assert (
            after["repro_parallel_au_serial_fallbacks_total"]
            == before["repro_parallel_au_serial_fallbacks_total"] + 1
        )
        serial = evaluate_audb(
            plan, db, EvalConfig(backend="vectorized", parallelism=1)
        )
        assert _fingerprint(parallel) == _fingerprint(serial)
        conn.close()
