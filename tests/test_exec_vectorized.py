"""The vectorized columnar backend (``repro.exec``) and sound AU top-k.

Covers what the differential fuzzer's random plans may under-sample:

* batch round-trips (typed ``array`` packing, merging, empty relations);
* compiled predicate/projector parity with ``Expression.eval``,
  including domain-order comparisons and the interpretation fallback;
* backend equality per operator on hand-built shapes (residual join
  conditions, non-equi joins, difference, distinct, bare LIMIT);
* physical join-strategy hints and backend-name validation;
* ``au_topk`` soundness against sampled possible worlds, its SGW
  exactness, and the uncertain-key identity carve-out.
"""

import random

import pytest

from repro.algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.algebra.optimizer import Statistics
from repro.core.aggregation import agg_avg, agg_count, agg_max, agg_min, agg_sum
from repro.core.bounding import bounds_world
from repro.core.expressions import (
    Const,
    Eq,
    Gt,
    If,
    IsNull,
    Leq,
    MakeUncertain,
    Not,
    RowView,
    Var,
)
from repro.core.operators import au_topk
from repro.core.ranges import RangeValue, between
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.exec import (
    BACKENDS,
    AUColumnBatch,
    ColumnBatch,
    CompileError,
    compile_filter,
    compile_projector,
)


# ----------------------------------------------------------------------
# batches
# ----------------------------------------------------------------------
class TestBatches:
    def test_det_round_trip_and_typed_packing(self):
        rel = DetRelation(["i", "f", "mixed"], {(1, 1.5, "a"): 2, (2, 2.5, 3): 1})
        batch = ColumnBatch.from_relation(rel)
        assert type(batch.columns[0]).__name__ == "array"  # ints -> array('q')
        assert type(batch.columns[1]).__name__ == "array"  # floats -> array('d')
        assert isinstance(batch.columns[2], list)  # mixed stays a list
        assert batch.to_relation().same_contents(rel)
        # conversion is cached on the relation; adding a new distinct
        # tuple appends the delta to the cached column image in place
        assert ColumnBatch.from_relation(rel) is batch
        rel.add((3, 3.5, "b"))
        assert ColumnBatch.from_relation(rel) is batch
        assert batch.to_relation().same_contents(rel)
        # merging into an existing tuple or a type-breaking value still
        # invalidates (all-or-nothing against the packed arrays)
        rel.add((1, 1.5, "a"))
        assert ColumnBatch.from_relation(rel) is not batch
        batch2 = ColumnBatch.from_relation(rel)
        rel.add((4, None, "c"))  # None cannot append to array('d')
        batch3 = ColumnBatch.from_relation(rel)
        assert batch3 is not batch2
        assert batch3.to_relation().same_contents(rel)
        # deletes invalidate too
        rel.delete((4, None, "c"))
        batch4 = ColumnBatch.from_relation(rel)
        assert batch4 is not batch3
        assert batch4.to_relation().same_contents(rel)

    def test_bool_columns_stay_lists(self):
        rel = DetRelation(["b"], [(True,), (False,)])
        batch = ColumnBatch.from_relation(rel)
        assert isinstance(batch.columns[0], list)
        assert batch.to_relation().rows == rel.rows

    def test_det_merge_on_materialize(self):
        batch = ColumnBatch(("x",), [[1, 1, 2]], [2, 3, 1])
        assert batch.to_relation().rows == {(1,): 5, (2,): 1}

    def test_empty_relations(self):
        rel = DetRelation(["x", "y"])
        assert ColumnBatch.from_relation(rel).to_relation().same_contents(rel)
        au = AURelation(["x"])
        assert len(AUColumnBatch.from_relation(au).to_relation()) == 0

    def test_au_round_trip_merges(self):
        rel = AURelation(["v"])
        rel.add([between(0, 1, 2)], (1, 1, 2))
        rel.add([5], (0, 1, 1))
        batch = AUColumnBatch.from_relation(rel)
        assert dict(batch.to_relation().tuples()) == dict(rel.tuples())
        assert AUColumnBatch.from_relation(rel) is batch  # cached


# ----------------------------------------------------------------------
# compiled expressions
# ----------------------------------------------------------------------
class TestCompile:
    SCHEMA = ("a", "b", "s")
    ROWS = [
        (1, 2.0, "x"),
        (2, 2.0, "y"),
        (True, -1.0, "x"),  # bool ranks with numbers in the domain order
        (0, 0.0, "z"),
        (3, None, "x"),
    ]

    def _columns(self):
        return [list(c) for c in zip(*self.ROWS)]

    @pytest.mark.parametrize(
        "cond",
        [
            Eq(Var("a"), Const(1)),
            Eq(Var("a"), Var("b")),  # int vs float via domain_key
            Leq(Var("a"), Var("b")),
            Gt(Var("b"), Const(0)),
            Not(Eq(Var("s"), Const("x"))),
            (Var("a") > Const(0)) & (Var("s") == Const("x")),
            (Var("a") == Const(1)) | ~(Var("b") <= Const(1.0)),
            IsNull(Var("b")),
            Eq(If(Gt(Var("a"), Const(1)), Var("s"), Const("x")), Const("x")),
            Gt(Var("a") + Var("a") * Const(2), Const(4)),
            Eq(MakeUncertain(Const(0), Var("a"), Const(9)), Const(2)),
        ],
        ids=repr,
    )
    def test_filter_matches_interpreter(self, cond):
        index = RowView.index_of(self.SCHEMA)
        expected = [
            i
            for i, row in enumerate(self.ROWS)
            if bool(cond.eval(RowView(index, row)))
        ]
        got = compile_filter(cond, self.SCHEMA)(self._columns(), len(self.ROWS))
        assert got == expected

    def test_projector_matches_interpreter(self):
        expr = If(Gt(Var("a"), Const(1)), Var("a") * Const(10), -Var("a"))
        index = RowView.index_of(self.SCHEMA)
        expected = [expr.eval(RowView(index, row)) for row in self.ROWS]
        got = compile_projector(expr, self.SCHEMA)(self._columns(), len(self.ROWS))
        assert got == expected

    def test_unbound_variable_raises_compile_error(self):
        with pytest.raises(CompileError):
            compile_filter(Eq(Var("ghost"), Const(1)), self.SCHEMA)

    def test_unknown_node_raises_compile_error(self):
        class Weird(Var):
            pass

        with pytest.raises(CompileError):
            compile_projector(Gt(Weird("a"), Const(0)), self.SCHEMA)

    def test_fallback_path_reports_unbound_variable_like_the_engine(self):
        db = DetDatabase({"t": DetRelation(["x"], [(1,)])})
        plan = Selection(TableRef("t"), Eq(Var("ghost"), Const(1)))
        with pytest.raises(KeyError, match="unbound variable"):
            evaluate_det(plan, db, optimize=False, backend="vectorized")


# ----------------------------------------------------------------------
# backend equality on targeted operator shapes
# ----------------------------------------------------------------------
@pytest.fixture
def det_db():
    emp = DetRelation(
        ["name", "dept", "salary"],
        {
            ("ann", "eng", 120): 1,
            ("bob", "eng", 90): 2,
            ("cid", "ops", 90): 1,
            ("dee", "ops", 70): 1,
            ("eve", "fin", 150): 1,
        },
    )
    dept = DetRelation(["dname", "floor"], [("eng", 4), ("ops", 2), ("fin", 9)])
    return DetDatabase({"emp": emp, "dept": dept})


def _both_det(plan, db, **kwargs):
    tuple_result = evaluate_det(plan, db, backend="tuple", **kwargs)
    vec_result = evaluate_det(plan, db, backend="vectorized", **kwargs)
    assert vec_result.schema == tuple_result.schema
    assert vec_result.rows == tuple_result.rows
    return tuple_result


class TestDetBackendEquality:
    def test_join_with_residual_condition(self, det_db):
        plan = Join(
            TableRef("emp"),
            TableRef("dept"),
            Eq(Var("dept"), Var("dname")) & Gt(Var("floor"), Const(2)),
        )
        assert _both_det(plan, det_db).total_rows() == 4

    def test_non_equi_join_runs_as_filtered_loop(self, det_db):
        plan = Join(TableRef("emp"), TableRef("dept"), Gt(Var("salary"), Var("floor") * Const(20)))
        _both_det(plan, det_db, optimize=False)

    def test_difference_distinct_union_cross(self, det_db):
        high = Selection(TableRef("emp"), Gt(Var("salary"), Const(80)))
        plan = Difference(TableRef("emp"), high)
        _both_det(plan, det_db)
        proj = Projection(TableRef("emp"), [(Var("dept"), "dept")])
        _both_det(Distinct(proj), det_db)
        _both_det(Union(high, TableRef("emp")), det_db)
        _both_det(CrossProduct(proj, Rename(TableRef("dept"), {"dname": "d2"})), det_db)

    def test_aggregates_all_kinds(self, det_db):
        plan = Aggregate(
            TableRef("emp"),
            ["dept"],
            [
                agg_sum("salary", "total"),
                agg_count("n"),
                agg_min("salary", "lo"),
                agg_max("salary", "hi"),
                agg_avg("salary", "mean"),
            ],
        )
        _both_det(plan, det_db)
        # global aggregate over empty input
        empty = Selection(TableRef("emp"), Const(False))
        _both_det(Aggregate(empty, [], [agg_count("n"), agg_min("salary", "lo")]), det_db)

    def test_bare_limit_and_topk(self, det_db):
        _both_det(Limit(TableRef("emp"), 3), det_db, optimize=False)
        _both_det(
            Limit(OrderBy(TableRef("emp"), ["salary"], True), 2), det_db
        )
        _both_det(TopK(TableRef("emp"), ["salary"], False, 2), det_db)

    def test_nan_join_keys_match_tuple_engine(self):
        """Same-NaN-object keys join (tuple identity shortcut in Eq);
        distinct NaN objects don't — on every backend and strategy."""
        nan = float("nan")
        other_nan = float("inf") - float("inf")
        r = DetRelation(["a"], [(nan,), (1.0,)])
        s = DetRelation(["c"], [(nan,), (other_nan,), (1.0,)])
        db = DetDatabase({"r": r, "s": s})
        plan = Join(TableRef("r"), TableRef("s"), Eq(Var("a"), Var("c")))
        expected = evaluate_det(plan, db, optimize=False)
        # the same nan object matches itself only
        assert expected.total_rows() == 2
        got = evaluate_det(plan, db, optimize=False, backend="vectorized")
        assert got.rows == expected.rows
        # both physical join algorithms agree (hand-built physical plans)
        from repro.exec import execute_det, physical as phys

        hash_plan = phys.HashJoin(
            phys.Scan("r"), phys.Scan("s"), plan.condition, (("a", "c"),), True
        )
        loop_plan = phys.NLJoin(phys.Scan("r"), phys.Scan("s"), plan.condition)
        for by_algo in (hash_plan, loop_plan):
            assert execute_det(by_algo, db).rows == expected.rows, by_algo

    def test_actuals_match_tuple_engine(self, det_db):
        plan = Selection(TableRef("emp"), Gt(Var("salary"), Const(80)))
        tuple_actuals, vec_actuals = {}, {}
        evaluate_det(plan, det_db, optimize=False, actuals=tuple_actuals)
        evaluate_det(
            plan, det_db, optimize=False, actuals=vec_actuals, backend="vectorized"
        )
        # both executions record every *logical* node (physical node ids
        # differ per lowering, so compare on the shared logical keys)
        logical = [id(node) for node in plan.walk()]
        assert all(i in tuple_actuals and i in vec_actuals for i in logical)
        assert [tuple_actuals[i] for i in logical] == [
            vec_actuals[i] for i in logical
        ]

    def test_unknown_backend_rejected(self, det_db):
        with pytest.raises(ValueError, match="unknown backend"):
            evaluate_det(TableRef("emp"), det_db, backend="gpu")
        with pytest.raises(ValueError, match="unknown backend"):
            evaluate_audb(
                TableRef("emp"),
                AUDatabase({"emp": AURelation(["x"])}),
                EvalConfig(backend="gpu"),
            )
        assert BACKENDS == ("tuple", "vectorized")


@pytest.fixture
def au_db():
    r = AURelation(["a", "b"])
    r.add([1, between(5, 10, 15)], (1, 1, 1))
    r.add([between(1, 2, 3), 7], (0, 1, 2))
    r.add([4, 1], (1, 2, 3))
    s = AURelation(["c", "d"])
    s.add([1, "x"], (1, 1, 1))
    s.add([between(2, 3, 5), "y"], (1, 1, 2))
    s.add([4, "z"], (0, 1, 1))
    return AUDatabase({"r": r, "s": s})


def _both_au(plan, db, **config_kwargs):
    tuple_result = evaluate_audb(plan, db, EvalConfig(backend="tuple", **config_kwargs))
    vec_result = evaluate_audb(plan, db, EvalConfig(backend="vectorized", **config_kwargs))
    assert vec_result.schema == tuple_result.schema
    assert dict(vec_result.tuples()) == dict(tuple_result.tuples())
    return tuple_result


class TestAUBackendEquality:
    def test_join_mixed_certain_uncertain_keys(self, au_db):
        plan = Join(TableRef("r"), TableRef("s"), Eq(Var("a"), Var("c")))
        _both_au(plan, au_db)
        _both_au(plan, au_db, hash_join=False)

    def test_join_with_residual_and_compression(self, au_db):
        plan = Join(
            TableRef("r"),
            TableRef("s"),
            Eq(Var("a"), Var("c")) & Gt(Var("b"), Const(2)),
        )
        _both_au(plan, au_db)
        _both_au(plan, au_db, join_buckets=2)
        _both_au(plan, au_db, join_buckets=64, adaptive_compression=True)

    def test_fallback_operators(self, au_db):
        filtered = Selection(TableRef("r"), Gt(Var("b"), Const(3)))
        _both_au(Difference(TableRef("r"), filtered), au_db)
        _both_au(Distinct(Projection(TableRef("r"), [(Var("a"), "a")])), au_db)
        agg = Aggregate(TableRef("r"), ["a"], [agg_sum("b", "t"), agg_count("n")])
        _both_au(agg, au_db)
        _both_au(agg, au_db, aggregation_buckets=2)

    def test_projection_and_union(self, au_db):
        proj = Projection(TableRef("r"), [(Var("b") + Const(1), "b1"), (Var("a"), "a")])
        _both_au(proj, au_db)
        renamed = Rename(TableRef("s"), {"c": "a2", "d": "b2"})
        _both_au(Union(TableRef("r"), renamed), au_db)


# ----------------------------------------------------------------------
# sound AU top-k
# ----------------------------------------------------------------------
def _sample_world(rng, rel):
    """One deterministic world bounded by ``rel`` (bounded by
    construction: pick a value inside every range and a multiplicity
    inside every annotation)."""
    world = {}
    for t, (lb, _sg, ub) in rel.tuples():
        m = rng.randint(lb, ub)
        if m == 0:
            continue
        row = tuple(rng.choice([v.lb, v.sg, v.ub]) for v in t)
        world[row] = world.get(row, 0) + m
    return world


def _world_topk(world, schema, keys, descending, n):
    from repro.db.engine import _topk

    rel = DetRelation(schema)
    for row, m in world.items():
        rel.add(row, m)
    return _topk(rel, keys, descending, n).as_bag()


class TestAuTopK:
    def test_uncertain_key_stays_identity(self):
        rel = AURelation(["k", "v"])
        rel.add([between(1, 2, 3), 10], (1, 1, 1))
        rel.add([5, 20], (1, 1, 1))
        out = au_topk(rel, ["k"], False, 1)
        assert dict(out.tuples()) == dict(rel.tuples())

    def test_sgw_equals_det_topk(self):
        rng = random.Random(7)
        for _case in range(50):
            rel = AURelation(["k", "v"])
            for _ in range(rng.randint(0, 6)):
                k = rng.randint(0, 4)
                v = between(*sorted([rng.randint(0, 9) for _ in range(3)]))
                lb = rng.randint(0, 1)
                sg = lb + rng.randint(0, 1)
                ub = sg + rng.randint(0, 1)
                if ub:
                    rel.add([k, v], (lb, sg, ub))
            descending = rng.random() < 0.5
            n = rng.randint(1, 4)
            out = au_topk(rel, ["k"], descending, n)
            sgw_in = DetRelation(["k", "v"])
            for row, m in rel.selected_guess_world().items():
                sgw_in.add(row, m)
            from repro.db.engine import _topk

            expected = _topk(sgw_in, ["k"], descending, n).as_bag()
            assert out.selected_guess_world() == expected, f"case {_case}"

    def test_bounds_every_sampled_world(self):
        """au_topk(R) must bound ORDER-BY-LIMIT of every world R bounds."""
        rng = random.Random(42)
        for _case in range(60):
            rel = AURelation(["k", "v"])
            for _ in range(rng.randint(1, 6)):
                k = rng.randint(0, 3)  # certain order key
                v = between(*sorted([rng.randint(0, 9) for _ in range(3)]))
                lb = rng.randint(0, 1)
                sg = lb + rng.randint(0, 1)
                ub = sg + rng.randint(0, 1)
                if ub:
                    rel.add([k, v], (lb, sg, ub))
            descending = rng.random() < 0.5
            n = rng.randint(1, 3)
            out = au_topk(rel, ["k"], descending, n)
            for _w in range(8):
                world = _sample_world(rng, rel)
                topk_world = _world_topk(world, ["k", "v"], ["k"], descending, n)
                assert bounds_world(out, topk_world), (
                    f"case {_case}: {dict(out.tuples())} "
                    f"does not bound {topk_world}"
                )

    def test_certainly_excluded_rows_are_dropped(self):
        rel = AURelation(["k"])
        rel.add([1], (2, 2, 2))
        rel.add([9], (1, 1, 1))
        out = au_topk(rel, ["k"], False, 2)
        # the two certain copies of k=1 fill the top-2 in every world
        assert dict(out.tuples()) == {(RangeValue(1, 1, 1),): (2, 2, 2)}
