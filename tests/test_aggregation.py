"""Unit tests for bound-preserving aggregation (Section 9)."""

import math

import pytest

from repro.core.aggregation import (
    MAX,
    MIN,
    SUM,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    aggregate,
    semimodule_action,
    star_operator,
)
from repro.core.expressions import Var
from repro.core.ranges import between, certain
from repro.core.relation import AURelation


def rel(schema, rows):
    r = AURelation(schema)
    for values, ann in rows:
        r.add(values, ann)
    return r


class TestMonoids:
    def test_sum_monoid(self):
        assert SUM.fold([1, 2, 3]) == 6
        assert SUM.fold([]) == 0

    def test_min_max_monoids(self):
        assert MIN.fold([3, 1, 2]) == 1
        assert MAX.fold([3, 1, 2]) == 3
        assert MIN.fold([]) == math.inf
        assert MAX.fold([]) == -math.inf

    def test_monoid_laws(self):
        # commutativity / associativity spot check (Lemma 2 substrate)
        for monoid in (SUM, MIN, MAX):
            for a in (1, 5, -2):
                for b in (0, 3):
                    assert monoid.combine(a, b) == monoid.combine(b, a)
                    for c in (2, -1):
                        assert monoid.combine(monoid.combine(a, b), c) == (
                            monoid.combine(a, monoid.combine(b, c))
                        )


class TestSemimoduleAction:
    def test_sum_action_is_multiplication(self):
        assert semimodule_action(SUM, 3, 10) == 30

    def test_min_max_action(self):
        assert semimodule_action(MIN, 2, 10) == 10
        assert semimodule_action(MIN, 0, 10) == math.inf
        assert semimodule_action(MAX, 0, 10) == -math.inf


class TestStarOperator:
    def test_example_10_contribution(self):
        # (1,2,2) ⊛_SUM [3/5/10] = [3/10/20]
        r = star_operator(SUM, (1, 2, 2), between(3, 5, 10))
        assert (r.lb, r.sg, r.ub) == (3, 10, 20)

    def test_negative_values(self):
        # (1,2,2) ⊛_SUM [-4/-3/-3] = [-8/-6/-3]
        r = star_operator(SUM, (1, 2, 2), between(-4, -3, -3))
        assert (r.lb, r.sg, r.ub) == (-8, -6, -3)

    def test_min_with_possible_absence(self):
        r = star_operator(MIN, (0, 1, 1), between(5, 6, 7))
        assert r.lb == 5
        assert r.ub == math.inf  # the tuple may be absent

    def test_theorem5_bounds(self):
        # exhaustive check on small grids: ⊛ bounds k *_{N,M} m
        for monoid in (SUM, MIN, MAX):
            for k_lb, k_sg, k_ub in [(0, 0, 1), (0, 1, 2), (1, 1, 1), (1, 2, 3)]:
                for m_lo, m_sg, m_hi in [(-2, 0, 1), (1, 2, 3), (-3, -2, -1)]:
                    folded = star_operator(
                        monoid, (k_lb, k_sg, k_ub), between(m_lo, m_sg, m_hi)
                    )
                    for k in range(k_lb, k_ub + 1):
                        for m in (m_lo, m_sg, m_hi):
                            v = semimodule_action(monoid, k, m)
                            assert folded.lb <= v <= folded.ub


class TestAggregationNoGroupBy:
    def test_figure_7b(self):
        """Paper Figure 7: SELECT sum(#inhab) FROM address -> [6/7/14]."""
        address = rel(
            ["street", "number", "inhab"],
            [
                (["Canal", 165, certain(1)], (1, 1, 2)),
                (["Canal", between(153, 154, 156), between(1, 2, 2)], (1, 1, 1)),
                (["State", between(623, 623, 629), certain(2)], (2, 2, 3)),
                (["Monroe", between(3550, 3574, 3585), between(2, 3, 4)], (0, 0, 1)),
            ],
        )
        out = aggregate(address, [], [agg_sum("inhab", "pop")])
        ((t, ann),) = list(out.tuples())
        assert ann == (1, 1, 1)
        assert (t[0].lb, t[0].sg, t[0].ub) == (6, 7, 14)

    def test_empty_input_yields_neutral_row(self):
        out = aggregate(rel(["a"], []), [], [agg_sum("a", "s"), agg_count("c")])
        ((t, ann),) = list(out.tuples())
        assert ann == (1, 1, 1)
        assert t[0] == certain(0)
        assert t[1] == certain(0)


class TestAggregationGroupBy:
    def test_figure_7c(self):
        """Paper Figure 7c: count(*) grouped by street."""
        address = rel(
            ["street", "inhab"],
            [
                (["Canal", 1], (1, 1, 2)),
                ([between("Canal", "Canal", "State"), 2], (1, 1, 1)),
                (["State", 2], (2, 2, 3)),
                (["Monroe", 3], (0, 0, 1)),
            ],
        )
        out = aggregate(address, ["street"], [agg_count("cnt")])
        by_sg = {t[0].sg: (t, ann) for t, ann in out.tuples()}
        canal_t, canal_ann = by_sg["Canal"]
        assert canal_ann == (1, 1, 3)
        # Canal's merged group box is [Canal, State] (the second tuple's
        # street is uncertain), so this output may have to bound world
        # groups other than Canal; the rewriting's θ_c test therefore
        # clamps every contribution and the sound count bounds are [0, 7]
        # (the paper's Figure 7c prints the looser illustrative [1, 3]).
        assert canal_t[1].lb == 0
        assert canal_t[1].sg == 2
        assert canal_t[1].ub == 7
        state_t, state_ann = by_sg["State"]
        # 3rd tuple certainly in group State (count >= 2); 2nd could join it
        assert state_t[1].lb == 2
        assert (state_t[1].sg, state_t[1].ub) == (2, 4)  # Figure 7c: [2/2/4]
        assert state_ann[0] == 1
        monroe_t, monroe_ann = by_sg["Monroe"]
        assert monroe_ann == (0, 0, 1)
        assert monroe_t[1].ub == 2

    def test_example_10(self):
        """Sum of A grouping by B (Example 10).

        The paper's worked example computes -5 = 3 + min(0, -8) by letting
        the certainly-grouped first tuple contribute unclamped.  Because
        the output's group box is [2, 4] (it may also have to bound the
        world groups B=2 and B=4, in which the first tuple does not
        participate), the implementation follows the rewriting's θ_c test
        and clamps both contributions, yielding the sound bound -8: the
        possible world where the second tuple lands alone in group B=2
        with multiplicity 2 has sum -8, and its result tuple must be
        bounded by this single output.
        """
        r = rel(
            ["A", "B"],
            [
                ([between(3, 5, 10), 3], (1, 2, 2)),
                ([between(-4, -3, -3), between(2, 3, 4)], (1, 2, 2)),
            ],
        )
        out = aggregate(r, ["B"], [agg_sum("A", "s")])
        by_sg = {t[0].sg: t for t, _ann in out.tuples()}
        g3 = by_sg[3]
        assert g3[1].lb == -8
        assert g3[1].sg == 4  # SGW: 2*5 + 2*(-3)
        assert g3[1].ub == 20

    def test_example_10_certain_group(self):
        """With a certain group box the Example-10 shape keeps the
        unclamped contribution of the certainly-grouped tuple."""
        r = rel(
            ["A", "B"],
            [
                ([between(3, 5, 10), 3], (1, 2, 2)),
                ([between(-4, -3, -3), 3], (0, 2, 2)),
            ],
        )
        out = aggregate(r, ["B"], [agg_sum("A", "s")])
        ((t, _ann),) = list(out.tuples())
        assert t[1].lb == 3 + (-8)  # certain member unclamped, optional clamped via ug

    def test_group_bounds_merge(self):
        # Definition 25: output group-by bounds cover assigned inputs
        r = rel(
            ["g", "v"],
            [
                ([between(1, 2, 2), 10], (1, 1, 1)),
                ([between(2, 2, 4), 20], (0, 0, 1)),
            ],
        )
        out = aggregate(r, ["g"], [agg_sum("v", "s")])
        ((t, ann),) = list(out.tuples())
        assert (t[0].lb, t[0].sg, t[0].ub) == (1, 2, 4)
        assert ann[2] == 2  # both inputs may form distinct groups

    def test_min_max_aggregates(self):
        r = rel(
            ["g", "v"],
            [
                (["a", between(1, 2, 3)], (1, 1, 1)),
                (["a", certain(10)], (1, 1, 1)),
            ],
        )
        out = aggregate(
            r, ["g"], [agg_min("v", "lo"), agg_max("v", "hi")]
        )
        ((t, _ann),) = list(out.tuples())
        assert t[1].lb == 1 and t[1].ub == 3  # min in [1,3]
        assert t[2].lb == 10 and t[2].ub == 10  # max is certainly 10

    def test_avg_envelope(self):
        r = rel(
            ["g", "v"],
            [
                (["a", between(0, 10, 20)], (1, 1, 1)),
                (["a", certain(30)], (1, 1, 1)),
            ],
        )
        out = aggregate(r, ["g"], [agg_avg("v", "m")])
        ((t, _ann),) = list(out.tuples())
        assert t[1].lb <= 15 <= t[1].ub
        assert t[1].sg == 20.0  # (10 + 30) / 2
        assert t[1].lb == 0 and t[1].ub == 30

    def test_uncertain_group_membership_clamps(self):
        # a tuple that may not exist cannot raise the lower SUM bound
        r = rel(["g", "v"], [(["a", certain(5)], (0, 1, 1))])
        out = aggregate(r, ["g"], [agg_sum("v", "s")])
        ((t, ann),) = list(out.tuples())
        assert t[1].lb == 0
        assert t[1].ub == 5
        assert ann == (0, 1, 1)


class TestCompressedAggregation:
    def test_compressed_is_sound_and_sg_exact(self):
        """Lemma 10.2: compression preserves bounds and the exact SGW.

        Both the naive and the compressed aggregation must bound the query
        result in every possible world of a random x-relation; the
        compressed variant's SG values must equal the naive ones.
        """
        import random

        from repro.core.bounding import bounds_world
        from repro.db.engine import _aggregate as det_aggregate
        from repro.incomplete.xdb import XRelation

        rng = random.Random(3)
        xrel = XRelation(["g", "v"])
        for _ in range(9):
            g = rng.randint(1, 4)
            v = rng.randint(-5, 20)
            if rng.random() < 0.4:
                xrel.add([(g, v), (min(4, g + 1), rng.randint(-5, 20))])
            else:
                xrel.add_certain((g, v))
        audb = xrel.to_audb()
        naive = aggregate(audb, ["g"], [agg_sum("v", "s")])
        fast = aggregate(audb, ["g"], [agg_sum("v", "s")], compress_buckets=2)
        naive_by_sg = {t[0].sg: t for t, _ in naive.tuples()}
        fast_by_sg = {t[0].sg: t for t, _ in fast.tuples()}
        assert set(naive_by_sg) == set(fast_by_sg)
        for key, nt in naive_by_sg.items():
            assert fast_by_sg[key][1].sg == nt[1].sg
        for world in xrel.enumerate_worlds(limit=3000):
            result = det_aggregate(world, ["g"], [agg_sum("v", "s")])
            assert bounds_world(naive, result.as_bag())
            assert bounds_world(fast, result.as_bag())
