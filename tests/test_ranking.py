"""Tests for the top-k extension, verified against brute-force worlds."""

import itertools
import random

import pytest

from repro.core.ranges import between, certain
from repro.core.ranking import topk
from repro.core.relation import AURelation
from repro.incomplete.xdb import XRelation


def rel(schema, rows):
    r = AURelation(schema)
    for values, ann in rows:
        r.add(values, ann)
    return r


class TestBasics:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            topk(AURelation(["s"]), "s", 0)

    def test_certain_scores(self):
        r = rel(["name", "s"], [
            (["a", 10], (1, 1, 1)),
            (["b", 20], (1, 1, 1)),
            (["c", 5], (1, 1, 1)),
        ])
        result = topk(r, "s", 2)
        names = [row.values[0].sg for row in result]
        assert names == ["b", "a"]
        assert all(row.certainly_topk for row in result)
        assert all(row.sg_topk for row in result)

    def test_uncertain_score_expands_candidates(self):
        r = rel(["name", "s"], [
            (["a", 10], (1, 1, 1)),
            (["b", 20], (1, 1, 1)),
            (["c", between(5, 8, 50)], (1, 1, 1)),
        ])
        result = topk(r, "s", 2)
        names = {row.values[0].sg for row in result}
        assert names == {"a", "b", "c"}  # c may leap to the top
        by_name = {row.values[0].sg: row for row in result}
        assert by_name["b"].certainly_topk  # nothing can push b out
        assert not by_name["a"].certainly_topk  # c may displace a
        assert not by_name["c"].sg_topk  # in the SGW c scores 8

    def test_optional_tuples_cannot_certainly_displace(self):
        r = rel(["name", "s"], [
            (["a", 10], (1, 1, 1)),
            (["b", 20], (0, 1, 1)),  # possibly absent
        ])
        result = topk(r, "s", 1)
        by_name = {row.values[0].sg: row for row in result}
        assert by_name["a"].possibly_topk  # b may be absent
        assert not by_name["a"].certainly_topk
        assert not by_name["b"].certainly_topk


class TestAgainstBruteForce:
    def brute_force(self, xrel: XRelation, k: int):
        """True possibly/certainly top-k projected tuples across worlds."""
        possible = set()
        certain = None
        for world in xrel.enumerate_worlds(limit=3000):
            occurrences = []
            for t, m in world.tuples():
                occurrences.extend([t] * m)
            occurrences.sort(key=lambda t: t[1], reverse=True)
            top = set(occurrences[:k])
            possible |= top
            certain = top if certain is None else (certain & top)
        return possible, (certain or set())

    def test_randomized(self):
        rng = random.Random(5)
        for trial in range(60):
            xrel = XRelation(["name", "s"])
            for i in range(rng.randint(1, 5)):
                alts = [
                    (f"t{i}", rng.randint(0, 20))
                    for _ in range(rng.randint(1, 2))
                ]
                if rng.random() < 0.3:
                    xrel.add(alts, [0.9 / len(alts)] * len(alts))
                else:
                    xrel.add(alts)
            k = rng.randint(1, 3)
            true_possible, true_certain = self.brute_force(xrel, k)
            result = topk(xrel.to_audb(), "s", k)

            # every truly possible top-k tuple is covered by some candidate
            for t in true_possible:
                assert any(
                    row.values[0].bounds_value(t[0])
                    and row.values[1].bounds_value(t[1])
                    for row in result
                ), f"trial {trial}: missed possible {t}"

            # claimed-certain candidates really are certain
            for row in result:
                if row.certainly_topk and row.values[0].is_certain and row.values[1].is_certain:
                    t = (row.values[0].sg, row.values[1].sg)
                    assert t in true_certain, (
                        f"trial {trial}: {t} claimed certain but is not"
                    )
