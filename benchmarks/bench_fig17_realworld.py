"""Figure 17: real-world key-repair datasets across systems.

Times each system on the SPJ and group-by query per dataset; the accuracy
columns (certain recall, bound tightness, possible recall) are printed by
``python -m repro.experiments.fig17_realworld``.
"""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.baselines.mcdb import run_mcdb
from repro.baselines.trio import trio_aggregate, trio_spj_possible
from repro.baselines.uadb import UADatabase, evaluate_uadb
from repro.core.relation import AUDatabase
from repro.experiments.fig17_realworld import _compile_spj
from repro.incomplete.xdb import XDatabase
from repro.lenses import key_repair_lens
from repro.workloads.realworld import (
    make_crimes,
    make_healthcare,
    make_netflix,
    realworld_queries,
)

AUDB_CONFIG = EvalConfig(join_buckets=32, aggregation_buckets=32)
QUERIES = realworld_queries()
MAKERS = {
    "netflix": lambda: make_netflix(1500),
    "crimes": lambda: make_crimes(3000),
    "healthcare": lambda: make_healthcare(2000),
}


@pytest.fixture(scope="module")
def lenses():
    out = {}
    for name, maker in MAKERS.items():
        ds = maker()
        out[name] = (ds, key_repair_lens(ds.relation, list(ds.key_columns)))
    return out


@pytest.fixture(params=sorted(QUERIES), ids=str)
def query(request):
    return request.param


def test_audb(benchmark, lenses, query):
    ds_name, plan = QUERIES[query]
    _ds, lens = lenses[ds_name]
    audb = AUDatabase({ds_name: lens.audb})
    benchmark(lambda: evaluate_audb(plan, audb, AUDB_CONFIG))


def test_trio(benchmark, lenses, query):
    ds_name, plan = QUERIES[query]
    _ds, lens = lenses[ds_name]
    from repro.algebra.ast import Aggregate

    if isinstance(plan, Aggregate):
        (spec,) = plan.aggregates
        benchmark(
            lambda: trio_aggregate(lens.xdb, list(plan.group_by), spec)
        )
    else:
        predicate, _idx, _cols = _compile_spj(plan, list(lens.xdb.schema))
        benchmark(lambda: trio_spj_possible(lens.xdb, predicate))


def test_mcdb(benchmark, lenses, query):
    ds_name, plan = QUERIES[query]
    _ds, lens = lenses[ds_name]
    xdb = XDatabase({ds_name: lens.xdb})
    benchmark(lambda: run_mcdb(plan, xdb, n_samples=10))


def test_uadb(benchmark, lenses, query):
    ds_name, plan = QUERIES[query]
    _ds, lens = lenses[ds_name]
    uadb = UADatabase.from_xdb(XDatabase({ds_name: lens.xdb}))
    benchmark(lambda: evaluate_uadb(plan, uadb))
