"""Machine-readable benchmark gate results.

Every CI gate benchmark writes a ``BENCH_<name>.json`` file next to the
human-readable table it prints, so the gates leave structured artifacts
(timings, speedups, gate thresholds, detected core counts, failures)
that CI uploads and downstream tooling can diff across runs.  The
location defaults to the current working directory and can be redirected
with ``BENCH_RESULTS_DIR``.
"""

import json
import os

__all__ = ["write_result"]


def write_result(name: str, payload: dict) -> str:
    """Write ``payload`` as ``BENCH_<name>.json``; returns the path."""
    out_dir = os.environ.get("BENCH_RESULTS_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
