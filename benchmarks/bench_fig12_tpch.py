"""Figure 12: TPC-H Q1/Q3/Q5/Q7/Q10 — AU-DB vs Det vs MCDB."""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.baselines.mcdb import run_mcdb
from repro.tpch.queries import tpch_queries
from repro.db.engine import evaluate_det

QUERIES = tpch_queries()
AUDB_CONFIG = EvalConfig(join_buckets=64, aggregation_buckets=64)


@pytest.fixture(params=sorted(QUERIES), ids=str)
def query(request):
    return QUERIES[request.param]


def test_det(benchmark, query, pdbench_small_world):
    benchmark(lambda: evaluate_det(query, pdbench_small_world))


def test_audb(benchmark, query, pdbench_small_audb):
    benchmark(lambda: evaluate_audb(query, pdbench_small_audb, AUDB_CONFIG))


def test_mcdb(benchmark, query, pdbench_small):
    benchmark(lambda: run_mcdb(query, pdbench_small.xdb, n_samples=10))
