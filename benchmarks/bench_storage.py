"""Paged chunked storage: zone-map chunk skipping vs monolithic scans.

A ~120k-row deterministic table clustered on its key column (the
natural layout for append-mostly bases: keys arrive roughly in order,
so per-chunk min/max ranges are narrow and selective predicates prune
almost every page):

* **Skip gate (≥5x)**: a selective range query (last ~1% of the key
  space) through the vectorized backend with chunked storage
  (zone-map skipping + streamed per-chunk filtering) must beat the
  same query over the monolithic columnar image (``chunk_size=0``) by
  at least 5x.  Measured ~20x at this size — the skip predicate
  proves ~117 of the 118 pages empty without reading them.
* **Full-scan overhead gate (≤1.1x)**: an unselective aggregate that
  must read every row may pay at most 10% for the paged layout (the
  chunk store concatenates surviving pages once and caches the image,
  so steady-state full scans are the same work).

Both layouts must return identical results.

Run standalone for the CI gate::

    PYTHONPATH=src python benchmarks/bench_storage.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_storage.py
"""

import random

import pytest

from repro.algebra.ast import Aggregate, Selection, TableRef
from repro.core.aggregation import agg_count, agg_sum
from repro.core.expressions import Const, Geq, Var
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation

N_ROWS = 120_000
#: keys are clustered: row i carries key i (append order == key order)
SELECTIVE_CUT = N_ROWS - 1_000

SKIP_GATE = 5.0
OVERHEAD_GATE = 1.1


def make_db(n: int = N_ROWS, seed: int = 11) -> DetDatabase:
    rng = random.Random(seed)
    rel = DetRelation(
        ["k", "v", "grp"],
        [(i, rng.randint(0, 1000), i % 17) for i in range(n)],
    )
    return DetDatabase({"t": rel})


def selective_plan():
    """``SELECT * FROM t WHERE k >= cut`` — prunable to the tail pages."""
    return Selection(TableRef("t"), Geq(Var("k"), Const(SELECTIVE_CUT)))


def full_scan_plan():
    """``SELECT grp, sum(v), count(*) FROM t GROUP BY grp`` — every row."""
    return Aggregate(
        TableRef("t"), ["grp"], [agg_sum("v", "s"), agg_count("n")]
    )


@pytest.fixture(scope="module")
def db():
    return make_db()


@pytest.mark.parametrize("chunk_size", [0, None], ids=["monolithic", "chunked"])
def test_selective_scan(benchmark, db, chunk_size):
    plan = selective_plan()
    evaluate_det(plan, db, backend="vectorized", chunk_size=chunk_size)
    benchmark(
        lambda: evaluate_det(
            plan, db, backend="vectorized", chunk_size=chunk_size
        )
    )


@pytest.mark.parametrize("chunk_size", [0, None], ids=["monolithic", "chunked"])
def test_full_scan_aggregate(benchmark, db, chunk_size):
    plan = full_scan_plan()
    evaluate_det(plan, db, backend="vectorized", chunk_size=chunk_size)
    benchmark(
        lambda: evaluate_det(
            plan, db, backend="vectorized", chunk_size=chunk_size
        )
    )


def main() -> int:
    from repro.algebra.optimizer import Statistics, optimize
    from repro.exec import execute_det
    from repro.exec import physical as phys
    from repro.experiments.common import time_call

    db = make_db()
    failures = []
    stats = Statistics.from_database(db)

    def lowered(plan, chunk_size):
        return phys.lower(
            optimize(plan, stats),
            stats,
            phys.PhysicalConfig(
                engine="det", backend="vectorized", chunk_size=chunk_size
            ),
        )

    def run(plan, chunk_size):
        # lower once, execute many: the gate measures the storage layer,
        # not the (shared, constant) parse/optimize/lower pipeline
        pplan = lowered(plan, chunk_size)
        return lambda: execute_det(pplan, db)

    # selective range query: chunked must win by SKIP_GATE
    sel = selective_plan()
    sel_flat, sel_chunk = run(sel, 0), run(sel, None)
    sel_flat(), sel_chunk()  # warm columnar image + chunk store
    t_flat, r_flat = time_call(sel_flat, repeat=3)
    t_chunk, r_chunk = time_call(sel_chunk, repeat=3)
    speedup = t_flat / t_chunk if t_chunk > 0 else float("inf")
    if r_flat.rows != r_chunk.rows:
        failures.append("selective: chunked result differs from monolithic")
    if speedup < SKIP_GATE:
        failures.append(
            f"selective: speedup {speedup:.2f}x below the {SKIP_GATE:.1f}x bar"
        )

    # unselective aggregate: chunked may cost at most OVERHEAD_GATE
    full = full_scan_plan()
    full_flat, full_chunk = run(full, 0), run(full, None)
    full_flat(), full_chunk()
    t_flat_full, r_flat_full = time_call(full_flat, repeat=3)
    t_chunk_full, r_chunk_full = time_call(full_chunk, repeat=3)
    overhead = t_chunk_full / t_flat_full if t_flat_full > 0 else float("inf")
    if r_flat_full.rows != r_chunk_full.rows:
        failures.append("full-scan: chunked result differs from monolithic")
    if overhead > OVERHEAD_GATE:
        failures.append(
            f"full-scan: chunked overhead {overhead:.2f}x above the "
            f"{OVERHEAD_GATE:.1f}x bar"
        )

    print(
        f"paged chunked storage: {N_ROWS} rows clustered on k, "
        f"selective cut k>={SELECTIVE_CUT}"
    )
    print(f"{'query':<10} {'monolithic[s]':>14} {'chunked[s]':>11} {'ratio':>8}")
    print(
        f"{'selective':<10} {t_flat:>14.4f} {t_chunk:>11.4f} "
        f"{speedup:>7.2f}x  (gate >= {SKIP_GATE:.1f}x, {len(r_chunk)} rows)"
    )
    print(
        f"{'full-scan':<10} {t_flat_full:>14.4f} {t_chunk_full:>11.4f} "
        f"{overhead:>7.2f}x  (gate <= {OVERHEAD_GATE:.1f}x, "
        f"{len(r_chunk_full)} groups)"
    )
    for failure in failures:
        print(f"FAIL: {failure}")

    from _results import write_result

    write_result(
        "storage",
        {
            "benchmark": "storage",
            "rows": N_ROWS,
            "gates": {"skip": SKIP_GATE, "overhead": OVERHEAD_GATE},
            "selective": {
                "monolithic_s": round(t_flat, 6),
                "chunked_s": round(t_chunk, 6),
                "speedup": round(speedup, 4),
            },
            "full_scan": {
                "monolithic_s": round(t_flat_full, 6),
                "chunked_s": round(t_chunk_full, 6),
                "overhead": round(overhead, 4),
            },
            "failures": failures,
        },
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
