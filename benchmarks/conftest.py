"""Shared fixtures for the benchmark suite.

Every figure/table of the paper's evaluation has a corresponding
``bench_fig*.py`` file; the full printable harnesses (with parameter
sweeps and accuracy columns) live in ``repro.experiments`` and can be run
as ``python -m repro.experiments``.  The pytest-benchmark targets here
time the hot paths at laptop-friendly sizes.
"""

import pytest

from repro.core.relation import AUDatabase
from repro.tpch.pdbench import make_pdbench


@pytest.fixture(scope="session")
def pdbench_small():
    """A PDBench instance shared across benchmarks (scale 0.2, 2%)."""
    return make_pdbench(scale=0.2, uncertainty=0.02)


@pytest.fixture(scope="session")
def pdbench_small_audb(pdbench_small):
    return AUDatabase(pdbench_small.audb().relations)


@pytest.fixture(scope="session")
def pdbench_small_world(pdbench_small):
    return pdbench_small.selected_world()
