"""Figure 11: chained aggregation operators across systems."""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.baselines.mcdb import run_mcdb
from repro.baselines.symbolic import chain_symbolic_aggregates
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase
from repro.experiments.fig11_agg_chain import VALUE_COL, _trio_chain, make_chain_plan
from repro.incomplete.xdb import XDatabase
from repro.workloads.micro import micro_instance

N_OPS = [1, 4, 8]


@pytest.fixture(scope="module")
def setup():
    _det, xrel = micro_instance(
        800, n_cols=10, uncertainty=0.05, group_domain=(1, 3), seed=5
    )
    return {
        "xrel": xrel,
        "det_db": DetDatabase({"t": xrel.selected_world()}),
        "audb": AUDatabase({"t": xrel.to_audb()}),
        "xdb": XDatabase({"t": xrel}),
    }


@pytest.fixture(params=N_OPS, ids=lambda n: f"ops{n}")
def n_ops(request):
    return request.param


def test_det(benchmark, setup, n_ops):
    plan = make_chain_plan(n_ops)
    benchmark(lambda: evaluate_det(plan, setup["det_db"]))


def test_audb(benchmark, setup, n_ops):
    plan = make_chain_plan(n_ops)
    config = EvalConfig(aggregation_buckets=32)
    benchmark(lambda: evaluate_audb(plan, setup["audb"], config))


def test_trio(benchmark, setup, n_ops):
    benchmark(lambda: _trio_chain(setup["xrel"], n_ops))


def test_symbolic(benchmark, setup, n_ops):
    benchmark(lambda: chain_symbolic_aggregates(setup["xrel"], VALUE_COL, n_ops))


def test_mcdb(benchmark, setup, n_ops):
    plan = make_chain_plan(n_ops)
    benchmark(lambda: run_mcdb(plan, setup["xdb"], n_samples=10))
