"""Figure 13: aggregation micro-benchmarks.

13a — varying the number of group-by attributes;
13b — varying the number of aggregation functions;
13c — varying the attribute-range width under compression;
13d — the compression budget itself (runtime side; the accuracy side is
      reported by ``python -m repro.experiments.fig13_micro``).
"""

import pytest

from repro.algebra.ast import Aggregate, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_sum
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase
from repro.workloads.micro import micro_instance

N_COLS = 20


@pytest.fixture(scope="module")
def data():
    _det, xrel = micro_instance(1500, n_cols=N_COLS, uncertainty=0.05, seed=9)
    return {
        "det": DetDatabase({"t": xrel.selected_world()}),
        "audb": AUDatabase({"t": xrel.to_audb()}),
    }


# -- 13a ----------------------------------------------------------------
@pytest.mark.parametrize("n_groups", [1, 5, 15], ids=lambda n: f"gb{n}")
def test_fig13a_group_by_audb(benchmark, data, n_groups):
    keys = [f"a{i}" for i in range(n_groups)]
    plan = Aggregate(TableRef("t"), keys, [agg_sum(f"a{N_COLS - 1}", "s")])
    config = EvalConfig(aggregation_buckets=25)
    benchmark(lambda: evaluate_audb(plan, data["audb"], config))


@pytest.mark.parametrize("n_groups", [1, 5, 15], ids=lambda n: f"gb{n}")
def test_fig13a_group_by_det(benchmark, data, n_groups):
    keys = [f"a{i}" for i in range(n_groups)]
    plan = Aggregate(TableRef("t"), keys, [agg_sum(f"a{N_COLS - 1}", "s")])
    benchmark(lambda: evaluate_det(plan, data["det"]))


# -- 13b ----------------------------------------------------------------
@pytest.mark.parametrize("n_aggs", [1, 5, 15], ids=lambda n: f"agg{n}")
def test_fig13b_agg_functions_audb(benchmark, data, n_aggs):
    aggs = [agg_sum(f"a{i + 1}", f"s{i}") for i in range(n_aggs)]
    plan = Aggregate(TableRef("t"), ["a0"], aggs)
    config = EvalConfig(aggregation_buckets=25)
    benchmark(lambda: evaluate_audb(plan, data["audb"], config))


@pytest.mark.parametrize("n_aggs", [1, 5, 15], ids=lambda n: f"agg{n}")
def test_fig13b_agg_functions_det(benchmark, data, n_aggs):
    aggs = [agg_sum(f"a{i + 1}", f"s{i}") for i in range(n_aggs)]
    plan = Aggregate(TableRef("t"), ["a0"], aggs)
    benchmark(lambda: evaluate_det(plan, data["det"]))


# -- 13c ----------------------------------------------------------------
@pytest.mark.parametrize("range_fraction", [0.1, 0.5, 1.0], ids=lambda f: f"rng{f}")
@pytest.mark.parametrize("ct", [4, 256], ids=lambda c: f"ct{c}")
def test_fig13c_attribute_range(benchmark, range_fraction, ct):
    _det, xrel = micro_instance(
        1200, n_cols=5, uncertainty=0.05,
        range_fraction=range_fraction, seed=11,
        group_domain=(1, 100_000),
    )
    audb = AUDatabase({"t": xrel.to_audb()})
    plan = Aggregate(TableRef("t"), ["a0"], [agg_sum("a1", "s")])
    config = EvalConfig(aggregation_buckets=ct)
    benchmark(lambda: evaluate_audb(plan, audb, config))


# -- 13d ----------------------------------------------------------------
@pytest.mark.parametrize("ct", [4, 32, 256, 4096], ids=lambda c: f"ct{c}")
def test_fig13d_compression(benchmark, ct):
    _det, xrel = micro_instance(
        1200, n_cols=5, uncertainty=0.10, seed=12, group_domain=(1, 10_000)
    )
    audb = AUDatabase({"t": xrel.to_audb()})
    plan = Aggregate(TableRef("t"), ["a0"], [agg_sum("a1", "s")])
    config = EvalConfig(aggregation_buckets=ct)
    benchmark(lambda: evaluate_audb(plan, audb, config))
