"""Figure 16: multi-join chains with and without compression."""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.relation import AUDatabase
from repro.experiments.fig16_multijoin import _make_table, make_chain

N_ROWS = 200


@pytest.fixture(scope="module")
def db():
    return AUDatabase(
        {
            f"t{i}": _make_table(N_ROWS, 0.03, seed=50 + i, index=i)
            for i in range(5)
        }
    )


@pytest.mark.parametrize("n_joins", [1, 2, 3], ids=lambda n: f"j{n}")
@pytest.mark.parametrize("ct", [4, 64, None], ids=lambda c: f"ct{c}")
def test_multijoin(benchmark, db, n_joins, ct):
    plan = make_chain(n_joins)
    config = EvalConfig(join_buckets=ct)
    benchmark(lambda: evaluate_audb(plan, db, config))
