"""Figure 10b: PDBench SPJ queries, varying database scale at 2%."""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.tpch.pdbench import make_pdbench
from repro.tpch.queries import pdbench_spj_queries

QUERIES = pdbench_spj_queries()
AUDB_CONFIG = EvalConfig(join_buckets=32, aggregation_buckets=32)
SCALES = [0.1, 0.3, 1.0]


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def instance(request):
    return make_pdbench(scale=request.param, uncertainty=0.02)


def test_det(benchmark, instance):
    world = instance.selected_world()
    benchmark(lambda: [evaluate_det(q, world) for q in QUERIES.values()])


def test_audb(benchmark, instance):
    audb = AUDatabase(instance.audb().relations)
    benchmark(
        lambda: [evaluate_audb(q, audb, AUDB_CONFIG) for q in QUERIES.values()]
    )
