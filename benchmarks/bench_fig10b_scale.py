"""Figure 10b: PDBench SPJ queries, varying database scale at 2%.

Also hosts the scale point past the vectorized backend's batch
materialization budget: at ``BUDGET_SCALE`` the ``lineitem`` base
relation exceeds ``MATERIALIZATION_CAP`` rows, so building its
monolithic columnar image (``chunk_size=0``) is refused while the
paged chunked layout streams the same query page-by-page and
completes (``test_streaming_completes_where_materialization_cannot``).
"""

import pytest

from repro.algebra.ast import Selection, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.expressions import Const, Gt, Var
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.exec.batch import MaterializationBudgetError, materialization_budget
from repro.tpch.pdbench import make_pdbench
from repro.tpch.queries import pdbench_spj_queries

QUERIES = pdbench_spj_queries()
AUDB_CONFIG = EvalConfig(join_buckets=32, aggregation_buckets=32)
SCALES = [0.1, 0.3, 1.0]

#: the scale point past the capped batch-materialization budget: its
#: ``lineitem`` (~12k rows) cannot be materialized whole under the cap
BUDGET_SCALE = 2.0
MATERIALIZATION_CAP = 4096


@pytest.fixture(scope="module", params=SCALES, ids=lambda s: f"scale{s}")
def instance(request):
    return make_pdbench(scale=request.param, uncertainty=0.02)


def test_det(benchmark, instance):
    world = instance.selected_world()
    benchmark(lambda: [evaluate_det(q, world) for q in QUERIES.values()])


def test_audb(benchmark, instance):
    audb = AUDatabase(instance.audb().relations)
    benchmark(
        lambda: [evaluate_audb(q, audb, AUDB_CONFIG) for q in QUERIES.values()]
    )


def test_streaming_completes_where_materialization_cannot(benchmark):
    """At ``BUDGET_SCALE`` a selective ``lineitem`` scan streams
    page-by-page under a materialization budget the whole-table
    columnar image cannot fit, with identical results."""
    world = make_pdbench(scale=BUDGET_SCALE, uncertainty=0.02).selected_world()
    lineitem = world["lineitem"]
    assert len(lineitem.rows) > MATERIALIZATION_CAP
    cut = int(max(row[0] for row in lineitem.rows) * 0.9)
    plan = Selection(TableRef("lineitem"), Gt(Var("l_orderkey"), Const(cut)))
    want = evaluate_det(plan, world)  # tuple backend: budget-free oracle

    with materialization_budget(MATERIALIZATION_CAP):
        with pytest.raises(MaterializationBudgetError):
            evaluate_det(plan, world, backend="vectorized", chunk_size=0)
        got = evaluate_det(plan, world, backend="vectorized")
        assert got.rows == want.rows

    def streamed():
        with materialization_budget(MATERIALIZATION_CAP):
            return evaluate_det(plan, world, backend="vectorized")

    benchmark(streamed)
