"""Ablation benchmarks for the design choices called out in DESIGN.md.

* certain-key hash path in the naive AU-DB join (on/off);
* the pure-equi condition shortcut is exercised implicitly by the hash
  variant (equi conditions skip expression evaluation);
* compression budget ablation for aggregation (CT off vs on) —
  complementing the sweep in ``bench_fig13_micro_agg.py``.
"""

import pytest

from repro.algebra.ast import Aggregate, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_sum
from repro.core.expressions import Var
from repro.core.operators import join
from repro.core.relation import AUDatabase, AURelation
from repro.workloads.micro import micro_instance


@pytest.fixture(scope="module")
def join_sides():
    def side(prefix, seed):
        _det, xrel = micro_instance(
            400, n_cols=2, uncertainty=0.03, range_fraction=0.02,
            domain=(1, 1000), seed=seed,
        )
        audb = xrel.to_audb()
        renamed = AURelation([f"{prefix}{i}" for i in range(2)])
        for t, ann in audb.tuples():
            renamed.add(t, ann)
        return renamed

    return side("l", 1), side("r", 2)


def test_join_with_certain_hash(benchmark, join_sides):
    left, right = join_sides
    cond = Var("l0") == Var("r0")
    benchmark(lambda: join(left, right, cond, allow_certain_hash=True))


def test_join_without_certain_hash(benchmark, join_sides):
    left, right = join_sides
    cond = Var("l0") == Var("r0")
    benchmark(lambda: join(left, right, cond, allow_certain_hash=False))


@pytest.fixture(scope="module")
def agg_db():
    _det, xrel = micro_instance(
        1000, n_cols=4, uncertainty=0.08, range_fraction=0.2,
        domain=(1, 500), seed=3,
    )
    return AUDatabase({"t": xrel.to_audb()})


def test_aggregation_uncompressed(benchmark, agg_db):
    plan = Aggregate(TableRef("t"), ["a0"], [agg_sum("a1", "s")])
    benchmark(lambda: evaluate_audb(plan, agg_db, EvalConfig()))


def test_aggregation_compressed(benchmark, agg_db):
    plan = Aggregate(TableRef("t"), ["a0"], [agg_sum("a1", "s")])
    benchmark(
        lambda: evaluate_audb(plan, agg_db, EvalConfig(aggregation_buckets=16))
    )
