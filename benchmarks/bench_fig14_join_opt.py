"""Figure 14: join optimization — naive interval join vs split+Cpr."""

import pytest

from repro.core.expressions import Var
from repro.core.operators import join as naive_join
from repro.core.compression import optimized_join
from repro.experiments.fig14_join_opt import _make_side

SIZES = [250, 500]
COND = Var("l0") == Var("r0")


@pytest.fixture(scope="module", params=SIZES, ids=lambda n: f"n{n}")
def sides(request):
    n = request.param
    left = _make_side(n, 0.03, 0.02, seed=n, name_prefix="l")
    right = _make_side(n, 0.03, 0.02, seed=n + 1, name_prefix="r")
    return left, right


def test_naive_join(benchmark, sides):
    left, right = sides
    benchmark(lambda: naive_join(left, right, COND, allow_certain_hash=False))


@pytest.mark.parametrize("ct", [4, 32, 256], ids=lambda c: f"ct{c}")
def test_optimized_join(benchmark, sides, ct):
    left, right = sides
    benchmark(lambda: optimized_join(left, right, COND, "l0", "r0", buckets=ct))
