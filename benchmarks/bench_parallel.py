"""Morsel-parallel vectorized execution vs serial vectorized execution.

A TPC-H-style join + aggregate (the Fig. 12 shape) big enough that the
physical planner's parallel region pays for its worker pool: the fact
table (``lineitem``) is the probe-side driver, so
``lower(..., parallelism=4)`` produces::

    Exchange merge=aggregate [4 partitions]
      HashAggregate ... (partial)
        FusedSelectProject ...
          HashJoin ...
            ParallelScan lineitem [4 morsels]
            Scan orders              <- build side, evaluated once

and :mod:`repro.exec.parallel` forks one worker per morsel (the build
side is evaluated in the parent and inherited copy-on-write; only tiny
partial-aggregate states travel back).

**Gate** (CI): on a machine with >= 4 CPU cores the parallel run must
beat serial by >= 1.5x.  On fewer cores real speedup is physically
unavailable, so the documented fallback gate is *non-regression*:
parallel execution may pay fork/IPC overhead but must stay within 2x of
serial (speedup >= 0.5x), and results must be identical — bit-for-bit,
floats included (exact summation makes the merge order-independent).

Run standalone for the CI gate::

    PYTHONPATH=src python benchmarks/bench_parallel.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py
"""

import os
import random

import pytest

from repro.algebra.ast import Aggregate, Join, Selection, TableRef
from repro.core.aggregation import agg_avg, agg_count, agg_sum
from repro.core.expressions import Const, Eq, Gt, Leq, Var
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation

N_ORDERS = 20_000
FANOUT = 20  # 400k lineitem rows: enough work to amortize the fork
PARALLELISM = 4

#: speedup gate with >= 4 cores; non-regression bound below that
PARALLEL_GATE = 1.5
FALLBACK_GATE = 0.5


def det_db(n_orders: int = N_ORDERS, seed: int = 1) -> DetDatabase:
    rng = random.Random(seed)
    orders = DetRelation(
        ["o_id", "o_status"],
        [(i, rng.choice("OFP")) for i in range(n_orders)],
    )
    lineitem = DetRelation(
        ["l_orderkey", "l_qty", "l_price"],
        [
            (rng.randrange(n_orders), rng.randint(1, 50), rng.randint(100, 1000))
            for _ in range(n_orders * FANOUT)
        ],
    )
    return DetDatabase({"lineitem": lineitem, "orders": orders})


def join_agg_plan():
    """``SELECT o_status, sum(l_price), count(*), avg(l_qty) FROM
    lineitem JOIN orders ON l_orderkey = o_id WHERE l_qty > 10 AND
    l_price <= 900 GROUP BY o_status`` — lineitem written on the left so
    it is the probe-side parallel driver."""
    joined = Join(
        TableRef("lineitem"),
        TableRef("orders"),
        Eq(Var("l_orderkey"), Var("o_id")),
    )
    filtered = Selection(
        joined, Gt(Var("l_qty"), Const(10)) & Leq(Var("l_price"), Const(900))
    )
    return Aggregate(
        filtered,
        ["o_status"],
        [agg_sum("l_price", "rev"), agg_count("n"), agg_avg("l_qty", "avg_qty")],
    )


@pytest.fixture(scope="module")
def det():
    return det_db()


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_parallel_join_aggregate(benchmark, det, parallelism):
    plan = join_agg_plan()
    evaluate_det(plan, det, backend="vectorized", parallelism=parallelism)
    benchmark(
        lambda: evaluate_det(
            plan, det, backend="vectorized", parallelism=parallelism
        )
    )


def main() -> int:
    from repro.experiments.common import time_call

    db = det_db()
    plan = join_agg_plan()
    cores = os.cpu_count() or 1

    def run(parallelism: int):
        return evaluate_det(
            plan, db, backend="vectorized", parallelism=parallelism
        )

    run(1), run(PARALLELISM)  # warm scan caches and compiled predicates
    t_serial, r_serial = time_call(lambda: run(1), repeat=3)
    t_parallel, r_parallel = time_call(lambda: run(PARALLELISM), repeat=3)
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")

    gate = PARALLEL_GATE if cores >= PARALLELISM else FALLBACK_GATE
    mode = (
        f">= {PARALLEL_GATE:.1f}x speedup ({cores} cores)"
        if cores >= PARALLELISM
        else f"non-regression fallback >= {FALLBACK_GATE:.1f}x ({cores} core(s) "
        f"< {PARALLELISM}: no real speedup available)"
    )
    failures = []
    if r_parallel.rows != r_serial.rows:
        failures.append("parallel result differs from serial")
    if speedup < gate:
        failures.append(f"speedup {speedup:.2f}x below the gate ({mode})")

    print(
        f"morsel-parallel det join+aggregate: {N_ORDERS} orders x{FANOUT} "
        f"lineitems, parallelism {PARALLELISM}, gate: {mode}"
    )
    print(f"{'serial[s]':>10} {'parallel[s]':>12} {'speedup':>9} {'groups':>7}")
    print(
        f"{t_serial:>10.4f} {t_parallel:>12.4f} {speedup:>8.2f}x "
        f"{len(r_parallel):>7}"
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
