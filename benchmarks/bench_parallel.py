"""Morsel-parallel vectorized execution vs serial — det AND AU engines.

A TPC-H-style join + aggregate (the Fig. 12 shape) big enough that the
physical planner's parallel region pays for its workers: the fact table
(``lineitem``) is the probe-side driver, so ``lower(..., parallelism=4)``
produces (det shown; the AU plan swaps the partial aggregate for
``AUPartialAggregate`` and the merge for ``au_aggregate``)::

    Exchange merge=aggregate [4 partitions]
      HashAggregate ... (partial)
        FusedSelectProject ...
          HashJoin ...
            ParallelScan lineitem [4 morsels]
            Scan orders              <- build side, evaluated once

The deterministic lane executes through the ``evaluate_det`` shim (one
ephemeral connection per call — per-query forked workers).  The AU lane
holds a long-lived :class:`repro.session.Connection` and a
``PreparedQuery``, so repeated executions reuse the session's
**persistent worker pool**: the gate checks the
``repro_parallel_pool_*`` counters to prove the timed runs re-dispatch
to already-forked workers instead of forking per query.

**Gates** (CI): on a machine with >= 4 CPU cores the parallel run must
beat serial by >= 1.5x on *both* engines.  On fewer cores real speedup
is physically unavailable, so the documented fallback gate is
*non-regression*: parallel execution may pay fork/IPC overhead but must
stay within 2x of serial (speedup >= 0.5x).  The detected core count
and which gate applied are recorded in the printed output **and** in
the machine-readable ``BENCH_parallel.json`` artifact — a downgraded
gate is always visible, never silent.

Results must be identical at every parallelism — bit-for-bit, floats
included (exact Shewchuk summation makes every merge order-independent).
The identity section checks parallelism {1, 2, 4} on both AU executors
(tuple interpreter and vectorized runtime) against each other on a
scaled-down instance with the region-size threshold pinned to zero.

Run standalone for the CI gate::

    PYTHONPATH=src python benchmarks/bench_parallel.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py
"""

import os
import random

import pytest

from repro.algebra.ast import Aggregate, Join, Selection, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_avg, agg_count, agg_sum
from repro.core.expressions import Const, Eq, Gt, Leq, Var
from repro.core.ranges import between
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.session import connect

N_ORDERS = 20_000
FANOUT = 20  # 400k lineitem rows: enough work to amortize the fork
PARALLELISM = 4

#: AU instance: smaller (range arithmetic is heavier per row), ~5% of
#: measure values uncertain, join keys and the group-by column certain
#: so the partial aggregation stays partitionable
N_ORDERS_AU = 2_000
FANOUT_AU = 15
AU_UNCERTAINTY = 0.05
#: scaled-down instance for the cross-parallelism identity check (the
#: tuple AU interpreter participates, so it must stay small)
N_ORDERS_IDENT = 150

#: speedup gate with >= 4 cores; non-regression bound below that
PARALLEL_GATE = 1.5
FALLBACK_GATE = 0.5

_POOL_COUNTERS = (
    "repro_parallel_pool_forks_total",
    "repro_parallel_pool_reuses_total",
    "repro_parallel_pool_invalidations_total",
    "repro_parallel_tasks_total",
)


def det_db(n_orders: int = N_ORDERS, seed: int = 1) -> DetDatabase:
    rng = random.Random(seed)
    orders = DetRelation(
        ["o_id", "o_status"],
        [(i, rng.choice("OFP")) for i in range(n_orders)],
    )
    lineitem = DetRelation(
        ["l_orderkey", "l_qty", "l_price"],
        [
            (rng.randrange(n_orders), rng.randint(1, 50), rng.randint(100, 1000))
            for _ in range(n_orders * FANOUT)
        ],
    )
    return DetDatabase({"lineitem": lineitem, "orders": orders})


def au_db(
    n_orders: int = N_ORDERS_AU, fanout: int = FANOUT_AU, seed: int = 7
) -> AUDatabase:
    rng = random.Random(seed)
    orders = AURelation(["o_id", "o_status"])
    for i in range(n_orders):
        orders.add([i, rng.choice("OFP")], (1, 1, 1))
    lineitem = AURelation(["l_orderkey", "l_qty", "l_price"])
    for _ in range(n_orders * fanout):
        qty = rng.randint(1, 50)
        price = rng.randint(100, 1000)
        if rng.random() < AU_UNCERTAINTY:
            qty = between(max(1, qty - 2), qty, qty + 2)
        if rng.random() < AU_UNCERTAINTY:
            price = between(price - 50, price, price + 50)
        ann = (1, 1, 2) if rng.random() < AU_UNCERTAINTY else (1, 1, 1)
        lineitem.add([rng.randrange(n_orders), qty, price], ann)
    return AUDatabase({"orders": orders, "lineitem": lineitem})


def join_agg_plan():
    """``SELECT o_status, sum(l_price), count(*), avg(l_qty) FROM
    lineitem JOIN orders ON l_orderkey = o_id WHERE l_qty > 10 AND
    l_price <= 900 GROUP BY o_status`` — lineitem written on the left so
    it is the probe-side parallel driver."""
    joined = Join(
        TableRef("lineitem"),
        TableRef("orders"),
        Eq(Var("l_orderkey"), Var("o_id")),
    )
    filtered = Selection(
        joined, Gt(Var("l_qty"), Const(10)) & Leq(Var("l_price"), Const(900))
    )
    return Aggregate(
        filtered,
        ["o_status"],
        [agg_sum("l_price", "rev"), agg_count("n"), agg_avg("l_qty", "avg_qty")],
    )


def au_fingerprint(rel: AURelation):
    """Float-exact value identity: ``repr`` round-trips doubles, so two
    fingerprints match iff every bound/guess/annotation is bit-equal."""
    return sorted(
        (tuple(repr(v) for v in t), tuple(ann)) for t, ann in rel.tuples()
    )


def _pool_counter_values() -> dict:
    from repro import telemetry

    registry = telemetry.get_registry()
    return {name: registry.counter(name).value for name in _POOL_COUNTERS}


@pytest.fixture(scope="module")
def det():
    return det_db()


@pytest.fixture(scope="module")
def audb():
    return au_db()


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_parallel_join_aggregate(benchmark, det, parallelism):
    plan = join_agg_plan()
    evaluate_det(plan, det, backend="vectorized", parallelism=parallelism)
    benchmark(
        lambda: evaluate_det(
            plan, det, backend="vectorized", parallelism=parallelism
        )
    )


@pytest.mark.parametrize("parallelism", [1, PARALLELISM])
def test_parallel_au_join_aggregate(benchmark, audb, parallelism):
    conn = connect(
        audb,
        engine="au",
        config=EvalConfig(backend="vectorized", parallelism=parallelism),
    )
    prepared = conn.prepare(join_agg_plan())
    prepared.execute(actuals={})
    benchmark(lambda: prepared.execute(actuals={}))
    conn.close()


def _gate_for(cores: int):
    if cores >= PARALLELISM:
        return PARALLEL_GATE, f">= {PARALLEL_GATE:.1f}x speedup ({cores} cores)"
    return FALLBACK_GATE, (
        f"non-regression fallback >= {FALLBACK_GATE:.1f}x ({cores} core(s) "
        f"< {PARALLELISM}: no real speedup available)"
    )


def _det_section(failures, gate, mode):
    from repro.experiments.common import time_call

    db = det_db()
    plan = join_agg_plan()

    def run(parallelism: int):
        return evaluate_det(
            plan, db, backend="vectorized", parallelism=parallelism
        )

    run(1), run(PARALLELISM)  # warm scan caches and compiled predicates
    t_serial, r_serial = time_call(lambda: run(1), repeat=3)
    t_parallel, r_parallel = time_call(lambda: run(PARALLELISM), repeat=3)
    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    if r_parallel.rows != r_serial.rows:
        failures.append("det: parallel result differs from serial")
    if speedup < gate:
        failures.append(
            f"det: speedup {speedup:.2f}x below the gate ({mode})"
        )
    return {
        "serial_s": round(t_serial, 6),
        "parallel_s": round(t_parallel, 6),
        "speedup": round(speedup, 4),
        "groups": len(r_parallel),
    }


def _au_section(failures, gate, mode):
    """AU gate over a persistent session: times the prepared-query path
    (``actuals={}`` bypasses the result memo so the executor really
    runs) and checks the pool counters for amortization — after the
    warm-up fork, the timed repeats must reuse workers, not fork."""
    from repro.experiments.common import time_call

    db = au_db()
    plan = join_agg_plan()
    conn = connect(
        db,
        engine="au",
        config=EvalConfig(backend="vectorized", parallelism=PARALLELISM),
    )
    par = conn.prepare(plan)
    ser = conn.prepare(plan, EvalConfig(backend="vectorized", parallelism=1))
    r_serial = ser.execute(actuals={})
    r_parallel = par.execute(actuals={})  # warm-up: forks the pool once
    before = _pool_counter_values()
    t_serial, r_serial = time_call(lambda: ser.execute(actuals={}), repeat=3)
    t_parallel, r_parallel = time_call(
        lambda: par.execute(actuals={}), repeat=3
    )
    after = _pool_counter_values()
    pool = {k: after[k] - before[k] for k in _POOL_COUNTERS}
    conn.close()

    speedup = t_serial / t_parallel if t_parallel > 0 else float("inf")
    if au_fingerprint(r_parallel) != au_fingerprint(r_serial):
        failures.append("au: parallel result differs from serial")
    if speedup < gate:
        failures.append(f"au: speedup {speedup:.2f}x below the gate ({mode})")
    if hasattr(os, "fork"):
        if pool["repro_parallel_pool_forks_total"] != 0:
            failures.append(
                "au: timed repeats forked the pool "
                f"({pool['repro_parallel_pool_forks_total']} forks after warm-up)"
            )
        if pool["repro_parallel_pool_reuses_total"] < 3:
            failures.append(
                "au: persistent pool not reused across repeated executions "
                f"({pool['repro_parallel_pool_reuses_total']} reuses)"
            )
    return {
        "serial_s": round(t_serial, 6),
        "parallel_s": round(t_parallel, 6),
        "speedup": round(speedup, 4),
        "groups": len(r_parallel),
        "pool_counters_during_timing": pool,
    }


def _identity_section(failures):
    """Bit-identity across parallelism {1, 2, 4} on both AU executors.

    Runs on a scaled-down instance with ``PARALLEL_MIN_ROWS`` pinned to
    0 so the parallel region engages even at this size; the tuple
    interpreter ignores the parallelism knob by construction, which is
    exactly the claim being certified (any setting ≡ serial)."""
    import repro.exec.parallel as par

    db = au_db(N_ORDERS_IDENT, 8, seed=13)
    plan = join_agg_plan()
    saved = par.PARALLEL_MIN_ROWS
    par.PARALLEL_MIN_ROWS = 0
    try:
        prints = {}
        for backend in ("tuple", "vectorized"):
            for parallelism in (1, 2, 4):
                result = evaluate_audb(
                    plan,
                    db,
                    EvalConfig(backend=backend, parallelism=parallelism),
                )
                prints[(backend, parallelism)] = au_fingerprint(result)
    finally:
        par.PARALLEL_MIN_ROWS = saved
    reference = prints[("vectorized", 1)]
    identical = all(fp == reference for fp in prints.values())
    if not identical:
        bad = sorted(k for k, fp in prints.items() if fp != reference)
        failures.append(
            f"au: results not bit-identical across executors/parallelism: {bad}"
        )
    return {
        "executors": ["tuple", "vectorized"],
        "parallelism": [1, 2, 4],
        "rows": len(reference),
        "identical": identical,
    }


def main() -> int:
    from _results import write_result

    cores = os.cpu_count() or 1
    gate, mode = _gate_for(cores)
    failures = []

    det = _det_section(failures, gate, mode)
    au = _au_section(failures, gate, mode)
    identity = _identity_section(failures)

    print(
        f"morsel-parallel join+aggregate, parallelism {PARALLELISM}, "
        f"{cores} core(s) detected, gate: {mode}"
    )
    print(
        f"{'engine':<6} {'serial[s]':>10} {'parallel[s]':>12} "
        f"{'speedup':>9} {'groups':>7}"
    )
    for engine, row in (("det", det), ("au", au)):
        print(
            f"{engine:<6} {row['serial_s']:>10.4f} {row['parallel_s']:>12.4f} "
            f"{row['speedup']:>8.2f}x {row['groups']:>7}"
        )
    pool = au["pool_counters_during_timing"]
    print(
        "au pool during timing: "
        f"{pool['repro_parallel_pool_forks_total']} forks, "
        f"{pool['repro_parallel_pool_reuses_total']} reuses, "
        f"{pool['repro_parallel_tasks_total']} tasks"
    )
    print(
        f"identity {{tuple,vectorized}} x parallelism {{1,2,4}}: "
        f"{'ok' if identity['identical'] else 'MISMATCH'} "
        f"({identity['rows']} rows)"
    )
    for failure in failures:
        print(f"FAIL: {failure}")

    path = write_result(
        "parallel",
        {
            "benchmark": "parallel",
            "cores_detected": cores,
            "parallelism": PARALLELISM,
            "gate": gate,
            "gate_mode": mode,
            "det": det,
            "au": au,
            "identity": identity,
            "failures": failures,
        },
    )
    print(f"results: {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
