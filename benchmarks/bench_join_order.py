"""Cost-based (DP) vs greedy join ordering.

Two workloads, both written the way the middleware receives them — a
conjunctive selection over cross products:

* the **uniform 3-way equi-join** from ``bench_optimizer`` (Fig. 14/16
  tables), where greedy already finds a good left-deep chain.  The gate
  here is a non-regression: the DP planner must not be slower (within a
  noise tolerance) on plans greedy handles well;
* a **skewed 4-way join**: the two smallest tables share a one-distinct
  join key, so greedy — which orders leaves by base cardinality alone —
  starts with a cartesian-like blow-up, while the per-column catalog
  lets DP see the skew and defer that edge until the selective edges
  have shrunk the other side.  The gate is a >=2x win.

Run standalone for the CI gate::

    PYTHONPATH=src python benchmarks/bench_join_order.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_join_order.py
"""

import pytest

from repro.algebra.ast import CrossProduct, Selection, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.expressions import Const, Var
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.experiments.fig16_multijoin import _make_table

N_ROWS = 50
UNCERTAINTY = 0.03

#: "never slower" wall-clock gate, with headroom for timer noise on
#: plans where both strategies pick (near-)identical trees
NOISE_TOLERANCE = 1.5


# ----------------------------------------------------------------------
# workload 1: the uniform 3-way join of bench_optimizer
# ----------------------------------------------------------------------
def uniform_audb(n_rows: int = N_ROWS) -> AUDatabase:
    return AUDatabase(
        {
            f"t{i}": _make_table(n_rows, UNCERTAINTY, seed=50 + i, index=i)
            for i in range(3)
        }
    )


def _sgw(audb: AUDatabase) -> DetDatabase:
    det = DetDatabase({})
    for name, rel in audb.relations.items():
        d = DetRelation(rel.schema)
        for row, mult in rel.selected_guess_world().items():
            d.add(row, mult)
        det[name] = d
    return det


def three_way_join_plan(n_rows: int = N_ROWS):
    return Selection(
        CrossProduct(CrossProduct(TableRef("t0"), TableRef("t1")), TableRef("t2")),
        (Var("t0_b") == Var("t1_a"))
        & (Var("t1_b") == Var("t2_a"))
        & (Var("t0_a") <= Const(n_rows // 4)),
    )


# ----------------------------------------------------------------------
# workload 2: the skewed 4-way join
# ----------------------------------------------------------------------
def skewed_db(scale: int = 1) -> DetDatabase:
    """R is the smallest table but shares a constant (one-distinct) join
    key with S; the S–T and T–U edges are key–foreign-key selective."""
    n = 400 * scale
    r = DetRelation(["r_b", "r_x"], [(0, i) for i in range(40 * scale)])
    s = DetRelation(["s_b", "s_c"], [(0, i) for i in range(n)])
    t = DetRelation(["t_c", "t_d"], [(i, i) for i in range(n)])
    u = DetRelation(["u_d", "u_e"], [(i, i) for i in range(60 * scale)])
    return DetDatabase({"R": r, "S": s, "T": t, "U": u})


def skewed_join_plan():
    return Selection(
        CrossProduct(
            CrossProduct(CrossProduct(TableRef("R"), TableRef("S")), TableRef("T")),
            TableRef("U"),
        ),
        (Var("r_b") == Var("s_b"))
        & (Var("s_c") == Var("t_c"))
        & (Var("t_d") == Var("u_d")),
    )


# ----------------------------------------------------------------------
# pytest-benchmark targets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def audb():
    return uniform_audb()


@pytest.fixture(scope="module")
def det(audb):
    return _sgw(audb)


@pytest.fixture(scope="module")
def skew():
    return skewed_db()


@pytest.mark.parametrize("join_order", ["greedy", "dp"])
def test_det_three_way(benchmark, det, join_order):
    plan = three_way_join_plan()
    benchmark(lambda: evaluate_det(plan, det, join_order=join_order))


@pytest.mark.parametrize("join_order", ["greedy", "dp"])
def test_audb_three_way(benchmark, audb, join_order):
    plan = three_way_join_plan()
    config = EvalConfig(join_order=join_order)
    benchmark(lambda: evaluate_audb(plan, audb, config))


@pytest.mark.parametrize("join_order", ["greedy", "dp"])
def test_det_skewed_four_way(benchmark, skew, join_order):
    plan = skewed_join_plan()
    benchmark(lambda: evaluate_det(plan, skew, join_order=join_order))


# ----------------------------------------------------------------------
# CI gate
# ----------------------------------------------------------------------
def main() -> int:
    from repro.experiments.common import time_call

    failures = []
    rows = []

    audb = uniform_audb()
    det = _sgw(audb)
    plan3 = three_way_join_plan()
    uniform_runs = [
        ("det 3-way", lambda jo: evaluate_det(plan3, det, join_order=jo)),
        (
            "audb 3-way",
            lambda jo: evaluate_audb(plan3, audb, EvalConfig(join_order=jo)),
        ),
    ]
    for label, run in uniform_runs:
        t_greedy, r_greedy = time_call(lambda: run("greedy"), repeat=5)
        t_dp, r_dp = time_call(lambda: run("dp"), repeat=5)
        ratio = t_greedy / t_dp if t_dp > 0 else float("inf")
        rows.append((label, t_greedy, t_dp, ratio))
        if _result_bag(r_greedy) != _result_bag(r_dp):
            failures.append(f"{label}: DP result differs from greedy")
        if t_dp > t_greedy * NOISE_TOLERANCE:
            failures.append(
                f"{label}: DP {t_dp:.4f}s slower than greedy {t_greedy:.4f}s "
                f"(tolerance {NOISE_TOLERANCE}x)"
            )

    skew = skewed_db()
    plan4 = skewed_join_plan()
    t_greedy, r_greedy = time_call(
        lambda: evaluate_det(plan4, skew, join_order="greedy"), repeat=3
    )
    t_dp, r_dp = time_call(
        lambda: evaluate_det(plan4, skew, join_order="dp"), repeat=3
    )
    speedup = t_greedy / t_dp if t_dp > 0 else float("inf")
    rows.append(("det 4-way skew", t_greedy, t_dp, speedup))
    if r_greedy.rows != r_dp.rows:
        failures.append("det 4-way skew: DP result differs from greedy")
    if speedup < 2.0:
        failures.append(
            f"det 4-way skew: DP speedup {speedup:.1f}x below the 2x bar"
        )

    print("join ordering: greedy vs cost-based DP")
    print(f"{'workload':<16} {'greedy[s]':>10} {'dp[s]':>10} {'greedy/dp':>10}")
    for label, tg, td, ratio in rows:
        print(f"{label:<16} {tg:>10.4f} {td:>10.4f} {ratio:>9.1f}x")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def _result_bag(result):
    return dict(result.tuples()) if hasattr(result, "_rows") else dict(result.rows)


if __name__ == "__main__":
    raise SystemExit(main())
