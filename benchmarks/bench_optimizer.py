"""Logical-optimizer benchmark on the Fig. 14/16 multi-join workloads.

A 3-way equi-join written the way the paper's middleware receives it — a
conjunctive selection over cross products — evaluated by both engines with
the shared logical optimizer on and off.  The optimizer pushes the
selective predicate into the scan, promotes the cross products to hash
equi-joins, and orders them by cardinality, turning an
O(|t0|·|t1|·|t2|) interpretation into a linear pipeline.

Run standalone for a speedup report (asserts the >=2x acceptance bar)::

    PYTHONPATH=src python benchmarks/bench_optimizer.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_optimizer.py
"""

import pytest

from repro.algebra.ast import CrossProduct, Selection, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.expressions import Const, Var
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation
from repro.experiments.fig16_multijoin import _make_table, make_chain

N_ROWS = 50
UNCERTAINTY = 0.03


def _au_db(n_rows: int = N_ROWS) -> AUDatabase:
    return AUDatabase(
        {
            f"t{i}": _make_table(n_rows, UNCERTAINTY, seed=50 + i, index=i)
            for i in range(3)
        }
    )


def _det_db(audb: AUDatabase) -> DetDatabase:
    det = DetDatabase({})
    for name, rel in audb.relations.items():
        d = DetRelation(rel.schema)
        for row, mult in rel.selected_guess_world().items():
            d.add(row, mult)
        det[name] = d
    return det


def three_way_join_plan(n_rows: int = N_ROWS):
    """``t0 ⋈ t1 ⋈ t2`` written naively as σ_∧(t0 × t1 × t2) with a
    selective filter — the shape the optimizer exists to fix."""
    return Selection(
        CrossProduct(CrossProduct(TableRef("t0"), TableRef("t1")), TableRef("t2")),
        (Var("t0_b") == Var("t1_a"))
        & (Var("t1_b") == Var("t2_a"))
        & (Var("t0_a") <= Const(n_rows // 4)),
    )


@pytest.fixture(scope="module")
def audb():
    return _au_db()


@pytest.fixture(scope="module")
def det(audb):
    return _det_db(audb)


@pytest.mark.parametrize("optimize", [False, True], ids=["naive", "optimized"])
def test_det_three_way_join(benchmark, det, optimize):
    plan = three_way_join_plan()
    benchmark(lambda: evaluate_det(plan, det, optimize=optimize))


@pytest.mark.parametrize("optimize", [False, True], ids=["naive", "optimized"])
def test_audb_three_way_join(benchmark, audb, optimize):
    plan = three_way_join_plan()
    config = EvalConfig(optimize=optimize)
    benchmark(lambda: evaluate_audb(plan, audb, config))


@pytest.mark.parametrize("optimize", [False, True], ids=["naive", "optimized"])
def test_audb_filtered_chain(benchmark, audb, optimize):
    """Fig. 16 join chain with a selective filter on top: pushdown +
    reordering shrink every intermediate."""
    plan = Selection(make_chain(2), Var("t2_b") <= Const(N_ROWS // 5))
    config = EvalConfig(optimize=optimize)
    benchmark(lambda: evaluate_audb(plan, audb, config))


def main() -> int:
    from repro.experiments.common import time_call

    audb = _au_db()
    det = _det_db(audb)
    plan = three_way_join_plan()
    rows = []
    failures = []
    for engine, run in (
        ("det", lambda opt: evaluate_det(plan, det, optimize=opt)),
        ("audb", lambda opt: evaluate_audb(plan, audb, EvalConfig(optimize=opt))),
    ):
        t_naive, r_naive = time_call(lambda: run(False))
        t_opt, r_opt = time_call(lambda: run(True))
        speedup = t_naive / t_opt if t_opt > 0 else float("inf")
        rows.append((engine, t_naive, t_opt, speedup, len(r_naive)))
        if dict(r_naive.tuples() if engine == "audb" else r_naive.rows.items()) != dict(
            r_opt.tuples() if engine == "audb" else r_opt.rows.items()
        ):
            failures.append(f"{engine}: optimized result differs")
        if speedup < 2.0:
            failures.append(f"{engine}: speedup {speedup:.1f}x below the 2x bar")

    print(f"3-way equi-join, {N_ROWS} rows/table, uncertainty {UNCERTAINTY:.0%}")
    print(f"{'engine':<6} {'naive[s]':>10} {'optimized[s]':>13} {'speedup':>9} {'tuples':>7}")
    for engine, t_naive, t_opt, speedup, n in rows:
        print(f"{engine:<6} {t_naive:>10.3f} {t_opt:>13.4f} {speedup:>8.1f}x {n:>7}")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
