"""Figure 10a: PDBench SPJ queries across systems, varying uncertainty.

Regenerates the paper's runtime-ratio-vs-Det series.  Each benchmark runs
one system over the three PDBench SPJ queries at one uncertainty level;
compare the group means to read off the ratios.
"""

import pytest

from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.baselines.libkin import evaluate_libkin, null_db_from_xdb
from repro.baselines.maybms import evaluate_maybms_possible
from repro.baselines.mcdb import run_mcdb
from repro.baselines.uadb import UADatabase, evaluate_uadb
from repro.core.relation import AUDatabase
from repro.db.engine import evaluate_det
from repro.tpch.pdbench import make_pdbench
from repro.tpch.queries import pdbench_spj_queries

QUERIES = pdbench_spj_queries()
AUDB_CONFIG = EvalConfig(join_buckets=32, aggregation_buckets=32)
UNCERTAINTIES = [0.02, 0.10, 0.30]


@pytest.fixture(scope="module", params=UNCERTAINTIES, ids=lambda u: f"u{int(u*100)}")
def instance(request):
    return make_pdbench(scale=0.2, uncertainty=request.param)


def test_det(benchmark, instance):
    world = instance.selected_world()
    benchmark(lambda: [evaluate_det(q, world) for q in QUERIES.values()])


def test_uadb(benchmark, instance):
    uadb = UADatabase.from_xdb(instance.xdb)
    benchmark(lambda: [evaluate_uadb(q, uadb) for q in QUERIES.values()])


def test_audb(benchmark, instance):
    audb = AUDatabase(instance.audb().relations)
    benchmark(
        lambda: [evaluate_audb(q, audb, AUDB_CONFIG) for q in QUERIES.values()]
    )


def test_libkin(benchmark, instance):
    db = null_db_from_xdb(instance.xdb)
    benchmark(lambda: [evaluate_libkin(q, db) for q in QUERIES.values()])


def test_maybms(benchmark, instance):
    benchmark(
        lambda: [
            evaluate_maybms_possible(q, instance.xdb) for q in QUERIES.values()
        ]
    )


def test_mcdb(benchmark, instance):
    benchmark(
        lambda: [run_mcdb(q, instance.xdb, n_samples=10) for q in QUERIES.values()]
    )
