"""Query-session benchmark: prepare-once serving vs the cold pipeline.

The serving regime the session layer exists for: the same parameterized
point-join SQL answered over and over with changing bindings.  The warm
path holds one :class:`repro.session.Connection`, so every call after
the first is a plan-cache hit (bind parameters into the cached physical
plan, execute); the cold path opens a fresh connection per call and pays
parse + optimize (DP join enumeration over the 8-way chain) + lower
every time.  Results must be identical call by call.

Run standalone for a throughput report (asserts the >=5x acceptance
bar)::

    PYTHONPATH=src python benchmarks/bench_session.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_session.py
"""

import time

import pytest

from repro.db.storage import DetDatabase, DetRelation
from repro.session import Connection

N_TABLES = 8
N_ROWS = 120
N_CALLS = 40

SQL = (
    "SELECT "
    + ", ".join(f"b{i}" for i in range(N_TABLES))
    + " FROM "
    + ", ".join(f"t{i}" for i in range(N_TABLES))
    + " WHERE "
    + " AND ".join(f"b{i} = a{i + 1}" for i in range(N_TABLES - 1))
    + " AND a0 = ?"
)


def make_db(n_rows: int = N_ROWS) -> DetDatabase:
    """A key–foreign-key chain t0 -> t1 -> ... -> t5."""
    db = DetDatabase({})
    for i in range(N_TABLES):
        rel = DetRelation([f"a{i}", f"b{i}"])
        for j in range(n_rows):
            rel.add((j, (j * 7 + i) % n_rows), 1)
        db[f"t{i}"] = rel
    return db


def run_warm(db: DetDatabase, keys, verify=None) -> list:
    conn = Connection(db, verify=verify)
    return [conn.execute(SQL, [k]) for k in keys]


def run_cold(db: DetDatabase, keys) -> list:
    # a fresh session per call: full parse/optimize/lower every time
    # (what every caller paid before the session layer existed)
    return [Connection(db).execute(SQL, [k]) for k in keys]


@pytest.fixture(scope="module")
def db():
    return make_db()


def test_warm_prepared_serving(benchmark, db):
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS)]
    benchmark(lambda: run_warm(db, keys))


def test_cold_pipeline_serving(benchmark, db):
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS)]
    benchmark(lambda: run_cold(db, keys))


def verify_overhead_main() -> int:
    """Gate the cost of plan verification on the warm prepared path.

    Verification (schema re-inference after every optimizer pass, the
    semiring-safety lint, verify_physical after lowering) runs at
    prepare/lower time only, so on a cache-hit-dominated serving loop
    it must cost <= 5%.  Measured over a 4x serving window (one prepare
    amortized the way the serving regime actually amortizes it), with
    the two modes interleaved and best-of-5 per mode to shave scheduler
    noise.
    """
    db = make_db()
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS * 4)]
    run_warm(db, keys[:2])  # warm up statistics harvest

    # paired rounds: off/on measured back to back so load drift hits
    # both sides of a ratio equally; take the best-behaved round
    ratios = []
    t_off = t_on = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        run_warm(db, keys, verify=False)
        off = time.perf_counter() - start
        start = time.perf_counter()
        run_warm(db, keys, verify=True)
        on = time.perf_counter() - start
        ratios.append(on / off if off > 0 else float("inf"))
        t_off, t_on = min(t_off, off), min(t_on, on)
    results_off = run_warm(db, keys, verify=False)
    results_on = run_warm(db, keys, verify=True)

    n = len(keys)
    ratio = min(ratios)
    print(
        f"warm prepared serving, verification off: {t_off / n * 1e3:.3f} ms/query"
    )
    print(
        f"warm prepared serving, verification on : {t_on / n * 1e3:.3f} ms/query"
    )
    print(f"overhead ratio: {ratio:.3f}x  (gate: <=1.05x)")
    failures = []
    if ratio > 1.05:
        failures.append(f"verification overhead {ratio:.3f}x exceeds the 1.05x bar")
    for i, (a, b) in enumerate(zip(results_off, results_on)):
        if a.schema != b.schema or a.rows != b.rows:
            failures.append(f"call {i}: verified result differs from unverified")
            break
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def telemetry_overhead_main() -> int:
    """Gate the cost of telemetry on the warm prepared path.

    Three modes of the same serving loop, measured pairwise against the
    plain connection (best-of-5 interleaved rounds, like
    :func:`verify_overhead_main`):

    * **features on, tracing off** — an :class:`~repro.telemetry.EventLog`
      attached and the slow-query log armed (threshold high enough that
      nothing trips), ``trace=False``.  This is the disabled-tracing
      path the executors pay one global-load-and-None-check per node
      for; gate <= 1.05x.
    * **tracing on** — ``trace=True``, a full span tree per query; the
      documented cost of turning it on; gate <= 1.5x.

    Results must be identical across all modes.
    """
    from repro import telemetry as tm

    db = make_db()
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS * 4)]
    run_warm(db, keys[:2])  # warm up statistics harvest

    def run_mode(mode: str) -> list:
        if mode == "plain":
            conn = Connection(db)
        elif mode == "features":
            conn = Connection(db, trace=False, events=True)
            tm.configure_slow_log(threshold=3600.0)
        else:  # traced
            conn = Connection(db, trace=True)
        try:
            return [conn.execute(SQL, [k]) for k in keys]
        finally:
            if mode == "features":
                tm.configure_slow_log()
                conn.events.close()

    best = {"plain": float("inf"), "features": float("inf"), "traced": float("inf")}
    ratios = {"features": [], "traced": []}
    for _ in range(5):
        timed = {}
        for mode in ("plain", "features", "traced"):
            start = time.perf_counter()
            run_mode(mode)
            timed[mode] = time.perf_counter() - start
            best[mode] = min(best[mode], timed[mode])
        for mode in ("features", "traced"):
            ratios[mode].append(
                timed[mode] / timed["plain"]
                if timed["plain"] > 0
                else float("inf")
            )

    n = len(keys)
    print(f"warm prepared serving, plain           : {best['plain'] / n * 1e3:.3f} ms/query")
    print(f"warm prepared serving, telemetry (off) : {best['features'] / n * 1e3:.3f} ms/query")
    print(f"warm prepared serving, tracing on      : {best['traced'] / n * 1e3:.3f} ms/query")
    gates = {"features": 1.05, "traced": 1.5}
    failures = []
    for mode, gate in gates.items():
        ratio = min(ratios[mode])
        print(f"{mode} overhead ratio: {ratio:.3f}x  (gate: <={gate}x)")
        if ratio > gate:
            failures.append(
                f"{mode} telemetry overhead {ratio:.3f}x exceeds the {gate}x bar"
            )
    reference = run_mode("plain")
    for mode in ("features", "traced"):
        for i, (a, b) in enumerate(zip(reference, run_mode(mode))):
            if a.schema != b.schema or a.rows != b.rows:
                failures.append(f"call {i}: {mode} result differs from plain")
                break
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


def main() -> int:
    db = make_db()
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS)]

    # warm-up both paths once (statistics harvest etc.), then time
    run_warm(db, keys[:2])
    run_cold(db, keys[:2])

    start = time.perf_counter()
    warm_results = run_warm(db, keys)
    t_warm = time.perf_counter() - start

    start = time.perf_counter()
    cold_results = run_cold(db, keys)
    t_cold = time.perf_counter() - start

    failures = []
    for i, (w, c) in enumerate(zip(warm_results, cold_results)):
        if w.schema != c.schema or w.rows != c.rows:
            failures.append(f"call {i}: warm result differs from cold")
            break

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    per_warm = t_warm / N_CALLS * 1e3
    per_cold = t_cold / N_CALLS * 1e3
    print(
        f"repeated parameterized point-join ({N_TABLES}-way chain, "
        f"{N_ROWS} rows/table, {N_CALLS} calls)"
    )
    print(f"cold pipeline : {per_cold:8.3f} ms/query")
    print(f"prepare+cache : {per_warm:8.3f} ms/query")
    print(f"speedup       : {speedup:8.1f}x  (gate: >=5x)")
    if speedup < 5.0:
        failures.append(f"speedup {speedup:.1f}x below the 5x bar")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    import sys

    if "--verify-overhead" in sys.argv[1:]:
        raise SystemExit(verify_overhead_main())
    if "--telemetry-overhead" in sys.argv[1:]:
        raise SystemExit(telemetry_overhead_main())
    raise SystemExit(main())
