"""Query-session benchmark: prepare-once serving vs the cold pipeline.

The serving regime the session layer exists for: the same parameterized
point-join SQL answered over and over with changing bindings.  The warm
path holds one :class:`repro.session.Connection`, so every call after
the first is a plan-cache hit (bind parameters into the cached physical
plan, execute); the cold path opens a fresh connection per call and pays
parse + optimize (DP join enumeration over the 8-way chain) + lower
every time.  Results must be identical call by call.

Run standalone for a throughput report (asserts the >=5x acceptance
bar)::

    PYTHONPATH=src python benchmarks/bench_session.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_session.py
"""

import time

import pytest

from repro.db.storage import DetDatabase, DetRelation
from repro.session import Connection

N_TABLES = 8
N_ROWS = 120
N_CALLS = 40

SQL = (
    "SELECT "
    + ", ".join(f"b{i}" for i in range(N_TABLES))
    + " FROM "
    + ", ".join(f"t{i}" for i in range(N_TABLES))
    + " WHERE "
    + " AND ".join(f"b{i} = a{i + 1}" for i in range(N_TABLES - 1))
    + " AND a0 = ?"
)


def make_db(n_rows: int = N_ROWS) -> DetDatabase:
    """A key–foreign-key chain t0 -> t1 -> ... -> t5."""
    db = DetDatabase({})
    for i in range(N_TABLES):
        rel = DetRelation([f"a{i}", f"b{i}"])
        for j in range(n_rows):
            rel.add((j, (j * 7 + i) % n_rows), 1)
        db[f"t{i}"] = rel
    return db


def run_warm(db: DetDatabase, keys) -> list:
    conn = Connection(db)
    return [conn.execute(SQL, [k]) for k in keys]


def run_cold(db: DetDatabase, keys) -> list:
    # a fresh session per call: full parse/optimize/lower every time
    # (what every caller paid before the session layer existed)
    return [Connection(db).execute(SQL, [k]) for k in keys]


@pytest.fixture(scope="module")
def db():
    return make_db()


def test_warm_prepared_serving(benchmark, db):
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS)]
    benchmark(lambda: run_warm(db, keys))


def test_cold_pipeline_serving(benchmark, db):
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS)]
    benchmark(lambda: run_cold(db, keys))


def main() -> int:
    db = make_db()
    keys = [(i * 13) % N_ROWS for i in range(N_CALLS)]

    # warm-up both paths once (statistics harvest etc.), then time
    run_warm(db, keys[:2])
    run_cold(db, keys[:2])

    start = time.perf_counter()
    warm_results = run_warm(db, keys)
    t_warm = time.perf_counter() - start

    start = time.perf_counter()
    cold_results = run_cold(db, keys)
    t_cold = time.perf_counter() - start

    failures = []
    for i, (w, c) in enumerate(zip(warm_results, cold_results)):
        if w.schema != c.schema or w.rows != c.rows:
            failures.append(f"call {i}: warm result differs from cold")
            break

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    per_warm = t_warm / N_CALLS * 1e3
    per_cold = t_cold / N_CALLS * 1e3
    print(
        f"repeated parameterized point-join ({N_TABLES}-way chain, "
        f"{N_ROWS} rows/table, {N_CALLS} calls)"
    )
    print(f"cold pipeline : {per_cold:8.3f} ms/query")
    print(f"prepare+cache : {per_warm:8.3f} ms/query")
    print(f"speedup       : {speedup:8.1f}x  (gate: >=5x)")
    if speedup < 5.0:
        failures.append(f"speedup {speedup:.1f}x below the 5x bar")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
