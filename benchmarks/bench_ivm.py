"""Incremental view maintenance benchmark: subscribe() vs re-execution.

The serving shape IVM exists for: a join + group-by aggregate view over
a large fact table, read after every write of a 100-write stream.  The
maintained path holds one ``Connection.subscribe()`` view — each write
delta-joins a single tuple against the small dimension side and folds
the result into the aggregate partials (O(|S|) work per write), so the
per-read cost is just finalizing the partials.  The baseline re-executes
the same prepared query after every write and pays the full O(|R|) scan
+ join + aggregation each time.  Results must match write for write.

Run standalone for a throughput report (asserts the >=10x acceptance
bar)::

    PYTHONPATH=src python benchmarks/bench_ivm.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_ivm.py
"""

import time

import pytest

from repro.db.storage import DetDatabase, DetRelation
from repro.session import Connection

N_FACT = 15_000
N_DIM = 64
N_WRITES = 100

SQL = (
    "SELECT d, SUM(b) AS total, COUNT(*) AS n "
    "FROM r, s WHERE a = c GROUP BY d"
)


def make_db(n_fact: int = N_FACT, n_dim: int = N_DIM) -> DetDatabase:
    """A fact table r(a, b) joining a small dimension s(c, d)."""
    db = DetDatabase({})
    r = DetRelation(("a", "b"))
    for i in range(n_fact):
        r.add((i % n_dim, float(i % 97)), 1 + (i % 3))
    s = DetRelation(("c", "d"))
    for j in range(n_dim):
        s.add((j, j % 8), 1)
    db["r"] = r
    db["s"] = s
    return db


def write_stream(n_writes: int = N_WRITES):
    """A deterministic insert/delete-interleaved stream against ``r``."""
    ops = []
    for i in range(n_writes):
        if i % 3 == 2:
            # every third op removes what the previous op inserted
            ops.append(("delete", ops[-1][1], 1))
        else:
            t = ((i * 7) % N_DIM, float((i * 13) % 97) + 0.5)
            ops.append(("add", t, 1))
    return ops


def run_maintained(db: DetDatabase, ops) -> list:
    conn = Connection(db)
    view = conn.subscribe(SQL)
    out = []
    for op, t, m in ops:
        getattr(db["r"], op)(t, m)
        out.append(view.result())
    view.close()
    return out


def run_reexecute(db: DetDatabase, ops) -> list:
    conn = Connection(db)
    prepared = conn.prepare(SQL)
    out = []
    for op, t, m in ops:
        getattr(db["r"], op)(t, m)
        out.append(prepared.execute())
    return out


@pytest.fixture()
def dbs():
    return make_db(), make_db()


def test_maintained_view_stream(benchmark, dbs):
    ops = write_stream()
    benchmark(lambda: run_maintained(dbs[0], ops))


def test_reexecuted_view_stream(benchmark, dbs):
    ops = write_stream()
    benchmark(lambda: run_reexecute(dbs[1], ops))


def main() -> int:
    ops = write_stream()

    # warm-up on throwaway databases (statistics harvest, plan cache)
    run_maintained(make_db(), ops[:4])
    run_reexecute(make_db(), ops[:4])

    db_m = make_db()
    start = time.perf_counter()
    maintained = run_maintained(db_m, ops)
    t_m = time.perf_counter() - start

    db_r = make_db()
    start = time.perf_counter()
    reexecuted = run_reexecute(db_r, ops)
    t_r = time.perf_counter() - start

    failures = []
    for i, (a, b) in enumerate(zip(maintained, reexecuted)):
        if a.schema != b.schema or sorted(
            repr(x) for x in a.tuples()
        ) != sorted(repr(x) for x in b.tuples()):
            failures.append(f"write {i}: maintained view differs from fresh")
            break

    speedup = t_r / t_m if t_m > 0 else float("inf")
    print(
        f"join+aggregate view over r({N_FACT} rows) ⋈ s({N_DIM} rows), "
        f"{N_WRITES}-write stream, read after every write"
    )
    print(f"re-execute per write : {t_r / N_WRITES * 1e3:8.3f} ms/write")
    print(f"maintained view      : {t_m / N_WRITES * 1e3:8.3f} ms/write")
    print(f"speedup              : {speedup:8.1f}x  (gate: >=10x)")
    if speedup < 10.0:
        failures.append(f"speedup {speedup:.1f}x below the 10x bar")
    for f in failures:
        print(f"FAIL: {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
