"""Vectorized columnar backend vs the tuple-at-a-time interpreter.

A TPC-H-style join + aggregate at a small scale factor — the Fig. 12
query shape (orders ⋈ lineitem, selective filter, group-by with
SUM/COUNT/AVG) that dominates every Fig. 10–17 workload's runtime:

* **Det engine gate (≥3x)**: the vectorized backend (fused compiled
  predicates, hash join with column gathers, single-pass hash
  aggregation) must beat the tuple interpreter by at least 3x on the
  same optimized plan.  Measured ~4x at this scale.
* **AU engine gate (non-regression)**: the AU pipeline vectorizes the
  linear operators but falls back to the exact tuple aggregation
  (SG-combining semantics), so the win is smaller; the gate only
  requires it never to lose.  Measured ~1.3x.

Both backends must return identical results (integer measures, so even
SUM/AVG are bit-exact).

Run standalone for the CI gate::

    PYTHONPATH=src python benchmarks/bench_vectorized.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_vectorized.py
"""

import random

import pytest

from repro.algebra.ast import Aggregate, Join, Selection, TableRef
from repro.algebra.evaluator import EvalConfig, evaluate_audb
from repro.core.aggregation import agg_avg, agg_count, agg_sum
from repro.core.expressions import Const, Eq, Gt, Leq, Var
from repro.core.ranges import between
from repro.core.relation import AUDatabase, AURelation
from repro.db.engine import evaluate_det
from repro.db.storage import DetDatabase, DetRelation

N_ORDERS = 2000
FANOUT = 4
N_ORDERS_AU = 400
UNCERTAINTY = 0.05

DET_GATE = 3.0
#: AU non-regression gate, with headroom for timer noise
AU_GATE = 0.8


def det_db(n_orders: int = N_ORDERS, seed: int = 1) -> DetDatabase:
    rng = random.Random(seed)
    orders = DetRelation(
        ["o_id", "o_custkey", "o_status"],
        [(i, rng.randrange(200), rng.choice("OFP")) for i in range(n_orders)],
    )
    lineitem = DetRelation(
        ["l_orderkey", "l_qty", "l_price", "l_disc"],
        [
            (
                rng.randrange(n_orders),
                rng.randint(1, 50),
                rng.randint(100, 1000),
                rng.randint(0, 10),
            )
            for _ in range(n_orders * FANOUT)
        ],
    )
    return DetDatabase({"orders": orders, "lineitem": lineitem})


def au_db(n_orders: int = N_ORDERS_AU, seed: int = 1) -> AUDatabase:
    rng = random.Random(seed)
    orders = AURelation(["o_id", "o_custkey", "o_status"])
    for i in range(n_orders):
        orders.add([i, rng.randrange(200), rng.choice("OFP")], (1, 1, 1))
    lineitem = AURelation(["l_orderkey", "l_qty", "l_price", "l_disc"])
    for _ in range(n_orders * FANOUT):
        qty = rng.randint(1, 50)
        if rng.random() < UNCERTAINTY:
            qty = between(max(1, qty - 2), qty, qty + 2)
        lineitem.add(
            [rng.randrange(n_orders), qty, rng.randint(100, 1000), rng.randint(0, 10)],
            (1, 1, 1),
        )
    return AUDatabase({"orders": orders, "lineitem": lineitem})


def join_agg_plan():
    """``SELECT o_status, sum(l_price), count(*), avg(l_qty) FROM orders
    JOIN lineitem ON o_id = l_orderkey WHERE l_qty > 10 AND l_price <=
    900 GROUP BY o_status``."""
    joined = Join(
        TableRef("orders"),
        TableRef("lineitem"),
        Eq(Var("o_id"), Var("l_orderkey")),
    )
    filtered = Selection(
        joined, Gt(Var("l_qty"), Const(10)) & Leq(Var("l_price"), Const(900))
    )
    return Aggregate(
        filtered,
        ["o_status"],
        [agg_sum("l_price", "rev"), agg_count("n"), agg_avg("l_qty", "avg_qty")],
    )


@pytest.fixture(scope="module")
def det():
    return det_db()


@pytest.fixture(scope="module")
def audb():
    return au_db()


@pytest.mark.parametrize("backend", ["tuple", "vectorized"])
def test_det_join_aggregate(benchmark, det, backend):
    plan = join_agg_plan()
    evaluate_det(plan, det, backend=backend)  # warm caches / compile
    benchmark(lambda: evaluate_det(plan, det, backend=backend))


@pytest.mark.parametrize("backend", ["tuple", "vectorized"])
def test_audb_join_aggregate(benchmark, audb, backend):
    plan = join_agg_plan()
    config = EvalConfig(backend=backend)
    evaluate_audb(plan, audb, config)
    benchmark(lambda: evaluate_audb(plan, audb, config))


def main() -> int:
    from repro.experiments.common import time_call

    det = det_db()
    audb = au_db()
    plan = join_agg_plan()

    rows = []
    failures = []
    for engine, gate, run in (
        ("det", DET_GATE, lambda backend: evaluate_det(plan, det, backend=backend)),
        (
            "audb",
            AU_GATE,
            lambda backend: evaluate_audb(plan, audb, EvalConfig(backend=backend)),
        ),
    ):
        run("tuple"), run("vectorized")  # warm scan caches and compile
        t_tuple, r_tuple = time_call(lambda: run("tuple"), repeat=3)
        t_vec, r_vec = time_call(lambda: run("vectorized"), repeat=3)
        speedup = t_tuple / t_vec if t_vec > 0 else float("inf")
        rows.append((engine, t_tuple, t_vec, speedup, len(r_vec)))
        if engine == "det":
            same = r_tuple.rows == r_vec.rows
        else:
            same = dict(r_tuple.tuples()) == dict(r_vec.tuples())
        if not same:
            failures.append(f"{engine}: vectorized result differs")
        if speedup < gate:
            failures.append(
                f"{engine}: speedup {speedup:.2f}x below the {gate:.1f}x bar"
            )

    print(
        f"TPC-H-style join+aggregate: {N_ORDERS} orders x{FANOUT} lineitems (det), "
        f"{N_ORDERS_AU} orders (AU, {UNCERTAINTY:.0%} uncertain)"
    )
    print(f"{'engine':<6} {'tuple[s]':>10} {'vectorized[s]':>14} {'speedup':>9} {'groups':>7}")
    for engine, t_tuple, t_vec, speedup, n in rows:
        print(f"{engine:<6} {t_tuple:>10.4f} {t_vec:>14.4f} {speedup:>8.2f}x {n:>7}")
    for failure in failures:
        print(f"FAIL: {failure}")

    from _results import write_result

    write_result(
        "vectorized",
        {
            "benchmark": "vectorized",
            "gates": {"det": DET_GATE, "audb": AU_GATE},
            "results": {
                engine: {
                    "tuple_s": round(t_tuple, 6),
                    "vectorized_s": round(t_vec, 6),
                    "speedup": round(speedup, 4),
                    "groups": n,
                }
                for engine, t_tuple, t_vec, speedup, n in rows
            },
            "failures": failures,
        },
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
