"""Figure 15: aggregation accuracy pipeline (x-DB -> AU-DB -> group-by sum
vs exact ground truth).  The timed portion is the full accuracy pipeline;
the measured accuracy series is printed by
``python -m repro.experiments.fig15_agg_accuracy``.
"""

import pytest

from repro.experiments.fig15_agg_accuracy import run


@pytest.mark.parametrize("uncertainty", [0.02, 0.05], ids=lambda u: f"u{int(u*100)}")
def test_accuracy_pipeline(benchmark, uncertainty):
    rows = benchmark(
        lambda: run(
            n_rows=400,
            uncertainties=(uncertainty,),
            range_fractions=(0.02, 0.08),
        )
    )
    for row in rows:
        assert row["range_overestimation"] >= 1.0
        assert row["over_grouping_pct"] >= 0.0
