"""``python -m repro`` — a small interactive demo shell.

Loads the COVID running example (or an uncertain TPC-H instance with
``--tpch``) and evaluates SQL typed at the prompt against both the
selected-guess world (``Det``) and the AU-DB, so the effect of uncertainty
tracking is visible side by side.

The shell runs over two long-lived :class:`repro.session.Connection`
objects (one per engine), so re-running a query hits the plan cache and
skips parse/optimize/lower; ``--repl`` forces the interactive loop even
when a query is given on the command line.  Observability hooks:
``--explain-analyze`` prints the physical plan with per-operator actual
rows and times, ``--trace-out FILE`` dumps the last query trace as Chrome
trace-event JSON (load via ``chrome://tracing`` or Perfetto), and in the
REPL ``\\timing`` toggles per-query wall-clock display, ``\\metrics``
prints the process-wide metrics registry plus the session counters, and
``\\storage`` prints each table's chunk-store footprint in bytes (also
published as the ``repro_storage_bytes`` gauge).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import analysis, telemetry
from .algebra.evaluator import EvalConfig
from .core.ranges import between
from .core.relation import AUDatabase, AURelation
from .exec import BACKENDS
from .experiments.common import session_pair
from .sql.parser import SqlSyntaxError


def _demo_db() -> AUDatabase:
    locales = AURelation(["locale", "rate", "size"])
    locales.add(["Los Angeles", between(3.0, 3.0, 4.0), "metro"], (1, 1, 1))
    locales.add(["Austin", 18.0, between("city", "city", "metro")], (1, 1, 1))
    locales.add(["Houston", 14.0, "metro"], (1, 1, 1))
    locales.add(["Berlin", between(1.0, 3.0, 3.0), between("city", "town", "town")], (1, 1, 1))
    locales.add(["Sacramento", 1.0, between("city", "town", "village")], (1, 1, 1))
    locales.add(["Springfield", between(0.0, 5.0, 100.0), "town"], (1, 1, 1))
    return AUDatabase({"locales": locales})


def _tpch_db(scale: float, uncertainty: float) -> AUDatabase:
    from .tpch.pdbench import make_pdbench

    instance = make_pdbench(scale=scale, uncertainty=uncertainty)
    return AUDatabase(instance.audb().relations)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    parser.add_argument("--tpch", action="store_true", help="load uncertain TPC-H")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--uncertainty", type=float, default=0.05)
    parser.add_argument(
        "--no-optimize",
        action="store_true",
        help="evaluate the plan exactly as written (skip the logical optimizer)",
    )
    parser.add_argument(
        "--join-order",
        choices=["dp", "greedy"],
        default="dp",
        help="join enumeration strategy: cost-based bushy DP (default) or "
        "the greedy cardinality heuristic",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="tuple",
        help="physical execution backend: the tuple-at-a-time interpreter "
        "(default) or the vectorized columnar runtime (repro.exec)",
    )
    parser.add_argument(
        "--parallelism",
        type=int,
        default=1,
        help="morsel-parallel workers for the deterministic vectorized "
        "backend (1 = serial; results are identical at any setting)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the (optimized) logical plan and the lowered physical "
        "plan with estimated and, after execution, actual per-node rows",
    )
    parser.add_argument(
        "--explain-analyze",
        action="store_true",
        help="execute with tracing and print the physical plan annotated "
        "with per-operator actual rows, estimation-error factors, and "
        "wall-clock times (both engines)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the most recent query's trace as Chrome trace-event "
        "JSON to FILE (implies tracing for shell queries)",
    )
    parser.add_argument(
        "--verify-plans",
        action="store_true",
        help="re-verify every plan after each optimizer rewrite and after "
        "lowering (the repro.analysis static checks; also enabled by "
        "REPRO_VERIFY_PLANS=1)",
    )
    parser.add_argument(
        "--repl",
        action="store_true",
        help="enter the interactive loop (also after running SQL given on "
        "the command line); one session per engine, so repeated queries "
        "hit the plan cache",
    )
    parser.add_argument("sql", nargs="*", help="run one query and exit")
    args = parser.parse_args(argv)

    if args.verify_plans:
        analysis.set_verification(True)
    audb = _tpch_db(args.scale, args.uncertainty) if args.tpch else _demo_db()
    do_optimize = not args.no_optimize
    det_conn, au_conn = session_pair(
        audb,
        det_config=EvalConfig(
            optimize=do_optimize,
            join_order=args.join_order,
            backend=args.backend,
            parallelism=args.parallelism,
        ),
        au_config=EvalConfig(
            join_buckets=64,
            aggregation_buckets=64,
            optimize=do_optimize,
            join_order=args.join_order,
            adaptive_compression=True,
            backend=args.backend,
            parallelism=args.parallelism,
        ),
    )
    if args.trace_out:
        # per-connection opt-in: traces every shell query without flipping
        # the process-wide default for library code
        det_conn.trace = True
        au_conn.trace = True
    print(f"tables: {', '.join(sorted(audb.relations))}")
    timing = {"on": False}

    def dump_trace() -> None:
        trace = det_conn.last_trace or au_conn.last_trace
        if args.trace_out and trace is not None:
            trace.write_chrome_trace(args.trace_out)
            print(f"trace written to {args.trace_out}")

    def run(sql: str) -> None:
        try:
            prepared = det_conn.prepare(sql)
        except SqlSyntaxError as exc:
            print(f"syntax error: {exc}")
            return
        except analysis.PlanVerificationError as exc:
            # the plan never compiled; with --explain, still render the
            # raw logical plan (with its unknown-table warnings) so the
            # user sees what was rejected
            if args.explain:
                from .algebra.optimizer import explain
                from .sql.parser import parse_sql

                print("-- logical plan --")
                print(explain(parse_sql(sql), det_conn.statistics()))
            print(f"error: {exc}")
            return
        if prepared.parameters:
            print(
                f"query declares parameters {prepared.parameters!r}; "
                "the shell runs literal SQL only — bind via "
                "Connection.execute(sql, params) from Python"
            )
            return
        if args.explain:
            print("-- logical plan --")
            print(prepared.explain_logical())
        try:
            actuals = {} if args.explain else None
            start = time.perf_counter()
            det_result = prepared.execute(actuals=actuals)
            det_seconds = time.perf_counter() - start
            start = time.perf_counter()
            au_result = au_conn.execute(sql)
            au_seconds = time.perf_counter() - start
        except (KeyError, TypeError, ValueError, ZeroDivisionError) as exc:
            print(f"error: {exc}")
            return
        if args.explain_analyze:
            print(prepared.explain_analyze())
            print(au_conn.explain_analyze(sql))
        if args.explain:
            print("-- logical plan (estimated vs actual rows, Det) --")
            print(prepared.explain_logical(actuals=actuals))
            print(f"-- physical plan (Det, backend={args.backend}) --")
            print(prepared.explain_physical(actuals=actuals))
        print("-- selected-guess world (Det) --")
        for t, m in sorted(det_result.tuples(), key=lambda i: repr(i[0]))[:20]:
            print(f"  {t} x{m}")
        print("-- AU-DB (with bounds) --")
        print(au_result.pretty(limit=20))
        if timing["on"]:
            print(
                f"time: det {det_seconds * 1000.0:.3f}ms, "
                f"au {au_seconds * 1000.0:.3f}ms"
            )
        dump_trace()

    def print_storage() -> None:
        from .db.chunks import storage_report

        for label, conn in (("det", det_conn), ("au", au_conn)):
            report = storage_report(conn.db)
            total = sum(report.values())
            print(f"-- storage ({label}): {total} bytes --")
            for name, bytes_ in report.items():
                print(f"  {name}: {bytes_} bytes")

    def print_metrics() -> None:
        for label, conn in (("det", det_conn), ("au", au_conn)):
            print(f"{label}: {conn.metrics.snapshot()}")
        registry_text = telemetry.get_registry().prometheus_text()
        if registry_text:
            print("-- metrics registry --")
            print(registry_text, end="")

    if args.sql:
        run(" ".join(args.sql))
        if not args.repl:
            return 0

    print(
        "type SQL (or 'quit'; '\\metrics' shows counters + registry, "
        "'\\storage' shows per-table chunk-store bytes, "
        "'\\timing' toggles per-query times):"
    )
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        if line.lower() in {"quit", "exit", "\\q"}:
            break
        if line.lower() == "\\metrics":
            print_metrics()
            continue
        if line.lower() == "\\storage":
            print_storage()
            continue
        if line.lower() == "\\timing":
            timing["on"] = not timing["on"]
            print(f"timing is {'on' if timing['on'] else 'off'}")
            continue
        run(line)
    print_metrics()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
