"""Bound-preserving relational operators over AU-relations.

This module implements the ``RA+`` query semantics of Section 7 (selection,
projection, cross product / join, union), the SG-combiner ``Ψ``
(Definition 21), and set difference (Definition 22).  Aggregation lives in
:mod:`repro.core.aggregation`.

All operators are pure functions ``AURelation -> AURelation``.  By
Theorems 3 and 4 they preserve bounds: if the inputs bound an incomplete
database, the outputs bound the query result over that database.  The
property-based tests in ``tests/test_property_bounds.py`` verify this
against brute-force possible-world evaluation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .expressions import Expression, RowView, Var
from .ranges import RangeValue
from .relation import AURelation
from .semirings import AUAnnotation, au_add, au_multiply
from .tuples import (
    AUTuple,
    merge_tuples,
    sg_tuple,
    tuple_is_certain,
    tuples_certainly_equal,
    tuples_may_equal,
)

__all__ = [
    "selection",
    "projection",
    "cross_product",
    "join",
    "union",
    "sg_combine",
    "difference",
    "rename",
    "distinct",
    "au_topk",
    "condition_annotation",
]


def condition_annotation(
    condition: Expression, valuation: Dict[str, RangeValue]
) -> AUAnnotation:
    """Evaluate a selection condition and map ``B^3 -> N^AU``.

    This is ``M_N(⟦θ⟧)`` of Definitions 19/20: each of the three boolean
    bounds becomes multiplicity ``1`` when true and ``0`` otherwise.
    """
    r = condition.eval_range(valuation)
    return (
        1 if bool(r.lb) else 0,
        1 if bool(r.sg) else 0,
        1 if bool(r.ub) else 0,
    )


def selection(rel: AURelation, condition: Expression) -> AURelation:
    """``σ_θ(R)``: multiply each annotation with ``M_N(θ(t))``.

    Tuples whose condition is certainly false (upper bound ``⊥``) are
    dropped entirely.
    """
    out = AURelation(rel.schema)
    index = RowView.index_of(rel.schema)
    for t, ann in rel.tuples():
        theta = condition_annotation(condition, RowView(index, t))
        new_ann = au_multiply(ann, theta)
        if new_ann[2] > 0:
            out.add(t, new_ann)
    return out


def projection(
    rel: AURelation,
    columns: Sequence[Tuple[Expression, str]],
) -> AURelation:
    """Generalized projection ``π_{e1→A1, ..., ek→Ak}(R)``.

    Each expression is evaluated with the range-annotated semantics
    (Definition 9); annotations of tuples that project to the same output
    tuple are summed (standard K-relation projection).
    """
    out = AURelation([name for _, name in columns])
    index = RowView.index_of(rel.schema)
    for t, ann in rel.tuples():
        valuation = RowView(index, t)
        values = [expr.eval_range(valuation) for expr, _ in columns]
        out.add(values, ann)
    return out


def project_columns(rel: AURelation, names: Sequence[str]) -> AURelation:
    """Positional projection onto named attributes."""
    return projection(rel, [(Var(n), n) for n in names])


def rename(rel: AURelation, mapping: Dict[str, str]) -> AURelation:
    """Rename attributes according to ``mapping`` (old -> new)."""
    new_schema = [mapping.get(a, a) for a in rel.schema]
    out = AURelation(new_schema)
    for t, ann in rel.tuples():
        out.add(t, ann)
    return out


def cross_product(left: AURelation, right: AURelation) -> AURelation:
    """``R × S``: annotations multiply pointwise in ``K^3``."""
    overlap = set(left.schema) & set(right.schema)
    if overlap:
        raise ValueError(
            f"cross product with overlapping attributes {sorted(overlap)}; "
            "rename first"
        )
    out = AURelation(tuple(left.schema) + tuple(right.schema))
    right_rows = list(right.tuples())
    for lt, lann in left.tuples():
        for rt, rann in right_rows:
            out.add(lt + rt, au_multiply(lann, rann))
    return out


def join(
    left: AURelation,
    right: AURelation,
    condition: Expression,
    allow_certain_hash: bool = True,
) -> AURelation:
    """Theta-join ``R ⋈_θ S`` = ``σ_θ(R × S)``.

    An equality-join fast path hashes tuples on attributes whose values
    are *certain* on both sides; tuples with uncertain join attributes
    fall back to the nested-loop interval-overlap path.  This preserves
    the exact naive semantics while avoiding quadratic work on mostly
    certain data (the fully optimized rewrite with compression lives in
    :mod:`repro.core.compression`).

    ``allow_certain_hash=False`` disables the fast path and runs the pure
    interval-overlap nested loop — the behaviour of the paper's
    *unoptimized* rewriting inside PostgreSQL (its inequality join
    conditions force nested loops), used by the Figure 14/16 baselines.
    """
    eq_pairs = _extract_equi_pairs(condition, left.schema, right.schema)
    if not eq_pairs or not allow_certain_hash:
        if eq_pairs:
            return _interval_nested_loop(left, right, condition)
        return selection(cross_product(left, right), condition)

    l_idx = [left.attr_index(a) for a, _ in eq_pairs]
    r_idx = [right.attr_index(b) for _, b in eq_pairs]

    certain_right: Dict[Tuple[Any, ...], List[Tuple[AUTuple, AUAnnotation]]] = {}
    uncertain_right: List[Tuple[AUTuple, AUAnnotation]] = []
    for rt, rann in right.tuples():
        keyvals = [rt[i] for i in r_idx]
        if all(v.is_certain for v in keyvals):
            key = tuple(v.sg for v in keyvals)
            certain_right.setdefault(key, []).append((rt, rann))
        else:
            uncertain_right.append((rt, rann))

    out = AURelation(tuple(left.schema) + tuple(right.schema))
    schema = tuple(left.schema) + tuple(right.schema)
    index = RowView.index_of(schema)
    pure_equi = _is_pure_equi_condition(condition, len(eq_pairs))

    def emit(lt: AUTuple, lann: AUAnnotation, rt: AUTuple, rann: AUAnnotation) -> None:
        combined = lt + rt
        theta = condition_annotation(condition, RowView(index, combined))
        ann = au_multiply(au_multiply(lann, rann), theta)
        if ann[2] > 0:
            out.add(combined, ann)

    def emit_equal_certain(lt: AUTuple, lann: AUAnnotation, rt: AUTuple, rann: AUAnnotation) -> None:
        # hash-matched certain keys under a pure equi-condition: the
        # condition is certainly true, no expression evaluation needed
        ann = au_multiply(lann, rann)
        if ann[2] > 0:
            out.add(lt + rt, ann)

    for lt, lann in left.tuples():
        keyvals = [lt[i] for i in l_idx]
        if all(v.is_certain for v in keyvals):
            key = tuple(v.sg for v in keyvals)
            fast = emit_equal_certain if pure_equi else emit
            for rt, rann in certain_right.get(key, ()):  # hash path
                fast(lt, lann, rt, rann)
        else:
            # uncertain key on the left: may match any certain right tuple
            for bucket in certain_right.values():
                for rt, rann in bucket:
                    if _key_overlaps(keyvals, [rt[i] for i in r_idx]):
                        emit(lt, lann, rt, rann)
        for rt, rann in uncertain_right:
            if _key_overlaps(keyvals, [rt[i] for i in r_idx]):
                emit(lt, lann, rt, rann)
    return out


def _interval_nested_loop(
    left: AURelation, right: AURelation, condition: Expression
) -> AURelation:
    """Pure interval-overlap nested-loop join (no hashing)."""
    schema = tuple(left.schema) + tuple(right.schema)
    out = AURelation(schema)
    index = RowView.index_of(schema)
    right_rows = list(right.tuples())
    for lt, lann in left.tuples():
        for rt, rann in right_rows:
            combined = lt + rt
            theta = condition_annotation(condition, RowView(index, combined))
            ann = au_multiply(au_multiply(lann, rann), theta)
            if ann[2] > 0:
                out.add(combined, ann)
    return out


def _key_overlaps(a: Sequence[RangeValue], b: Sequence[RangeValue]) -> bool:
    return all(x.overlaps(y) for x, y in zip(a, b))


def _extract_equi_pairs(
    condition: Expression,
    left_schema: Sequence[str],
    right_schema: Sequence[str],
) -> List[Tuple[str, str]]:
    """Find ``L.a = R.b`` conjuncts usable for hash joining."""
    from .expressions import And, Eq  # local import avoids cycle at import time

    left_set, right_set = set(left_schema), set(right_schema)
    pairs: List[Tuple[str, str]] = []

    def walk(e: Expression) -> None:
        if isinstance(e, And):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, Eq):
            lhs, rhs = e.left, e.right
            if isinstance(lhs, Var) and isinstance(rhs, Var):
                if lhs.name in left_set and rhs.name in right_set:
                    pairs.append((lhs.name, rhs.name))
                elif rhs.name in left_set and lhs.name in right_set:
                    pairs.append((rhs.name, lhs.name))

    walk(condition)
    return pairs


def _is_pure_equi_condition(condition: Expression, n_pairs: int) -> bool:
    """Is the condition exactly a conjunction of ``Var = Var`` equalities?

    When true, hash-matched tuples with certain keys satisfy the condition
    certainly, so ``M_N(θ) = (1,1,1)`` without evaluating the expression.
    """
    from .expressions import And, Eq

    count = 0

    def walk(e: Expression) -> bool:
        nonlocal count
        if isinstance(e, And):
            return walk(e.left) and walk(e.right)
        if isinstance(e, Eq) and isinstance(e.left, Var) and isinstance(e.right, Var):
            count += 1
            return True
        return False

    return walk(condition) and count == n_pairs


def union(left: AURelation, right: AURelation) -> AURelation:
    """``R ∪ S``: annotations of identical tuples add pointwise."""
    if len(left.schema) != len(right.schema):
        raise ValueError("union requires union-compatible schemas")
    out = AURelation(left.schema)
    for t, ann in left.tuples():
        out.add(t, ann)
    for t, ann in right.tuples():
        out.add(t, ann)
    return out


def sg_combine(rel: AURelation) -> AURelation:
    """The SG-combiner ``Ψ`` (Definition 21).

    Groups tuples by their SG attribute values; each group collapses to a
    single tuple whose attribute ranges are the minimum bounding box of
    the group and whose annotation is the pointwise sum.
    """
    groups: Dict[Tuple[Any, ...], Tuple[AUTuple, AUAnnotation]] = {}
    for t, ann in rel.tuples():
        key = sg_tuple(t)
        if key in groups:
            prev_t, prev_ann = groups[key]
            groups[key] = (merge_tuples(prev_t, t), au_add(prev_ann, ann))
        else:
            groups[key] = (t, ann)
    out = AURelation(rel.schema)
    for t, ann in groups.values():
        out.add(t, ann)
    return out


def difference(left: AURelation, right: AURelation) -> AURelation:
    """Set difference ``R − S`` (Definition 22).

    After SG-combining the left input, each surviving tuple's bounds are::

        lb := Ψ(R)(t).lb ∸ Σ_{t ≃ t'} S(t').ub      (pessimistic: any
                                                     overlapping tuple may
                                                     cancel it)
        sg := Ψ(R)(t).sg ∸ Σ_{t.sg = t'.sg} S(t').sg (SG world semantics)
        ub := Ψ(R)(t).ub ∸ Σ_{t ≡ t'} S(t').lb       (optimistic: only
                                                     certainly equal tuples
                                                     must cancel it)

    where ``∸`` is the truncating monus of ``N``.  Tuples with resulting
    upper bound 0 are dropped.
    """
    if len(left.schema) != len(right.schema):
        raise ValueError("difference requires union-compatible schemas")
    combined = sg_combine(left)
    right_rows = list(right.tuples())
    right_by_sg: Dict[Tuple[Any, ...], int] = {}
    for rt, rann in right_rows:
        key = sg_tuple(rt)
        right_by_sg[key] = right_by_sg.get(key, 0) + rann[1]

    out = AURelation(left.schema)
    for t, (lb, sg, ub) in combined.tuples():
        overlap_ub = 0
        certain_lb = 0
        for rt, rann in right_rows:
            if tuples_may_equal(t, rt):
                overlap_ub += rann[2]
                if tuples_certainly_equal(t, rt):
                    certain_lb += rann[0]
        new_lb = max(0, lb - overlap_ub)
        new_sg = max(0, sg - right_by_sg.get(sg_tuple(t), 0))
        new_ub = max(0, ub - certain_lb)
        if new_ub > 0:
            out.add(t, (new_lb, min(new_sg, new_ub), new_ub))
    return out


def au_topk(rel: AURelation, keys: Sequence[str], descending: bool, n: int) -> AURelation:
    """Bound-preserving ``ORDER BY keys [DESC] LIMIT n`` over an AU-relation.

    **Certain-key case** (every row's order-key attributes are certain):
    a true top-k is sound.  Sort rows by key (with a deterministic
    content tie-break) and bound, per row, how many of its copies can
    survive in the top-k of *any* world bounded by ``rel``:

    * ``ub' = min(ub, n − Σ lb`` over rows whose keys *strictly precede*
      this row's ``)`` — at least that many slots are certainly taken by
      strictly better rows in every world (tie-broken copies of equal
      keys may always lose to this row, so ties are excluded);
    * ``lb' = max(0, min(lb, n − Σ ub`` over *other* rows whose keys
      precede or tie ``))`` — at most that many slots can be taken
      before this row in the worst world (ties may win against it);
    * ``sg'`` replays the deterministic engine's top-k over the SG
      multiplicities, so the selected-guess world of the result equals
      ``ORDER BY … LIMIT n`` over the input's SG world exactly.

    Rows whose adjusted upper bound is 0 are dropped.  The bounds above
    bracket the replayed SG take (``lb ≤ sg`` and strict-prefix sums are
    below tie-inclusive prefix sums), so annotations stay valid.

    **Remaining unsound-to-prune case**: when any order key is uncertain
    the rank of a row differs across worlds, so the only sound result
    without a per-row rank analysis is the identity (every input row, a
    sound superset) — which is what this function then returns.  Bare
    ``LIMIT`` without ORDER BY likewise stays the identity in the AU
    engine: its deterministic tuple-order tie-break is arbitrary and
    carries no semantics to preserve under uncertainty.
    """
    from .ranges import domain_key

    key_idx = [rel.attr_index(k) for k in keys]
    rows = list(rel.tuples())
    if any(not t[i].is_certain for t, _ann in rows for i in key_idx):
        return rel  # uncertain order key: identity is the only sound choice

    # deterministic order: primary sort on the (certain) key values —
    # reversed for DESC — with a stable full-content tie-break so the
    # result is independent of the input's row order
    def content_key(item):
        t, _ann = item
        return (
            tuple(domain_key(v.sg) for v in t),
            tuple(domain_key(v.lb) for v in t),
            tuple(domain_key(v.ub) for v in t),
        )

    rows.sort(key=content_key)
    rows.sort(
        key=lambda item: tuple(domain_key(item[0][i].sg) for i in key_idx),
        reverse=descending,
    )

    # group rows by equal key values to form the prefix sums
    key_of = lambda item: tuple(domain_key(item[0][i].sg) for i in key_idx)
    out = AURelation(rel.schema)
    remaining_sg = n
    strict_lb = 0  # Σ lb of rows with strictly better keys
    prefix_ub = 0  # Σ ub of rows with better-or-tied keys (incl. current group)
    pos = 0
    while pos < len(rows):
        group_end = pos
        group_key = key_of(rows[pos])
        group_ub = 0
        while group_end < len(rows) and key_of(rows[group_end]) == group_key:
            group_ub += rows[group_end][1][2]
            group_end += 1
        prefix_ub += group_ub
        for t, (lb, sg, ub) in rows[pos:group_end]:
            take = min(sg, remaining_sg) if remaining_sg > 0 else 0
            remaining_sg -= take
            new_ub = min(ub, n - strict_lb)
            if new_ub > 0:
                tied_others_ub = prefix_ub - ub
                new_lb = max(0, min(lb, n - tied_others_ub))
                out.add(t, (new_lb, min(max(take, new_lb), new_ub), new_ub))
        strict_lb += sum(lb for _t, (lb, _sg, _ub) in rows[pos:group_end])
        if strict_lb >= n:
            break
        pos = group_end
    return out


def distinct(rel: AURelation) -> AURelation:
    """Duplicate elimination ``δ(R)``.

    SG-combines first (one output per SG tuple), then applies ``δ_N``.
    The lower bound stays 1 only if the tuple certainly exists *and* its
    attributes are certain.  The upper bound clamps to 1 only for
    attribute-certain tuples: a range-annotated tuple may represent up to
    ``ub`` *distinct* values in a world, all of which survive duplicate
    elimination, so its possible multiplicity cannot shrink.
    """
    combined = sg_combine(rel)
    out = AURelation(rel.schema)
    for t, (lb, sg, ub) in combined.tuples():
        new_lb = 1 if lb > 0 and tuple_is_certain(t) else 0
        new_ub = min(ub, 1) if tuple_is_certain(t) else ub
        out.add(t, (new_lb, min(sg, 1, new_ub), new_ub))
    return out
