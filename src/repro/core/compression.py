"""Compression operators trading bound tightness for performance.

Section 10.4/10.5 of the paper: joins over AU-relations degenerate into
interval-overlap joins (potentially quadratic) when attribute bounds are
loose.  The mitigation splits each input into

* ``split_sg(R)`` — the selected-guess portion with all attribute
  uncertainty removed (hash-joinable), and
* ``split_up(R)`` — a possible-only portion carrying ``(0, 0, ub)``
  annotations,

and compresses the possible portion with ``Cpr_{A,n}`` into at most ``n``
bucket tuples (minimum bounding boxes with summed upper bounds).  Both
transformations preserve bounds (Lemmas 6 and 7), so the optimized join
``opt(R ⋈ S) = (split_sg(R) ⋈ split_sg(S)) ∪ (Cpr(split_up(R)) ⋈
Cpr(split_up(S)))`` is bound preserving but (deliberately) looser.

The aggregation analogue compresses the possible contributors before the
group-overlap join (Section 10.5).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .expressions import Expression
from .operators import condition_annotation, join as naive_join, union
from .ranges import RangeValue, domain_key, domain_max, domain_min
from .relation import AURelation
from .semirings import AUAnnotation, au_multiply
from .tuples import AUTuple, merge_tuples, tuple_is_certain

__all__ = [
    "split_sg",
    "split_up",
    "compress",
    "optimized_join",
    "recommended_buckets",
]


def recommended_buckets(
    est_left_rows: float, est_right_rows: float, budget: Optional[int]
) -> Optional[int]:
    """Compression-budget placement policy for one join.

    Given the optimizer's estimated input cardinalities and the
    configured per-join budget ``CT``, decide what the AU evaluator
    should actually spend on this join:

    * ``None`` (skip compression) when both inputs are estimated to fit
      within the budget — ``Cpr_{A,n}`` is the identity below ``n``
      tuples, so the split/box rewrite could only *loosen* bounds while
      costing an extra pass; the naive join is at least as fast and
      strictly tighter;
    * the full budget otherwise — large inputs are where the possible
      side degenerates into a quadratic interval join, which is exactly
      what the paper's ``opt(·)`` rewrite exists to cap.

    The returned value is a *hint*: evaluation stays bound-preserving
    whichever branch is taken (Lemma 10.1 for the compressed join, the
    plain Theorem 3 semantics for the naive one).
    """
    if budget is None:
        return None
    if max(est_left_rows, est_right_rows) <= budget:
        return None
    return budget


def split_sg(rel: AURelation) -> AURelation:
    """``split_sg(R)``: SG tuples with attribute uncertainty removed.

    Every tuple with non-zero SG multiplicity contributes its SG values as
    a fully certain tuple.  Its lower bound survives only when the original
    attribute values were certain (otherwise the lower bound moves to the
    possible side, conservatively 0); the upper bound collapses to the SG
    multiplicity (the possible overhang moves to :func:`split_up`).
    """
    out = AURelation(rel.schema)
    for t, (lb, sg, ub) in rel.tuples():
        if sg == 0:
            continue
        certain_values = tuple(RangeValue(v.sg, v.sg, v.sg) for v in t)
        new_lb = lb if tuple_is_certain(t) else 0
        out.add(certain_values, (min(new_lb, sg), sg, sg))
    return out


def split_up(rel: AURelation) -> AURelation:
    """``split_up(R)``: the possible-only over-approximation.

    Keeps every tuple's ranges but zeroes the lower/SG multiplicities,
    retaining only the possible upper bound.
    """
    out = AURelation(rel.schema)
    for t, (_lb, _sg, ub) in rel.tuples():
        if ub > 0:
            out.add(t, (0, 0, ub))
    return out


def compress(rel: AURelation, attribute: str, buckets: int) -> AURelation:
    """``Cpr_{A,n}(R)``: compress to at most ``n`` bucket tuples.

    Tuples are ordered by the SG value of ``attribute`` and partitioned
    into ``n`` roughly equal buckets; each bucket collapses into a single
    tuple whose attribute ranges are the bucket's minimum bounding box and
    whose annotation is ``(0, 0, Σ ub)`` (Lemma 7 shows this preserves
    bounds; SG information is not preserved, which is fine because
    ``split_up`` outputs carry no SG multiplicity).
    """
    if buckets <= 0:
        raise ValueError("bucket count must be positive")
    rows = list(rel.tuples())
    if len(rows) <= buckets:
        out = AURelation(rel.schema)
        for t, (_lb, _sg, ub) in rows:
            out.add(t, (0, 0, ub))
        return out

    attr_i = rel.attr_index(attribute)
    rows.sort(key=lambda item: domain_key(item[0][attr_i].sg))
    out = AURelation(rel.schema)
    bucket_size = -(-len(rows) // buckets)  # ceil division
    for start in range(0, len(rows), bucket_size):
        chunk = rows[start : start + bucket_size]
        box, _ = chunk[0]
        total_ub = 0
        for t, (_lb, _sg, ub) in chunk:
            box = merge_tuples(box, t)
            total_ub += ub
        if total_ub > 0:
            out.add(box, (0, 0, total_ub))
    return out


def optimized_join(
    left: AURelation,
    right: AURelation,
    condition: Expression,
    left_compress_on: str,
    right_compress_on: str,
    buckets: int = 32,
) -> AURelation:
    """``opt(R ⋈_θ S)`` (Section 10.4, Lemma 10.1).

    The SG parts hash-join on certain values; the possible parts are
    compressed to ``buckets`` tuples each before the interval join, so the
    possible side contributes at most ``buckets²`` (typically ``buckets``)
    result tuples regardless of input size.

    Because ``split_up`` retains each tuple's *full* possible upper bound
    (it is not reduced by the SG multiplicity), the possible-side join
    alone over-approximates every world's join result; the SG-side join
    supplies the SGW and the certain lower bounds.  Cross terms are
    therefore unnecessary, exactly as in the paper's ``opt(·)`` rewrite.
    """
    sg_part = naive_join(split_sg(left), split_sg(right), condition)
    poss_left = compress(split_up(left), left_compress_on, buckets)
    poss_right = compress(split_up(right), right_compress_on, buckets)
    poss_part = naive_join(poss_left, poss_right, condition)
    return union(sg_part, poss_part)
