"""Set-semantics (``B^AU``) evaluation over AU-relations.

The paper defines AU-DBs for any l-semiring; besides bags (``N``) the most
important instance is set semantics (``B``, Section 3.1).  A ``B^AU``
annotation is a triple of booleans ``(certainly in, in the SGW, possibly
in)``.

We piggyback on the bag machinery: booleans embed into ``N`` as ``{0, 1}``
and every ``B`` operation is the corresponding ``N`` operation followed by
clamping to ``{0, 1}`` (``∨ = min(a + b, 1)``, ``∧ = min(a·b, 1)``,
``a ∸ b = min(max(a - b, 0), 1)``).  So each set operator below runs the
bag operator and then re-normalizes annotations.

Unlike bag ``distinct``, clamping the upper bound to 1 is always sound
here: under set semantics a tuple matching distributes *boolean* (not
counted) membership, so one range-annotated tuple with possible-bound ⊤
can cover arbitrarily many distinct world tuples (the lub in ``B`` is
disjunction, not addition).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Sequence, Set, Tuple

from . import operators as bag_ops
from .expressions import Expression
from .relation import AURelation
from .tuples import tuple_is_certain

__all__ = [
    "normalize",
    "set_selection",
    "set_projection",
    "set_union",
    "set_join",
    "set_difference",
    "set_bounds_world",
]


def normalize(rel: AURelation) -> AURelation:
    """Clamp annotations into ``B^AU`` (after merging SG-equivalent tuples).

    The lower bound survives only for tuples with certain attribute values
    — an attribute-uncertain tuple might coincide with another tuple's
    value in some world, where set semantics would merge them (the same
    caveat as bag ``distinct``).
    """
    combined = bag_ops.sg_combine(rel)
    out = AURelation(rel.schema)
    for t, (lb, sg, ub) in combined.tuples():
        new_lb = 1 if lb > 0 and tuple_is_certain(t) else 0
        new_sg = min(sg, 1)
        new_ub = min(ub, 1)
        out.add(t, (new_lb, max(new_sg, new_lb), new_ub))
    return out


def set_selection(rel: AURelation, condition: Expression) -> AURelation:
    return normalize(bag_ops.selection(rel, condition))


def set_projection(rel: AURelation, columns) -> AURelation:
    return normalize(bag_ops.projection(rel, columns))


def set_union(left: AURelation, right: AURelation) -> AURelation:
    return normalize(bag_ops.union(left, right))


def set_join(left: AURelation, right: AURelation, condition: Expression) -> AURelation:
    return normalize(bag_ops.join(left, right, condition))


def set_difference(left: AURelation, right: AURelation) -> AURelation:
    """``R − S`` under set semantics (Definition 22 instantiated at ``B``).

    The boolean monus ``a ∧ ¬b`` is truncating subtraction on ``{0, 1}``,
    so normalizing both inputs and running the bag difference implements
    the ``B^AU`` semantics."""
    return normalize(bag_ops.difference(normalize(left), normalize(right)))


def set_bounds_world(rel: AURelation, world: Set[Tuple[Any, ...]]) -> bool:
    """Does a ``B^AU`` relation bound a *set* world? (Definition 16 at B)

    Boolean tuple matchings distribute set membership: every world tuple
    must be covered by some possible AU-tuple, and every AU-tuple with
    certain lower bound ⊤ must cover at least one world tuple.
    """
    from .tuples import tuple_bounds

    rows = list(rel.tuples())
    for world_tuple in world:
        if not any(
            ub > 0 and tuple_bounds(t, world_tuple)
            for t, (_lb, _sg, ub) in rows
        ):
            return False
    for t, (lb, _sg, _ub) in rows:
        if lb > 0 and not any(tuple_bounds(t, w) for w in world):
            return False
    return True
