"""Bound-preserving aggregation over AU-relations (Section 9).

Aggregation functions are *commutative monoids* (Section 9.1): ``SUM``,
``MIN``, ``MAX`` (``COUNT`` is ``SUM`` of the constant 1; ``AVG`` derives
from ``SUM``/``COUNT``).  Tuple multiplicities are folded into aggregate
values with the bound-preserving operator ``⊛`` (Definition 23, proven
sound by Theorem 5) — the paper shows a true ``K^AU``-semimodule cannot be
bound preserving (Lemma 3), so ``⊛`` deliberately violates the semimodule
laws while preserving bounds.

Group-by handling follows the *default grouping strategy* (Definition 24):
one output tuple per selected-guess group; every input tuple is assigned to
the output of its SG group, and contributes to the aggregate bounds of
every output whose merged group-by box its own group-by ranges overlap
(the set ``ð(g)`` of Definition 26).  Output multiplicity bounds follow
Definitions 27/28.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .expressions import Expression, RowView, Var
from .ranges import RangeValue, certain, domain_key, domain_max, domain_min
from .ranges import domain_le as _ranges_domain_le
from .relation import AURelation
from .semirings import AUAnnotation
from .sums import add_product, finish, merge_acc, new_acc
from .tuples import AUTuple

__all__ = [
    "Monoid",
    "SUM",
    "MIN",
    "MAX",
    "AggregateSpec",
    "agg_sum",
    "agg_count",
    "agg_min",
    "agg_max",
    "agg_avg",
    "GroupingStrategy",
    "DefaultGroupingStrategy",
    "aggregate",
    "semimodule_action",
    "star_operator",
    "UncertainGroupError",
    "fold_partial_groups",
    "merge_partial_groups",
    "finalize_partial_groups",
]


# ----------------------------------------------------------------------
# Monoids and the N-semimodule action *_{N,M}
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Monoid:
    """A commutative aggregation monoid ``(M, +_M, 0_M)``."""

    name: str
    neutral: Any
    combine: Callable[[Any, Any], Any]

    def fold(self, values) -> Any:
        acc = self.neutral
        for v in values:
            acc = self.combine(acc, v)
        return acc


SUM = Monoid("SUM", 0, lambda a, b: a + b)
MIN = Monoid("MIN", math.inf, lambda a, b: a if _dom_le(a, b) else b)
MAX = Monoid("MAX", -math.inf, lambda a, b: b if _dom_le(a, b) else a)


def _dom_le(a: Any, b: Any) -> bool:
    # fast path: plain numbers (also covers +/- infinity vs numbers)
    ta = type(a)
    tb = type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a <= b
    # +/- inf sentinels compare numerically against numbers and win/lose
    # against any other type via domain order.
    if ta is float and math.isinf(a):
        return a < 0
    if tb is float and math.isinf(b):
        return b > 0
    return _ranges_domain_le(a, b)


def semimodule_action(monoid: Monoid, k: int, m: Any) -> Any:
    """``k *_{N,M} m``: fold multiplicity ``k`` into value ``m``.

    ``*_{N,SUM}`` is multiplication; for MIN/MAX a non-zero multiplicity
    acts as the identity and zero yields the neutral element (Section 9.2).
    Zero copies sum to the neutral ``0`` even for infinite ``m`` (plain
    ``0 * inf`` would be ``nan``).
    """
    if monoid.name == "SUM":
        if k == 0:
            return 0
        return k * m
    return m if k != 0 else monoid.neutral


def star_operator(
    monoid: Monoid, k: AUAnnotation, m: RangeValue
) -> RangeValue:
    """The bound-preserving ``⊛_M`` operator (Definition 23).

    Bounds are the min/max over the four combinations of annotation and
    value bounds; the SG component uses the plain semimodule action.
    """
    corners = [
        semimodule_action(monoid, k[0], m.lb),
        semimodule_action(monoid, k[0], m.ub),
        semimodule_action(monoid, k[2], m.lb),
        semimodule_action(monoid, k[2], m.ub),
    ]
    lo = corners[0]
    hi = corners[0]
    for c in corners[1:]:
        if _dom_le(c, lo):
            lo = c
        if _dom_le(hi, c):
            hi = c
    sg = semimodule_action(monoid, k[1], m.sg)
    # sg may fall outside [lo, hi] when k.sg differs from both bounds in a
    # monoid-neutral way (e.g. MIN with k=(0,0,1)); widen defensively.
    if not _dom_le(lo, sg):
        lo = sg
    if not _dom_le(sg, hi):
        hi = sg
    return RangeValue(lo, sg, hi)


# ----------------------------------------------------------------------
# Aggregate specifications
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateSpec:
    """One aggregation function application ``f(e) AS name``.

    ``kind`` is one of ``sum, count, min, max, avg``.  ``expr`` is the
    aggregated scalar expression (ignored for ``count``).
    """

    kind: str
    expr: Optional[Expression]
    name: str

    def __post_init__(self) -> None:
        if self.kind not in {"sum", "count", "min", "max", "avg"}:
            raise ValueError(f"unsupported aggregate kind {self.kind!r}")
        if self.kind != "count" and self.expr is None:
            raise ValueError(f"aggregate {self.kind} requires an expression")


def agg_sum(expr: Expression | str, name: str | None = None) -> AggregateSpec:
    expr = Var(expr) if isinstance(expr, str) else expr
    return AggregateSpec("sum", expr, name or "sum")


def agg_count(name: str | None = None) -> AggregateSpec:
    return AggregateSpec("count", None, name or "count")


def agg_min(expr: Expression | str, name: str | None = None) -> AggregateSpec:
    expr = Var(expr) if isinstance(expr, str) else expr
    return AggregateSpec("min", expr, name or "min")


def agg_max(expr: Expression | str, name: str | None = None) -> AggregateSpec:
    expr = Var(expr) if isinstance(expr, str) else expr
    return AggregateSpec("max", expr, name or "max")


def agg_avg(expr: Expression | str, name: str | None = None) -> AggregateSpec:
    expr = Var(expr) if isinstance(expr, str) else expr
    return AggregateSpec("avg", expr, name or "avg")


# ----------------------------------------------------------------------
# Grouping strategies (Section 9.4 / 9.5)
# ----------------------------------------------------------------------
class GroupingStrategy:
    """Maps input tuples to output groups.

    Returns ``(groups, alpha)`` where ``groups`` is the list of output
    group identifiers and ``alpha[tuple_index]`` is the index of the group
    each input tuple is assigned to.  The contract of Section 9.4: all
    tuples sharing SG group-by values must map to the same output.
    """

    def assign(
        self,
        rows: Sequence[Tuple[AUTuple, AUAnnotation]],
        group_idx: Sequence[int],
    ) -> Tuple[List[Tuple[Any, ...]], List[int]]:
        raise NotImplementedError


class DefaultGroupingStrategy(GroupingStrategy):
    """One output per SG group; assignment by SG group-by values
    (Definition 24)."""

    def assign(
        self,
        rows: Sequence[Tuple[AUTuple, AUAnnotation]],
        group_idx: Sequence[int],
    ) -> Tuple[List[Tuple[Any, ...]], List[int]]:
        groups: List[Tuple[Any, ...]] = []
        index_of: Dict[Tuple[Any, ...], int] = {}
        alpha: List[int] = []
        for t, _ann in rows:
            key = tuple(t[i].sg for i in group_idx)
            if key not in index_of:
                index_of[key] = len(groups)
                groups.append(key)
            alpha.append(index_of[key])
        return groups, alpha


def _uncertain_group(
    t: AUTuple, ann: AUAnnotation, group_idx: Sequence[int]
) -> bool:
    """The ``ug(G, R, t)`` predicate: uncertain group-by value or the tuple
    may be absent from some world."""
    if ann[0] == 0:
        return True
    return any(not t[i].is_certain for i in group_idx)


def _delta(k: int) -> int:
    return 1 if k > 0 else 0


# ----------------------------------------------------------------------
# The aggregation operator
# ----------------------------------------------------------------------
def aggregate(
    rel: AURelation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
    strategy: GroupingStrategy | None = None,
    compress_buckets: Optional[int] = None,
) -> AURelation:
    """``γ_{G, f1(A1), ..., fk(Ak)}(R)`` over an AU-relation.

    Output schema is ``group_by + [spec.name for each aggregate]``.  With
    an empty ``group_by`` the result is the single-tuple aggregation of
    Definition 27 (annotation ``(1,1,1)``).

    ``compress_buckets`` enables the Section 10.5 optimization: instead of
    the O(groups × rows) interval-overlap join computing ``ð(g)``, each
    group's *foreign* possible contributors are drawn from at most
    ``compress_buckets`` bucket tuples (minimum bounding boxes with summed
    possible multiplicities).  SG results, group boxes, and output
    annotations are still computed exactly from the uncompressed members,
    matching the paper's piggy-backed SG computation (Lemma 10.2: the
    optimized rewrite preserves bounds, trading tightness for speed).
    """
    strategy = strategy or DefaultGroupingStrategy()
    group_idx = [rel.attr_index(a) for a in group_by]
    rows = list(rel.tuples())
    out_schema = list(group_by) + [spec.name for spec in aggregates]
    out = AURelation(out_schema)
    if not rows:
        if not group_by:
            # aggregation over an empty input still yields one row in SQL /
            # K-relation semantics for COUNT-style monoids
            values = [_empty_aggregate_value(spec) for spec in aggregates]
            out.add(values, (1, 1, 1))
        return out

    if group_by:
        groups, alpha = strategy.assign(rows, group_idx)
    else:
        groups, alpha = [()], [0] * len(rows)

    n_groups = len(groups)
    members: List[List[int]] = [[] for _ in range(n_groups)]
    for row_i, g_i in enumerate(alpha):
        members[g_i].append(row_i)

    # -- group-by attribute bounds (Definition 25) ----------------------
    group_boxes: List[List[RangeValue]] = []
    for g_i, key in enumerate(groups):
        box: List[RangeValue] = []
        for pos, attr_i in enumerate(group_idx):
            lbs = [rows[r][0][attr_i].lb for r in members[g_i]]
            ubs = [rows[r][0][attr_i].ub for r in members[g_i]]
            box.append(RangeValue(domain_min(lbs), key[pos], domain_max(ubs)))
        group_boxes.append(box)

    # -- ð(g): tuples whose group-by ranges overlap the output box ------
    if compress_buckets is not None and group_by:
        rows, contributors = _compressed_contributors(
            rel, rows, members, group_idx, group_boxes, compress_buckets
        )
    else:
        contributors = _overlap_sets(rows, group_idx, group_boxes)

    # -- evaluate aggregate inputs once per row --------------------------
    agg_inputs = _materialize_agg_inputs(rel, rows, aggregates)

    for g_i in range(n_groups):
        values: List[RangeValue] = list(group_boxes[g_i])
        box_certain = all(v.is_certain for v in group_boxes[g_i])
        for a_i, spec in enumerate(aggregates):
            values.append(
                _aggregate_bounds(
                    spec,
                    a_i,
                    rows,
                    agg_inputs,
                    contributors[g_i],
                    set(members[g_i]),
                    group_idx,
                    box_certain,
                )
            )
        ann = _group_annotation(rows, members[g_i], group_idx, bool(group_by))
        if ann[2] > 0:
            out.add(values, ann)
    return out


def _compressed_contributors(
    rel: AURelation,
    rows: List[Tuple[AUTuple, AUAnnotation]],
    members: Sequence[Sequence[int]],
    group_idx: Sequence[int],
    group_boxes: Sequence[Sequence[RangeValue]],
    buckets: int,
) -> Tuple[List[Tuple[AUTuple, AUAnnotation]], List[List[int]]]:
    """Section 10.5: compress foreign possible contributors.

    Returns an extended row list (original rows + synthetic bucket rows
    annotated ``(0, 0, Σub)``) and per-group contributor index lists:
    each group's exact members plus every overlapping bucket.  Bucket rows
    are always treated as group-uncertain (annotation lower bound 0), so
    their contributions pass through the ``min(0_M, ·)`` / ``max(0_M, ·)``
    clamps and the result stays a sound (if looser) bound even though
    member rows are double counted inside buckets.
    """
    first_group_attr = group_idx[0]
    # Only rows whose group-by attributes are uncertain can contribute to a
    # *foreign* group; rows with certain group-by values are fully handled
    # as exact members of their own group, so bucketing them would only
    # double count their possible mass.
    foreign_capable = [
        r
        for r in range(len(rows))
        if any(not rows[r][0][i].is_certain for i in group_idx)
    ]
    sortable = sorted(
        foreign_capable,
        key=lambda r: domain_key(rows[r][0][first_group_attr].sg),
    )
    bucket_size = max(1, -(-len(sortable) // buckets))
    extended = list(rows)
    bucket_rows: List[int] = []
    for start in range(0, len(sortable), bucket_size):
        chunk = [rows[r] for r in sortable[start : start + bucket_size]]
        box_t, _ = chunk[0]
        total_ub = 0
        for t, (_lb, _sg, ub) in chunk:
            box_t = tuple(a.merge(b) for a, b in zip(box_t, t))
            total_ub += ub
        if total_ub > 0:
            bucket_rows.append(len(extended))
            extended.append((box_t, (0, 0, total_ub)))

    contributors: List[List[int]] = []
    for g_i, box in enumerate(group_boxes):
        contrib = list(members[g_i])
        for b_i in bucket_rows:
            t = extended[b_i][0]
            if all(
                t[attr_i].overlaps(box[pos])
                for pos, attr_i in enumerate(group_idx)
            ):
                contrib.append(b_i)
        contributors.append(contrib)
    return extended, contributors


def _overlap_sets(
    rows: Sequence[Tuple[AUTuple, AUAnnotation]],
    group_idx: Sequence[int],
    group_boxes: Sequence[Sequence[RangeValue]],
) -> List[List[int]]:
    """Compute ``ð(g)`` for every group.

    Rows whose group-by attributes are all certain can be matched by hash
    against certain group boxes; uncertain rows/boxes use interval checks.
    """
    contributors: List[List[int]] = [[] for _ in group_boxes]
    if not group_idx:
        all_rows = list(range(len(rows)))
        return [list(all_rows) for _ in group_boxes]

    for g_i, box in enumerate(group_boxes):
        for r_i, (t, _ann) in enumerate(rows):
            ok = True
            for pos, attr_i in enumerate(group_idx):
                if not t[attr_i].overlaps(box[pos]):
                    ok = False
                    break
            if ok:
                contributors[g_i].append(r_i)
    return contributors


def _materialize_agg_inputs(
    rel: AURelation,
    rows: Sequence[Tuple[AUTuple, AUAnnotation]],
    aggregates: Sequence[AggregateSpec],
) -> List[List[RangeValue]]:
    """Per-aggregate, per-row input value (COUNT uses the constant 1)."""
    one = certain(1)
    inputs: List[List[RangeValue]] = []
    for spec in aggregates:
        col: List[RangeValue] = []
        if spec.kind == "count":
            col = [one] * len(rows)
        else:
            index = RowView.index_of(rel.schema)
            for t, _ann in rows:
                col.append(spec.expr.eval_range(RowView(index, t)))
        inputs.append(col)
    return inputs


def _monoid_for(kind: str) -> Monoid:
    return {"sum": SUM, "count": SUM, "min": MIN, "max": MAX}[kind]


def _part_value(part: Tuple[int, Any]) -> Any:
    """The rounded product a ``(multiplicity, value)`` part denotes —
    used only for corner *selection* and sign tests, never accumulated."""
    k, v = part
    return 0 if k == 0 else k * v


def _sum_parts(
    ann: AUAnnotation, m: RangeValue
) -> Tuple[Tuple[int, Any], Tuple[int, Any]]:
    """``⊛_SUM`` bounds of one row as exact ``(multiplicity, value)`` parts.

    Definition 23 takes the min/max over the four annotation×value corner
    products; returning the chosen corner as a part lets callers feed it to
    :func:`repro.core.sums.add_product`, which accumulates ``k·v`` exactly
    (power-of-two scalings) instead of summing rounded products.  That is
    what makes SUM bounds regrouping-invariant to the bit: folding a row
    with annotation ``k1+k2`` equals folding two value-equal rows with
    ``k1`` and ``k2``, so per-worker partials merge exactly.  Corner
    selection (including tie behavior) matches :func:`star_operator`.
    """
    k0, _k1, k2 = ann
    corners = ((k0, m.lb), (k0, m.ub), (k2, m.lb), (k2, m.ub))
    lo = hi = corners[0]
    lo_v = hi_v = _part_value(corners[0])
    for c in corners[1:]:
        v = _part_value(c)
        if _dom_le(v, lo_v):
            lo, lo_v = c, v
        if _dom_le(hi_v, v):
            hi, hi_v = c, v
    return lo, hi


def _fold_sum_row(
    lo_acc, hi_acc, ann: AUAnnotation, m: RangeValue, certainly_in_group: bool
) -> None:
    """Fold one row's ``⊛_SUM`` bound contributions into exact accumulators,
    applying Definition 26's ``min(0_M, ·)`` / ``max(0_M, ·)`` clamps for
    rows that are not certainly in the group."""
    lo_part, hi_part = _sum_parts(ann, m)
    if certainly_in_group or _dom_le(_part_value(lo_part), 0):
        add_product(lo_acc, lo_part[1], lo_part[0])
    if certainly_in_group or _dom_le(0, _part_value(hi_part)):
        add_product(hi_acc, hi_part[1], hi_part[0])


def _clamped_range(lo: Any, sg: Any, hi: Any) -> RangeValue:
    """``RangeValue(lo, sg, hi)`` with the SG component clamped into the
    bounds (the SG world's exact value can fall outside when clamps
    tightened a bound the SG fold did not see)."""
    if not _dom_le(lo, sg):
        sg = lo
    elif not _dom_le(sg, hi):
        sg = hi
    return RangeValue(lo, sg, hi)


def _aggregate_bounds(
    spec: AggregateSpec,
    agg_index: int,
    rows: Sequence[Tuple[AUTuple, AUAnnotation]],
    agg_inputs: Sequence[Sequence[RangeValue]],
    contributor_rows: Sequence[int],
    sg_members: set,
    group_idx: Sequence[int],
    box_certain: bool = True,
) -> RangeValue:
    """Aggregation function result bounds for one output tuple
    (Definition 26; AVG handled via SUM/COUNT + MIN/MAX envelope)."""
    if spec.kind == "avg":
        return _avg_bounds(
            spec, agg_index, rows, agg_inputs, contributor_rows, sg_members, group_idx
        )

    monoid = _monoid_for(spec.kind)
    if monoid is SUM:
        # SUM/COUNT accumulate through repro.core.sums so float bounds are
        # exact (regrouping-invariant) — the morsel-parallel partial path
        # folds the same per-row parts and merges accumulators bit-exactly.
        lo_acc = new_acc()
        hi_acc = new_acc()
        sg_acc = new_acc()
        for r_i in contributor_rows:
            t, ann = rows[r_i]
            m = agg_inputs[agg_index][r_i]
            certainly_in_group = (
                box_certain
                and r_i in sg_members
                and not _uncertain_group(t, ann, group_idx)
            )
            _fold_sum_row(lo_acc, hi_acc, ann, m, certainly_in_group)
            if r_i in sg_members:
                add_product(sg_acc, m.sg, ann[1])
        return _clamped_range(finish(lo_acc), finish(sg_acc), finish(hi_acc))

    lo = monoid.neutral
    hi = monoid.neutral
    sg = monoid.neutral
    for r_i in contributor_rows:
        t, ann = rows[r_i]
        m = agg_inputs[agg_index][r_i]
        folded = star_operator(monoid, ann, m)
        # A contribution may be counted without clamping only when the
        # tuple *certainly belongs to every group this output can bound*:
        # the output's group box must be a single point, the tuple's
        # group-by values certain and assigned here, and the tuple must
        # certainly exist.  This is the rewriting's θ_c test (Section
        # 10.2), which compares input group bounds against the *output's*
        # bounds.  If the box spans several possible groups, the output
        # tuple may have to bound a world group this tuple is absent from,
        # so its contribution is clamped against the monoid's neutral
        # element (Definition 26's min(0_M, ·) / max(0_M, ·)).
        certainly_in_group = (
            box_certain
            and r_i in sg_members
            and not _uncertain_group(t, ann, group_idx)
        )
        if not certainly_in_group:
            lb_contrib = folded.lb if _dom_le(folded.lb, monoid.neutral) else monoid.neutral
            ub_contrib = folded.ub if _dom_le(monoid.neutral, folded.ub) else monoid.neutral
        else:
            lb_contrib = folded.lb
            ub_contrib = folded.ub
        lo = monoid.combine(lo, lb_contrib)
        hi = monoid.combine(hi, ub_contrib)
        if r_i in sg_members:
            sg = monoid.combine(sg, folded.sg)
    return _clamped_range(lo, sg, hi)


def _avg_bounds(
    spec: AggregateSpec,
    agg_index: int,
    rows: Sequence[Tuple[AUTuple, AUAnnotation]],
    agg_inputs: Sequence[Sequence[RangeValue]],
    contributor_rows: Sequence[int],
    sg_members: set,
    group_idx: Sequence[int],
) -> RangeValue:
    """AVG bounds.

    The mean of any multiset of values, each drawn from the contributing
    tuples' value ranges, lies between the smallest lower bound and the
    largest upper bound of any contributor — so MIN/MAX envelopes over
    ``ð(g)`` give sound (if loose) AVG bounds.  The SG value is the exact
    SGW average (sum/count in the SG world).
    """
    lo = math.inf
    hi = -math.inf
    seen = False
    sg_acc = new_acc()
    sg_count = 0
    for r_i in contributor_rows:
        t, ann = rows[r_i]
        m = agg_inputs[agg_index][r_i]
        if ann[2] > 0:
            seen = True
            if _dom_le(m.lb, lo):
                lo = m.lb
            if _dom_le(hi, m.ub):
                hi = m.ub
        if r_i in sg_members and ann[1] > 0:
            # exact value×multiplicity accumulation (repro.core.sums), so
            # the SG average is regrouping-invariant to the bit and the
            # morsel-parallel partials merge exactly
            add_product(sg_acc, m.sg, ann[1])
            sg_count += ann[1]
    sg = finish(sg_acc) / sg_count if sg_count else 0.0
    if not seen:  # no possible contributor
        return RangeValue(0.0, 0.0, 0.0)
    if not _dom_le(lo, sg):
        sg = lo
    if not _dom_le(sg, hi):
        sg = hi
    return RangeValue(lo, sg, hi)


def _group_annotation(
    rows: Sequence[Tuple[AUTuple, AUAnnotation]],
    member_rows: Sequence[int],
    group_idx: Sequence[int],
    has_group_by: bool,
) -> AUAnnotation:
    """Output multiplicity bounds (Definitions 27/28)."""
    if not has_group_by:
        return (1, 1, 1)
    lb_sum = 0
    sg_sum = 0
    ub_sum = 0
    for r_i in member_rows:
        t, ann = rows[r_i]
        if not _uncertain_group(t, ann, group_idx):
            lb_sum += ann[0]
        sg_sum += ann[1]
        ub_sum += ann[2]
    return (_delta(lb_sum), _delta(sg_sum), ub_sum)


def _empty_aggregate_value(spec: AggregateSpec) -> RangeValue:
    if spec.kind in {"sum", "count"}:
        return certain(0)
    if spec.kind == "avg":
        return certain(0.0)
    # SQL semantics (mirrored by the Det engine): MIN/MAX over an empty
    # input is NULL, not the monoid's ±inf neutral element
    return certain(None)


# ----------------------------------------------------------------------
# Morsel-parallel partial aggregation (SG-combine-aware merges)
# ----------------------------------------------------------------------
# When every input row's group-by attributes are *certain*, the default
# grouping strategy degenerates into exact hash grouping: each group's
# box is a single point, ð(g) equals the member set, and every per-row
# contribution is row-local.  The γ fold then factors into per-morsel
# partial states merged with an associative combine:
#
# * the K^AU output annotation sums pointwise (δ applied at finalize);
# * SUM/COUNT and the AVG numerator are exact Shewchuk accumulators
#   (``merge_acc``), so float results are regrouping-invariant bit for
#   bit at every parallelism level;
# * MIN/MAX fold with the monoid combine, whose tie behavior (MIN keeps
#   the earliest attaining value, MAX the latest) is associative as long
#   as partials merge in partition order;
# * the AVG envelope folds with the same order-compatible min/max update
#   rules the serial operator uses.
#
# A single row with uncertain group-by attributes breaks row-locality
# (it contributes to every overlapping group's bounds), so the fold
# raises :class:`UncertainGroupError` and the caller falls back to the
# serial :func:`aggregate` operator.


class UncertainGroupError(ValueError):
    """A partial (morsel-parallel) aggregate met a row whose group-by
    attributes are uncertain: the contributor sets ð(g) are then not
    row-local and only the serial operator computes sound bounds."""


def _new_agg_partial(spec: AggregateSpec) -> list:
    if spec.kind in ("sum", "count"):
        return [new_acc(), new_acc(), new_acc()]  # lo, sg, hi accumulators
    if spec.kind == "avg":
        return [math.inf, -math.inf, new_acc(), 0, False]  # lo, hi, Σsg, n, seen
    monoid = _monoid_for(spec.kind)
    return [monoid.neutral, monoid.neutral, monoid.neutral]  # lo, sg, hi


def _fold_agg_partial(
    spec: AggregateSpec,
    agg: list,
    ann: AUAnnotation,
    m: RangeValue,
    certainly: bool,
) -> None:
    """Fold one (certain-group) row into a per-aggregate partial, with
    contribution logic identical to the serial ``_aggregate_bounds`` /
    ``_avg_bounds`` folds restricted to the certain-group case."""
    if spec.kind in ("sum", "count"):
        _fold_sum_row(agg[0], agg[2], ann, m, certainly)
        add_product(agg[1], m.sg, ann[1])
        return
    if spec.kind == "avg":
        if ann[2] > 0:
            agg[4] = True
            if _dom_le(m.lb, agg[0]):
                agg[0] = m.lb
            if _dom_le(agg[1], m.ub):
                agg[1] = m.ub
        if ann[1] > 0:
            add_product(agg[2], m.sg, ann[1])
            agg[3] += ann[1]
        return
    monoid = _monoid_for(spec.kind)
    folded = star_operator(monoid, ann, m)
    if certainly:
        lb_contrib = folded.lb
        ub_contrib = folded.ub
    else:
        lb_contrib = folded.lb if _dom_le(folded.lb, monoid.neutral) else monoid.neutral
        ub_contrib = folded.ub if _dom_le(monoid.neutral, folded.ub) else monoid.neutral
    agg[0] = monoid.combine(agg[0], lb_contrib)
    agg[2] = monoid.combine(agg[2], ub_contrib)
    agg[1] = monoid.combine(agg[1], folded.sg)


def fold_partial_groups(
    groups: Dict[Tuple[Any, ...], list],
    schema: Sequence[str],
    rows,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> None:
    """Fold ``(tuple, annotation)`` rows into ``groups`` in place.

    ``groups`` maps each SG group key to ``[rep, ann_sums, agg_partials]``
    where ``rep`` is the group-by value tuple of the group's first member
    (identical across members up to numeric representation — group-by
    attributes are certain), ``ann_sums`` the pointwise annotation sums of
    Definition 27 (δ applied at finalize), and ``agg_partials`` one
    mergeable state per aggregate.  Raises :class:`UncertainGroupError`
    on the first row whose group-by attributes are uncertain.
    """
    schema = tuple(schema)
    group_idx = [schema.index(a) for a in group_by]
    index = RowView.index_of(schema)
    one = certain(1)
    for t, ann in rows:
        for i in group_idx:
            if not t[i].is_certain:
                raise UncertainGroupError(
                    f"uncertain group-by value {t[i]!r} for attribute "
                    f"{schema[i]!r}: partial aggregation is not sound"
                )
        key = tuple(t[i].sg for i in group_idx)
        state = groups.get(key)
        if state is None:
            state = [
                [t[i] for i in group_idx],
                [0, 0, 0],
                [_new_agg_partial(spec) for spec in aggregates],
            ]
            groups[key] = state
        ann_sums = state[1]
        ann_sums[0] += ann[0]
        ann_sums[1] += ann[1]
        ann_sums[2] += ann[2]
        certainly = ann[0] > 0
        view = RowView(index, t)
        for spec, agg in zip(aggregates, state[2]):
            m = one if spec.kind == "count" else spec.expr.eval_range(view)
            _fold_agg_partial(spec, agg, ann, m, certainly)


def _merge_agg_partial(spec: AggregateSpec, dst: list, src: list) -> None:
    if spec.kind in ("sum", "count"):
        merge_acc(dst[0], src[0])
        merge_acc(dst[1], src[1])
        merge_acc(dst[2], src[2])
        return
    if spec.kind == "avg":
        # src is the later partition: its envelope candidates replay the
        # serial fold's "ties update" rules against dst's running values
        if src[4]:
            dst[4] = True
            if _dom_le(src[0], dst[0]):
                dst[0] = src[0]
            if _dom_le(dst[1], src[1]):
                dst[1] = src[1]
        merge_acc(dst[2], src[2])
        dst[3] += src[3]
        return
    monoid = _monoid_for(spec.kind)
    dst[0] = monoid.combine(dst[0], src[0])
    dst[1] = monoid.combine(dst[1], src[1])
    dst[2] = monoid.combine(dst[2], src[2])


def merge_partial_groups(
    target: Dict[Tuple[Any, ...], list],
    source: Dict[Tuple[Any, ...], list],
    aggregates: Sequence[AggregateSpec],
) -> None:
    """Merge ``source`` into ``target`` in place (``source`` is consumed).

    Call in partition order: group first-occurrence order and the
    order-sensitive tie rules of MIN/MAX/AVG envelopes then reproduce the
    serial fold exactly.
    """
    for key, src in source.items():
        dst = target.get(key)
        if dst is None:
            target[key] = src
            continue
        dst[1][0] += src[1][0]
        dst[1][1] += src[1][1]
        dst[1][2] += src[1][2]
        for spec, d, s in zip(aggregates, dst[2], src[2]):
            _merge_agg_partial(spec, d, s)


def _finalize_agg_partial(spec: AggregateSpec, agg: list) -> RangeValue:
    if spec.kind in ("sum", "count"):
        return _clamped_range(finish(agg[0]), finish(agg[1]), finish(agg[2]))
    if spec.kind == "avg":
        lo, hi, acc, cnt, seen = agg
        sg = finish(acc) / cnt if cnt else 0.0
        if not seen:  # no possible contributor
            return RangeValue(0.0, 0.0, 0.0)
        if not _dom_le(lo, sg):
            sg = lo
        if not _dom_le(sg, hi):
            sg = hi
        return RangeValue(lo, sg, hi)
    return _clamped_range(agg[0], agg[1], agg[2])


def finalize_partial_groups(
    groups: Dict[Tuple[Any, ...], list],
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> AURelation:
    """Finalize merged partial states into the γ output relation —
    bit-identical to :func:`aggregate` on the same (certain-group)
    input."""
    out_schema = list(group_by) + [spec.name for spec in aggregates]
    out = AURelation(out_schema)
    if not groups:
        if not group_by:
            out.add(
                [_empty_aggregate_value(spec) for spec in aggregates],
                (1, 1, 1),
            )
        return out
    has_group_by = bool(group_by)
    for rep, ann_sums, aggs in groups.values():
        values: List[RangeValue] = list(rep)
        for spec, agg in zip(aggregates, aggs):
            values.append(_finalize_agg_partial(spec, agg))
        if has_group_by:
            ann = (_delta(ann_sums[0]), _delta(ann_sums[1]), ann_sums[2])
        else:
            ann = (1, 1, 1)
        if ann[2] > 0:
            out.add(values, ann)
    return out
