"""Range-annotated tuples and the predicates that relate them.

An :class:`AUTuple` is a tuple of :class:`~repro.core.ranges.RangeValue`
instances.  The module implements the tuple-level predicates from the
paper:

* ``t ⊑ T`` — a deterministic tuple is *bounded by* an AU-tuple
  (Definition 14);
* ``T ≃ T'`` — two AU-tuples *may be equal* in some world: all attribute
  intervals overlap (used by set difference, Definition 22);
* ``T ≡ T'`` — two AU-tuples are *certainly equal*: all attributes certain
  and equal (Definition 22);
* ``T ⊓ T'`` — attribute ranges overlap on each attribute (aggregation,
  Definition 26 — identical to ``≃`` for full-width tuples).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Tuple

from .ranges import RangeValue, certain

__all__ = [
    "AUTuple",
    "make_tuple",
    "certain_tuple",
    "sg_tuple",
    "tuple_bounds",
    "tuples_may_equal",
    "tuples_certainly_equal",
    "tuple_is_certain",
    "merge_tuples",
    "project_tuple",
]

AUTuple = Tuple[RangeValue, ...]
"""A range-annotated tuple (immutable, hashable)."""


def make_tuple(values: Iterable[Any]) -> AUTuple:
    """Build an AU-tuple, lifting plain values to certain ranges."""
    out = []
    for v in values:
        out.append(v if isinstance(v, RangeValue) else certain(v))
    return tuple(out)


def certain_tuple(values: Iterable[Any]) -> AUTuple:
    """An AU-tuple whose attributes are all certain."""
    return tuple(certain(v) for v in values)


def sg_tuple(t: AUTuple) -> Tuple[Any, ...]:
    """The selected-guess projection ``t^sg`` (Definition 13)."""
    return tuple(v.sg for v in t)


def tuple_bounds(au: AUTuple, det: Sequence[Any]) -> bool:
    """Definition 14: ``det ⊑ au`` — every attribute within its range."""
    if len(au) != len(det):
        return False
    return all(r.bounds_value(v) for r, v in zip(au, det))


def tuples_may_equal(a: AUTuple, b: AUTuple) -> bool:
    """The ``≃`` predicate: all attribute intervals pairwise overlap."""
    return all(x.overlaps(y) for x, y in zip(a, b))


def tuples_certainly_equal(a: AUTuple, b: AUTuple) -> bool:
    """The ``≡`` predicate: both tuples certain and equal everywhere."""
    return all(x.certainly_equal(y) for x, y in zip(a, b))


def tuple_is_certain(t: AUTuple) -> bool:
    """All attribute values of ``t`` are certain."""
    return all(v.is_certain for v in t)


def merge_tuples(a: AUTuple, b: AUTuple) -> AUTuple:
    """Minimum bounding box of two tuples, keeping ``a``'s SG values.

    This is ``Comb`` from the SG-combiner (Definition 21).
    """
    return tuple(x.merge(y) for x, y in zip(a, b))


def project_tuple(t: AUTuple, indexes: Sequence[int]) -> AUTuple:
    """Project an AU-tuple onto attribute positions."""
    return tuple(t[i] for i in indexes)
