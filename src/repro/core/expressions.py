"""Scalar expressions with three evaluation semantics.

The expression language of Definition 3: variables, constants, boolean
connectives, comparisons, arithmetic, and ``if/then/else``.  Each
expression supports

* :meth:`Expression.eval` — deterministic semantics (Definition 4) over a
  valuation ``{var: value}``;
* :func:`eval_incomplete` — possible-worlds semantics (Definition 5) over a
  set of valuations;
* :meth:`Expression.eval_range` — range-annotated semantics (Definition 9)
  over a valuation ``{var: RangeValue}``, which is the bound-preserving
  evaluation proven sound by Theorem 1.

Expressions overload Python operators so queries read naturally::

    from repro.core.expressions import Var, Const
    e = (Var("rate") > Const(10)) & (Var("size") == Const("metro"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Set

from .ranges import RangeValue, certain, domain_key, domain_le, domain_max, domain_min

__all__ = [
    "Expression",
    "Var",
    "Const",
    "Parameter",
    "UnboundParameterError",
    "And",
    "Or",
    "Not",
    "Eq",
    "Neq",
    "Leq",
    "Lt",
    "Geq",
    "Gt",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Neg",
    "If",
    "IsNull",
    "eval_incomplete",
    "TRUE",
    "FALSE",
]


TRUE_RANGE = RangeValue(True, True, True)
FALSE_RANGE = RangeValue(False, False, False)
MAYBE_RANGE = RangeValue(False, False, True)


class RowView:
    """A lazy ``{attribute: value}`` view over a positional tuple.

    Expression evaluation only ever *looks up* attributes, so operators
    can avoid materializing a dict per row: build one schema-index map per
    operator call and wrap each tuple in a :class:`RowView`.
    """

    __slots__ = ("_index", "row")

    def __init__(self, index: Dict[str, int], row: tuple) -> None:
        self._index = index
        self.row = row

    @staticmethod
    def index_of(schema) -> Dict[str, int]:
        return {name: i for i, name in enumerate(schema)}

    def __getitem__(self, name: str) -> Any:
        return self.row[self._index[name]]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def get(self, name: str, default: Any = None) -> Any:
        i = self._index.get(name)
        return default if i is None else self.row[i]

    def keys(self):
        return self._index.keys()


def _bool_range(lb: bool, sg: bool, ub: bool) -> RangeValue:
    return RangeValue(lb, sg, ub)


class UnboundParameterError(LookupError):
    """A :class:`Parameter` placeholder was evaluated without a binding.

    Raised when a plan containing ``?`` / ``:name`` placeholders reaches
    an executor directly; bind values first (``PreparedQuery.execute``
    or :func:`repro.session.bind_parameters`).
    """


class Expression:
    """Base class of the scalar expression AST."""

    # -- analysis ------------------------------------------------------
    def variables(self) -> FrozenSet[str]:
        """The set ``vars(e)`` of variables mentioned by the expression."""
        out: Set[str] = set()
        self._collect_vars(out)
        return frozenset(out)

    def _collect_vars(self, out: Set[str]) -> None:
        for child in self.children():
            child._collect_vars(out)

    def parameters(self) -> List[Any]:
        """Placeholder keys mentioned by the expression, in first-seen
        order: ``int`` indices for positional ``?`` parameters, ``str``
        names for ``:name`` parameters."""
        out: List[Any] = []
        self._collect_params(out)
        return out

    def _collect_params(self, out: List[Any]) -> None:
        for child in self.children():
            child._collect_params(out)

    def children(self) -> Iterable["Expression"]:
        return ()

    # -- evaluation ----------------------------------------------------
    def eval(self, valuation: Dict[str, Any]) -> Any:
        """Deterministic evaluation (Definition 4)."""
        raise NotImplementedError

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        """Range-annotated evaluation (Definition 9)."""
        raise NotImplementedError

    # -- operator sugar --------------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return And(self, _wrap(other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or(self, _wrap(other))

    def __invert__(self) -> "Expression":
        return Not(self)

    def __eq__(self, other: Any) -> "Expression":  # type: ignore[override]
        return Eq(self, _wrap(other))

    def __ne__(self, other: Any) -> "Expression":  # type: ignore[override]
        return Neq(self, _wrap(other))

    def __le__(self, other: Any) -> "Expression":
        return Leq(self, _wrap(other))

    def __lt__(self, other: Any) -> "Expression":
        return Lt(self, _wrap(other))

    def __ge__(self, other: Any) -> "Expression":
        return Geq(self, _wrap(other))

    def __gt__(self, other: Any) -> "Expression":
        return Gt(self, _wrap(other))

    def __add__(self, other: Any) -> "Expression":
        return Add(self, _wrap(other))

    def __sub__(self, other: Any) -> "Expression":
        return Sub(self, _wrap(other))

    def __mul__(self, other: Any) -> "Expression":
        return Mul(self, _wrap(other))

    def __truediv__(self, other: Any) -> "Expression":
        return Div(self, _wrap(other))

    def __neg__(self) -> "Expression":
        return Neg(self)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(self.children())))

    def __bool__(self) -> bool:
        raise TypeError(
            "Expression objects are symbolic; use .eval()/.eval_range() "
            "to obtain a value"
        )


def _wrap(value: Any) -> Expression:
    if isinstance(value, Expression):
        return value
    return Const(value)


@dataclass(frozen=True, eq=False)
class Var(Expression):
    """Attribute / variable reference."""

    name: str

    def _collect_vars(self, out: Set[str]) -> None:
        out.add(self.name)

    def eval(self, valuation: Dict[str, Any]) -> Any:
        try:
            return valuation[self.name]
        except KeyError:
            raise KeyError(f"unbound variable {self.name!r}") from None

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        value = valuation[self.name]
        if not isinstance(value, RangeValue):
            return certain(value)
        return value

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


@dataclass(frozen=True, eq=False)
class Const(Expression):
    """Constant literal ``c`` — evaluates to ``[c/c/c]`` under ranges."""

    value: Any

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return self.value

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        if isinstance(self.value, RangeValue):
            return self.value
        return certain(self.value)

    def __repr__(self) -> str:
        return repr(self.value)

    def __hash__(self) -> int:
        return hash(("Const", repr(self.value)))


TRUE = Const(True)
FALSE = Const(False)


@dataclass(frozen=True, eq=False)
class Parameter(Expression):
    """A query parameter placeholder (``?`` positional / ``:name`` named).

    Parameters survive parsing, logical optimization, and physical
    lowering *symbolically*, which is what lets one prepared plan serve
    many bindings (:mod:`repro.session`).  They carry no value: both
    evaluation semantics raise :class:`UnboundParameterError` — binding
    (substitution by a :class:`Const`) must happen before execution.

    ``key`` is the 0-based position for ``?`` placeholders (assigned
    left-to-right by the parser) or the name for ``:name`` placeholders.
    """

    key: Any  # int (positional) | str (named)

    def _collect_params(self, out: List[Any]) -> None:
        if self.key not in out:
            out.append(self.key)

    def eval(self, valuation: Dict[str, Any]) -> Any:
        raise UnboundParameterError(
            f"parameter {self!r} is unbound; execute through a prepared "
            "query or bind_parameters() first"
        )

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        raise UnboundParameterError(
            f"parameter {self!r} is unbound; execute through a prepared "
            "query or bind_parameters() first"
        )

    def __repr__(self) -> str:
        if isinstance(self.key, int):
            return f"?{self.key}"
        return f":{self.key}"

    def __hash__(self) -> int:
        return hash(("Parameter", self.key))


class _Binary(Expression):
    """Shared plumbing for binary operators."""

    __slots__ = ("left", "right")
    symbol = "?"

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = _wrap(left)
        self.right = _wrap(right)

    def children(self) -> Iterable[Expression]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class And(_Binary):
    """Conjunction; monotone, so bounds combine pointwise."""

    symbol = "AND"

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return bool(self.left.eval(valuation)) and bool(self.right.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        return _bool_range(
            bool(a.lb) and bool(b.lb),
            bool(a.sg) and bool(b.sg),
            bool(a.ub) and bool(b.ub),
        )


class Or(_Binary):
    """Disjunction; monotone, so bounds combine pointwise."""

    symbol = "OR"

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return bool(self.left.eval(valuation)) or bool(self.right.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        return _bool_range(
            bool(a.lb) or bool(b.lb),
            bool(a.sg) or bool(b.sg),
            bool(a.ub) or bool(b.ub),
        )


@dataclass(frozen=True, eq=False)
class Not(Expression):
    """Negation: flips and swaps the bounds (Definition 9)."""

    operand: Expression

    def children(self) -> Iterable[Expression]:
        return (self.operand,)

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return not bool(self.operand.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.operand.eval_range(valuation)
        return _bool_range(not bool(a.ub), not bool(a.sg), not bool(a.lb))

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


class Eq(_Binary):
    """Equality.

    Certainly true only when both operands are certain and equal; possibly
    true when the intervals overlap (Definition 9).
    """

    symbol = "="

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return domain_key(self.left.eval(valuation)) == domain_key(
            self.right.eval(valuation)
        )

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        lb = domain_key(a.ub) == domain_key(b.lb) and domain_key(
            b.ub
        ) == domain_key(a.lb)
        ub = domain_le(a.lb, b.ub) and domain_le(b.lb, a.ub)
        sg = domain_key(a.sg) == domain_key(b.sg)
        return _bool_range(lb, sg, ub)


class Neq(_Binary):
    """Inequality, defined as ``NOT (a = b)``."""

    symbol = "<>"

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return not Eq(self.left, self.right).eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        eq = Eq(self.left, self.right).eval_range(valuation)
        return _bool_range(not bool(eq.ub), not bool(eq.sg), not bool(eq.lb))


class Leq(_Binary):
    """``a <= b``: certainly true iff ``a.ub <= b.lb`` (Definition 9)."""

    symbol = "<="

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return domain_le(self.left.eval(valuation), self.right.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        return _bool_range(
            domain_le(a.ub, b.lb),
            domain_le(a.sg, b.sg),
            domain_le(a.lb, b.ub),
        )


class Lt(_Binary):
    """``a < b`` defined as ``NOT (b <= a)``."""

    symbol = "<"

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return not domain_le(self.right.eval(valuation), self.left.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        flipped = Leq(self.right, self.left).eval_range(valuation)
        return _bool_range(
            not bool(flipped.ub), not bool(flipped.sg), not bool(flipped.lb)
        )


class Geq(_Binary):
    symbol = ">="

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return domain_le(self.right.eval(valuation), self.left.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        return Leq(self.right, self.left).eval_range(valuation)


class Gt(_Binary):
    symbol = ">"

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return not domain_le(self.left.eval(valuation), self.right.eval(valuation))

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        return Lt(self.right, self.left).eval_range(valuation)


class Add(_Binary):
    """Addition: inequalities are preserved, so bounds add pointwise."""

    symbol = "+"

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return self.left.eval(valuation) + self.right.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        return RangeValue(a.lb + b.lb, a.sg + b.sg, a.ub + b.ub)


class Sub(_Binary):
    """Subtraction ``a - b``: bounds are ``[a.lb - b.ub, a.ub - b.lb]``."""

    symbol = "-"

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return self.left.eval(valuation) - self.right.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        return RangeValue(a.lb - b.ub, a.sg - b.sg, a.ub - b.lb)


class Mul(_Binary):
    """Multiplication: min/max over the four bound combinations."""

    symbol = "*"

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return self.left.eval(valuation) * self.right.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        corners = (a.lb * b.lb, a.lb * b.ub, a.ub * b.lb, a.ub * b.ub)
        return RangeValue(min(corners), a.sg * b.sg, max(corners))


class Div(_Binary):
    """Division ``a / b``.

    Mirrors the paper's reciprocal: undefined when the divisor interval
    straddles zero (the bound could then be a division by zero in some
    world), in which case a :class:`ZeroDivisionError` is raised.
    """

    symbol = "/"

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return self.left.eval(valuation) / self.right.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.left.eval_range(valuation)
        b = self.right.eval_range(valuation)
        if b.lb <= 0 <= b.ub:
            raise ZeroDivisionError(
                "range-annotated division by an interval containing zero"
            )
        corners = (a.lb / b.lb, a.lb / b.ub, a.ub / b.lb, a.ub / b.ub)
        return RangeValue(min(corners), a.sg / b.sg, max(corners))


@dataclass(frozen=True, eq=False)
class Neg(Expression):
    """Arithmetic negation ``-a``."""

    operand: Expression

    def children(self) -> Iterable[Expression]:
        return (self.operand,)

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return -self.operand.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.operand.eval_range(valuation)
        return RangeValue(-a.ub, -a.sg, -a.lb)

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


@dataclass(frozen=True, eq=False)
class If(Expression):
    """``if cond then then_branch else else_branch`` (Definition 9).

    When the condition is uncertain the bounds take the min/max over both
    branches.
    """

    cond: Expression
    then_branch: Expression
    else_branch: Expression

    def children(self) -> Iterable[Expression]:
        return (self.cond, self.then_branch, self.else_branch)

    def eval(self, valuation: Dict[str, Any]) -> Any:
        if bool(self.cond.eval(valuation)):
            return self.then_branch.eval(valuation)
        return self.else_branch.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        c = self.cond.eval_range(valuation)
        if bool(c.lb) and bool(c.ub):
            return self.then_branch.eval_range(valuation)
        if not bool(c.lb) and not bool(c.ub):
            return self.else_branch.eval_range(valuation)
        t = self.then_branch.eval_range(valuation)
        e = self.else_branch.eval_range(valuation)
        sg = t.sg if bool(c.sg) else e.sg
        return RangeValue(
            domain_min((t.lb, e.lb)), sg, domain_max((t.ub, e.ub))
        )

    def __repr__(self) -> str:
        return (
            f"(IF {self.cond!r} THEN {self.then_branch!r} "
            f"ELSE {self.else_branch!r})"
        )


@dataclass(frozen=True, eq=False)
class IsNull(Expression):
    """SQL-style ``x IS NULL`` test (``None`` is the null marker)."""

    operand: Expression

    def children(self) -> Iterable[Expression]:
        return (self.operand,)

    def eval(self, valuation: Dict[str, Any]) -> bool:
        return self.operand.eval(valuation) is None

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        a = self.operand.eval_range(valuation)
        can_be_null = a.lb is None
        must_be_null = a.lb is None and a.ub is None
        return _bool_range(must_be_null, a.sg is None, can_be_null)

    def __repr__(self) -> str:
        return f"({self.operand!r} IS NULL)"


@dataclass(frozen=True, eq=False)
class MakeUncertain(Expression):
    """The lens construct ``MakeUncertain(e_lb, e_sg, e_ub)`` (Example 16).

    Introduces attribute-level uncertainty inside a query: the three
    sub-expressions provide the lower bound, selected guess, and upper
    bound of the produced range value.  Under deterministic evaluation it
    returns the SG value (the selected-guess world keeps the guess).
    """

    lb: Expression
    sg: Expression
    ub: Expression

    def children(self) -> Iterable[Expression]:
        return (self.lb, self.sg, self.ub)

    def eval(self, valuation: Dict[str, Any]) -> Any:
        return self.sg.eval(valuation)

    def eval_range(self, valuation: Dict[str, RangeValue]) -> RangeValue:
        lo = self.lb.eval_range(valuation)
        mid = self.sg.eval_range(valuation)
        hi = self.ub.eval_range(valuation)
        return RangeValue(
            domain_min((lo.lb, mid.lb)),
            mid.sg,
            domain_max((hi.ub, mid.ub)),
        )

    def __repr__(self) -> str:
        return f"MakeUncertain({self.lb!r}, {self.sg!r}, {self.ub!r})"


def eval_incomplete(
    expression: Expression, valuations: Iterable[Dict[str, Any]]
) -> Set[Any]:
    """Possible-worlds semantics (Definition 5).

    Evaluates ``expression`` in every valuation and returns the set of
    possible outcomes.  Used by tests to verify Theorem 1.
    """
    results: List[Any] = [expression.eval(v) for v in valuations]
    seen: Set[Any] = set()
    out: Set[Any] = set()
    for r in results:
        key = domain_key(r)
        if key not in seen:
            seen.add(key)
            out.add(r)
    return out
