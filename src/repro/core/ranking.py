"""Top-k queries over AU-relations — the paper's declared future work.

Section 13 lists "queries with ordering (top-k queries and window
functions)" as future work.  This module provides a sound top-k semantics
in the AU-DB spirit: instead of one ordered prefix, it returns every tuple
that can be among the ``k`` highest-scoring tuples in *some* possible
world, annotated with whether it is in the top-k *certainly*, in the
selected-guess world, and/or *possibly*.

The tests (``tests/test_ranking.py``) verify the semantics against
brute-force enumeration of possible worlds.

Semantics (for score attribute ``s``, higher is better):

* A tuple occurrence *certainly beats* another when its score lower bound
  strictly exceeds the other's upper bound (ties broken pessimistically).
* An occurrence is **possibly top-k** unless at least ``k`` occurrences of
  other tuples *certainly exist* and certainly beat it.
* An occurrence is **certainly top-k** when fewer than ``k`` occurrences
  can possibly beat or tie it in any world, and it certainly exists.

Both tests are conservative (may report "possible" too often and
"certain" too rarely), which is exactly the under/over-approximation
contract of AU-DBs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from .ranges import domain_le
from .relation import AURelation
from .semirings import AUAnnotation
from .tuples import AUTuple

__all__ = ["TopKRow", "topk"]


@dataclass(frozen=True)
class TopKRow:
    """One candidate for the top-k result."""

    values: AUTuple
    annotation: AUAnnotation
    certainly_topk: bool
    sg_topk: bool
    possibly_topk: bool


def _strictly_greater(a, b) -> bool:
    return not domain_le(a, b)


def topk(rel: AURelation, score_column: str, k: int) -> List[TopKRow]:
    """Sound top-k candidates ordered by SG score (descending).

    Returns every tuple that is possibly among the ``k`` highest-scoring
    rows, flagged with its certain / selected-guess / possible membership.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    idx = rel.attr_index(score_column)
    rows: List[Tuple[AUTuple, AUAnnotation]] = list(rel.tuples())

    # SG world ranking: rank occurrences (tuples with sg multiplicity)
    sg_scores: List[Any] = []
    for t, (_lb, sg, _ub) in rows:
        sg_scores.extend([t[idx].sg] * sg)
    sg_scores.sort(key=lambda s: _sort_key(s), reverse=True)
    sg_cutoff = sg_scores[k - 1] if len(sg_scores) >= k else None

    out: List[TopKRow] = []
    for i, (t, ann) in enumerate(rows):
        score = t[idx]

        # occurrences of *other* tuples that certainly exist and certainly
        # beat this tuple's best case
        certain_beaters = 0
        # occurrences of other tuples that may beat-or-tie the worst case
        possible_beaters = 0
        for j, (t2, ann2) in enumerate(rows):
            if i == j:
                continue
            score2 = t2[idx]
            if ann2[0] > 0 and _strictly_greater(score2.lb, score.ub):
                certain_beaters += ann2[0]
            if ann2[2] > 0 and domain_le(score.lb, score2.ub):
                possible_beaters += ann2[2]

        possibly = ann[2] > 0 and certain_beaters < k
        certainly = ann[0] > 0 and possible_beaters < k
        sg_in = (
            ann[1] > 0
            and sg_cutoff is not None
            and domain_le(sg_cutoff, score.sg)
        ) or (ann[1] > 0 and len(sg_scores) < k)
        if possibly:
            out.append(TopKRow(t, ann, certainly, bool(sg_in), True))

    out.sort(key=lambda r: _sort_key(r.values[idx].sg), reverse=True)
    return out


def _sort_key(value):
    from .ranges import domain_key

    return domain_key(value)
