"""Verification that an AU-relation bounds possible worlds.

Definition 16 of the paper: an AU-relation ``R`` bounds a deterministic
world ``W`` iff there exists a *tuple matching* — a distribution of each
world tuple's multiplicity over AU-tuples that bound it (``t ⊑ T``) — such
that every AU-tuple receives a total between its lower and upper
multiplicity bound.  An AU-relation bounds an incomplete database iff it
bounds every possible world and its SGW is one of the worlds
(Definition 17).

Existence of a tuple matching is a transportation-feasibility problem: a
bipartite flow with exact supplies (world multiplicities) and node
capacity intervals ``[lb, ub]`` on the AU side.  We solve it with a small
self-contained Dinic max-flow using the standard lower-bound circulation
reduction.  The instances arising in tests are small, so this stays fast.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .relation import AURelation
from .tuples import AUTuple, tuple_bounds

__all__ = [
    "MaxFlow",
    "find_tuple_matching",
    "bounds_world",
    "bounds_incomplete",
]


class MaxFlow:
    """Dinic's algorithm on an adjacency-list residual graph."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.graph: List[List[int]] = [[] for _ in range(n)]
        # edges stored flat: to, capacity, index of reverse edge
        self.to: List[int] = []
        self.cap: List[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge; returns its index (for flow readback)."""
        idx = len(self.to)
        self.graph[u].append(idx)
        self.to.append(v)
        self.cap.append(capacity)
        self.graph[v].append(idx + 1)
        self.to.append(u)
        self.cap.append(0)
        return idx

    def flow_on(self, edge_index: int) -> int:
        """Flow currently routed through edge ``edge_index``."""
        return self.cap[edge_index ^ 1]

    def max_flow(self, source: int, sink: int) -> int:
        total = 0
        while True:
            level = self._bfs(source, sink)
            if level is None:
                return total
            it = [0] * self.n
            while True:
                pushed = self._dfs(source, sink, float("inf"), level, it)
                if not pushed:
                    break
                total += pushed

    def _bfs(self, source: int, sink: int) -> Optional[List[int]]:
        level = [-1] * self.n
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for e in self.graph[u]:
                v = self.to[e]
                if self.cap[e] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _dfs(self, u: int, sink: int, limit, level: List[int], it: List[int]) -> int:
        if u == sink:
            return int(limit)
        while it[u] < len(self.graph[u]):
            e = self.graph[u][it[u]]
            v = self.to[e]
            if self.cap[e] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(v, sink, min(limit, self.cap[e]), level, it)
                if pushed:
                    self.cap[e] -= pushed
                    self.cap[e ^ 1] += pushed
                    return pushed
            it[u] += 1
        return 0


def find_tuple_matching(
    rel: AURelation, world: Mapping[Tuple[Any, ...], int]
) -> Optional[Dict[Tuple[AUTuple, Tuple[Any, ...]], int]]:
    """Find a tuple matching establishing ``world ⊏ rel`` (Definition 16).

    Returns the matching as ``{(au_tuple, world_tuple): multiplicity}``, or
    ``None`` if no valid matching exists.
    """
    au_rows = [(t, ann) for t, ann in rel.tuples()]
    world_rows = [(t, m) for t, m in world.items() if m > 0]

    # adjacency: which AU tuples bound which world tuples
    adj: List[List[int]] = []
    for wt, _m in world_rows:
        bounded_by = [
            i for i, (at, _ann) in enumerate(au_rows) if tuple_bounds(at, wt)
        ]
        adj.append(bounded_by)
        if not bounded_by:
            return None  # a world tuple no AU tuple can account for

    # Flow network with lower bounds on AU->sink edges.
    #   source -> world_j   capacity m_j   (must saturate)
    #   world_j -> au_i     capacity m_j
    #   au_i -> sink        capacity in [lb_i, ub_i]
    # Lower-bound reduction: super source/sink absorb the mandatory lb_i.
    n_world = len(world_rows)
    n_au = len(au_rows)
    source = 0
    sink = 1 + n_world + n_au
    super_source = sink + 1
    super_sink = sink + 2
    net = MaxFlow(sink + 3)

    world_edges = []
    for j, (_wt, m) in enumerate(world_rows):
        world_edges.append(net.add_edge(source, 1 + j, m))
    pair_edges: Dict[Tuple[int, int], int] = {}
    for j, (_wt, m) in enumerate(world_rows):
        for i in adj[j]:
            pair_edges[(i, j)] = net.add_edge(1 + j, 1 + n_world + i, m)
    lb_total = 0
    for i, (_at, (lb, _sg, ub)) in enumerate(au_rows):
        net.add_edge(1 + n_world + i, sink, ub - lb)
        if lb > 0:
            net.add_edge(super_source, sink, lb)
            net.add_edge(1 + n_world + i, super_sink, lb)
            lb_total += lb

    # close the circulation: let flow wrap from sink back to source
    supply_total = sum(m for _t, m in world_rows)
    net.add_edge(sink, source, supply_total)

    if net.max_flow(super_source, super_sink) < lb_total:
        return None
    flowed = net.max_flow(source, sink)
    base = sum(net.flow_on(e) for e in world_edges)
    if base < supply_total:
        return None

    matching: Dict[Tuple[AUTuple, Tuple[Any, ...]], int] = {}
    for (i, j), e in pair_edges.items():
        f = net.flow_on(e)
        if f > 0:
            matching[(au_rows[i][0], world_rows[j][0])] = f
    return matching


def bounds_world(rel: AURelation, world: Mapping[Tuple[Any, ...], int]) -> bool:
    """Does ``rel`` bound the deterministic bag ``world``? (Definition 16)"""
    return find_tuple_matching(rel, world) is not None


def bounds_incomplete(
    rel: AURelation,
    worlds: Sequence[Mapping[Tuple[Any, ...], int]],
    require_sgw: bool = True,
) -> bool:
    """Definition 17: bound every world; the SGW must be one of them.

    ``require_sgw=False`` relaxes condition (6), which is useful when
    checking bound preservation of *query results* where the SGW is the
    query result over the selected world by construction.
    """
    if require_sgw:
        sgw = rel.selected_guess_world()
        if not any(_same_bag(sgw, w) for w in worlds):
            return False
    return all(bounds_world(rel, w) for w in worlds)


def _same_bag(
    a: Mapping[Tuple[Any, ...], int], b: Mapping[Tuple[Any, ...], int]
) -> bool:
    a_clean = {t: m for t, m in a.items() if m}
    b_clean = {t: m for t, m in b.items() if m}
    return a_clean == b_clean
