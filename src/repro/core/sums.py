"""Order-independent (exactly rounded) summation for SUM/AVG aggregates.

Floating-point addition is not associative, so a left-fold ``sum()``
returns different last bits depending on accumulation order — which is
exactly what changes between the tuple engine (folds per group in bag
iteration order), the vectorized hash aggregate (folds per batch row),
and the partition-parallel executor (folds per morsel, then merges).
PR 3 papered over this with a "floating-point round-off may differ"
carve-out; this module removes the carve-out by making the sum a pure
function of the *multiset* of addends:

* integers (and bools) accumulate in an exact Python-int slot;
* finite floats accumulate as Shewchuk non-overlapping partials
  (the ``math.fsum`` algorithm), which represent the exact real sum;
* non-finite floats (``inf``/``nan``) accumulate in a separate IEEE
  slot where they are absorbing, so their propagation does not depend
  on where in the stream they appeared.

:func:`finish` rounds the exact value once, so any two executions that
add the same values — in any order, in any partitioning — return
bit-identical results.  Merging two accumulators (:func:`merge_acc`)
preserves exactness, which is what makes partial/final parallel
aggregation safe.

One boundary: when the running float sum itself exceeds the double
range, the accumulator *saturates* to ``±inf`` (the overflowed partial
moves to the non-finite slot), matching what IEEE left-fold ``sum()``
returned before — a plain ``math.fsum`` would raise instead.  Exactness
and order-independence are guaranteed for sums that stay in range.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Tuple

__all__ = [
    "new_acc",
    "add_exact",
    "add_product",
    "merge_acc",
    "finish",
    "exact_sum",
]


def new_acc() -> list:
    """A fresh accumulator: ``[int_sum, float_partials, nonfinite_sum]``."""
    return [0, [], 0.0]


def _add_float(acc: list, x: float) -> None:
    """Shewchuk error-free transformation: add finite ``x`` keeping the
    exact sum as non-overlapping partials (the ``math.fsum`` invariant).

    If a combination overflows the double range, the huge partials
    saturate into the absorbing slot (IEEE ``sum()`` semantics) instead
    of leaving ``±inf`` garbage in the partial list.
    """
    partials = acc[1]
    i = 0
    n = len(partials)
    for j in range(n):
        y = partials[j]
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        if math.isinf(hi):  # the running sum left the double range
            for k in range(j + 1, n):
                hi += partials[k]  # remaining partials are huge too
            acc[2] += hi
            del partials[i:]
            return
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def add_exact(acc: list, value: Any) -> None:
    """Fold ``value`` into ``acc`` exactly.

    Ints (and bools) stay exact integers; finite floats extend the
    partials; ``inf``/``nan`` (and running-sum overflow) go to the
    absorbing slot.  Non-numeric values raise ``TypeError`` like the
    plain ``sum()`` they replace.
    """
    if type(value) is float:
        if math.isfinite(value):
            _add_float(acc, value)
        else:
            acc[2] += value
    else:
        acc[0] += value  # exact for int/bool; TypeError otherwise


def add_product(acc: list, value: Any, mult: int) -> None:
    """Fold ``value * mult`` into ``acc`` without rounding the product.

    ``value * mult`` rounds once per call, so the same weighted row
    contributes *differently* depending on how its multiplicity is
    split across calls (``x*2 + x*3`` vs ``x*5`` differ in the last
    bit).  That breaks delta maintenance, where a tuple's multiplicity
    accrues across writes.  Decomposing the integer multiplicity into
    powers of two makes every term ``value * 2**j`` an *exact* binary
    scaling, so the accumulator receives exactly ``value * mult`` and
    the sum is a pure function of the weighted multiset *measure* —
    invariant under any regrouping of multiplicities.
    """
    if type(value) is not float:
        acc[0] += value * mult  # exact for int/bool
        return
    if not math.isfinite(value):
        acc[2] += value * mult  # absorbing slot (inf * 0 -> nan, as before)
        return
    if mult == 0 or value == 0.0:
        _add_float(acc, value * 0.0 if mult == 0 else value)
        return
    if mult < 0:
        value, mult = -value, -mult
    while mult:
        low = mult & -mult  # lowest set bit: a power of two
        if low.bit_length() > 1024:  # 2**j not a double: term overflows
            acc[2] += math.copysign(math.inf, value)
        else:
            term = value * low  # power-of-two scaling: exact
            if math.isinf(term):
                acc[2] += term  # saturate like IEEE sum()
            else:
                _add_float(acc, term)
        mult -= low


def merge_acc(acc: list, other: list) -> None:
    """Fold accumulator ``other`` into ``acc`` (exact, order-free)."""
    acc[0] += other[0]
    for p in other[1]:
        _add_float(acc, p)
    acc[2] += other[2]


def finish(acc: list) -> Any:
    """Round the exact accumulated value once.

    Integer-only streams return the exact ``int`` (matching the plain
    ``sum()`` the engines used before); any float in the stream makes
    the result the correctly rounded ``float`` of the exact sum
    (saturating to ``±inf`` at the double range like IEEE addition).
    """
    int_sum, partials, nonfinite = acc
    if nonfinite != 0.0 or nonfinite != nonfinite:  # ±inf or nan seen
        return nonfinite + math.fsum(partials) + int_sum
    if not partials:
        return int_sum
    try:
        if int_sum:
            return math.fsum(partials + [int_sum])
        return math.fsum(partials)
    except OverflowError:
        # non-overlapping partials: the largest dominates the sign
        return math.copysign(math.inf, partials[-1])


def exact_sum(weighted: Iterable[Tuple[Any, int]]) -> Any:
    """Sum of ``value * multiplicity`` over ``weighted``, order-free.

    Products enter via :func:`add_product`, so the result is a pure
    function of the weighted multiset measure: splitting a row's
    multiplicity across entries (or across incremental deltas) cannot
    change a bit.
    """
    acc = new_acc()
    for value, mult in weighted:
        add_product(acc, value, mult)
    return finish(acc)
