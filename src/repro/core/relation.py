"""AU-relations, AU-databases, and the relational encoding of Section 10.1.

An :class:`AURelation` is a function from range-annotated tuples to
``K^AU`` annotations (Definition 12), realized as a dictionary from
:data:`~repro.core.tuples.AUTuple` to ``(lb, sg, ub)`` multiplicity
triples.  Tuples annotated ``(0,0,0)`` are absent.

The *selected-guess world* (SGW) encoded by an AU-relation is extracted by
grouping tuples on their SG attribute values and summing SG multiplicities
(Definition 13).

``encode`` / ``decode`` implement the flat relational encoding ``Enc`` /
``Dec`` used by the paper's middleware (Definition 29): each AU-tuple
becomes one wide deterministic row carrying ``A_sg, A_lb, A_ub`` per
attribute plus ``row_lb, row_sg, row_ub``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from .ranges import RangeValue, certain
from .semirings import AUAnnotation, au_add, au_is_valid
from .tuples import AUTuple, make_tuple, sg_tuple

__all__ = ["AURelation", "AUDatabase", "encode", "decode"]


class AURelation:
    """A bag-semantics ``N^AU``-relation.

    Parameters
    ----------
    schema:
        Attribute names, in order.
    rows:
        Optional mapping or iterable of ``(tuple, annotation)`` pairs.
        Tuples may contain plain values (lifted to certain ranges) or
        :class:`RangeValue` instances.
    """

    __slots__ = (
        "schema",
        "_rows",
        "stats_epoch",
        "_column_stats_cache",
        "_columnar_cache",
        "_chunk_cache",
        "_stats_acc",
        "_delta_sinks",
    )

    def __init__(
        self,
        schema: Sequence[str],
        rows: Mapping[AUTuple, AUAnnotation]
        | Iterable[Tuple[Iterable[Any], AUAnnotation]]
        | None = None,
    ) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self._rows: Dict[AUTuple, AUAnnotation] = {}
        #: monotonically increasing write counter — every add() bumps it;
        #: databases sum it into their catalog epoch (repro.session)
        self.stats_epoch = 0
        # memoized per-column statistics (repro.algebra.stats) and the
        # columnar image used by the vectorized backend (repro.exec).
        # add() drops the columnar image; column statistics are kept
        # current *incrementally* (_stats_acc) — operators treat
        # relations as immutable, so add() is the only mutation path
        self._column_stats_cache = None
        self._columnar_cache = None
        # chunked columnar store (repro.db.chunks.AUChunkStore) with
        # per-chunk zone maps; maintained in place by add()/delete()
        self._chunk_cache = None
        self._stats_acc = None
        # per-write delta observers (repro.ivm): callables
        # ``sink(tuple, annotation, sign)`` fired after the write is
        # applied, with sign +1 for add() and -1 for delete()
        self._delta_sinks = ()
        if rows is None:
            return
        items = rows.items() if isinstance(rows, Mapping) else rows
        for values, annotation in items:
            self.add(values, annotation)

    # ------------------------------------------------------------------
    # construction / mutation (builders only; operators treat as immutable)
    # ------------------------------------------------------------------
    def add(self, values: Iterable[Any], annotation: AUAnnotation) -> None:
        """Add ``annotation`` to the tuple built from ``values``.

        Value-equivalent tuples are merged by summing annotations, which
        keeps the relation a function (Definition 12).
        """
        annotation = tuple(annotation)  # type: ignore[assignment]
        if not au_is_valid(annotation):
            raise ValueError(
                f"invalid K^AU annotation {annotation!r}: need 0 <= lb <= sg <= ub"
            )
        if annotation == (0, 0, 0):
            return
        t = make_tuple(values)
        if len(t) != len(self.schema):
            raise ValueError(
                f"tuple arity {len(t)} does not match schema {self.schema}"
            )
        existing = self._rows.get(t)
        self._rows[t] = au_add(existing, annotation) if existing else annotation
        self.stats_epoch += 1
        cache = self._columnar_cache
        if cache is not None and not (
            # a new tuple appends one columnar row in place; an
            # annotation merge would rewrite an interior row, so it
            # drops the cache instead
            existing is None
            and cache.append_row(t, self._rows[t])
        ):
            self._columnar_cache = None
        store = self._chunk_cache
        if store is not None and not store.on_add(
            t, self._rows[t], existing is None
        ):
            self._chunk_cache = None
        if existing is None:
            # column statistics weight AU rows one-per-tuple, so only a
            # *new* tuple changes them; an annotation merge leaves the
            # value distribution (and hence the finalized snapshot) valid
            self._column_stats_cache = None
            if self._stats_acc is not None:
                self._stats_acc.observe(t, annotation)
        for sink in self._delta_sinks:
            sink(t, annotation, 1)

    def delete(self, values: Iterable[Any], annotation: AUAnnotation) -> None:
        """Subtract ``annotation`` from the tuple built from ``values``.

        Both the subtracted annotation and the remaining annotation must
        be valid ``K^AU`` triples (``0 <= lb <= sg <= ub``); a remainder
        of ``(0, 0, 0)`` removes the tuple.  Like the deterministic
        side, deletes advance the write epoch by 2 so delete-heavy
        streams re-trigger plan staleness at least as fast as inserts.
        """
        annotation = tuple(annotation)  # type: ignore[assignment]
        if not au_is_valid(annotation):
            raise ValueError(
                f"invalid K^AU annotation {annotation!r}: need 0 <= lb <= sg <= ub"
            )
        if annotation == (0, 0, 0):
            return
        t = make_tuple(values)
        existing = self._rows.get(t)
        if existing is None:
            raise ValueError(f"cannot delete absent tuple {t!r}")
        remaining = tuple(e - d for e, d in zip(existing, annotation))
        if min(remaining) < 0 or not au_is_valid(remaining):
            raise ValueError(
                f"cannot delete {annotation!r} from {existing!r}: "
                f"remainder {remaining!r} is not a valid K^AU annotation"
            )
        if remaining == (0, 0, 0):
            del self._rows[t]
        else:
            self._rows[t] = remaining  # type: ignore[assignment]
        self.stats_epoch += 2
        self._columnar_cache = None
        self._column_stats_cache = None
        store = self._chunk_cache
        if store is not None and not store.on_delete(
            t, None if remaining == (0, 0, 0) else remaining
        ):
            self._chunk_cache = None
        if remaining == (0, 0, 0) and self._stats_acc is not None:
            self._stats_acc.observe_delete(t, 1)
        for sink in self._delta_sinks:
            sink(t, annotation, -1)

    @classmethod
    def from_certain_rows(
        cls, schema: Sequence[str], rows: Iterable[Iterable[Any]]
    ) -> "AURelation":
        """Lift a deterministic bag of rows into a fully certain AU-relation."""
        rel = cls(schema)
        for row in rows:
            rel.add(row, (1, 1, 1))
        return rel

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def annotation(self, t: AUTuple) -> AUAnnotation:
        """``R(t)`` — the annotation of ``t`` (``(0,0,0)`` if absent)."""
        return self._rows.get(t, (0, 0, 0))

    def tuples(self) -> Iterator[Tuple[AUTuple, AUAnnotation]]:
        """Iterate over ``(tuple, annotation)`` pairs with non-zero annotation."""
        return iter(self._rows.items())

    def __iter__(self) -> Iterator[AUTuple]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, t: AUTuple) -> bool:
        return t in self._rows

    def attr_index(self, name: str) -> int:
        try:
            return self.schema.index(name)
        except ValueError:
            raise KeyError(
                f"attribute {name!r} not in schema {self.schema}"
            ) from None

    def row_as_dict(self, t: AUTuple) -> Dict[str, RangeValue]:
        """Valuation mapping attribute names to range values (for expressions)."""
        return dict(zip(self.schema, t))

    # ------------------------------------------------------------------
    # SGW extraction (Definition 13)
    # ------------------------------------------------------------------
    def selected_guess_world(self) -> Dict[Tuple[Any, ...], int]:
        """The deterministic bag ``R^sg`` encoded by this AU-relation."""
        world: Dict[Tuple[Any, ...], int] = {}
        for t, (_, sg, _) in self._rows.items():
            if sg == 0:
                continue
            key = sg_tuple(t)
            world[key] = world.get(key, 0) + sg
        return world

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def total_annotations(self) -> AUAnnotation:
        """Sum of all tuple annotations (bag cardinality bounds)."""
        total = (0, 0, 0)
        for ann in self._rows.values():
            total = au_add(total, ann)
        return total

    def memory_footprint(self, chunk_size: int | None = None) -> int:
        """Resident bytes of this relation's chunked columnar store.

        Builds (and caches) the :class:`~repro.db.chunks.AUChunkStore`
        at ``chunk_size`` if none is cached yet, then sums the chunk
        payloads: the split lb/sg/ub scalar arrays, the serving
        ``RangeValue`` columns, and the three ``K^AU`` annotation
        arrays.  With chunking disabled (``chunk_size=0``) falls back
        to a shallow estimate of the row dictionary itself.
        """
        from ..db.chunks import au_store

        store = au_store(self, chunk_size)
        if store is not None:
            return store.memory_footprint()
        import sys

        return sys.getsizeof(self._rows) + sum(
            sys.getsizeof(t) + sum(sys.getsizeof(v) for v in t)
            for t in self._rows
        )

    def __repr__(self) -> str:
        header = ", ".join(self.schema)
        lines = [f"AURelation({header}) [{len(self._rows)} tuples]"]
        for t, ann in sorted(
            self._rows.items(), key=lambda item: repr(item[0])
        )[:20]:
            vals = ", ".join(repr(v) for v in t)
            lines.append(f"  ({vals}) -> {ann}")
        if len(self._rows) > 20:
            lines.append(f"  ... {len(self._rows) - 20} more")
        return "\n".join(lines)

    def pretty(self, limit: int = 50) -> str:
        """Human-readable table rendering (used by examples)."""
        cols = [list(self.schema) + ["N^AU"]]
        for t, ann in list(self._rows.items())[:limit]:
            cols.append([repr(v) for v in t] + [repr(ann)])
        widths = [max(len(row[i]) for row in cols) for i in range(len(cols[0]))]
        lines = []
        for r, row in enumerate(cols):
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
            if r == 0:
                lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
        return "\n".join(lines)


class AUDatabase:
    """A named collection of AU-relations."""

    __slots__ = ("relations", "_epoch_base")

    def __init__(self, relations: Mapping[str, AURelation] | None = None) -> None:
        self.relations: Dict[str, AURelation] = dict(relations or {})
        self._epoch_base = 0

    @property
    def epoch(self) -> int:
        """Catalog epoch — see :attr:`repro.db.storage.DetDatabase.epoch`.

        Strictly increases on every ``AURelation.add`` and every
        ``db[name] = rel`` rebinding; the session layer keys plan-cache
        staleness on it.
        """
        return self._epoch_base + sum(
            rel.stats_epoch for rel in self.relations.values()
        )

    def __getitem__(self, name: str) -> AURelation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"relation {name!r} not found; have {sorted(self.relations)}"
            ) from None

    def __setitem__(self, name: str, rel: AURelation) -> None:
        previous = self.relations.get(name)
        # keep the epoch monotone even when the incoming relation's own
        # write counter is behind the one it replaces
        self._epoch_base += 1 + (
            previous.stats_epoch if previous is not None else 0
        )
        self.relations[name] = rel

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def selected_guess_world(self) -> Dict[str, Dict[Tuple[Any, ...], int]]:
        return {
            name: rel.selected_guess_world()
            for name, rel in self.relations.items()
        }


# ----------------------------------------------------------------------
# Relational encoding (Section 10.1)
# ----------------------------------------------------------------------
def encode(rel: AURelation) -> Tuple[Tuple[str, ...], List[Tuple[Any, ...]]]:
    """``Enc(R)``: flatten to wide deterministic rows.

    Schema layout per Definition 29 / Example 12:
    ``(A1_sg..An_sg, A1_lb..An_lb, A1_ub..An_ub, row_lb, row_sg, row_ub)``.
    """
    schema = (
        tuple(f"{a}_sg" for a in rel.schema)
        + tuple(f"{a}_lb" for a in rel.schema)
        + tuple(f"{a}_ub" for a in rel.schema)
        + ("row_lb", "row_sg", "row_ub")
    )
    rows = []
    for t, (lb, sg, ub) in rel.tuples():
        rows.append(
            tuple(v.sg for v in t)
            + tuple(v.lb for v in t)
            + tuple(v.ub for v in t)
            + (lb, sg, ub)
        )
    return schema, rows


def decode(
    schema: Sequence[str], rows: Iterable[Tuple[Any, ...]]
) -> AURelation:
    """``Dec``: inverse of :func:`encode`.

    ``schema`` is the *logical* AU schema (attribute names without the
    ``_sg/_lb/_ub`` suffixes); rows are wide tuples laid out as produced by
    :func:`encode`.  Value-equivalent rows are merged by summing their row
    annotations, matching ``Dec`` of Definition 29.
    """
    n = len(schema)
    rel = AURelation(schema)
    for row in rows:
        if len(row) != 3 * n + 3:
            raise ValueError(
                f"encoded row has arity {len(row)}, expected {3 * n + 3}"
            )
        sgs = row[0:n]
        lbs = row[n : 2 * n]
        ubs = row[2 * n : 3 * n]
        ann = (row[3 * n], row[3 * n + 1], row[3 * n + 2])
        values = [RangeValue(lb, sg, ub) for lb, sg, ub in zip(lbs, sgs, ubs)]
        rel.add(values, ann)
    return rel
