"""Range-annotated values: the attribute-level building block of AU-DBs.

A :class:`RangeValue` is a triple ``[lb / sg / ub]`` (Definition 6 of the
paper) consisting of a lower bound, a *selected-guess* (SG) value, and an
upper bound drawn from a totally ordered domain.  A range-annotated value
``c`` *bounds* a set of deterministic values ``S`` (Definition 10) when
every element of ``S`` falls within ``[c.lb, c.ub]`` and the SG value is one
of the elements of ``S``.

Values may be numbers, strings, booleans or ``None`` (treated as the minimal
element of its domain); the total order used is the one implied by
:func:`domain_key`, which mirrors the paper's assumption of an arbitrary but
fixed total order over a universal domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "RangeValue",
    "certain",
    "between",
    "domain_key",
    "domain_le",
    "domain_min",
    "domain_max",
    "NEG_INF",
    "POS_INF",
]


class _NegInf:
    """Sentinel smaller than every domain value (used for open bounds)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "-inf"


class _PosInf:
    """Sentinel larger than every domain value (used for open bounds)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "+inf"


NEG_INF = _NegInf()
POS_INF = _PosInf()


def domain_key(value: Any) -> tuple:
    """Total-order key for the universal domain ``D``.

    The paper assumes a total order over a universal domain that mixes
    types (Section 3).  We realize it by ordering first on a type rank and
    then on the value itself.  Booleans rank *with* the numbers as 0/1 —
    matching Python's ``True == 1`` — so a value can never be "certain"
    under ``==`` yet unequal under the domain order; ``False < True``
    still holds (the order used for the boolean domain in Example 5).
    Numbers order numerically, strings lexicographically.  ``None`` sorts
    below every other value of any type, and the infinity sentinels
    bracket everything.
    """
    kind = type(value)
    if kind is int or kind is float:
        return (1, value)
    if kind is str:
        return (2, value)
    if kind is bool:
        return (1, 1 if value else 0)
    if value is None:
        return (-1, 0)
    if kind is _NegInf:
        return (-2, 0)
    if kind is _PosInf:
        return (4, 0)
    if isinstance(value, bool):  # bool subclasses
        return (1, 1 if value else 0)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, repr(value))


def domain_le(a: Any, b: Any) -> bool:
    """``a <= b`` under the universal domain order."""
    ta = type(a)
    tb = type(b)
    if (ta is int or ta is float) and (tb is int or tb is float):
        return a <= b
    if ta is str and tb is str:
        return a <= b
    return domain_key(a) <= domain_key(b)


def domain_min(values: Iterable[Any]) -> Any:
    """Minimum of ``values`` under the universal domain order."""
    return min(values, key=domain_key)


def domain_max(values: Iterable[Any]) -> Any:
    """Maximum of ``values`` under the universal domain order."""
    return max(values, key=domain_key)


@dataclass(frozen=True, slots=True)
class RangeValue:
    """An element ``[lb / sg / ub]`` of the range-annotated domain ``D_I``.

    Invariant (checked on construction): ``lb <= sg <= ub`` under the
    universal domain order.
    """

    lb: Any
    sg: Any
    ub: Any

    def __post_init__(self) -> None:
        if not (domain_le(self.lb, self.sg) and domain_le(self.sg, self.ub)):
            raise ValueError(
                f"range value must satisfy lb <= sg <= ub, got "
                f"[{self.lb!r}/{self.sg!r}/{self.ub!r}]"
            )

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_certain(self) -> bool:
        """True when ``lb == sg == ub`` (the value is deterministic)."""
        lb = self.lb
        ub = self.ub
        if lb is ub:
            return True
        try:
            if lb == ub:
                return type(lb) is type(ub) or isinstance(lb, (int, float))
        except TypeError:
            pass
        return domain_key(lb) == domain_key(ub)

    def bounds_value(self, value: Any) -> bool:
        """Does this range contain the deterministic ``value``?"""
        return domain_le(self.lb, value) and domain_le(value, self.ub)

    def bounds_set(self, values: Iterable[Any]) -> bool:
        """Definition 10: bounds a set iff it contains every element and
        the SG value is one of them."""
        values = list(values)
        if not values:
            return False
        sg_key = domain_key(self.sg)
        return all(self.bounds_value(v) for v in values) and any(
            domain_key(v) == sg_key for v in values
        )

    def overlaps(self, other: "RangeValue") -> bool:
        """Do the intervals ``[lb, ub]`` of the two values intersect?

        This is the attribute-level ingredient of the ``≃`` predicate used
        for set difference (Definition 22) and of ``t ⊓ t'`` used for
        aggregation (Definition 26).
        """
        a_lb, a_ub = self.lb, self.ub
        b_lb, b_ub = other.lb, other.ub
        if (
            (type(a_lb) is int or type(a_lb) is float)
            and (type(a_ub) is int or type(a_ub) is float)
            and (type(b_lb) is int or type(b_lb) is float)
            and (type(b_ub) is int or type(b_ub) is float)
        ):
            return a_lb <= b_ub and b_lb <= a_ub
        return domain_le(a_lb, b_ub) and domain_le(b_lb, a_ub)

    def certainly_equal(self, other: "RangeValue") -> bool:
        """Are both values certain and equal (ingredient of ``≡``)?"""
        return (
            self.is_certain
            and other.is_certain
            and domain_key(self.sg) == domain_key(other.sg)
        )

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def merge(self, other: "RangeValue") -> "RangeValue":
        """Minimum bounding range keeping *this* value's SG.

        Used by the SG-combiner (Definition 21) and by group-by bound
        computation (Definition 25), both of which merge the ranges of
        tuples that share SG values.
        """
        return RangeValue(
            domain_min((self.lb, other.lb)),
            self.sg,
            domain_max((self.ub, other.ub)),
        )

    def width(self) -> float:
        """Numeric width ``ub - lb`` (infinite for unbounded / non-numeric)."""
        if isinstance(self.lb, (int, float)) and isinstance(self.ub, (int, float)):
            return float(self.ub) - float(self.lb)
        if self.is_certain:
            return 0.0
        return math.inf

    def __repr__(self) -> str:
        if self.is_certain:
            return repr(self.sg)
        return f"[{self.lb!r}/{self.sg!r}/{self.ub!r}]"


def certain(value: Any) -> RangeValue:
    """A certain range-annotated value ``[v/v/v]``."""
    return RangeValue(value, value, value)


def between(lb: Any, sg: Any, ub: Any) -> RangeValue:
    """Convenience constructor mirroring the paper's ``[lb/sg/ub]``."""
    return RangeValue(lb, sg, ub)
