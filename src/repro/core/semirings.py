"""Commutative semirings, their natural orders, and the product
constructions used by UA-DBs (``K^2``) and AU-DBs (``K^AU = K^3``).

The paper (Section 3.1) annotates relations with elements of a commutative
semiring ``K = (K, +, ·, 0, 1)``.  Bag semantics is the natural-numbers
semiring ``N``; set semantics is the boolean semiring ``B``.  Both are
*l-semirings*: their natural order forms a lattice, so greatest lower
bounds (certain annotations) and least upper bounds (possible annotations)
are well defined.

``K^AU`` (Definition 11) is the three-way product of ``K`` with itself
restricted to ordered triples ``lb ⪯ sg ⪯ ub``; it carries tuple-level
lower bounds on certain multiplicity, SG multiplicity, and upper bounds on
possible multiplicity.  For set difference we additionally need the *monus*
``k1 − k2`` (Geerts' m-semirings): for ``N`` this is truncating
subtraction, for ``B`` it is ``k1 ∧ ¬k2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generic, Iterable, Tuple, TypeVar

__all__ = [
    "Semiring",
    "NaturalSemiring",
    "BooleanSemiring",
    "N",
    "B",
    "AUAnnotation",
    "au_add",
    "au_multiply",
    "au_zero",
    "au_one",
    "au_is_valid",
    "UAAnnotation",
]

K = TypeVar("K")


class Semiring(Generic[K]):
    """Interface of a commutative, naturally ordered semiring with monus."""

    zero: K
    one: K

    def add(self, a: K, b: K) -> K:
        raise NotImplementedError

    def multiply(self, a: K, b: K) -> K:
        raise NotImplementedError

    def monus(self, a: K, b: K) -> K:
        """Smallest ``c`` with ``b + c ⪰ a`` (used for set difference)."""
        raise NotImplementedError

    def leq(self, a: K, b: K) -> bool:
        """Natural order: ``a ⪯ b`` iff ``∃c: a + c = b``."""
        raise NotImplementedError

    def glb(self, values: Iterable[K]) -> K:
        """Greatest lower bound (certain annotation across worlds)."""
        raise NotImplementedError

    def lub(self, values: Iterable[K]) -> K:
        """Least upper bound (possible annotation across worlds)."""
        raise NotImplementedError

    def delta(self, a: K) -> K:
        """Duplicate elimination: ``0`` if ``a == 0`` else ``1`` ([9])."""
        return self.zero if a == self.zero else self.one

    def sum(self, values: Iterable[K]) -> K:
        total = self.zero
        for v in values:
            total = self.add(total, v)
        return total


class NaturalSemiring(Semiring[int]):
    """Bag semantics: ``(N, +, ×, 0, 1)`` with truncating monus."""

    zero = 0
    one = 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def multiply(self, a: int, b: int) -> int:
        return a * b

    def monus(self, a: int, b: int) -> int:
        return max(0, a - b)

    def leq(self, a: int, b: int) -> bool:
        return a <= b

    def glb(self, values: Iterable[int]) -> int:
        return min(values)

    def lub(self, values: Iterable[int]) -> int:
        return max(values)


class BooleanSemiring(Semiring[bool]):
    """Set semantics: ``(B, ∨, ∧, ⊥, ⊤)`` with ``a − b = a ∧ ¬b``."""

    zero = False
    one = True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def multiply(self, a: bool, b: bool) -> bool:
        return a and b

    def monus(self, a: bool, b: bool) -> bool:
        return a and not b

    def leq(self, a: bool, b: bool) -> bool:
        return (not a) or b

    def glb(self, values: Iterable[bool]) -> bool:
        return all(values)

    def lub(self, values: Iterable[bool]) -> bool:
        return any(values)


N = NaturalSemiring()
B = BooleanSemiring()


# ----------------------------------------------------------------------
# K^AU: tuple-level annotation triples over N (the semiring used by the
# implementation; the model generalizes, but like the paper's middleware we
# concretely instantiate bags).
# ----------------------------------------------------------------------
AUAnnotation = Tuple[int, int, int]
"""A ``K^AU`` element ``(lb, sg, ub)`` with ``lb <= sg <= ub``."""

UAAnnotation = Tuple[int, int]
"""A ``K^2`` (UA-DB) element ``[certain_lb, sg]``."""


def au_is_valid(k: AUAnnotation) -> bool:
    """Is ``k`` a member of ``K^AU`` (ordered triple of naturals)?"""
    lb, sg, ub = k
    return 0 <= lb <= sg <= ub


def au_zero() -> AUAnnotation:
    return (0, 0, 0)


def au_one() -> AUAnnotation:
    return (1, 1, 1)


def au_add(a: AUAnnotation, b: AUAnnotation) -> AUAnnotation:
    """Pointwise addition in ``K^3`` (stays inside ``K^AU``)."""
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def au_multiply(a: AUAnnotation, b: AUAnnotation) -> AUAnnotation:
    """Pointwise multiplication in ``K^3`` (stays inside ``K^AU``)."""
    return (a[0] * b[0], a[1] * b[1], a[2] * b[2])


@dataclass(frozen=True)
class _SemiringRegistry:
    """Named access to the built-in semirings (useful for serialization)."""

    by_name: Any = None

    @staticmethod
    def get(name: str) -> Semiring:
        try:
            return {"N": N, "B": B}[name]
        except KeyError:
            raise KeyError(f"unknown semiring {name!r}; known: N, B") from None
