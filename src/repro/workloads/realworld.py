"""Real-world-style datasets for the Figure 17 experiments.

The paper evaluates on Netflix shows, Chicago crimes, and Medicare
hospital data, repairing primary-key violations with the key-repair lens.
Those datasets are not redistributable here, so we generate synthetic
datasets that match the statistics the experiment depends on — schema
shape, fraction of tuples with uncertain values, and the average number of
possibilities per uncertain tuple (Figure 17 reports these as e.g.
"Netflix (1.9 %, 2.1)"):

=========== ========================= ============ =================
dataset      schema                    % uncertain  avg possibilities
=========== ========================= ============ =================
netflix      shows with directors       1.9 %        2.1
crimes       incident reports           0.1 %        3.2
healthcare   facility measure scores    1.0 %        2.7
=========== ========================= ============ =================

``DESIGN.md`` documents this substitution.  The queries Qn1/Qn2, Qc1/Qc2,
Qh1/Qh2 are the paper's (Section 12.3 appendix), translated to plans.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..algebra.ast import Plan, TableRef
from ..core.aggregation import agg_count, agg_max, agg_sum
from ..core.expressions import Const, Var
from ..db.storage import DetRelation

__all__ = [
    "RealWorldDataset",
    "make_netflix",
    "make_crimes",
    "make_healthcare",
    "realworld_queries",
]


@dataclass
class RealWorldDataset:
    """A raw relation with key violations plus its key columns."""

    name: str
    relation: DetRelation
    key_columns: Tuple[str, ...]
    expected_uncertain_fraction: float
    expected_avg_alternatives: float


def _with_violations(
    rel: DetRelation,
    key_idx: List[int],
    mutate_cols: List[int],
    fraction: float,
    avg_alternatives: float,
    rng: random.Random,
    value_pools: Dict[int, List],
) -> DetRelation:
    """Duplicate ~``fraction`` of the keys with perturbed non-key values so
    that violating keys average ``avg_alternatives`` candidates."""
    out = DetRelation(rel.schema)
    for t, m in rel.tuples():
        out.add(t, m)
        if rng.random() < fraction:
            extra = max(1, round(rng.gauss(avg_alternatives - 1, 0.5)))
            for _ in range(extra):
                row = list(t)
                col = rng.choice(mutate_cols)
                row[col] = rng.choice(value_pools[col])
                if tuple(row) != t:
                    out.add(tuple(row), 1)
    return out


def make_netflix(n_rows: int = 2000, seed: int = 11) -> RealWorldDataset:
    """Netflix-shows analog: (show_id, title, director, release_year, kind)."""
    rng = random.Random(seed)
    schema = ("show_id", "title", "director", "release_year", "kind")
    directors = [f"Director {i}" for i in range(120)]
    kinds = ["Movie", "TV Show"]
    rel = DetRelation(schema)
    for i in range(1, n_rows + 1):
        rel.add(
            (
                f"s{i}",
                f"Title {i}",
                rng.choice(directors),
                rng.randint(1990, 2021),
                rng.choice(kinds),
            )
        )
    pools = {2: directors, 3: list(range(1990, 2022))}
    rel = _with_violations(rel, [0], [2, 3], 0.019, 2.1, rng, pools)
    return RealWorldDataset("netflix", rel, ("show_id",), 0.019, 2.1)


def make_crimes(n_rows: int = 8000, seed: int = 12) -> RealWorldDataset:
    """Chicago-crimes analog: (case_id, date, block, district, primary_type,
    arrest, year)."""
    rng = random.Random(seed)
    schema = ("case_id", "date", "block", "district", "primary_type", "arrest", "year")
    types = [
        "THEFT", "BATTERY", "HOMICIDE", "NARCOTICS", "ASSAULT",
        "BURGLARY", "ROBBERY",
    ]
    blocks = [f"{100 + i} MAIN ST" for i in range(200)]
    rel = DetRelation(schema)
    for i in range(1, n_rows + 1):
        year = rng.randint(2010, 2017)
        rel.add(
            (
                f"HX{i:06d}",
                year * 10000 + rng.randint(1, 12) * 100 + rng.randint(1, 28),
                rng.choice(blocks),
                rng.randint(1, 25),
                rng.choice(types),
                rng.random() < 0.3,
                year,
            )
        )
    pools = {2: blocks, 3: list(range(1, 26))}
    rel = _with_violations(rel, [0], [2, 3], 0.001, 3.2, rng, pools)
    return RealWorldDataset("crimes", rel, ("case_id",), 0.001, 3.2)


def make_healthcare(n_rows: int = 4000, seed: int = 13) -> RealWorldDataset:
    """Medicare hospital-compare analog: (record_id, facility_name, state,
    measure_id, measure_name, score)."""
    rng = random.Random(seed)
    schema = (
        "record_id", "facility_name", "state", "measure_id", "measure_name", "score",
    )
    facilities = [f"Hospital {i}" for i in range(150)]
    states = ["TX", "CA", "NY", "IL", "FL", "WA", "OH", "GA"]
    measures = [
        ("HAI_1_SIR", "Central line infections"),
        ("HAI_2_SIR", "Catheter infections"),
        ("MRSA", "MRSA bacteremia"),
    ]
    rel = DetRelation(schema)
    for i in range(1, n_rows + 1):
        mid, mname = rng.choice(measures)
        rel.add(
            (
                f"r{i}",
                rng.choice(facilities),
                rng.choice(states),
                mid,
                mname,
                round(rng.uniform(0.0, 3.0), 2),
            )
        )
    pools = {5: [round(x * 0.05, 2) for x in range(61)], 2: states}
    rel = _with_violations(rel, [0], [5, 2], 0.010, 2.7, rng, pools)
    return RealWorldDataset("healthcare", rel, ("record_id",), 0.010, 2.7)


def realworld_queries() -> Dict[str, Tuple[str, Plan]]:
    """The six Figure 17 queries: ``{query_name: (dataset_name, plan)}``."""
    qn1 = (
        TableRef("netflix")
        .where(Var("release_year") < Const(2017))
        .select("title", "release_year", "director")
    )
    qn2 = TableRef("netflix").grouped(
        ["director"], [agg_max("release_year", "latest")]
    )
    qc1 = (
        TableRef("crimes")
        .where(
            (Var("primary_type") == Const("HOMICIDE"))
            & (Var("arrest") == Const(False))
        )
        .select("date", "block", "district")
    )
    qc2 = TableRef("crimes").grouped(["year"], [agg_count("cnt")])
    qh1 = (
        TableRef("healthcare")
        .where(
            (Var("state") != Const("TX"))
            & (Var("state") != Const("CA"))
            & (Var("measure_id") == Const("HAI_1_SIR"))
        )
        .select("facility_name", "measure_name", "score")
    )
    qh2 = TableRef("healthcare").grouped(
        ["facility_name"], [agg_sum("score", "total_score")]
    )
    return {
        "Qn1": ("netflix", qn1),
        "Qn2": ("netflix", qn2),
        "Qc1": ("crimes", qc1),
        "Qc2": ("crimes", qc2),
        "Qh1": ("healthcare", qh1),
        "Qh2": ("healthcare", qh2),
    }
