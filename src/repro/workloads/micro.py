"""Synthetic micro-benchmark workloads (Section 12.2, Figure 19).

The paper's micro-benchmarks use wide tables of uniform random integers
("a synthetic table with 100 attributes") with controlled uncertainty
percentage, attribute-range width, and group count.  ``wide_table``
generates the deterministic base; combine with
:func:`repro.workloads.uncertainty.inject_uncertainty` for the x-DB.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from ..db.storage import DetRelation
from ..incomplete.xdb import XRelation
from .uncertainty import inject_uncertainty

__all__ = ["wide_table", "micro_instance"]


def wide_table(
    n_rows: int,
    n_cols: int = 100,
    domain: Tuple[int, int] = (1, 100),
    seed: int = 0,
    group_domain: Optional[Tuple[int, int]] = None,
) -> DetRelation:
    """A table ``t(a0, ..., a{n_cols-1})`` of uniform random integers.

    ``group_domain`` optionally narrows column ``a0`` (the usual group-by
    column) to control the number of groups.
    """
    rng = random.Random(seed)
    schema = [f"a{i}" for i in range(n_cols)]
    rel = DetRelation(schema)
    lo, hi = domain
    g_lo, g_hi = group_domain or domain
    for _ in range(n_rows):
        row = [rng.randint(g_lo, g_hi)]
        row.extend(rng.randint(lo, hi) for _ in range(n_cols - 1))
        rel.add(tuple(row), 1)
    return rel


def micro_instance(
    n_rows: int,
    n_cols: int = 100,
    uncertainty: float = 0.05,
    domain: Tuple[int, int] = (1, 100),
    range_fraction: float = 1.0,
    n_alternatives: int = 8,
    seed: int = 0,
    group_domain: Optional[Tuple[int, int]] = None,
) -> Tuple[DetRelation, XRelation]:
    """Deterministic base table + injected x-relation, as used by the
    Figure 13/14/15/16 micro-benchmarks."""
    det = wide_table(n_rows, n_cols, domain, seed, group_domain)
    xrel = inject_uncertainty(
        det,
        cell_fraction=uncertainty,
        n_alternatives=n_alternatives,
        rng=random.Random(seed + 1),
        range_fraction=range_fraction,
    )
    return det, xrel
