"""Uncertainty injection: turn deterministic relations into x-relations.

This reproduces the PDBench generator's behaviour (Section 12.1): a chosen
fraction of cells becomes uncertain, each uncertain cell receiving up to
``n_alternatives`` possible values drawn from the attribute's domain.  The
micro-benchmarks additionally control the *width* of the uncertainty
(``range_fraction``: alternatives drawn from a window around the original
value covering that fraction of the domain — Figures 13c, 14, 15).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..db.storage import DetDatabase, DetRelation
from ..incomplete.xdb import XDatabase, XRelation

__all__ = ["inject_uncertainty", "inject_database"]


def _column_domains(rel: DetRelation) -> List[Tuple[Any, Any, List[Any]]]:
    """Per column: (min, max, distinct values) over the relation."""
    n = len(rel.schema)
    values: List[List[Any]] = [[] for _ in range(n)]
    for t, _m in rel.tuples():
        for i, v in enumerate(t):
            values[i].append(v)
    out = []
    for col in values:
        distinct = sorted(set(col), key=repr)
        numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in col)
        if numeric and col:
            out.append((min(col), max(col), distinct))
        else:
            out.append((None, None, distinct))
    return out


def inject_uncertainty(
    rel: DetRelation,
    cell_fraction: float,
    n_alternatives: int = 8,
    rng: Optional[random.Random] = None,
    range_fraction: float = 1.0,
    columns: Optional[Sequence[str]] = None,
    optional_fraction: float = 0.0,
) -> XRelation:
    """Replace ``cell_fraction`` of the (eligible) cells with alternatives.

    Parameters
    ----------
    cell_fraction:
        Probability that a cell becomes uncertain (PDBench's "amount of
        uncertainty": 2 %, 5 %, 10 %, 30 %).
    n_alternatives:
        Alternatives per uncertain tuple (PDBench uses up to 8).
    range_fraction:
        For numeric columns, alternatives are drawn uniformly from a
        window centered on the original value spanning this fraction of
        the column's domain (1.0 = whole domain, PDBench's worst case).
    columns:
        Restrict injection to these attributes (default: all).
    optional_fraction:
        Probability that an uncertain tuple additionally becomes optional
        (may be absent from some worlds).
    """
    rng = rng or random.Random(0)
    domains = _column_domains(rel)
    eligible = (
        set(range(len(rel.schema)))
        if columns is None
        else {rel.attr_index(c) for c in columns}
    )
    out = XRelation(rel.schema)
    for t, m in rel.tuples():
        for _ in range(m):
            uncertain_cols = [
                i for i in eligible if rng.random() < cell_fraction
            ]
            if not uncertain_cols:
                out.add_certain(t)
                continue
            n_alts = rng.randint(2, max(2, n_alternatives))
            alternatives: List[Tuple[Any, ...]] = [tuple(t)]
            for _alt in range(n_alts - 1):
                row = list(t)
                for i in uncertain_cols:
                    row[i] = _sample_value(
                        rng, domains[i], t[i], range_fraction
                    )
                alternatives.append(tuple(row))
            if optional_fraction and rng.random() < optional_fraction:
                k = len(alternatives)
                probs = [0.9 / k] * k  # leaves 10% absence probability
                out.add(alternatives, probs)
            else:
                out.add(alternatives)
    return out


def _sample_value(
    rng: random.Random,
    domain: Tuple[Any, Any, List[Any]],
    original: Any,
    range_fraction: float,
) -> Any:
    lo, hi, distinct = domain
    if lo is not None and hi is not None and isinstance(original, (int, float)):
        width = (hi - lo) * range_fraction
        if width <= 0:
            return original
        low = max(lo, original - width / 2)
        high = min(hi, original + width / 2)
        if isinstance(original, int) and isinstance(lo, int) and isinstance(hi, int):
            return rng.randint(int(low), max(int(low), int(high)))
        return rng.uniform(low, high)
    if distinct:
        return rng.choice(distinct)
    return original


def inject_database(
    db: DetDatabase,
    cell_fraction: float,
    n_alternatives: int = 8,
    seed: int = 0,
    range_fraction: float = 1.0,
    columns_per_relation: Optional[Dict[str, Sequence[str]]] = None,
) -> XDatabase:
    """Inject uncertainty into every relation of a deterministic database."""
    rng = random.Random(seed)
    xdb = XDatabase()
    for name, rel in db.relations.items():
        columns = (columns_per_relation or {}).get(name)
        xdb[name] = inject_uncertainty(
            rel,
            cell_fraction,
            n_alternatives,
            rng,
            range_fraction,
            columns,
        )
    return xdb
