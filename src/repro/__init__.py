"""repro — AU-DB: Attribute-annotated Uncertain Databases.

A from-scratch reproduction of *"Efficient Uncertainty Tracking for Complex
Queries with Attribute-level Bounds"* (Feng, Huber, Glavic, Kennedy —
SIGMOD 2021).  The package provides:

* the AU-DB data model: range-annotated values, ``K^AU`` tuple annotations,
  AU-relations (:mod:`repro.core`);
* bound-preserving query semantics for full relational algebra plus
  aggregation, with the paper's compression optimizations;
* incomplete-database models (possible worlds, TI-DBs, x-DBs, C-tables)
  and their bound-preserving translations into AU-DBs;
* a deterministic bag-semantics engine, a SQL frontend, a TPC-H/PDBench
  workload generator, and reimplementations of the paper's baselines
  (UA-DB, Libkin, MCDB, MayBMS, Trio, symbolic semimodules);
* the full experiment harness regenerating every figure and table of the
  paper's evaluation (see ``benchmarks/`` and ``EXPERIMENTS.md``).

Quickstart::

    from repro import AURelation, between, certain, parse_sql, evaluate_audb, AUDatabase

    locales = AURelation(["locale", "rate", "size"])
    locales.add(["LA", between(3.0, 3.0, 4.0), "metro"], (1, 1, 1))
    locales.add(["Austin", 18.0, between("city", "city", "metro")], (1, 1, 1))

    plan = parse_sql("SELECT size, avg(rate) AS rate FROM locales GROUP BY size")
    result = evaluate_audb(plan, AUDatabase({"locales": locales}))
    print(result.pretty())
"""

from .algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from .algebra.evaluator import EvalConfig, evaluate_audb
from .algebra.optimizer import Statistics, compression_hints, explain, optimize
from .algebra.stats import (
    ColumnStats,
    equi_join_selectivity,
    harvest_column_stats,
    predicate_selectivity,
)
from .core.aggregation import (
    AggregateSpec,
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    aggregate,
)
from .core.bounding import bounds_incomplete, bounds_world, find_tuple_matching
from .core.expressions import (
    Const,
    Expression,
    If,
    Not,
    Parameter,
    UnboundParameterError,
    Var,
)
from .core.ranges import RangeValue, between, certain
from .core.relation import AUDatabase, AURelation, decode, encode
from .core import operators
from .core.compression import compress, optimized_join, split_sg, split_up
from .db.engine import evaluate_det
from .db.storage import DetDatabase, DetRelation
from .exec import BACKENDS, AUColumnBatch, ColumnBatch
from .incomplete.ctable import CTable, VTable, codd_table
from .incomplete.tidb import TIDatabase, TIRelation
from .incomplete.worlds import (
    IncompleteDatabase,
    certain_bag,
    possible_bag,
    query_worlds,
)
from .incomplete.xdb import XDatabase, XRelation, XTuple
from .lenses import key_repair_lens, make_uncertain
from .accuracy import (
    audb_certain_keys,
    audb_possible_keys,
    bound_tightness,
    certain_tuple_recall,
    mean_numeric_range,
    over_grouping_percent,
    possible_recall_by_id,
    possible_recall_by_value,
    range_overestimation_factor,
)
from .session import (
    Connection,
    ConnectionMetrics,
    PreparedQuery,
    bind_parameters,
    connect,
)
from .sql.parser import parse_sql
from .telemetry import (
    EventLog,
    MetricsRegistry,
    QueryTrace,
    configure_slow_log,
    get_registry,
    set_tracing,
    slow_queries,
    tracing_enabled,
)

__version__ = "1.0.0"

__all__ = [
    # core model
    "RangeValue", "between", "certain",
    "AURelation", "AUDatabase", "encode", "decode",
    "bounds_world", "bounds_incomplete", "find_tuple_matching",
    # expressions
    "Expression", "Var", "Const", "If", "Not",
    "Parameter", "UnboundParameterError",
    # operators & aggregation
    "operators", "aggregate", "AggregateSpec",
    "agg_sum", "agg_count", "agg_min", "agg_max", "agg_avg",
    "split_sg", "split_up", "compress", "optimized_join",
    # plans & engines
    "Plan", "TableRef", "Selection", "Projection", "Join", "CrossProduct",
    "Union", "Difference", "Distinct", "Aggregate", "Rename",
    "OrderBy", "Limit", "TopK",
    "EvalConfig", "evaluate_audb", "evaluate_det",
    "BACKENDS", "ColumnBatch", "AUColumnBatch",
    "Statistics", "optimize", "explain", "compression_hints",
    "ColumnStats", "harvest_column_stats",
    "predicate_selectivity", "equi_join_selectivity",
    "DetRelation", "DetDatabase",
    # incomplete models
    "IncompleteDatabase", "query_worlds", "certain_bag", "possible_bag",
    "TIRelation", "TIDatabase", "XTuple", "XRelation", "XDatabase",
    "CTable", "VTable", "codd_table",
    # sessions (prepared statements, plan cache)
    "Connection", "ConnectionMetrics", "PreparedQuery",
    "connect", "bind_parameters",
    # telemetry (tracing, metrics registry, event log, slow-query log)
    "QueryTrace", "MetricsRegistry", "EventLog",
    "get_registry", "tracing_enabled", "set_tracing",
    "configure_slow_log", "slow_queries",
    # paper accuracy metrics (formerly repro.metrics)
    "certain_tuple_recall", "possible_recall_by_id",
    "possible_recall_by_value", "bound_tightness",
    "over_grouping_percent", "range_overestimation_factor",
    "mean_numeric_range", "audb_certain_keys", "audb_possible_keys",
    # lenses & sql
    "key_repair_lens", "make_uncertain", "parse_sql",
]
