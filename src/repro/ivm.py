"""Incremental view maintenance: live views over the session layer.

:meth:`repro.session.Connection.subscribe` returns a
:class:`MaterializedView` that stays consistent with the database under
writes without re-executing its query per read.  The machinery is a
*delta plan* derived at subscribe time from the optimized logical plan
(:func:`repro.algebra.optimizer.derive_delta`) and lowered to physical
form once (:func:`repro.exec.physical.lower_delta`):

* the **linear fragment** (σ, π, ρ, ⋈, ×, ∪ — and bag-only ``OrderBy``)
  propagates deltas algebraically: both annotation semirings (bag ``N``
  and the paper's ``K^AU`` triples) distribute over union, so a write
  of ``Δ`` to base table ``R`` changes the view by exactly
  ``Q[R := Δ]`` — the *same* physical plan evaluated over a shadow
  database that substitutes the single-tuple delta for ``R`` and reads
  every other table's current state (join deltas against the memoized
  opposite side);
* a **root bag aggregate** over a linear input maintains per-group
  semiring partials in the partial-aggregate accumulator layout
  (:func:`repro.exec.vectorized.fold_delta_groups`) and finalizes on
  read — merged exactly like the Exchange operator merges partials from
  parallel workers;
* the **non-linear fragment** (``Difference``, ``Distinct``, ``TopK``,
  AU aggregates) cannot absorb one-sided deltas, so
  :func:`~repro.algebra.optimizer.derive_delta` carves the maximal
  linear subtrees into incrementally-maintained *segments* and re-runs
  only the remaining *tail* — the refresh boundary chosen at plan
  time — **epoch-gated at read time**: writes mark the tail dirty and
  the re-execution is deferred (and batched) until the next read.

Maintenance is *exact*, never approximate: any delta the fold cannot
invert bit-identically (a deleted min/max extremum, non-finite float
addends, a self-joined table's write) raises
:class:`~repro.exec.vectorized.DeltaFoldError` internally and degrades
that view to a full refresh at the next read.  Out-of-band changes —
a table rebound via ``db[name] = ...``, or writes that bypassed the
subscribed relation objects — are caught by the catalog epoch check on
read and handled the same way.  The write-interleaving lane of the
differential fuzzer (``tests/test_fuzz_differential.py``) holds
maintained results equal to fresh re-execution after every write,
across both engines and both backends.

Views are not thread-safe; like connections, use one per worker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from . import analysis
from . import telemetry as _tm
from .algebra.ast import Plan
from .algebra.optimizer import DeltaPlan, derive_delta, optimize
from .core.relation import AURelation
from .db.storage import DetRelation
from .exec import physical as phys
from .exec.vectorized import (
    DeltaFoldError,
    finalize_delta_groups,
    fold_delta_groups,
)
from .sql.parser import parse_sql

__all__ = ["MaterializedView", "DeltaFoldError"]

# process-wide maintenance counters (repro.telemetry registry), mirrors
# of the per-view writes_applied / full_refreshes / tail_refreshes ints
_REG = _tm.get_registry()
_DELTA_APPLIES = _REG.counter(
    "repro_ivm_delta_applies_total",
    "Per-write deltas applied to materialized views.",
)
_FOLD_FALLBACKS = _REG.counter(
    "repro_ivm_delta_fold_fallbacks_total",
    "DeltaFoldError degradations to full refresh.",
)
_FULL_REFRESHES = _REG.counter(
    "repro_ivm_full_refreshes_total",
    "From-scratch view rematerializations.",
)
_SEGMENT_REFRESHES = _REG.counter(
    "repro_ivm_segment_refreshes_total",
    "Dirty linear-segment rebuilds (refresh-classified views).",
)
_TAIL_REFRESHES = _REG.counter(
    "repro_ivm_tail_refreshes_total",
    "Epoch-gated non-linear tail re-executions.",
)


def _executor(engine: str, backend: str):
    """The physical-plan interpreter for an engine/backend pair.

    All four share the ``f(pplan, db)`` calling convention and resolve
    base tables only through ``db[name]``, which is what makes the
    shadow-database substitution below work without touching them.
    """
    if engine == "det":
        if backend == "vectorized":
            from .exec.vectorized import execute_det

            return execute_det
        from .db.engine import execute_physical_det

        return execute_physical_det
    if backend == "vectorized":
        from .exec.vectorized import execute_audb

        return execute_audb
    from .algebra.evaluator import execute_physical_audb

    return execute_physical_audb


class _ShadowDB:
    """A database view with some tables substituted.

    Per-write delta evaluation runs the *unchanged* segment plan over
    this: the written table resolves to the one-tuple delta relation,
    every other table to its live state.  Tail re-execution uses the
    same trick to read maintained segments back under their synthetic
    ``__ivm_seg*`` names.
    """

    __slots__ = ("_base", "_over")

    def __init__(self, base, over: Dict[str, Any]) -> None:
        self._base = base
        self._over = over

    def __getitem__(self, name: str):
        rel = self._over.get(name)
        return rel if rel is not None else self._base[name]


class MaterializedView:
    """A live, incrementally-maintained query result.

    Created by :meth:`repro.session.Connection.subscribe`; hold on to
    the object and call :meth:`result` whenever the current view
    contents are needed.  Returned relations are shared snapshots —
    treat them as read-only.

    ``writes_applied`` / ``full_refreshes`` / ``tail_refreshes`` are
    monotone observability counters: how many writes were folded
    incrementally, how many times the view fell back to a from-scratch
    rebuild, and how many times the non-linear tail re-executed.
    """

    def __init__(
        self,
        connection,
        query: Union[str, Plan],
        params=None,
    ) -> None:
        from .session import bind_parameters

        conn = connection
        config = conn.config
        self._conn = conn
        self._engine = conn.engine
        self._backend = config.backend
        self._exec = _executor(conn.engine, config.backend)
        self._closed = False
        self._semantics = "bag" if conn.engine == "det" else "au"

        if isinstance(query, str):
            conn.metrics.parses += 1
            query = parse_sql(query)
        # subscriptions are long-lived: bind parameters once, up front
        plan = bind_parameters(query, params)
        stats = conn.statistics()
        analysis.verify_logical(plan, stats)
        trace: List[str] = []
        if config.optimize:
            plan = optimize(
                plan,
                stats,
                join_order=config.join_order,
                semantics=self._semantics,
                verify=conn.verify_plans,
                trace=trace,
            )
            conn.metrics.optimizations += 1
        self.plan = plan
        self._delta: DeltaPlan = derive_delta(
            plan, stats, semantics=self._semantics, trace=trace
        )
        if conn.verify_plans:
            analysis.check_semiring_safety(trace, self._semantics)
        self._dplan: phys.DeltaPhysical = phys.lower_delta(
            self._delta,
            stats,
            phys.PhysicalConfig(
                engine=conn.engine,
                backend=config.backend,
                parallelism=config.parallelism,
                hash_join=config.hash_join,
                join_buckets=config.join_buckets,
                aggregation_buckets=config.aggregation_buckets,
                adaptive_compression=(
                    config.adaptive_compression and config.optimize
                ),
                chunk_size=config.chunk_size,
            ),
            verify=conn.verify_plans,
        )
        conn.metrics.lowerings += 1
        if conn.verify_plans:
            analysis.verify_delta(self._delta, self._dplan, stats)

        n_segs = len(self._delta.segments)
        self._tracked: Dict[str, Any] = {}
        self._expected: Dict[str, int] = {}
        self._sinks: List[Tuple[Any, Any]] = []
        self._needs_full_refresh = False
        # maintained state (one of, by kind)
        self._rows: Optional[Dict] = None  # linear: view bag
        self._agg_state: Optional[Dict] = None  # aggregate: group partials
        self._seg_rows: List[Dict] = [{} for _ in range(n_segs)]
        self._seg_schemas: List[Tuple[str, ...]] = [()] * n_segs
        self._seg_dirty: List[bool] = [False] * n_segs
        self._tail_dirty = True
        self._tail_result = None
        self._schema: Tuple[str, ...] = ()
        # read-side cache: rebuilt only when the catalog epoch moved
        self._result = None
        self._result_epoch: Optional[int] = None
        self.writes_applied = 0
        self.full_refreshes = 0
        self.tail_refreshes = 0
        self._materialize()

    # -- introspection -------------------------------------------------
    @property
    def kind(self) -> str:
        """Plan-time classification: ``linear``/``aggregate``/``refresh``."""
        return self._delta.kind

    @property
    def closed(self) -> bool:
        return self._closed

    def tables(self) -> Tuple[str, ...]:
        """Base tables whose writes this view observes."""
        return self._delta.tables()

    def explain_delta(self) -> str:
        """Render the maintenance plan: Δ-maintained segments vs the
        refresh boundary (see :func:`repro.exec.physical.explain_delta`)."""
        return phys.explain_delta(self._dplan)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Stop maintenance: detach every write sink and free the
        connection's registry entry.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._detach()
        subs = getattr(self._conn, "_subscriptions", None)
        if subs is not None:
            subs.pop(id(self), None)

    def _attach(self) -> None:
        for name in self._tracked:
            rel = self._tracked[name]
            sink = self._make_sink(name)
            rel._delta_sinks = rel._delta_sinks + (sink,)
            self._sinks.append((rel, sink))

    def _detach(self) -> None:
        for rel, sink in self._sinks:
            rel._delta_sinks = tuple(
                s for s in rel._delta_sinks if s is not sink
            )
        self._sinks = []

    def _make_sink(self, table: str):
        def sink(t, payload, sign):
            self._on_write(table, t, payload, sign)

        return sink

    # -- write path ----------------------------------------------------
    def _on_write(self, table: str, t, payload, sign: int) -> None:
        rel = self._tracked.get(table)
        if rel is not None:
            # the sink fires inside the epoch bump path, after the
            # relation advanced stats_epoch: re-sync the expectation so
            # the read-side drift check recognizes this write as ours
            self._expected[table] = rel.stats_epoch
        if self._needs_full_refresh:
            return
        try:
            self._apply(table, t, payload, sign)
        except DeltaFoldError:
            self._needs_full_refresh = True
            _FOLD_FALLBACKS.inc()
        else:
            self.writes_applied += 1
            _DELTA_APPLIES.inc()

    def _apply(self, table: str, t, payload, sign: int) -> None:
        delta = self._delta
        delta_rel = None
        for i, seg in enumerate(delta.segments):
            if table not in seg.tables:
                continue
            if table in seg.multi_ref:
                # a self-joined table: Q[R := Δ] misses the Δ⋈Δ and
                # Δ⋈(R−Δ) cross terms — refresh the whole segment
                if seg.name == "":
                    raise DeltaFoldError(f"write to self-joined {table!r}")
                self._seg_dirty[i] = True
                continue
            if self._seg_dirty[i] and seg.name != "":
                continue  # already due for a from-scratch rebuild
            if delta_rel is None:
                delta_rel = self._delta_relation(table, t, payload)
            out = self._exec(
                self._dplan.segment_pplans[i],
                _ShadowDB(self._conn.db, {table: delta_rel}),
            )
            self._merge(i, seg, out, sign)
        if delta.tail is not None:
            self._tail_dirty = True
        self._result = None

    def _delta_relation(self, table: str, t, payload):
        schema = self._tracked[table].schema
        if self._engine == "det":
            rel = DetRelation(schema)
            rel.rows[t] = payload
        else:
            rel = AURelation(schema)
            rel._rows[t] = payload
        return rel

    def _merge(self, i: int, seg, out, sign: int) -> None:
        kind = self._delta.kind
        if kind == "aggregate":
            if self._agg_state is None:
                raise DeltaFoldError("aggregate state unavailable")
            agg = self._delta.aggregate
            fold_delta_groups(
                self._agg_state, out, agg.group_by, agg.aggregates, sign
            )
            return
        target = self._rows if kind == "linear" else self._seg_rows[i]
        if self._engine == "det":
            for t, m in out.tuples():
                new = target.get(t, 0) + sign * m
                if new < 0:
                    raise DeltaFoldError(f"{t!r} folded negative")
                if new == 0:
                    del target[t]
                else:
                    target[t] = new
        else:
            for t, ann in out.tuples():
                cur = target.get(t, (0, 0, 0))
                if sign > 0:
                    new = tuple(c + a for c, a in zip(cur, ann))
                else:
                    new = tuple(c - a for c, a in zip(cur, ann))
                    if new[0] < 0 or not new[0] <= new[1] <= new[2]:
                        raise DeltaFoldError(f"{t!r} folded invalid")
                if new == (0, 0, 0):
                    del target[t]
                else:
                    target[t] = new

    # -- read path -----------------------------------------------------
    def result(self):
        """The view's current contents, maintained or refreshed.

        Applies the epoch gate: verifies every tracked base relation is
        still the object subscribed to and at the epoch the last
        observed write left it at (out-of-band drift forces a full
        refresh), then recomputes only what is dirty — usually nothing.
        """
        if self._closed:
            raise RuntimeError(
                "subscription is closed; subscribe() again to resume"
            )
        db = self._conn.db
        for name, rel in self._tracked.items():
            live = db[name]
            if live is not rel or live.stats_epoch != self._expected[name]:
                self._needs_full_refresh = True
                break
        if self._needs_full_refresh:
            self._materialize()
            self.full_refreshes += 1
            _FULL_REFRESHES.inc()
        epoch = getattr(db, "epoch", None)
        if (
            self._result is not None
            and epoch is not None
            and epoch == self._result_epoch
        ):
            return self._result
        out = self._build_result()
        self._result = out
        self._result_epoch = epoch
        return out

    def refresh(self):
        """Force a from-scratch rebuild, then return :meth:`result`."""
        self._needs_full_refresh = True
        return self.result()

    def _build_result(self):
        kind = self._delta.kind
        if kind == "aggregate":
            if self._agg_state is None:  # degraded: non-foldable input
                return self._exec(self._dplan.view_pplan, self._conn.db)
            agg = self._delta.aggregate
            return finalize_delta_groups(
                self._agg_state, agg.group_by, agg.aggregates, agg.having
            )
        if kind == "linear":
            return self._from_rows(self._schema, self._rows)
        # refresh: rebuild dirty segments eagerly, then the gated tail
        for i, dirty in enumerate(self._seg_dirty):
            if dirty:
                out = self._exec(self._dplan.segment_pplans[i], self._conn.db)
                self._seg_rows[i] = dict(out.tuples())
                self._seg_schemas[i] = tuple(out.schema)
                self._seg_dirty[i] = False
                self._tail_dirty = True
                _SEGMENT_REFRESHES.inc()
        if self._tail_dirty or self._tail_result is None:
            over = {
                seg.name: self._from_rows(self._seg_schemas[i], self._seg_rows[i])
                for i, seg in enumerate(self._delta.segments)
            }
            self._tail_result = self._exec(
                self._dplan.tail_pplan, _ShadowDB(self._conn.db, over)
            )
            self._tail_dirty = False
            self.tail_refreshes += 1
            _TAIL_REFRESHES.inc()
        return self._tail_result

    def _from_rows(self, schema, rows: Dict):
        if self._engine == "det":
            rel = DetRelation(schema)
            rel.rows.update(rows)
        else:
            rel = AURelation(schema)
            rel._rows.update(rows)
        return rel

    def _materialize(self) -> None:
        """From-scratch (re)build: re-resolve base relations, recompute
        all maintained state, re-attach write sinks."""
        self._detach()
        db = self._conn.db
        self._tracked = {}
        self._expected = {}
        for name in self._delta.tables():
            rel = db[name]
            self._tracked[name] = rel
            self._expected[name] = rel.stats_epoch
        kind = self._delta.kind
        if kind == "linear":
            out = self._exec(self._dplan.segment_pplans[0], db)
            self._schema = tuple(out.schema)
            self._rows = dict(out.tuples())
        elif kind == "aggregate":
            child = self._exec(self._dplan.segment_pplans[0], db)
            agg = self._delta.aggregate
            state: Dict = {}
            try:
                fold_delta_groups(
                    state, child, agg.group_by, agg.aggregates, 1
                )
            except DeltaFoldError:
                # e.g. non-finite addends in the current data: serve
                # full recomputations until a rebuild can fold again
                state = None
                _FOLD_FALLBACKS.inc()
            self._agg_state = state
        else:
            for i, pplan in enumerate(self._dplan.segment_pplans):
                out = self._exec(pplan, db)
                self._seg_rows[i] = dict(out.tuples())
                self._seg_schemas[i] = tuple(out.schema)
                self._seg_dirty[i] = False
            self._tail_dirty = True
            self._tail_result = None
        self._needs_full_refresh = False
        self._result = None
        self._result_epoch = None
        self._attach()
