"""Deprecated alias of :mod:`repro.accuracy`.

This module holds the *paper-evaluation accuracy* measures (certain
tuple recall, bound tightness, …), not runtime telemetry — that name
collision became untenable once :mod:`repro.telemetry` landed, so the
module moved to :mod:`repro.accuracy`.  Importing ``repro.metrics``
keeps working but warns; update imports to ``repro.accuracy``.
"""

from __future__ import annotations

import warnings

from .accuracy import *  # noqa: F401,F403
from .accuracy import __all__  # noqa: F401

warnings.warn(
    "repro.metrics is deprecated; the paper accuracy metrics moved to "
    "repro.accuracy (runtime telemetry lives in repro.telemetry)",
    DeprecationWarning,
    stacklevel=2,
)
