"""PDBench: uncertain TPC-H (Section 12.1).

``make_pdbench`` generates the TPC-H database at a given scale and injects
attribute-level uncertainty à la PDBench: a chosen percentage of cells is
replaced by up to eight alternatives drawn uniformly from the attribute's
whole domain (the worst case for AU-DB ranges, best case for MayBMS, as
the paper notes).  Key columns are kept certain so joins remain meaningful
— PDBench likewise only injects into non-key attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..db.storage import DetDatabase
from ..incomplete.xdb import XDatabase
from ..workloads.uncertainty import inject_database
from .datagen import generate_tpch

__all__ = ["PDBenchInstance", "make_pdbench", "UNCERTAIN_COLUMNS"]

# non-key attributes eligible for uncertainty injection, per relation
UNCERTAIN_COLUMNS: Dict[str, Sequence[str]] = {
    "customer": ("c_acctbal", "c_mktsegment", "c_nationkey"),
    "supplier": ("s_acctbal", "s_nationkey"),
    "orders": ("o_totalprice", "o_orderdate", "o_shippriority", "o_orderstatus"),
    "lineitem": (
        "l_quantity", "l_extendedprice", "l_discount", "l_tax",
        "l_returnflag", "l_linestatus", "l_shipdate",
    ),
    "part": ("p_retailprice", "p_type"),
    "partsupp": ("ps_supplycost", "ps_availqty"),
}


@dataclass
class PDBenchInstance:
    """A generated uncertain TPC-H instance and its derived views."""

    scale: float
    uncertainty: float
    det: DetDatabase  # the clean generated data (pre-injection)
    xdb: XDatabase  # the uncertain database (PDBench output)

    def selected_world(self) -> DetDatabase:
        return self.xdb.selected_world()

    def audb(self):
        return self.xdb.to_audb()


def make_pdbench(
    scale: float = 1.0,
    uncertainty: float = 0.02,
    n_alternatives: int = 8,
    seed: int = 7,
) -> PDBenchInstance:
    """Generate an uncertain TPC-H instance.

    ``uncertainty`` is the fraction of eligible cells made uncertain
    (2 %, 5 %, 10 %, 30 % in Figure 10a).
    """
    det = generate_tpch(scale=scale, seed=seed)
    xdb = inject_database(
        det,
        cell_fraction=uncertainty,
        n_alternatives=n_alternatives,
        seed=seed + 1,
        range_fraction=1.0,
        columns_per_relation=dict(UNCERTAIN_COLUMNS),
    )
    return PDBenchInstance(scale, uncertainty, det, xdb)
