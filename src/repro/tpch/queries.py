"""TPC-H queries Q1/Q3/Q5/Q7/Q10 and the PDBench SPJ queries as plans.

Figure 12 of the paper benchmarks Q1, Q3, Q5, Q7, Q10 (the queries with
aggregation over potentially uncertain group-by attributes); Figure 10 uses
PDBench's simple select-project-join queries.  Dates are ``yyyymmdd``
integers, so the standard date literals translate directly.
"""

from __future__ import annotations

from ..algebra.ast import Aggregate, Plan, TableRef
from ..core.aggregation import agg_avg, agg_count, agg_sum
from ..core.expressions import Const, Var

__all__ = [
    "q1",
    "q3",
    "q5",
    "q7",
    "q10",
    "pdbench_spj_queries",
    "tpch_queries",
]


def q1(ship_cutoff: int = 19980902) -> Plan:
    """Pricing summary report (TPC-H Q1)."""
    lineitem = TableRef("lineitem")
    disc_price = Var("l_extendedprice") * (Const(1) - Var("l_discount"))
    charge = disc_price * (Const(1) + Var("l_tax"))
    return (
        lineitem.where(Var("l_shipdate") <= Const(ship_cutoff))
        .grouped(
            ["l_returnflag", "l_linestatus"],
            [
                agg_sum("l_quantity", "sum_qty"),
                agg_sum("l_extendedprice", "sum_base_price"),
                agg_sum(disc_price, "sum_disc_price"),
                agg_sum(charge, "sum_charge"),
                agg_avg("l_quantity", "avg_qty"),
                agg_avg("l_extendedprice", "avg_price"),
                agg_avg("l_discount", "avg_disc"),
                agg_count("count_order"),
            ],
        )
    )


def q3(segment: str = "BUILDING", date: int = 19950315) -> Plan:
    """Shipping priority (TPC-H Q3)."""
    customer = TableRef("customer").where(Var("c_mktsegment") == Const(segment))
    orders = TableRef("orders").where(Var("o_orderdate") < Const(date))
    lineitem = TableRef("lineitem").where(Var("l_shipdate") > Const(date))
    joined = customer.join(orders, Var("c_custkey") == Var("o_custkey")).join(
        lineitem, Var("o_orderkey") == Var("l_orderkey")
    )
    revenue = Var("l_extendedprice") * (Const(1) - Var("l_discount"))
    return joined.grouped(
        ["l_orderkey", "o_orderdate", "o_shippriority"],
        [agg_sum(revenue, "revenue")],
    )


def q5(region: str = "ASIA", date_lo: int = 19940101, date_hi: int = 19950101) -> Plan:
    """Local supplier volume (TPC-H Q5).

    Note: the classic Q5 requires ``c_nationkey = s_nationkey``; we keep
    that predicate via the join condition.
    """
    customer = TableRef("customer")
    orders = TableRef("orders").where(
        (Var("o_orderdate") >= Const(date_lo)) & (Var("o_orderdate") < Const(date_hi))
    )
    lineitem = TableRef("lineitem")
    supplier = TableRef("supplier")
    nation = TableRef("nation")
    region_t = TableRef("region").where(Var("r_name") == Const(region))

    joined = (
        customer.join(orders, Var("c_custkey") == Var("o_custkey"))
        .join(lineitem, Var("o_orderkey") == Var("l_orderkey"))
        .join(
            supplier,
            (Var("l_suppkey") == Var("s_suppkey"))
            & (Var("c_nationkey") == Var("s_nationkey")),
        )
        .join(nation, Var("s_nationkey") == Var("n_nationkey"))
        .join(region_t, Var("n_regionkey") == Var("r_regionkey"))
    )
    revenue = Var("l_extendedprice") * (Const(1) - Var("l_discount"))
    return joined.grouped(["n_name"], [agg_sum(revenue, "revenue")])


def q7(nation1: str = "FRANCE", nation2: str = "GERMANY") -> Plan:
    """Volume shipping (TPC-H Q7), grouped by nation pair and ship year."""
    supplier = TableRef("supplier")
    lineitem = TableRef("lineitem").where(
        (Var("l_shipdate") >= Const(19950101)) & (Var("l_shipdate") <= Const(19961231))
    )
    orders = TableRef("orders")
    customer = TableRef("customer")
    n1 = TableRef("nation").rename(
        {"n_nationkey": "n1_nationkey", "n_name": "supp_nation", "n_regionkey": "n1_regionkey"}
    )
    n2 = TableRef("nation").rename(
        {"n_nationkey": "n2_nationkey", "n_name": "cust_nation", "n_regionkey": "n2_regionkey"}
    )
    joined = (
        supplier.join(lineitem, Var("s_suppkey") == Var("l_suppkey"))
        .join(orders, Var("o_orderkey") == Var("l_orderkey"))
        .join(customer, Var("c_custkey") == Var("o_custkey"))
        .join(n1, Var("s_nationkey") == Var("n1_nationkey"))
        .join(n2, Var("c_nationkey") == Var("n2_nationkey"))
        .where(
            ((Var("supp_nation") == Const(nation1)) & (Var("cust_nation") == Const(nation2)))
            | ((Var("supp_nation") == Const(nation2)) & (Var("cust_nation") == Const(nation1)))
        )
    )
    volume = Var("l_extendedprice") * (Const(1) - Var("l_discount"))
    year = Var("l_shipdate")  # yyyymmdd; group by full date's year component
    with_year = joined.select(
        ("supp_nation", "supp_nation"),
        ("cust_nation", "cust_nation"),
        (year / Const(10000), "l_year_raw"),
        (volume, "volume"),
    )
    return with_year.grouped(
        ["supp_nation", "cust_nation"], [agg_sum("volume", "revenue")]
    )


def q10(date_lo: int = 19931001, date_hi: int = 19940101) -> Plan:
    """Returned item reporting (TPC-H Q10)."""
    customer = TableRef("customer")
    orders = TableRef("orders").where(
        (Var("o_orderdate") >= Const(date_lo)) & (Var("o_orderdate") < Const(date_hi))
    )
    lineitem = TableRef("lineitem").where(Var("l_returnflag") == Const("R"))
    nation = TableRef("nation")
    joined = (
        customer.join(orders, Var("c_custkey") == Var("o_custkey"))
        .join(lineitem, Var("o_orderkey") == Var("l_orderkey"))
        .join(nation, Var("c_nationkey") == Var("n_nationkey"))
    )
    revenue = Var("l_extendedprice") * (Const(1) - Var("l_discount"))
    return joined.grouped(
        ["c_custkey", "c_name", "n_name"], [agg_sum(revenue, "revenue")]
    )


def pdbench_spj_queries() -> dict:
    """The PDBench-style simple SPJ queries used in Figure 10."""
    spj1 = (
        TableRef("customer")
        .where(Var("c_acctbal") > Const(0.0))
        .select("c_custkey", "c_name", "c_nationkey")
    )
    spj2 = (
        TableRef("orders")
        .join(TableRef("customer"), Var("o_custkey") == Var("c_custkey"))
        .where(Var("o_totalprice") > Const(100000.0))
        .select("o_orderkey", "c_name", "o_totalprice")
    )
    spj3 = (
        TableRef("lineitem")
        .join(TableRef("orders"), Var("l_orderkey") == Var("o_orderkey"))
        .where(Var("l_quantity") >= Const(25))
        .select("l_orderkey", "l_partkey", "o_orderdate")
    )
    return {"spj1": spj1, "spj2": spj2, "spj3": spj3}


def tpch_queries() -> dict:
    """The Figure 12 query suite."""
    return {"Q1": q1(), "Q3": q3(), "Q5": q5(), "Q7": q7(), "Q10": q10()}
