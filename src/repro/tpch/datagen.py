"""Seeded TPC-H-schema data generator (laptop-scale substrate).

The paper's evaluation runs on PDBench, a modified TPC-H generator.  This
module generates the eight TPC-H relations with the standard schema
(dates encoded as ``yyyymmdd`` integers so comparisons stay ordinal) at a
scale controlled by ``scale``: ``scale=1.0`` corresponds to 1/1000 of
TPC-H SF1 (150 customers, 1 500 orders, ~6 000 lineitems), which keeps
every benchmark laptop-friendly while preserving the relative table sizes
and the join/aggregation shapes of the real workload.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..db.storage import DetDatabase, DetRelation

__all__ = ["generate_tpch", "TPCH_SCHEMAS"]

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PART_TYPES = [
    "ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "MEDIUM POLISHED COPPER",
    "PROMO BURNISHED NICKEL", "SMALL PLATED TIN", "STANDARD POLISHED STEEL",
]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUS = ["O", "F"]
ORDER_STATUS = ["O", "F", "P"]
PRIORITIES = [0, 1, 2, 3, 4]

TPCH_SCHEMAS: Dict[str, Tuple[str, ...]] = {
    "region": ("r_regionkey", "r_name"),
    "nation": ("n_nationkey", "n_name", "n_regionkey"),
    "supplier": ("s_suppkey", "s_name", "s_nationkey", "s_acctbal"),
    "customer": (
        "c_custkey", "c_name", "c_nationkey", "c_acctbal", "c_mktsegment",
    ),
    "part": ("p_partkey", "p_name", "p_type", "p_retailprice"),
    "partsupp": ("ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty"),
    "orders": (
        "o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
        "o_orderdate", "o_shippriority",
    ),
    "lineitem": (
        "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
        "l_quantity", "l_extendedprice", "l_discount", "l_tax",
        "l_returnflag", "l_linestatus", "l_shipdate",
    ),
}


def _random_date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> int:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return year * 10000 + month * 100 + day


def generate_tpch(scale: float = 1.0, seed: int = 42) -> DetDatabase:
    """Generate a deterministic TPC-H-shaped database.

    ``scale=1.0`` ≈ TPC-H SF 0.001 row counts; the paper's SF 0.1 / 1 / 10
    sweep maps to ``scale`` 0.1 / 1 / 10 here.
    """
    rng = random.Random(seed)
    n_customers = max(5, int(150 * scale))
    n_suppliers = max(3, int(10 * scale))
    n_parts = max(5, int(200 * scale))
    n_orders = n_customers * 10
    db = DetDatabase()

    region = DetRelation(TPCH_SCHEMAS["region"])
    for i, name in enumerate(REGIONS):
        region.add((i, name))
    db["region"] = region

    nation = DetRelation(TPCH_SCHEMAS["nation"])
    for i, (name, regionkey) in enumerate(NATIONS):
        nation.add((i, name, regionkey))
    db["nation"] = nation

    supplier = DetRelation(TPCH_SCHEMAS["supplier"])
    for i in range(1, n_suppliers + 1):
        supplier.add(
            (
                i,
                f"Supplier#{i:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
            )
        )
    db["supplier"] = supplier

    customer = DetRelation(TPCH_SCHEMAS["customer"])
    for i in range(1, n_customers + 1):
        customer.add(
            (
                i,
                f"Customer#{i:09d}",
                rng.randrange(len(NATIONS)),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(SEGMENTS),
            )
        )
    db["customer"] = customer

    part = DetRelation(TPCH_SCHEMAS["part"])
    for i in range(1, n_parts + 1):
        part.add(
            (
                i,
                f"part {i}",
                rng.choice(PART_TYPES),
                round(900 + (i % 1000) * 1.0 + rng.uniform(0, 100), 2),
            )
        )
    db["part"] = part

    partsupp = DetRelation(TPCH_SCHEMAS["partsupp"])
    for p in range(1, n_parts + 1):
        for s in rng.sample(range(1, n_suppliers + 1), min(2, n_suppliers)):
            partsupp.add((p, s, round(rng.uniform(1, 1000), 2), rng.randint(1, 9999)))
    db["partsupp"] = partsupp

    orders = DetRelation(TPCH_SCHEMAS["orders"])
    lineitem = DetRelation(TPCH_SCHEMAS["lineitem"])
    for o in range(1, n_orders + 1):
        custkey = rng.randint(1, n_customers)
        orderdate = _random_date(rng)
        n_lines = rng.randint(1, 7)
        total = 0.0
        for line in range(1, n_lines + 1):
            quantity = rng.randint(1, 50)
            extended = round(quantity * rng.uniform(900, 2000), 2)
            total += extended
            lineitem.add(
                (
                    o,
                    rng.randint(1, n_parts),
                    rng.randint(1, n_suppliers),
                    line,
                    quantity,
                    extended,
                    round(rng.uniform(0.0, 0.1), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(RETURN_FLAGS),
                    rng.choice(LINE_STATUS),
                    min(19981231, orderdate + rng.randint(1, 121)),
                )
            )
        orders.add(
            (
                o,
                custkey,
                rng.choice(ORDER_STATUS),
                round(total, 2),
                orderdate,
                rng.choice(PRIORITIES),
            )
        )
    db["orders"] = orders
    db["lineitem"] = lineitem
    return db
