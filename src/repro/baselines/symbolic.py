"""Symbolic aggregate encoding baseline (aggregate semimodules, [9, 27]).

The ``Symb`` baseline of Figure 11 represents aggregation results as
symbolic expressions over the uncertain choices instead of collapsing them
to bounds: a SUM over an x-relation becomes ``Σ_b choice_b ⊗ v_b`` where
``choice_b`` ranges over block ``b``'s alternatives.  Such encodings are
lossless and closed under further aggregation, but they *grow with the
aggregate input*, and extracting tangible information (here: GLB/LUB
bounds, which the paper obtains from an SMT solver) walks the whole
expression — so chained aggregation gets progressively more expensive.

We reproduce the algorithmic shape with an expression DAG deliberately
kept tree-shaped (no sharing/simplification, as in the compared system)
and a per-level bound-extraction pass standing in for the Z3 calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..incomplete.xdb import XRelation

__all__ = [
    "SymConst",
    "SymChoice",
    "SymAdd",
    "SymMul",
    "sym_bounds",
    "symbolic_sum",
    "chain_symbolic_aggregates",
]


class SymExpr:
    """Base class of symbolic aggregate expressions."""


@dataclass(frozen=True)
class SymConst(SymExpr):
    value: float


@dataclass(frozen=True)
class SymChoice(SymExpr):
    """The value contributed by one x-tuple block: one of ``values`` (its
    alternatives' aggregate inputs) or 0 when the block is optional."""

    block: int
    values: Tuple[float, ...]
    optional: bool


@dataclass(frozen=True)
class SymAdd(SymExpr):
    terms: Tuple[SymExpr, ...]


@dataclass(frozen=True)
class SymMul(SymExpr):
    left: SymExpr
    right: SymExpr


def sym_bounds(expr: SymExpr) -> Tuple[float, float]:
    """Extract [GLB, LUB] by structural interval reasoning.

    Treats choices independently (sound for the block-independent inputs
    used in the benchmark, where each block appears once per expression).
    """
    if isinstance(expr, SymConst):
        return expr.value, expr.value
    if isinstance(expr, SymChoice):
        lo, hi = min(expr.values), max(expr.values)
        if expr.optional:
            lo, hi = min(lo, 0.0), max(hi, 0.0)
        return lo, hi
    if isinstance(expr, SymAdd):
        lo = hi = 0.0
        for term in expr.terms:
            t_lo, t_hi = sym_bounds(term)
            lo += t_lo
            hi += t_hi
        return lo, hi
    if isinstance(expr, SymMul):
        a_lo, a_hi = sym_bounds(expr.left)
        b_lo, b_hi = sym_bounds(expr.right)
        corners = (a_lo * b_lo, a_lo * b_hi, a_hi * b_lo, a_hi * b_hi)
        return min(corners), max(corners)
    raise TypeError(type(expr).__name__)


def symbolic_sum(
    xrel: XRelation, attribute: str, scale: float = 1.0
) -> SymExpr:
    """Encode ``SUM(attribute)`` over an x-relation symbolically."""
    idx = list(xrel.schema).index(attribute)
    terms: List[SymExpr] = []
    for block, xt in enumerate(xrel.xtuples):
        values = tuple(float(alt[idx]) * scale for alt in xt.alternatives)
        terms.append(SymChoice(block, values, xt.optional))
    return SymAdd(tuple(terms))


def chain_symbolic_aggregates(
    xrel: XRelation, attribute: str, n_ops: int
) -> Tuple[SymExpr, Tuple[float, float]]:
    """Chain ``n_ops`` aggregation operators symbolically (Figure 11).

    Each level re-aggregates (sums a scaled copy of) the previous level's
    symbolic result without simplification and re-extracts bounds — the
    per-level solver pass of the compared system.  Returns the final
    expression and its bounds.
    """
    expr = symbolic_sum(xrel, attribute)
    bounds = sym_bounds(expr)  # level-1 extraction
    for level in range(1, n_ops):
        # next aggregation consumes the previous symbolic result alongside
        # a fresh encoding of the base data (multi-aggregate query shape)
        expr = SymAdd((expr, SymMul(SymConst(1.0 / (level + 1)), symbolic_sum(xrel, attribute))))
        bounds = sym_bounds(expr)
    return expr, bounds
