"""MCDB-style Monte-Carlo baseline (Jampani et al. [39]).

MCDB evaluates the query over *sampled* possible worlds ("tuple bundles"
approximated here, as in the paper's comparison, by 10 independent world
samples).  From the per-sample results we derive:

* an estimate of possible answers (union of sample results — may miss
  possible tuples the samples never realized);
* an estimate of certain answers (tuples present in every sample — MCDB
  itself cannot distinguish certain from possible, which the Figure 17
  accuracy columns reflect);
* per-key attribute bounds from the sample spread (may under-cover).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..algebra.ast import Plan
from ..db.engine import evaluate_det
from ..db.storage import DetDatabase, DetRelation
from ..core.ranges import domain_max, domain_min
from ..incomplete.tidb import TIDatabase
from ..incomplete.xdb import XDatabase

__all__ = ["MCDBResult", "run_mcdb"]


@dataclass
class MCDBResult:
    """Aggregated view over per-sample query results."""

    schema: Tuple[str, ...]
    samples: List[DetRelation] = field(default_factory=list)

    def possible_tuples(self) -> Dict[Tuple[Any, ...], int]:
        """Union of sample results with max multiplicity (possible estimate)."""
        out: Dict[Tuple[Any, ...], int] = {}
        for rel in self.samples:
            for t, m in rel.tuples():
                if m > out.get(t, 0):
                    out[t] = m
        return out

    def certain_estimate(self) -> Dict[Tuple[Any, ...], int]:
        """Tuples present in all samples with min multiplicity."""
        if not self.samples:
            return {}
        certain = dict(self.samples[0].rows)
        for rel in self.samples[1:]:
            for t in list(certain):
                m = rel.multiplicity(t)
                if m < certain[t]:
                    certain[t] = m
        return {t: m for t, m in certain.items() if m > 0}

    def attribute_bounds(
        self, key_columns: Sequence[str]
    ) -> Dict[Tuple[Any, ...], List[Tuple[Any, Any]]]:
        """Per-key min/max over samples for every non-key attribute."""
        key_idx = [self.schema.index(k) for k in key_columns]
        value_idx = [i for i in range(len(self.schema)) if i not in key_idx]
        observed: Dict[Tuple[Any, ...], List[List[Any]]] = {}
        for rel in self.samples:
            for t, _m in rel.tuples():
                key = tuple(t[i] for i in key_idx)
                bucket = observed.setdefault(key, [[] for _ in value_idx])
                for pos, i in enumerate(value_idx):
                    bucket[pos].append(t[i])
        return {
            key: [(domain_min(vals), domain_max(vals)) for vals in buckets]
            for key, buckets in observed.items()
        }

    def expectation(self, column: str) -> float:
        """Mean of a numeric column across samples (MCDB's native output)."""
        idx = self.schema.index(column)
        values = [
            t[idx]
            for rel in self.samples
            for t, m in rel.tuples()
            for _ in range(m)
        ]
        return sum(values) / len(values) if values else 0.0


def run_mcdb(
    plan: Plan,
    source: XDatabase | TIDatabase,
    n_samples: int = 10,
    seed: int = 0,
) -> MCDBResult:
    """Sample ``n_samples`` worlds from ``source`` and evaluate ``plan``
    in each (the paper's MCDB configuration uses 10 samples)."""
    rng = random.Random(seed)
    samples: List[DetRelation] = []
    schema: Tuple[str, ...] = ()
    for _ in range(n_samples):
        world = source.sample_world(rng)
        # interpret the plan as written: the baseline's per-sample cost
        # must not include re-optimizing the same plan every world
        result = evaluate_det(plan, world, optimize=False)
        schema = result.schema
        samples.append(result)
    return MCDBResult(schema, samples)
