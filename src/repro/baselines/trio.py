"""Trio-style baseline (Agrawal et al. [7]): lineage + aggregate bounds.

Trio is an uncertainty-and-lineage DBMS over x-relations.  For the paper's
experiments two behaviours matter:

* **SPJ queries** produce result tuples with lineage over x-tuple
  alternatives; a result is certain when its lineage is implied in every
  world (here: it derives from non-optional, single-alternative blocks).
* **Aggregation** returns per-group ``[GLB, LUB]`` bounds, but *does not
  support uncertain group-by attributes*: groups whose group-by value
  differs across a block's alternatives are dropped (Figure 17 notes
  Trio returns no result for such groups).  Its bound representation is
  also not closed under further querying — chaining aggregates degrades
  to treating the previous bounds as exact values, which is why Figure 11
  marks Trio's chained results incorrect-but-timed.

Aggregate bounds are computed by per-block interval reasoning (min/max
contribution of each block, folded across blocks) — exact for
SUM/COUNT/MIN/MAX under block independence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.aggregation import AggregateSpec
from ..core.ranges import domain_max, domain_min
from ..db.storage import DetRelation
from ..incomplete.xdb import XDatabase, XRelation

__all__ = ["TrioAggregateRow", "trio_aggregate", "trio_spj_possible"]


@dataclass(frozen=True)
class TrioAggregateRow:
    """One group's result: exact-in-SGW value plus [GLB, LUB] bounds."""

    group: Tuple[Any, ...]
    lower: Any
    selected: Any
    upper: Any
    certain: bool


def trio_spj_possible(
    xrel: XRelation, predicate
) -> Tuple[DetRelation, Dict[Tuple[Any, ...], bool]]:
    """Filter an x-relation, returning possible tuples + certainty flags.

    ``predicate`` is a Python callable over a value dict (Trio's condition
    evaluation happens per alternative).  A tuple is certain iff it comes
    from a non-optional block whose every alternative both satisfies the
    predicate and equals it (single-alternative certainty).
    """
    out = DetRelation(xrel.schema)
    certainty: Dict[Tuple[Any, ...], bool] = {}
    seen = set()
    for xt in xrel.xtuples:
        satisfying = [
            alt
            for alt in xt.alternatives
            if predicate(dict(zip(xrel.schema, alt)))
        ]
        for alt in satisfying:
            if alt not in seen:
                seen.add(alt)
                out.add(alt, 1)
            is_certain = (
                not xt.optional
                and len(xt.alternatives) == 1
                and len(satisfying) == 1
            )
            certainty[alt] = certainty.get(alt, False) or is_certain
    return out, certainty


def trio_aggregate(
    xrel: XRelation,
    group_by: Sequence[str],
    spec: AggregateSpec,
) -> List[TrioAggregateRow]:
    """Per-group aggregate bounds over an x-relation.

    Only groups with a *certain* group-by value are produced; blocks whose
    group-by value is uncertain contribute to no group (the Trio
    restriction the paper exploits in Figure 17's accuracy comparison).
    """
    schema = list(xrel.schema)
    group_idx = [schema.index(g) for g in group_by]
    if spec.kind == "count":
        value_of = lambda alt: 1
    else:
        agg_vars = list(spec.expr.variables())
        if len(agg_vars) != 1:
            raise ValueError("Trio aggregation supports single-attribute inputs")
        agg_idx = schema.index(agg_vars[0])
        value_of = lambda alt: alt[agg_idx]

    # collect blocks per certain group value
    per_group: Dict[Tuple[Any, ...], List] = {}
    for xt in xrel.xtuples:
        group_values = {tuple(alt[i] for i in group_idx) for alt in xt.alternatives}
        if len(group_values) != 1:
            continue  # uncertain group-by: Trio drops the block
        key = next(iter(group_values))
        per_group.setdefault(key, []).append(xt)

    rows: List[TrioAggregateRow] = []
    for key, blocks in sorted(per_group.items(), key=lambda kv: repr(kv[0])):
        rows.append(_fold_group(key, blocks, spec, value_of))
    return rows


def _fold_group(key, blocks, spec: AggregateSpec, value_of) -> TrioAggregateRow:
    kind = spec.kind
    # the group's result row certainly exists when at least one
    # non-optional block certainly belongs to it
    certain = any(not b.optional for b in blocks)
    if kind in {"sum", "count", "avg"}:
        lo_sum = hi_sum = 0.0
        sg_sum = 0.0
        lo_cnt = hi_cnt = 0
        sg_cnt = 0
        for b in blocks:
            values = [value_of(alt) for alt in b.alternatives]
            counts = [1] * len(values)
            lo_v, hi_v = min(values), max(values)
            if b.optional:
                lo_v, hi_v = min(lo_v, 0), max(hi_v, 0)
                lo_c = 0
            else:
                lo_c = 1
            lo_sum += lo_v
            hi_sum += hi_v
            lo_cnt += lo_c
            hi_cnt += 1
            if b.sg_present():
                sg_sum += value_of(b.pick_max())
                sg_cnt += 1
        if kind == "sum":
            return TrioAggregateRow(key, lo_sum, sg_sum, hi_sum, certain)
        if kind == "count":
            return TrioAggregateRow(key, lo_cnt, sg_cnt, hi_cnt, certain)
        lo_avg = lo_sum / max(hi_cnt, 1)
        hi_avg = hi_sum / max(lo_cnt, 1) if lo_cnt else hi_sum
        sg_avg = sg_sum / sg_cnt if sg_cnt else 0.0
        lo_avg = min(lo_avg, sg_avg)
        hi_avg = max(hi_avg, sg_avg)
        return TrioAggregateRow(key, lo_avg, sg_avg, hi_avg, certain)
    if kind in {"min", "max"}:
        possible_vals: List[Any] = []
        mandatory_vals: List[Any] = []  # per non-optional block: worst case
        sg_vals: List[Any] = []
        for b in blocks:
            values = [value_of(alt) for alt in b.alternatives]
            possible_vals.extend(values)
            if not b.optional:
                mandatory_vals.append(
                    domain_max(values) if kind == "min" else domain_min(values)
                )
            if b.sg_present():
                sg_vals.append(value_of(b.pick_max()))
        if kind == "min":
            lo = domain_min(possible_vals)
            hi = domain_min(mandatory_vals) if mandatory_vals else domain_max(possible_vals)
            sg = domain_min(sg_vals) if sg_vals else lo
        else:
            hi = domain_max(possible_vals)
            lo = domain_max(mandatory_vals) if mandatory_vals else domain_min(possible_vals)
            sg = domain_max(sg_vals) if sg_vals else hi
        if not _le(lo, sg):
            sg = lo
        if not _le(sg, hi):
            sg = hi
        return TrioAggregateRow(key, lo, sg, hi, certain)
    raise ValueError(f"unsupported Trio aggregate {kind!r}")


def _le(a, b) -> bool:
    from ..core.ranges import domain_le

    return domain_le(a, b)
