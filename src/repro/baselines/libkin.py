"""Certain-answer under-approximation à la Guagliardo & Libkin [35, 51].

The paper's ``Libkin`` baseline evaluates queries over V-tables (labeled
nulls) with a rewriting that returns a *subset of the certain answers*
under bag semantics.  We realize the same algorithm as an interpreter:

* values may be :class:`LabeledNull` markers;
* a comparison involving nulls is *unknown*; certain-answer evaluation
  keeps a tuple only when the condition is certainly true (two occurrences
  of the *same* labeled null are certainly equal);
* set difference keeps a left tuple only if no right tuple possibly
  unifies with it (the over-approximating "possible match" test of [35]).

Aggregation is not supported by the approach (the paper's Figure 10
experiments use only the PDBench SPJ queries for this baseline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..algebra.ast import (
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    Union,
)
from ..core.expressions import (
    And,
    Const,
    Eq,
    Expression,
    Geq,
    Gt,
    Leq,
    Lt,
    Neq,
    Not,
    Or,
    Var,
)
from ..core.ranges import domain_le
from ..db.storage import DetDatabase, DetRelation
from ..incomplete.xdb import XDatabase, XRelation

__all__ = ["LabeledNull", "NullDatabase", "evaluate_libkin", "null_db_from_xdb"]

_null_counter = itertools.count()


@dataclass(frozen=True)
class LabeledNull:
    """A labeled (marked) null; identity gives certain equality."""

    label: int

    def __repr__(self) -> str:
        return f"⊥{self.label}"


def fresh_null() -> LabeledNull:
    return LabeledNull(next(_null_counter))


class NullDatabase(DetDatabase):
    """Deterministic relations whose values may contain labeled nulls."""


def null_db_from_xdb(xdb: XDatabase) -> NullDatabase:
    """PDBench setup for the Libkin baseline: every uncertain cell (an
    attribute differing across an x-tuple's alternatives) becomes a fresh
    labeled null; optional x-tuples are dropped (they are not certain)."""
    db = NullDatabase({})
    for name, xrel in xdb.relations.items():
        rel = DetRelation(xrel.schema)
        for xt in xrel.xtuples:
            if xt.optional:
                continue
            values: List[Any] = []
            for i in range(len(xrel.schema)):
                column = {repr(alt[i]) for alt in xt.alternatives}
                if len(column) == 1:
                    values.append(xt.alternatives[0][i])
                else:
                    values.append(fresh_null())
            rel.add(tuple(values), 1)
        db[name] = rel
    return db


# ----------------------------------------------------------------------
# three-valued evaluation
# ----------------------------------------------------------------------
SURE, UNKNOWN, NO = 1, 0, -1


def _cmp3(op: str, a: Any, b: Any) -> int:
    a_null = isinstance(a, LabeledNull)
    b_null = isinstance(b, LabeledNull)
    if a_null or b_null:
        if op == "=" and a_null and b_null and a == b:
            return SURE
        return UNKNOWN
    if op == "=":
        return SURE if a == b else NO
    if op == "<=":
        return SURE if domain_le(a, b) else NO
    raise ValueError(op)


def _eval3(e: Expression, valuation: Dict[str, Any]) -> int:
    """Kleene three-valued truth of a condition under labeled nulls."""
    if isinstance(e, Const):
        return SURE if bool(e.value) else NO
    if isinstance(e, And):
        l, r = _eval3(e.left, valuation), _eval3(e.right, valuation)
        return min(l, r)
    if isinstance(e, Or):
        l, r = _eval3(e.left, valuation), _eval3(e.right, valuation)
        return max(l, r)
    if isinstance(e, Not):
        return -_eval3(e.operand, valuation)
    if isinstance(e, Eq):
        return _cmp3("=", _scalar(e.left, valuation), _scalar(e.right, valuation))
    if isinstance(e, Neq):
        return -_cmp3("=", _scalar(e.left, valuation), _scalar(e.right, valuation))
    if isinstance(e, Leq):
        return _cmp3("<=", _scalar(e.left, valuation), _scalar(e.right, valuation))
    if isinstance(e, Geq):
        return _cmp3("<=", _scalar(e.right, valuation), _scalar(e.left, valuation))
    if isinstance(e, Lt):
        return -_cmp3("<=", _scalar(e.right, valuation), _scalar(e.left, valuation))
    if isinstance(e, Gt):
        return -_cmp3("<=", _scalar(e.left, valuation), _scalar(e.right, valuation))
    raise TypeError(f"unsupported condition for null evaluation: {e!r}")


def _scalar(e: Expression, valuation: Dict[str, Any]) -> Any:
    """Evaluate a scalar sub-expression; nulls poison arithmetic."""
    if isinstance(e, Var):
        return valuation[e.name]
    if isinstance(e, Const):
        return e.value
    # arithmetic over nulls yields a fresh null (unknown value)
    inputs = [valuation.get(v) for v in e.variables()]
    if any(isinstance(v, LabeledNull) for v in inputs):
        return fresh_null()
    return e.eval(valuation)


# ----------------------------------------------------------------------
# plan interpreter
# ----------------------------------------------------------------------
def evaluate_libkin(plan: Plan, db: NullDatabase) -> DetRelation:
    """Certain-answer under-approximation of ``plan`` over ``db``."""
    if isinstance(plan, TableRef):
        return db[plan.name]
    if isinstance(plan, Selection):
        child = evaluate_libkin(plan.child, db)
        out = DetRelation(child.schema)
        for t, m in child.tuples():
            if _eval3(plan.condition, dict(zip(child.schema, t))) == SURE:
                out.add(t, m)
        return out
    if isinstance(plan, Projection):
        child = evaluate_libkin(plan.child, db)
        out = DetRelation([name for _, name in plan.columns])
        for t, m in child.tuples():
            valuation = dict(zip(child.schema, t))
            out.add(tuple(_scalar(e, valuation) for e, _ in plan.columns), m)
        return out
    if isinstance(plan, (Join, CrossProduct)):
        left = evaluate_libkin(plan.left, db)
        right = evaluate_libkin(plan.right, db)
        schema = tuple(left.schema) + tuple(right.schema)
        out = DetRelation(schema)
        condition = plan.condition if isinstance(plan, Join) else Const(True)
        from ..db.engine import _equi_pairs

        eq_pairs = _equi_pairs(condition, left.schema, right.schema)
        if eq_pairs:
            # hashing is valid for *certain* equality: labeled nulls only
            # equal themselves, which ``==`` on LabeledNull implements
            l_idx = [left.schema.index(a) for a, _ in eq_pairs]
            r_idx = [right.schema.index(b) for _, b in eq_pairs]
            index = {}
            for rt, rm in right.tuples():
                index.setdefault(tuple(rt[i] for i in r_idx), []).append((rt, rm))
            for lt, lm in left.tuples():
                for rt, rm in index.get(tuple(lt[i] for i in l_idx), ()):
                    combined = lt + rt
                    if _eval3(condition, dict(zip(schema, combined))) == SURE:
                        out.add(combined, lm * rm)
            return out
        for lt, lm in left.tuples():
            for rt, rm in right.tuples():
                combined = lt + rt
                if _eval3(condition, dict(zip(schema, combined))) == SURE:
                    out.add(combined, lm * rm)
        return out
    if isinstance(plan, Union):
        left = evaluate_libkin(plan.left, db)
        right = evaluate_libkin(plan.right, db)
        out = DetRelation(left.schema)
        for t, m in left.tuples():
            out.add(t, m)
        for t, m in right.tuples():
            out.add(t, m)
        return out
    if isinstance(plan, Difference):
        left = evaluate_libkin(plan.left, db)
        right = evaluate_libkin(plan.right, db)
        out = DetRelation(left.schema)
        for t, m in left.tuples():
            possible_matches = sum(
                rm for rt, rm in right.tuples() if _unifies(t, rt)
            )
            if m - possible_matches > 0:
                out.add(t, m - possible_matches)
        return out
    if isinstance(plan, Distinct):
        child = evaluate_libkin(plan.child, db)
        out = DetRelation(child.schema)
        for t, _m in child.tuples():
            out.add(t, 1)
        return out
    if isinstance(plan, Rename):
        child = evaluate_libkin(plan.child, db)
        out = DetRelation([plan.mapping_dict().get(a, a) for a in child.schema])
        for t, m in child.tuples():
            out.add(t, m)
        return out
    raise TypeError(
        f"Libkin-style rewriting does not support {type(plan).__name__}"
    )


def _unifies(a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
    """Could the two tuples be equal in some world?"""
    for x, y in zip(a, b):
        if isinstance(x, LabeledNull) or isinstance(y, LabeledNull):
            continue
        if x != y:
            return False
    return True
