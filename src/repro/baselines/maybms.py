"""MayBMS-style possible-answer computation over x-DBs (Antova et al. [11]).

MayBMS stores block-independent data column-wise and answers *possible
answer* queries without probability computation.  For positive queries
over an x-DB, the set of possible answers equals the query over the
"all-alternatives" relation — every alternative of every x-tuple becomes
its own row tagged with its block id — with the block-consistency proviso
that a result row must not combine two different alternatives of the same
x-tuple (relevant only for self-joins).

This module reproduces that algorithm: positive plans run over the
flattened alternatives with lineage tracking of the contributing
``(relation, block, alternative)`` choices; results whose lineage picks two
conflicting alternatives of one block are discarded.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..algebra.ast import (
    CrossProduct,
    Distinct,
    Join,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    Union,
)
from ..core.expressions import Expression
from ..db.storage import DetRelation
from ..incomplete.xdb import XDatabase

__all__ = ["evaluate_maybms_possible"]

# a lineage atom: (relation name, block index, alternative index)
Atom = Tuple[str, int, int]
Lineage = FrozenSet[Atom]


class _LineageRelation:
    """Rows paired with the choice atoms that produced them."""

    def __init__(self, schema: Sequence[str]) -> None:
        self.schema = tuple(schema)
        self.rows: List[Tuple[Tuple[Any, ...], Lineage]] = []

    def add(self, t: Tuple[Any, ...], lineage: Lineage) -> None:
        self.rows.append((t, lineage))


def _consistent(lineage: Lineage) -> bool:
    """No two atoms pick different alternatives of the same block."""
    chosen: Dict[Tuple[str, int], int] = {}
    for rel, block, alt in lineage:
        key = (rel, block)
        if key in chosen and chosen[key] != alt:
            return False
        chosen[key] = alt
    return True


def _base(xdb: XDatabase, name: str) -> _LineageRelation:
    xrel = xdb[name]
    out = _LineageRelation(xrel.schema)
    for block, xt in enumerate(xrel.xtuples):
        for alt_i, alt in enumerate(xt.alternatives):
            out.add(alt, frozenset({(name, block, alt_i)}))
    return out


def _eval(plan: Plan, xdb: XDatabase) -> _LineageRelation:
    if isinstance(plan, TableRef):
        return _base(xdb, plan.name)
    if isinstance(plan, Selection):
        child = _eval(plan.child, xdb)
        out = _LineageRelation(child.schema)
        for t, lin in child.rows:
            if bool(plan.condition.eval(dict(zip(child.schema, t)))):
                out.add(t, lin)
        return out
    if isinstance(plan, Projection):
        child = _eval(plan.child, xdb)
        out = _LineageRelation([n for _, n in plan.columns])
        for t, lin in child.rows:
            valuation = dict(zip(child.schema, t))
            out.add(tuple(e.eval(valuation) for e, _ in plan.columns), lin)
        return out
    if isinstance(plan, (Join, CrossProduct)):
        left = _eval(plan.left, xdb)
        right = _eval(plan.right, xdb)
        schema = tuple(left.schema) + tuple(right.schema)
        out = _LineageRelation(schema)
        condition: Optional[Expression] = (
            plan.condition if isinstance(plan, Join) else None
        )
        for lt, llin in left.rows:
            for rt, rlin in right.rows:
                combined = lt + rt
                if condition is not None and not bool(
                    condition.eval(dict(zip(schema, combined)))
                ):
                    continue
                lineage = llin | rlin
                if _consistent(lineage):
                    out.add(combined, lineage)
        return out
    if isinstance(plan, Union):
        left = _eval(plan.left, xdb)
        right = _eval(plan.right, xdb)
        out = _LineageRelation(left.schema)
        out.rows = left.rows + right.rows
        return out
    if isinstance(plan, Distinct):
        return _eval(plan.child, xdb)
    if isinstance(plan, Rename):
        child = _eval(plan.child, xdb)
        out = _LineageRelation(
            [plan.mapping_dict().get(a, a) for a in child.schema]
        )
        out.rows = child.rows
        return out
    raise TypeError(
        f"MayBMS possible-answer computation supports positive queries "
        f"only, not {type(plan).__name__}"
    )


def evaluate_maybms_possible(plan: Plan, xdb: XDatabase) -> DetRelation:
    """All possible answer tuples of a positive plan over an x-DB."""
    lineage_rel = _eval(plan, xdb)
    out = DetRelation(lineage_rel.schema)
    seen = set()
    for t, _lin in lineage_rel.rows:
        if t not in seen:
            seen.add(t)
            out.add(t, 1)
    return out
