"""UA-DB baseline (Feng et al., SIGMOD 2019 — the paper's reference [26]).

A UA-DB annotates each tuple of a selected-guess world with a pair
``[certain_lb, sg]`` from ``K^2``: an under-approximation of the tuple's
certain multiplicity plus its SGW multiplicity.  There is **no**
attribute-level uncertainty and **no** upper bound on possible
multiplicities, which is exactly why UA-DBs support only ``RA+`` —
non-monotone operators (difference, aggregation) need the possible upper
bound that AU-DBs add.

For experiments that run aggregation anyway (Figure 17), we mirror the
observed behaviour of the original system: the aggregate is computed on
the SGW and every output is marked uncertain (certain lower bound 0).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    Union,
)
from ..core.expressions import Expression
from ..db.engine import evaluate_det, _aggregate as det_aggregate
from ..db.storage import DetDatabase, DetRelation
from ..incomplete.xdb import XDatabase, XRelation
from ..incomplete.tidb import TIDatabase, TIRelation

__all__ = ["UARelation", "UADatabase", "evaluate_uadb"]


class UARelation:
    """A ``K^2``-relation: tuple -> ``(certain_lb, sg_multiplicity)``."""

    __slots__ = ("schema", "rows")

    def __init__(
        self,
        schema: Sequence[str],
        rows: Optional[Mapping[Tuple[Any, ...], Tuple[int, int]]] = None,
    ) -> None:
        self.schema = tuple(schema)
        self.rows: Dict[Tuple[Any, ...], Tuple[int, int]] = {}
        for t, ann in (rows or {}).items():
            self.add(t, ann)

    def add(self, t: Tuple[Any, ...], annotation: Tuple[int, int]) -> None:
        lb, sg = annotation
        if lb < 0 or lb > sg:
            raise ValueError(
                f"UA annotation must satisfy 0 <= certain <= sg, got {annotation}"
            )
        if sg == 0:
            return
        t = tuple(t)
        old = self.rows.get(t, (0, 0))
        self.rows[t] = (old[0] + lb, old[1] + sg)

    def tuples(self) -> Iterable[Tuple[Tuple[Any, ...], Tuple[int, int]]]:
        return self.rows.items()

    def certain_tuples(self) -> Dict[Tuple[Any, ...], int]:
        return {t: lb for t, (lb, _sg) in self.rows.items() if lb > 0}

    def sg_world(self) -> DetRelation:
        rel = DetRelation(self.schema)
        for t, (_lb, sg) in self.rows.items():
            rel.add(t, sg)
        return rel

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    @classmethod
    def from_xrelation(cls, xrel: XRelation) -> "UARelation":
        """Label an x-relation: the SG alternative, certain iff the x-tuple
        is non-optional and has a single alternative (the labeling scheme
        of [26] used in the paper's experimental setup)."""
        rel = cls(xrel.schema)
        for xt in xrel.xtuples:
            if not xt.sg_present():
                continue
            is_certain = (not xt.optional) and len(xt.alternatives) == 1
            rel.add(xt.pick_max(), (1 if is_certain else 0, 1))
        return rel

    @classmethod
    def from_tirelation(cls, tirel: TIRelation) -> "UARelation":
        rel = cls(tirel.schema)
        for row in tirel.rows:
            if row.in_selected_world:
                rel.add(row.values, (1 if row.certain else 0, 1))
        return rel


class UADatabase:
    """A database of UA-relations."""

    def __init__(self, relations: Optional[Dict[str, UARelation]] = None) -> None:
        self.relations: Dict[str, UARelation] = dict(relations or {})

    def __getitem__(self, name: str) -> UARelation:
        return self.relations[name]

    def __setitem__(self, name: str, rel: UARelation) -> None:
        self.relations[name] = rel

    @classmethod
    def from_xdb(cls, xdb: XDatabase) -> "UADatabase":
        return cls(
            {n: UARelation.from_xrelation(r) for n, r in xdb.relations.items()}
        )

    @classmethod
    def from_tidb(cls, tidb: TIDatabase) -> "UADatabase":
        return cls(
            {n: UARelation.from_tirelation(r) for n, r in tidb.relations.items()}
        )


def evaluate_uadb(plan: Plan, db: UADatabase) -> UARelation:
    """Evaluate a plan with ``K^2`` semantics ([26], Theorem 1).

    ``RA+`` operators propagate both components pointwise.  Difference and
    aggregation fall back to SGW evaluation with certain bounds zeroed —
    matching how the Figure 17 experiments characterize UA-DB behaviour on
    non-monotone queries.
    """
    if isinstance(plan, TableRef):
        return db[plan.name]
    if isinstance(plan, Selection):
        return _selection(evaluate_uadb(plan.child, db), plan.condition)
    if isinstance(plan, Projection):
        return _projection(evaluate_uadb(plan.child, db), plan.columns)
    if isinstance(plan, Join):
        return _join(
            evaluate_uadb(plan.left, db), evaluate_uadb(plan.right, db), plan.condition
        )
    if isinstance(plan, CrossProduct):
        return _cross(evaluate_uadb(plan.left, db), evaluate_uadb(plan.right, db))
    if isinstance(plan, Union):
        return _union(evaluate_uadb(plan.left, db), evaluate_uadb(plan.right, db))
    if isinstance(plan, Distinct):
        return _distinct(evaluate_uadb(plan.child, db))
    if isinstance(plan, Rename):
        out = UARelation(
            [plan.mapping_dict().get(a, a) for a in evaluate_uadb(plan.child, db).schema]
        )
        for t, ann in evaluate_uadb(plan.child, db).tuples():
            out.add(t, ann)
        return out
    if isinstance(plan, (Aggregate, Difference)):
        return _non_monotone_fallback(plan, db)
    if isinstance(plan, (OrderBy, Limit)):
        return evaluate_uadb(plan.child, db)
    raise TypeError(f"unsupported plan node {type(plan).__name__}")


def _selection(rel: UARelation, condition: Expression) -> UARelation:
    out = UARelation(rel.schema)
    for t, ann in rel.tuples():
        if bool(condition.eval(dict(zip(rel.schema, t)))):
            out.add(t, ann)
    return out


def _projection(rel: UARelation, columns) -> UARelation:
    out = UARelation([name for _, name in columns])
    for t, ann in rel.tuples():
        valuation = dict(zip(rel.schema, t))
        out.add(tuple(expr.eval(valuation) for expr, _ in columns), ann)
    return out


def _join(left: UARelation, right: UARelation, condition: Expression) -> UARelation:
    from ..db.engine import _equi_pairs

    schema = tuple(left.schema) + tuple(right.schema)
    out = UARelation(schema)
    eq_pairs = _equi_pairs(condition, left.schema, right.schema)
    if eq_pairs:
        l_idx = [left.schema.index(a) for a, _ in eq_pairs]
        r_idx = [right.schema.index(b) for _, b in eq_pairs]
        index: Dict[Tuple[Any, ...], List] = {}
        for rt, rann in right.tuples():
            index.setdefault(tuple(rt[i] for i in r_idx), []).append((rt, rann))
        for lt, (llb, lsg) in left.tuples():
            for rt, (rlb, rsg) in index.get(tuple(lt[i] for i in l_idx), ()):
                combined = lt + rt
                if bool(condition.eval(dict(zip(schema, combined)))):
                    out.add(combined, (llb * rlb, lsg * rsg))
        return out
    for lt, (llb, lsg) in left.tuples():
        for rt, (rlb, rsg) in right.tuples():
            combined = lt + rt
            if bool(condition.eval(dict(zip(schema, combined)))):
                out.add(combined, (llb * rlb, lsg * rsg))
    return out


def _cross(left: UARelation, right: UARelation) -> UARelation:
    out = UARelation(tuple(left.schema) + tuple(right.schema))
    for lt, (llb, lsg) in left.tuples():
        for rt, (rlb, rsg) in right.tuples():
            out.add(lt + rt, (llb * rlb, lsg * rsg))
    return out


def _union(left: UARelation, right: UARelation) -> UARelation:
    out = UARelation(left.schema)
    for t, ann in left.tuples():
        out.add(t, ann)
    for t, ann in right.tuples():
        out.add(t, ann)
    return out


def _distinct(rel: UARelation) -> UARelation:
    out = UARelation(rel.schema)
    for t, (lb, sg) in rel.tuples():
        out.add(t, (min(lb, 1), min(sg, 1)))
    return out


def _non_monotone_fallback(plan: Plan, db: UADatabase) -> UARelation:
    """SGW evaluation with all certain bounds dropped to 0."""
    det_db = DetDatabase(
        {name: rel.sg_world() for name, rel in db.relations.items()}
    )
    result = evaluate_det(plan, det_db)
    out = UARelation(result.schema)
    for t, m in result.tuples():
        out.add(t, (0, m))
    return out
