"""C-tables, V-tables and Codd tables with finite variable domains.

A C-table (Imielinski & Lipski [38], Section 11.3) is a relation whose
attribute values may be variables, together with a *global condition* and a
per-tuple *local condition* over those variables.  Every valuation of the
variables that satisfies the global condition induces one possible world
containing the tuples whose local conditions hold (set semantics).

The paper translates C-tables to AU-DBs using a constraint solver to derive
attribute bounds and tautology/satisfiability of local conditions.  Since
computing tight bounds is NP-hard (Theorem 2), we restrict variables to
finite domains and play the solver by exhaustive enumeration — exact for
small instances, which is what the tests and accuracy experiments need.

V-tables are C-tables without conditions (labeled nulls may repeat); Codd
tables additionally use each null only once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.expressions import Const, Expression, Var
from ..core.ranges import RangeValue, domain_max, domain_min
from ..core.relation import AURelation
from ..db.storage import DetRelation
from .worlds import IncompleteDatabase

__all__ = ["CTable", "VTable", "codd_table"]

TRUE = Const(True)


@dataclass(frozen=True)
class _CRow:
    values: Tuple[Any, ...]  # constants or Var instances
    condition: Expression


class CTable:
    """A C-table over variables with finite domains.

    Parameters
    ----------
    schema:
        Attribute names.
    domains:
        ``{variable_name: [possible values]}`` for every variable used in
        tuple values or conditions.
    global_condition:
        Expression over variables; valuations violating it induce no world.
    """

    def __init__(
        self,
        schema: Sequence[str],
        domains: Mapping[str, Sequence[Any]],
        global_condition: Expression = TRUE,
    ) -> None:
        self.schema = tuple(schema)
        self.domains: Dict[str, List[Any]] = {
            name: list(values) for name, values in domains.items()
        }
        for name, values in self.domains.items():
            if not values:
                raise ValueError(f"variable {name!r} has an empty domain")
        self.global_condition = global_condition
        self.rows: List[_CRow] = []

    def add(
        self, values: Sequence[Any], condition: Expression = TRUE
    ) -> None:
        """Add a tuple; values may mix constants and ``Var`` references."""
        for v in values:
            if isinstance(v, Var) and v.name not in self.domains:
                raise KeyError(f"variable {v.name!r} has no declared domain")
        for name in condition.variables():
            if name not in self.domains:
                raise KeyError(f"condition variable {name!r} has no domain")
        self.rows.append(_CRow(tuple(values), condition))

    # ------------------------------------------------------------------
    # valuations / worlds
    # ------------------------------------------------------------------
    def valuations(self, limit: int = 100_000) -> List[Dict[str, Any]]:
        """All valuations satisfying the global condition."""
        names = sorted(self.domains)
        count = 1
        for n in names:
            count *= len(self.domains[n])
            if count > limit:
                raise ValueError("variable domain product too large")
        out = []
        for combo in itertools.product(*(self.domains[n] for n in names)):
            valuation = dict(zip(names, combo))
            if bool(self.global_condition.eval(valuation)):
                out.append(valuation)
        return out

    def _instantiate(self, row: _CRow, valuation: Mapping[str, Any]) -> Tuple[Any, ...]:
        return tuple(
            valuation[v.name] if isinstance(v, Var) else v for v in row.values
        )

    def world_for(self, valuation: Mapping[str, Any]) -> DetRelation:
        """The (set-semantics) world induced by one valuation."""
        rel = DetRelation(self.schema)
        seen = set()
        for row in self.rows:
            if bool(row.condition.eval(dict(valuation))):
                t = self._instantiate(row, valuation)
                if t not in seen:
                    seen.add(t)
                    rel.add(t, 1)
        return rel

    def enumerate_worlds(self, limit: int = 100_000) -> List[DetRelation]:
        return [self.world_for(v) for v in self.valuations(limit)]

    # ------------------------------------------------------------------
    # translation (Section 11.3, Theorem 11)
    # ------------------------------------------------------------------
    def to_audb(
        self, sg_valuation: Optional[Mapping[str, Any]] = None
    ) -> AURelation:
        """``trans_C-table``: one AU-tuple per C-table row.

        Attribute bounds are the min/max of the instantiated value over
        valuations that satisfy both conditions ("solving the optimization
        problem" by enumeration); the annotation is ``(isTautology,
        holds-in-SG, isSatisfiable)``.
        """
        valuations = self.valuations()
        if not valuations:
            raise ValueError("global condition is unsatisfiable")
        if sg_valuation is None:
            sg_valuation = valuations[0]
        rel = AURelation(self.schema)
        for row in self.rows:
            satisfying = [
                v for v in valuations if bool(row.condition.eval(dict(v)))
            ]
            if not satisfying:
                continue  # never possible
            is_tautology = len(satisfying) == len(valuations)
            in_sg = bool(row.condition.eval(dict(sg_valuation)))
            sg_values = self._instantiate(row, sg_valuation)
            values = []
            for i in range(len(self.schema)):
                observed = [self._instantiate(row, v)[i] for v in satisfying]
                lo, hi = domain_min(observed), domain_max(observed)
                sg_v = sg_values[i]
                # the SG instantiation may fall outside the satisfying
                # set's hull when the row is absent from the SG world;
                # widen so the triple stays well formed.
                lo = domain_min((lo, sg_v))
                hi = domain_max((hi, sg_v))
                values.append(RangeValue(lo, sg_v, hi))
            rel.add(values, (1 if is_tautology else 0, 1 if in_sg else 0, 1))
        return rel

    def to_incomplete(self, limit: int = 100_000) -> IncompleteDatabase:
        """Explicit incomplete database wrapper (single-relation worlds)."""
        from ..db.storage import DetDatabase

        valuations = self.valuations(limit)
        worlds = [DetDatabase({"R": self.world_for(v)}) for v in valuations]
        return IncompleteDatabase(worlds, selected_index=0)


class VTable(CTable):
    """A V-table: labeled nulls, no conditions."""

    def __init__(
        self, schema: Sequence[str], domains: Mapping[str, Sequence[Any]]
    ) -> None:
        super().__init__(schema, domains, TRUE)

    def add(self, values: Sequence[Any], condition: Expression = TRUE) -> None:
        if condition is not TRUE:
            raise ValueError("V-tables do not support local conditions")
        super().add(values, TRUE)


def codd_table(
    schema: Sequence[str],
    rows: Sequence[Sequence[Any]],
    null_domain: Sequence[Any],
    null_marker: Any = None,
) -> VTable:
    """Build a Codd table: every ``null_marker`` becomes a fresh variable
    ranging over ``null_domain``."""
    domains: Dict[str, List[Any]] = {}
    table_rows: List[List[Any]] = []
    counter = 0
    for row in rows:
        out_row: List[Any] = []
        for v in row:
            if v is null_marker or (null_marker is None and v is None):
                name = f"_null{counter}"
                counter += 1
                domains[name] = list(null_domain)
                out_row.append(Var(name))
            else:
                out_row.append(v)
        table_rows.append(out_row)
    table = VTable(schema, domains)
    for row in table_rows:
        table.add(row)
    return table
