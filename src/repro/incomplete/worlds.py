"""Explicit incomplete databases and the brute-force ground-truth oracle.

An incomplete ``N``-database is a finite set of possible worlds
(Definition 1), each a deterministic database.  Queries use possible-world
semantics (Equation 2): evaluate in every world.  This module provides

* :class:`IncompleteDatabase` — an explicit set of worlds;
* :func:`query_worlds` — possible-world query evaluation;
* :func:`certain_bag` / :func:`possible_bag` — the glb/lub annotations of
  Section 3.2.1 (min/max multiplicity across worlds for bags);
* :func:`exact_attribute_bounds` — maximally tight per-group attribute
  bounds, the oracle used by the accuracy experiments (Figures 15/17).

All of this is exponential in the number of uncertain choices and only
meant for small test/accuracy instances; the AU-DB machinery is the
tractable path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..algebra.ast import Plan
from ..db.engine import evaluate_det
from ..db.storage import DetDatabase, DetRelation
from ..core.ranges import domain_max, domain_min

__all__ = [
    "IncompleteDatabase",
    "query_worlds",
    "certain_bag",
    "possible_bag",
    "exact_attribute_bounds",
]


class IncompleteDatabase:
    """A finite, explicit set of possible worlds.

    ``probabilities`` (optional) turns it into a probabilistic database;
    they must sum to ~1.  ``selected_index`` identifies the selected-guess
    world used when constructing AU-DBs / running SGQP.
    """

    def __init__(
        self,
        worlds: Sequence[DetDatabase],
        probabilities: Optional[Sequence[float]] = None,
        selected_index: int = 0,
    ) -> None:
        if not worlds:
            raise ValueError("an incomplete database needs at least one world")
        if probabilities is not None and len(probabilities) != len(worlds):
            raise ValueError("one probability per world required")
        if not 0 <= selected_index < len(worlds):
            raise ValueError("selected_index out of range")
        self.worlds: List[DetDatabase] = list(worlds)
        self.probabilities = list(probabilities) if probabilities else None
        self.selected_index = selected_index

    def __len__(self) -> int:
        return len(self.worlds)

    def __iter__(self):
        return iter(self.worlds)

    @property
    def selected_world(self) -> DetDatabase:
        return self.worlds[self.selected_index]


def query_worlds(plan: Plan, incomplete: IncompleteDatabase) -> List[DetRelation]:
    """Possible-world query semantics: ``Q(D) = {Q(W) | W in D}``.

    The plan is interpreted exactly as written (``optimize=False``): the
    ground-truth oracle must stay independent of the logical optimizer it
    is used to validate, and re-optimizing per world would be pure
    overhead anyway.
    """
    return [evaluate_det(plan, world, optimize=False) for world in incomplete.worlds]


def certain_bag(results: Sequence[DetRelation]) -> Dict[Tuple[Any, ...], int]:
    """``cert_N``: per-tuple minimum multiplicity across all worlds."""
    if not results:
        return {}
    certain: Dict[Tuple[Any, ...], int] = dict(results[0].rows)
    for rel in results[1:]:
        for t in list(certain):
            m = rel.multiplicity(t)
            if m < certain[t]:
                certain[t] = m
    return {t: m for t, m in certain.items() if m > 0}


def possible_bag(results: Sequence[DetRelation]) -> Dict[Tuple[Any, ...], int]:
    """``poss_N``: per-tuple maximum multiplicity across all worlds."""
    possible: Dict[Tuple[Any, ...], int] = {}
    for rel in results:
        for t, m in rel.tuples():
            if m > possible.get(t, 0):
                possible[t] = m
    return possible


def exact_attribute_bounds(
    results: Sequence[DetRelation],
    key_columns: Sequence[str],
) -> Dict[Tuple[Any, ...], List[Tuple[Any, Any]]]:
    """Maximally tight per-attribute bounds per key group.

    Groups every world's result tuples by ``key_columns`` and returns, for
    each key, the ``(min, max)`` observed for every non-key attribute
    across all worlds — the tight bounds an ideal system would report.
    """
    if not results:
        return {}
    schema = results[0].schema
    key_idx = [schema.index(k) for k in key_columns]
    value_idx = [i for i in range(len(schema)) if i not in key_idx]
    observed: Dict[Tuple[Any, ...], List[List[Any]]] = {}
    for rel in results:
        for t, _m in rel.tuples():
            key = tuple(t[i] for i in key_idx)
            bucket = observed.setdefault(key, [[] for _ in value_idx])
            for pos, i in enumerate(value_idx):
                bucket[pos].append(t[i])
    return {
        key: [(domain_min(vals), domain_max(vals)) for vals in buckets]
        for key, buckets in observed.items()
    }
