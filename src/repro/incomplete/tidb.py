"""Tuple-independent databases (TI-DBs) and their AU-DB translation.

A TI-DB marks each tuple optional or certain (probabilistic TI-DBs attach a
marginal probability).  The represented incomplete database contains every
subset of the optional tuples alongside all certain ones (Section 11.1).

``to_audb`` implements ``trans_TI-DB`` (Theorem 9): attribute values stay
certain, the tuple annotation is ``(1,1,1)`` for certain tuples and
``(0, sg, 1)`` for optional ones, where the SG multiplicity is 1 iff the
tuple's probability is at least 0.5 (the most likely world).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.relation import AUDatabase, AURelation
from ..db.storage import DetDatabase, DetRelation
from .worlds import IncompleteDatabase

__all__ = ["TIRow", "TIRelation", "TIDatabase"]


@dataclass(frozen=True)
class TIRow:
    """One TI-DB tuple: values plus marginal probability (1.0 = certain)."""

    values: Tuple[Any, ...]
    probability: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("tuple probability must be in (0, 1]")

    @property
    def certain(self) -> bool:
        return self.probability >= 1.0

    @property
    def in_selected_world(self) -> bool:
        return self.probability >= 0.5


class TIRelation:
    """A tuple-independent relation."""

    def __init__(self, schema: Sequence[str], rows: Iterable[TIRow] = ()) -> None:
        self.schema = tuple(schema)
        self.rows: List[TIRow] = list(rows)

    def add(self, values: Sequence[Any], probability: float = 1.0) -> None:
        self.rows.append(TIRow(tuple(values), probability))

    # ------------------------------------------------------------------
    def to_audb(self) -> AURelation:
        """``trans_TI-DB`` of Section 11.1 (bound preserving, Theorem 9)."""
        rel = AURelation(self.schema)
        for row in self.rows:
            lb = 1 if row.certain else 0
            sg = 1 if row.in_selected_world else 0
            rel.add(row.values, (lb, sg, 1))
        return rel

    def selected_world(self) -> DetRelation:
        rel = DetRelation(self.schema)
        for row in self.rows:
            if row.in_selected_world:
                rel.add(row.values, 1)
        return rel

    def sample_world(self, rng: random.Random) -> DetRelation:
        rel = DetRelation(self.schema)
        for row in self.rows:
            if row.certain or rng.random() < row.probability:
                rel.add(row.values, 1)
        return rel

    def enumerate_worlds(self, limit: int = 4096) -> List[DetRelation]:
        """All possible worlds (exponential; guarded by ``limit``)."""
        optional = [r for r in self.rows if not r.certain]
        certain = [r for r in self.rows if r.certain]
        if 2 ** len(optional) > limit:
            raise ValueError(
                f"too many worlds (2^{len(optional)}); raise limit or sample"
            )
        worlds = []
        for mask in itertools.product((False, True), repeat=len(optional)):
            rel = DetRelation(self.schema)
            for row in certain:
                rel.add(row.values, 1)
            for include, row in zip(mask, optional):
                if include:
                    rel.add(row.values, 1)
            worlds.append(rel)
        return worlds


class TIDatabase:
    """A database of tuple-independent relations."""

    def __init__(self, relations: Optional[Dict[str, TIRelation]] = None) -> None:
        self.relations: Dict[str, TIRelation] = dict(relations or {})

    def __setitem__(self, name: str, rel: TIRelation) -> None:
        self.relations[name] = rel

    def __getitem__(self, name: str) -> TIRelation:
        return self.relations[name]

    def to_audb(self) -> AUDatabase:
        return AUDatabase(
            {name: rel.to_audb() for name, rel in self.relations.items()}
        )

    def selected_world(self) -> DetDatabase:
        return DetDatabase(
            {name: rel.selected_world() for name, rel in self.relations.items()}
        )

    def sample_world(self, rng: random.Random) -> DetDatabase:
        return DetDatabase(
            {name: rel.sample_world(rng) for name, rel in self.relations.items()}
        )

    def enumerate_incomplete(self, limit: int = 4096) -> IncompleteDatabase:
        """Explicit incomplete database (cartesian product of per-relation
        worlds); the selected world is placed first."""
        names = sorted(self.relations)
        per_relation = [self.relations[n].enumerate_worlds(limit) for n in names]
        count = 1
        for worlds in per_relation:
            count *= len(worlds)
            if count > limit:
                raise ValueError("too many combined worlds; raise limit")
        worlds = []
        for combo in itertools.product(*per_relation):
            worlds.append(DetDatabase(dict(zip(names, combo))))
        selected = self.selected_world()
        sel_index = _find_world(worlds, selected, names)
        return IncompleteDatabase(worlds, selected_index=sel_index)


def _find_world(
    worlds: Sequence[DetDatabase], target: DetDatabase, names: Sequence[str]
) -> int:
    for i, world in enumerate(worlds):
        if all(world[n].rows == target[n].rows for n in names):
            return i
    raise ValueError("selected world not among enumerated worlds")
