"""x-DBs (block-independent databases) and their AU-DB translation.

An x-tuple (Section 11.2, [7]) is a set of mutually exclusive alternative
tuples, optionally with probabilities summing to at most 1; the x-tuple is
*optional* when its total probability is below 1.  A possible world picks
at most one alternative per x-tuple (exactly one for non-optional
x-tuples), independently across x-tuples.

``to_audb`` implements ``trans_x-DB`` (Theorem 10): one range-annotated
tuple per x-tuple whose attribute bounds cover all alternatives and whose
SG values come from the most probable alternative (``pickMax``); the tuple
annotation is ``(1 if certain else 0, 1 if SG world keeps it else 0, 1)``.

PDBench (the paper's TPC-H-based benchmark generator) produces exactly
this model, which is why it is the workhorse of the evaluation section.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.ranges import RangeValue, domain_max, domain_min
from ..core.relation import AUDatabase, AURelation
from ..db.storage import DetDatabase, DetRelation
from .worlds import IncompleteDatabase

__all__ = ["XTuple", "XRelation", "XDatabase"]


@dataclass(frozen=True)
class XTuple:
    """An x-tuple: alternatives with probabilities.

    ``probabilities`` defaults to a uniform distribution summing to 1
    (a required, non-optional x-tuple).
    """

    alternatives: Tuple[Tuple[Any, ...], ...]
    probabilities: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise ValueError("x-tuple needs at least one alternative")
        if not self.probabilities:
            uniform = 1.0 / len(self.alternatives)
            object.__setattr__(
                self, "probabilities", tuple(uniform for _ in self.alternatives)
            )
        if len(self.probabilities) != len(self.alternatives):
            raise ValueError("one probability per alternative required")
        if sum(self.probabilities) > 1.0 + 1e-9:
            raise ValueError("x-tuple probabilities must sum to at most 1")

    @property
    def total_probability(self) -> float:
        return sum(self.probabilities)

    @property
    def optional(self) -> bool:
        return self.total_probability < 1.0 - 1e-9

    def pick_max(self) -> Tuple[Any, ...]:
        """Most probable alternative (first on ties) — ``pickMax``."""
        best = 0
        for i in range(1, len(self.alternatives)):
            if self.probabilities[i] > self.probabilities[best]:
                best = i
        return self.alternatives[best]

    def sg_present(self) -> bool:
        """Is ``pickMax`` kept in the selected-guess world?

        True iff keeping the best alternative is at least as likely as the
        x-tuple being absent (Section 11.2).
        """
        absent = 1.0 - self.total_probability
        return absent <= max(self.probabilities) + 1e-12


class XRelation:
    """A block-independent (x-) relation."""

    def __init__(self, schema: Sequence[str], xtuples: Iterable[XTuple] = ()) -> None:
        self.schema = tuple(schema)
        self.xtuples: List[XTuple] = list(xtuples)

    def add(
        self,
        alternatives: Sequence[Sequence[Any]],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        self.xtuples.append(
            XTuple(
                tuple(tuple(a) for a in alternatives),
                tuple(probabilities or ()),
            )
        )

    def add_certain(self, values: Sequence[Any]) -> None:
        self.add([values], [1.0])

    # ------------------------------------------------------------------
    def to_audb(self) -> AURelation:
        """``trans_x-DB`` of Section 11.2 (bound preserving, Theorem 10)."""
        rel = AURelation(self.schema)
        for xt in self.xtuples:
            sg_alt = xt.pick_max()
            values = []
            for i in range(len(self.schema)):
                column = [alt[i] for alt in xt.alternatives]
                values.append(
                    RangeValue(domain_min(column), sg_alt[i], domain_max(column))
                )
            lb = 0 if xt.optional else 1
            sg = 1 if xt.sg_present() else 0
            rel.add(values, (lb, max(sg, lb), 1))
        return rel

    def selected_world(self) -> DetRelation:
        rel = DetRelation(self.schema)
        for xt in self.xtuples:
            if xt.sg_present():
                rel.add(xt.pick_max(), 1)
        return rel

    def sample_world(self, rng: random.Random) -> DetRelation:
        rel = DetRelation(self.schema)
        for xt in self.xtuples:
            r = rng.random()
            acc = 0.0
            chosen: Optional[Tuple[Any, ...]] = None
            for alt, p in zip(xt.alternatives, xt.probabilities):
                acc += p
                if r < acc:
                    chosen = alt
                    break
            if chosen is not None:
                rel.add(chosen, 1)
        return rel

    def enumerate_worlds(self, limit: int = 4096) -> List[DetRelation]:
        """All possible worlds (guarded by ``limit``)."""
        options: List[List[Optional[Tuple[Any, ...]]]] = []
        count = 1
        for xt in self.xtuples:
            opts: List[Optional[Tuple[Any, ...]]] = list(xt.alternatives)
            if xt.optional:
                opts.append(None)
            options.append(opts)
            count *= len(opts)
            if count > limit:
                raise ValueError(
                    f"too many worlds ({count}+); raise limit or sample"
                )
        worlds = []
        for combo in itertools.product(*options):
            rel = DetRelation(self.schema)
            for choice in combo:
                if choice is not None:
                    rel.add(choice, 1)
            worlds.append(rel)
        return worlds

    def uncertain_tuple_fraction(self) -> float:
        if not self.xtuples:
            return 0.0
        uncertain = sum(
            1 for xt in self.xtuples if len(xt.alternatives) > 1 or xt.optional
        )
        return uncertain / len(self.xtuples)


class XDatabase:
    """A database of x-relations."""

    def __init__(self, relations: Optional[Dict[str, XRelation]] = None) -> None:
        self.relations: Dict[str, XRelation] = dict(relations or {})

    def __setitem__(self, name: str, rel: XRelation) -> None:
        self.relations[name] = rel

    def __getitem__(self, name: str) -> XRelation:
        return self.relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def to_audb(self) -> AUDatabase:
        return AUDatabase(
            {name: rel.to_audb() for name, rel in self.relations.items()}
        )

    def selected_world(self) -> DetDatabase:
        return DetDatabase(
            {name: rel.selected_world() for name, rel in self.relations.items()}
        )

    def sample_world(self, rng: random.Random) -> DetDatabase:
        return DetDatabase(
            {name: rel.sample_world(rng) for name, rel in self.relations.items()}
        )

    def enumerate_incomplete(self, limit: int = 4096) -> IncompleteDatabase:
        names = sorted(self.relations)
        per_relation = [self.relations[n].enumerate_worlds(limit) for n in names]
        count = 1
        for worlds in per_relation:
            count *= len(worlds)
            if count > limit:
                raise ValueError("too many combined worlds; raise limit")
        worlds = [
            DetDatabase(dict(zip(names, combo)))
            for combo in itertools.product(*per_relation)
        ]
        selected = self.selected_world()
        for i, world in enumerate(worlds):
            if all(world[n].rows == selected[n].rows for n in names):
                return IncompleteDatabase(worlds, selected_index=i)
        raise ValueError("selected world not among enumerated worlds")
