"""Deterministic bag-semantics relations — the "classical database" substrate.

This stands in for the PostgreSQL backend of the paper's middleware: the
selected-guess baseline (``Det``/SGQP) runs directly on these relations,
and the ground-truth oracle evaluates queries in every possible world over
them.

A :class:`DetRelation` is a named schema plus a bag ``dict[tuple, int]``
(tuple -> multiplicity), i.e. an ``N``-relation in the paper's K-relation
terminology.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

__all__ = ["DetRelation", "DetDatabase"]


class DetRelation:
    """An ``N``-relation: bag of tuples with multiplicities."""

    __slots__ = (
        "schema",
        "rows",
        "stats_epoch",
        "_column_stats_cache",
        "_columnar_cache",
        "_chunk_cache",
        "_stats_acc",
        "_delta_sinks",
    )

    def __init__(
        self,
        schema: Sequence[str],
        rows: Mapping[Tuple[Any, ...], int]
        | Iterable[Tuple[Any, ...]]
        | None = None,
    ) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self.rows: Dict[Tuple[Any, ...], int] = {}
        #: monotonically increasing write counter — every add() bumps it;
        #: databases sum it into their catalog epoch, which keys the
        #: session layer's plan cache (repro.session)
        self.stats_epoch = 0
        # memoized per-column statistics (repro.algebra.stats) and the
        # columnar image used by the vectorized backend (repro.exec).
        # add() drops the columnar image and the finalized stats snapshot
        # but keeps the incremental accumulator (_stats_acc) current, so
        # the next harvest is O(columns) — mutate through add() only, as
        # documented
        self._column_stats_cache = None
        self._columnar_cache = None
        # chunked columnar store (repro.db.chunks.DetChunkStore) with
        # per-chunk zone maps; maintained in place by add()/delete()
        self._chunk_cache = None
        self._stats_acc = None
        # per-write delta observers (repro.ivm): callables
        # ``sink(tuple, multiplicity, sign)`` fired after the write is
        # applied, with sign +1 for add() and -1 for delete()
        self._delta_sinks = ()
        if rows is None:
            return
        if isinstance(rows, Mapping):
            for t, m in rows.items():
                self.add(t, m)
        else:
            for t in rows:
                self.add(tuple(t), 1)

    def add(self, t: Tuple[Any, ...], multiplicity: int = 1) -> None:
        if multiplicity < 0:
            raise ValueError("multiplicities must be non-negative")
        if multiplicity == 0:
            return
        t = tuple(t)
        if len(t) != len(self.schema):
            raise ValueError(
                f"arity {len(t)} does not match schema {self.schema}"
            )
        existing = self.rows.get(t)
        self.rows[t] = (existing or 0) + multiplicity
        self.stats_epoch += 1
        self._column_stats_cache = None
        cache = self._columnar_cache
        if cache is not None and not (
            # a *new* distinct tuple is exactly one appended row of the
            # columnar image, so the cache can grow in place; merges into
            # an existing row (and type surprises) drop the cache
            existing is None
            and cache.append_row(t, multiplicity)
        ):
            self._columnar_cache = None
        store = self._chunk_cache
        if store is not None and not store.on_add(
            t, self.rows[t], existing is None
        ):
            self._chunk_cache = None
        if self._stats_acc is not None:
            # incremental statistics: fold the delta multiplicity in
            # instead of invalidating the whole harvest
            self._stats_acc.observe(t, multiplicity)
        for sink in self._delta_sinks:
            sink(t, multiplicity, 1)

    def delete(self, t: Tuple[Any, ...], multiplicity: int = 1) -> None:
        """Remove ``multiplicity`` copies of ``t`` from the bag.

        Deleting more copies than present raises ``ValueError`` (bags
        hold non-negative multiplicities).  Deletes advance the write
        epoch by 2 — one for the write itself and one for the statistics
        shrinkage an insert cannot cause — so delete-heavy streams hit
        the session layer's staleness threshold at least as fast as
        insert streams do.
        """
        if multiplicity < 0:
            raise ValueError("multiplicities must be non-negative")
        if multiplicity == 0:
            return
        t = tuple(t)
        current = self.rows.get(t, 0)
        if multiplicity > current:
            raise ValueError(
                f"cannot delete {multiplicity} of {t!r}: multiplicity is {current}"
            )
        remaining = current - multiplicity
        if remaining:
            self.rows[t] = remaining
        else:
            del self.rows[t]
        self.stats_epoch += 2
        self._column_stats_cache = None
        self._columnar_cache = None
        store = self._chunk_cache
        if store is not None and not store.on_delete(t, remaining):
            self._chunk_cache = None
        if self._stats_acc is not None:
            self._stats_acc.observe_delete(t, multiplicity)
        for sink in self._delta_sinks:
            sink(t, multiplicity, -1)

    def multiplicity(self, t: Tuple[Any, ...]) -> int:
        return self.rows.get(tuple(t), 0)

    def attr_index(self, name: str) -> int:
        try:
            return self.schema.index(name)
        except ValueError:
            raise KeyError(
                f"attribute {name!r} not in schema {self.schema}"
            ) from None

    def tuples(self) -> Iterator[Tuple[Tuple[Any, ...], int]]:
        return iter(self.rows.items())

    def total_rows(self) -> int:
        """Bag cardinality (sum of multiplicities)."""
        return sum(self.rows.values())

    def memory_footprint(self, chunk_size: int | None = None) -> int:
        """Resident bytes of this relation's chunked columnar store.

        Builds (and caches) the chunk store at ``chunk_size`` if the
        relation has none yet, then sums the per-chunk column payloads —
        typed array buffers exactly, object columns as pointer vector
        plus per-element headers.  With chunking disabled
        (``chunk_size=0``) falls back to a shallow estimate of the row
        dictionary itself.
        """
        from .chunks import det_store

        store = det_store(self, chunk_size)
        if store is not None:
            return store.memory_footprint()
        import sys

        return sys.getsizeof(self.rows) + sum(
            sys.getsizeof(t) + sum(sys.getsizeof(v) for v in t)
            for t in self.rows
        )

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    # NOTE: relations deliberately use *identity* equality and hashing.
    # An earlier revision defined value-based __eq__ next to an identity
    # __hash__, which broke the eq/hash contract: two value-equal
    # relations could land in different dict buckets, so relations were
    # unsafe as dict/cache keys (the session layer keys caches by
    # relation identity).  Value comparison is explicit now:
    # ``same_contents`` or compare ``.schema``/``.rows`` directly.
    def same_contents(self, other: "DetRelation") -> bool:
        """Value comparison: same schema and same bag of rows."""
        return self.schema == other.schema and self.rows == other.rows

    def __repr__(self) -> str:
        header = ", ".join(self.schema)
        lines = [f"DetRelation({header}) [{len(self.rows)} distinct]"]
        for t, m in sorted(self.rows.items(), key=lambda i: repr(i[0]))[:20]:
            lines.append(f"  {t} x{m}")
        if len(self.rows) > 20:
            lines.append(f"  ... {len(self.rows) - 20} more")
        return "\n".join(lines)

    def as_bag(self) -> Dict[Tuple[Any, ...], int]:
        return dict(self.rows)


class DetDatabase:
    """A named collection of deterministic relations."""

    __slots__ = ("relations", "_epoch_base")

    def __init__(self, relations: Mapping[str, DetRelation] | None = None) -> None:
        self.relations: Dict[str, DetRelation] = dict(relations or {})
        self._epoch_base = 0

    @property
    def epoch(self) -> int:
        """Catalog epoch: a monotonically increasing write version.

        Sums the per-relation write counters plus a database-level
        counter bumped on relation (re)binding, so *any* write through
        the supported mutation paths — ``DetRelation.add`` or
        ``db[name] = rel`` — strictly increases it.  The session layer
        (:mod:`repro.session`) keys its plan cache and staleness checks
        on this value.  Mutating ``db.relations`` directly bypasses the
        versioning (as it bypasses every cache); don't.
        """
        return self._epoch_base + sum(
            rel.stats_epoch for rel in self.relations.values()
        )

    def __getitem__(self, name: str) -> DetRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"relation {name!r} not found; have {sorted(self.relations)}"
            ) from None

    def __setitem__(self, name: str, rel: DetRelation) -> None:
        previous = self.relations.get(name)
        # keep the epoch monotone even when the incoming relation's own
        # write counter is behind the one it replaces
        self._epoch_base += 1 + (
            previous.stats_epoch if previous is not None else 0
        )
        self.relations[name] = rel

    def __contains__(self, name: str) -> bool:
        return name in self.relations
