"""Deterministic bag-semantics relations — the "classical database" substrate.

This stands in for the PostgreSQL backend of the paper's middleware: the
selected-guess baseline (``Det``/SGQP) runs directly on these relations,
and the ground-truth oracle evaluates queries in every possible world over
them.

A :class:`DetRelation` is a named schema plus a bag ``dict[tuple, int]``
(tuple -> multiplicity), i.e. an ``N``-relation in the paper's K-relation
terminology.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

__all__ = ["DetRelation", "DetDatabase"]


class DetRelation:
    """An ``N``-relation: bag of tuples with multiplicities."""

    __slots__ = ("schema", "rows", "_column_stats_cache", "_columnar_cache")

    def __init__(
        self,
        schema: Sequence[str],
        rows: Mapping[Tuple[Any, ...], int]
        | Iterable[Tuple[Any, ...]]
        | None = None,
    ) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self.rows: Dict[Tuple[Any, ...], int] = {}
        # memoized per-column statistics (repro.algebra.stats) and the
        # columnar image used by the vectorized backend (repro.exec);
        # add() invalidates both — mutate through add() only, as documented
        self._column_stats_cache = None
        self._columnar_cache = None
        if rows is None:
            return
        if isinstance(rows, Mapping):
            for t, m in rows.items():
                self.add(t, m)
        else:
            for t in rows:
                self.add(tuple(t), 1)

    def add(self, t: Tuple[Any, ...], multiplicity: int = 1) -> None:
        if multiplicity < 0:
            raise ValueError("multiplicities must be non-negative")
        if multiplicity == 0:
            return
        t = tuple(t)
        if len(t) != len(self.schema):
            raise ValueError(
                f"arity {len(t)} does not match schema {self.schema}"
            )
        self.rows[t] = self.rows.get(t, 0) + multiplicity
        self._column_stats_cache = None
        self._columnar_cache = None

    def multiplicity(self, t: Tuple[Any, ...]) -> int:
        return self.rows.get(tuple(t), 0)

    def attr_index(self, name: str) -> int:
        try:
            return self.schema.index(name)
        except ValueError:
            raise KeyError(
                f"attribute {name!r} not in schema {self.schema}"
            ) from None

    def tuples(self) -> Iterator[Tuple[Tuple[Any, ...], int]]:
        return iter(self.rows.items())

    def total_rows(self) -> int:
        """Bag cardinality (sum of multiplicities)."""
        return sum(self.rows.values())

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DetRelation):
            return NotImplemented
        return self.schema == other.schema and self.rows == other.rows

    def __hash__(self) -> int:  # relations are mutable builders; identity hash
        return id(self)

    def __repr__(self) -> str:
        header = ", ".join(self.schema)
        lines = [f"DetRelation({header}) [{len(self.rows)} distinct]"]
        for t, m in sorted(self.rows.items(), key=lambda i: repr(i[0]))[:20]:
            lines.append(f"  {t} x{m}")
        if len(self.rows) > 20:
            lines.append(f"  ... {len(self.rows) - 20} more")
        return "\n".join(lines)

    def as_bag(self) -> Dict[Tuple[Any, ...], int]:
        return dict(self.rows)


class DetDatabase:
    """A named collection of deterministic relations."""

    __slots__ = ("relations",)

    def __init__(self, relations: Mapping[str, DetRelation] | None = None) -> None:
        self.relations: Dict[str, DetRelation] = dict(relations or {})

    def __getitem__(self, name: str) -> DetRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"relation {name!r} not found; have {sorted(self.relations)}"
            ) from None

    def __setitem__(self, name: str, rel: DetRelation) -> None:
        self.relations[name] = rel

    def __contains__(self, name: str) -> bool:
        return name in self.relations
