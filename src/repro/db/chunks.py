"""Paged chunked columnar storage with zone-map chunk skipping.

This module backs base-table scans with fixed-size **column chunks**
instead of one monolithic columnar image:

* :class:`DetChunkStore` — a :class:`~repro.db.storage.DetRelation`
  split into :class:`DetChunk` pages, each a small
  :class:`~repro.exec.batch.ColumnBatch` (typed-packed per chunk).
* :class:`AUChunkStore` — an :class:`~repro.core.relation.AURelation`
  split into :class:`AUChunk` pages whose range triples are stored as
  **split lb/sg/ub scalar arrays** per attribute (the dedicated AU
  columnar encoding: the three bound streams are individually
  homogeneous far more often than the triple objects, so they pack into
  machine arrays), alongside the three ``K^AU`` annotation arrays.

Every chunk carries an incrementally-maintained :class:`ChunkZone`
("zone map"): per-column min/max keys in the universal domain order
(min over lower bounds, max over upper bounds), a null count, and a
certain-row count.  The zones are updated in place by the relations'
write paths (``DetRelation.add``/``delete`` and ``AURelation.add``/
``delete`` call :meth:`on_add`/:meth:`on_delete`), mirroring how
:class:`~repro.algebra.stats.StatsAccumulator` maintains catalog
statistics per write:

* appends and annotation/multiplicity merges *widen* the zone exactly;
* a **delete that touches a zone boundary marks the zone stale**
  (never silently narrows or keeps a too-wide bound as authoritative)
  — the chunk-level mirror of ``StatsAccumulator.rescan_needed`` —
  and the zone is rebuilt exactly on next use.

``lower()`` derives a plan-time :class:`ChunkSkipPredicate` from the
conjunctive atoms of a selection directly above a scan
(:func:`derive_skip`); :meth:`survivors` evaluates it against the zone
maps so provably-empty chunks are never touched.  All comparison
operators in :mod:`repro.core.expressions` evaluate through
:func:`~repro.core.ranges.domain_key`, so zone bounds in key space make
the skip decisions exact for both engines — a chunk is skipped only
when *no* deterministic row (det) or *no possible world's* row (AU,
via the upper-bound truth of the range predicate) can satisfy the
predicate.  Float NaN breaks the total order, so any chunk column that
contains NaN simply disables its zone entry (the chunk is then never
skipped on that column).  ``Parameter`` placeholders never produce
constraints: skip predicates are derived from literal constants only,
so a cached plan's skip set stays valid across re-binds.

Skip/scan activity publishes to the process-wide metrics registry
(``repro_storage_chunks_scanned_total`` /
``repro_storage_chunks_skipped_total`` /
``repro_storage_zone_rebuilds_total``) and the executors attach the
same counts as operator-span attributes, so the effect is visible in
``explain_analyze`` end-to-end.
"""

from __future__ import annotations

import math
import sys
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import telemetry as _tm
from ..core.expressions import (
    And,
    Const,
    Eq,
    Expression,
    Geq,
    Gt,
    IsNull,
    Leq,
    Lt,
    Neq,
    Not,
    Var,
)
from ..core.ranges import RangeValue, domain_key
from ..core.semirings import AUAnnotation
from ..exec.batch import (
    AUColumnBatch,
    ColumnBatch,
    _pack_typed,
    charge_materialization,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkZone",
    "ChunkSkipPredicate",
    "SkipConstraint",
    "derive_skip",
    "DetChunkStore",
    "AUChunkStore",
    "det_store",
    "au_store",
    "resolve_chunk_size",
    "storage_report",
]

#: Rows per chunk when ``EvalConfig.chunk_size`` is left unset (``None``).
#: ``chunk_size=0`` disables chunked storage entirely (monolithic scans).
DEFAULT_CHUNK_SIZE = 1024

_CHUNKS_SCANNED = _tm.get_registry().counter(
    "repro_storage_chunks_scanned_total",
    "Storage chunks actually read by scans (post zone-map skipping).",
)
_CHUNKS_SKIPPED = _tm.get_registry().counter(
    "repro_storage_chunks_skipped_total",
    "Storage chunks proven empty by zone maps and never read.",
)
_ZONE_REBUILDS = _tm.get_registry().counter(
    "repro_storage_zone_rebuilds_total",
    "Chunk zone maps rebuilt after a delete touched a zone boundary.",
)


def resolve_chunk_size(chunk_size: Optional[int]) -> int:
    """Normalize a configured chunk size (``None`` → default, ``0`` → off)."""
    if chunk_size is None:
        return DEFAULT_CHUNK_SIZE
    if chunk_size < 0:
        raise ValueError(f"chunk_size must be >= 0, got {chunk_size}")
    return chunk_size


def _is_nan(v: Any) -> bool:
    return type(v) is float and v != v


# ---------------------------------------------------------------------------
# skip predicates
# ---------------------------------------------------------------------------

#: comparison atoms a skip predicate may use (see ``_zone_allows``)
SKIP_OPS = ("le", "lt", "ge", "gt", "eq", "ne", "isnull", "notnull")

_OP_TEXT = {"le": "<=", "lt": "<", "ge": ">=", "gt": ">", "eq": "=", "ne": "!="}
_FLIP = {"le": "ge", "lt": "gt", "ge": "le", "gt": "lt", "eq": "eq", "ne": "ne"}
_ATOM_OPS = {Leq: "le", Lt: "lt", Geq: "ge", Gt: "gt", Eq: "eq", Neq: "ne"}


class SkipConstraint:
    """One conjunct ``column ⟨op⟩ constant`` of a chunk-skip predicate."""

    __slots__ = ("column", "op", "key", "text")

    def __init__(self, column: str, op: str, key: tuple, text: str) -> None:
        self.column = column
        self.op = op
        self.key = key  # domain_key of the constant
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SkipConstraint({self.text})"


class ChunkSkipPredicate:
    """A conjunction of :class:`SkipConstraint` atoms attached to a scan.

    A chunk is skipped when *any* constraint proves it empty against the
    chunk's zone map — sound because the atoms are conjuncts of the
    selection sitting directly above the scan.
    """

    __slots__ = ("constraints",)

    def __init__(self, constraints: Sequence[SkipConstraint]) -> None:
        self.constraints = tuple(constraints)

    def columns(self) -> Tuple[str, ...]:
        return tuple(c.column for c in self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __str__(self) -> str:
        return " AND ".join(c.text for c in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChunkSkipPredicate({self})"


def _conjuncts(condition: Expression) -> Iterable[Expression]:
    stack = [condition]
    while stack:
        e = stack.pop()
        if isinstance(e, And):
            stack.append(e.right)
            stack.append(e.left)
        else:
            yield e


def derive_skip(condition: Optional[Expression]) -> Optional[ChunkSkipPredicate]:
    """Extract zone-map-testable atoms from a selection condition.

    Walks the conjunctive ``And`` spine and keeps every
    ``Var ⟨cmp⟩ Const`` / ``Const ⟨cmp⟩ Var`` atom whose constant is a
    literal (``Parameter`` markers are never constant-folded into
    ``Const`` by binding, so derived predicates survive plan caching)
    and is not NaN.  Returns ``None`` when no atom qualifies.
    """
    if condition is None:
        return None
    constraints: List[SkipConstraint] = []
    for atom in _conjuncts(condition):
        # null tests against the zones' null counts (`nulls[j]` plus the
        # min/max keys, which bracket None at the bottom of the domain
        # order — see the ``isnull``/``notnull`` rules in _zone_allows)
        if isinstance(atom, IsNull) and isinstance(atom.operand, Var):
            col = atom.operand.name
            constraints.append(
                SkipConstraint(col, "isnull", domain_key(None), f"{col} IS NULL")
            )
            continue
        if (
            isinstance(atom, Not)
            and isinstance(atom.operand, IsNull)
            and isinstance(atom.operand.operand, Var)
        ):
            col = atom.operand.operand.name
            constraints.append(
                SkipConstraint(
                    col, "notnull", domain_key(None), f"{col} IS NOT NULL"
                )
            )
            continue
        op = _ATOM_OPS.get(type(atom))
        if op is None:
            continue
        left, right = atom.left, atom.right
        if isinstance(left, Var) and isinstance(right, Const):
            col, const = left.name, right.value
        elif isinstance(left, Const) and isinstance(right, Var):
            col, const, op = right.name, left.value, _FLIP[op]
        else:
            continue
        if _is_nan(const):
            continue  # NaN atoms are never provably empty in key space
        text = f"{col}{_OP_TEXT[op]}{const!r}"
        constraints.append(SkipConstraint(col, op, domain_key(const), text))
    if not constraints:
        return None
    return ChunkSkipPredicate(constraints)


# ---------------------------------------------------------------------------
# zone maps
# ---------------------------------------------------------------------------


class ChunkZone:
    """Per-chunk, per-column min/max/null/certain statistics.

    ``min_keys[j]``/``max_keys[j]`` are :func:`domain_key` values — the
    minimum over the column's lower bounds and the maximum over its
    upper bounds (for deterministic chunks lb = ub = the value).
    ``enabled[j]`` is cleared when the column contains NaN (the domain
    order is undefined there) — a disabled entry never skips.
    ``stale`` marks the whole zone for an exact rebuild after a delete
    touched a boundary, mirroring ``StatsAccumulator.rescan_needed``.
    """

    __slots__ = (
        "rows",
        "min_keys",
        "max_keys",
        "nulls",
        "certain",
        "enabled",
        "stale",
    )

    def __init__(self, n_cols: int) -> None:
        self.rows = 0
        self.min_keys: List[Optional[tuple]] = [None] * n_cols
        self.max_keys: List[Optional[tuple]] = [None] * n_cols
        self.nulls = [0] * n_cols
        self.certain = 0
        self.enabled = [True] * n_cols
        self.stale = False

    def certain_fraction(self) -> float:
        return 1.0 if not self.rows else self.certain / self.rows

    # -- incremental maintenance -------------------------------------
    def widen(self, j: int, lb: Any, ub: Any) -> None:
        """Fold one value (det) or bound pair (AU) of column ``j`` in."""
        if _is_nan(lb) or _is_nan(ub):
            self.enabled[j] = False
            return
        if not self.enabled[j]:
            return
        klb, kub = domain_key(lb), domain_key(ub)
        lo = self.min_keys[j]
        if lo is None or klb < lo:
            self.min_keys[j] = klb
        hi = self.max_keys[j]
        if hi is None or kub > hi:
            self.max_keys[j] = kub

    def touches_boundary(self, j: int, lb: Any, ub: Any) -> bool:
        """Would removing a row with these bounds narrow column ``j``?"""
        if not self.enabled[j]:
            return True  # can't tell: the disabled column must rescan
        if _is_nan(lb) or _is_nan(ub):
            return True
        return domain_key(lb) == self.min_keys[j] or domain_key(ub) == self.max_keys[j]


def _zone_allows(zone: ChunkZone, index: Dict[str, int], skip: ChunkSkipPredicate) -> bool:
    """May the chunk contain a satisfying row?  False ⇒ skip the chunk.

    The rules are exact in key space (both engines compare through
    ``domain_key``; for AU the predicate's upper-bound truth over
    ``[lb, ub]`` intervals is what keeps a row, and the zone brackets
    every interval in the chunk):

    ``le``: empty iff min > c — ``lt``: min >= c — ``ge``: max < c —
    ``gt``: max <= c — ``eq``: c outside [min, max] — ``ne``: every
    value provably equals c (min = max = c).
    """
    for con in skip.constraints:
        j = index.get(con.column)
        if j is None or not zone.enabled[j]:
            continue
        lo, hi = zone.min_keys[j], zone.max_keys[j]
        if lo is None or hi is None:
            continue
        key, op = con.key, con.op
        if op == "le":
            if lo > key:
                return False
        elif op == "lt":
            if lo >= key:
                return False
        elif op == "ge":
            if hi < key:
                return False
        elif op == "gt":
            if hi <= key:
                return False
        elif op == "eq":
            if key < lo or key > hi:
                return False
        elif op == "ne":
            if lo == hi == key:
                return False
        elif op == "isnull":
            # no possibly-null row: the zone counts no null guesses and
            # every lower bound sorts strictly above None (an AU row
            # that *could* be null has lb None, which would pull the
            # min key down to domain_key(None))
            if zone.nulls[j] == 0 and lo > key:
                return False
        elif op == "notnull":
            # every row is certainly null: all guesses are null and
            # every upper bound sorts at or below None (⇒ lb = ub =
            # None for every row, so IS NOT NULL holds in no world)
            if zone.nulls[j] == zone.rows and hi <= key:
                return False
    return True


# ---------------------------------------------------------------------------
# column helpers
# ---------------------------------------------------------------------------


def _append_demote(col, v):
    """Append ``v`` to a (possibly typed) column, demoting to list on
    representation mismatch; returns the (possibly new) column."""
    if type(col) is array:
        if col.typecode == "q":
            if type(v) is int and -(2**63) <= v < 2**63:
                col.append(v)
                return col
        elif type(v) is float and v == v:
            col.append(v)
            return col
        col = list(col)
    col.append(v)
    return col


def _set_demote(col, i, v):
    """Assign ``col[i] = v`` with the same demotion rule as append."""
    if type(col) is array:
        try:
            col[i] = v
            return col
        except (TypeError, OverflowError):
            col = list(col)
    col[i] = v
    return col


def _col_bytes(col) -> int:
    """Shallow byte accounting for one column.

    Typed ``array`` columns report their exact buffer size (``getsizeof``
    includes the machine-value payload); demoted object columns report
    the pointer vector plus each element's own object header — element
    *contents* (e.g. a ``RangeValue``'s bound objects) are not chased, so
    shared/interned values are charged once per reference, which is the
    honest accounting for a columnar page of Python objects.
    """
    if type(col) is array:
        return sys.getsizeof(col)
    return sys.getsizeof(col) + sum(sys.getsizeof(v) for v in col)


def _concat_cols(parts: Sequence) -> Any:
    first = parts[0]
    if type(first) is array and all(
        type(p) is array and p.typecode == first.typecode for p in parts
    ):
        out = array(first.typecode)
        for p in parts:
            out.extend(p)
        return out
    merged: list = []
    for p in parts:
        merged.extend(p)
    return merged


# ---------------------------------------------------------------------------
# deterministic store
# ---------------------------------------------------------------------------


class DetChunk:
    __slots__ = ("batch", "zone")

    def __init__(self, batch: ColumnBatch, zone: ChunkZone) -> None:
        self.batch = batch
        self.zone = zone

    def __len__(self) -> int:
        return len(self.batch)


class _BaseStore:
    """Shared plumbing: chunk registry, row locator, skip evaluation."""

    __slots__ = ("schema", "chunk_size", "chunks", "_index", "_row_loc", "_scan_cache")

    def __init__(self, schema: Sequence[str], chunk_size: int) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk stores need a positive chunk_size")
        self.schema: Tuple[str, ...] = tuple(schema)
        self.chunk_size = chunk_size
        self.chunks: List[Any] = []
        self._index = {name: j for j, name in enumerate(self.schema)}
        self._row_loc: Dict[Tuple[Any, ...], Tuple[int, int]] = {}
        self._scan_cache = None

    def chunk_count(self) -> int:
        """Non-empty chunks (deletes may hollow a chunk out entirely)."""
        return sum(1 for ch in self.chunks if len(ch))

    def zone(self, ch) -> ChunkZone:
        if ch.zone.stale:
            self._rebuild_zone(ch)
            _ZONE_REBUILDS.inc()
        return ch.zone

    def survivor_indices(
        self, skip: Optional[ChunkSkipPredicate]
    ) -> Tuple[List[int], int, int]:
        """Indices of chunks a scan must read:
        ``(kept_indices, total_nonempty, skipped)``."""
        kept: List[int] = []
        total = 0
        skipped = 0
        for ci, ch in enumerate(self.chunks):
            if not len(ch):
                continue
            total += 1
            if skip is not None and not _zone_allows(self.zone(ch), self._index, skip):
                skipped += 1
                continue
            kept.append(ci)
        _CHUNKS_SCANNED.inc(total - skipped)
        _CHUNKS_SKIPPED.inc(skipped)
        return kept, total, skipped

    def survivors(
        self, skip: Optional[ChunkSkipPredicate]
    ) -> Tuple[List[Any], int, int]:
        """Chunks a scan must read: ``(kept, total_nonempty, skipped)``."""
        kept, total, skipped = self.survivor_indices(skip)
        return [self.chunks[ci] for ci in kept], total, skipped

    def batch_for_chunks(self, indices: Sequence[int]):
        """Materialize the batch of an explicit chunk-index run.

        This is the worker half of chunk-spec morsel transport: a
        persistent pool ships only ``(table, chunk_size, indices)`` per
        morsel and the worker rebuilds the batch from its own
        (fork-inherited, same-epoch) store — chunk boundaries are
        deterministic for identical relation state, so the batch is
        bit-identical to the parent's."""
        return self._concat([self.chunks[ci] for ci in indices])

    def morsel_chunk_groups(
        self, partitions: int, skip: Optional[ChunkSkipPredicate] = None
    ) -> Tuple[List[List[int]], List[int], int, int]:
        """Chunk-aligned morsels as index runs.

        Returns ``(index_groups, rows_per_group, total, skipped)``:
        contiguous runs of surviving chunk indices balanced to
        ≈ rows/partitions each, never splitting a chunk."""
        kept, total, skipped = self.survivor_indices(skip)
        sizes = [len(self.chunks[ci]) for ci in kept]
        groups = _group_runs(kept, sizes, partitions)
        it = iter(sizes)
        rows = [sum(next(it) for _ in g) for g in groups]
        return groups, rows, total, skipped

    def morsel_batches(
        self, partitions: int, skip: Optional[ChunkSkipPredicate] = None
    ) -> Tuple[List[Any], int, int]:
        """Chunk-aligned morsels: contiguous runs of surviving chunks,
        balanced to ≈ rows/partitions each, never splitting a chunk."""
        groups, _rows, total, skipped = self.morsel_chunk_groups(partitions, skip)
        return [self.batch_for_chunks(g) for g in groups], total, skipped

    def memory_footprint(self) -> int:
        """Resident bytes of the store's chunk payloads (see
        :func:`_col_bytes` for the accounting rules)."""
        return sum(self._chunk_bytes(ch) for ch in self.chunks)

    def _chunk_bytes(self, ch) -> int:
        raise NotImplementedError

    def _concat(self, kept: List[Any]):
        raise NotImplementedError

    def _reindex_tail(self, ci: int, start: int) -> None:
        raise NotImplementedError

    def _rebuild_zone(self, ch) -> None:
        raise NotImplementedError


class DetChunkStore(_BaseStore):
    """A ``DetRelation`` as fixed-size columnar chunks with zone maps."""

    __slots__ = ()

    @classmethod
    def build(cls, rel, chunk_size: int) -> "DetChunkStore":
        store = cls(rel.schema, chunk_size)
        items = list(rel.rows.items())
        n_cols = len(store.schema)
        for start in range(0, len(items), chunk_size):
            block = items[start : start + chunk_size]
            if n_cols:
                columns = [
                    _pack_typed([t[j] for t, _m in block]) for j in range(n_cols)
                ]
            else:
                columns = []
            mult = array("q")
            try:
                for _t, m in block:
                    mult.append(m)
            except OverflowError:
                mult = [m for _t, m in block]
            chunk = DetChunk(ColumnBatch(store.schema, columns, mult), ChunkZone(n_cols))
            store._rebuild_zone(chunk)
            ci = len(store.chunks)
            store.chunks.append(chunk)
            for ri, (t, _m) in enumerate(block):
                store._row_loc[t] = (ci, ri)
        return store

    # -- write path ---------------------------------------------------
    def on_add(self, t: Tuple[Any, ...], total_mult: int, is_new: bool) -> bool:
        """Fold one ``DetRelation.add`` into the store.  ``total_mult``
        is the row's resulting multiplicity.  Returns ``False`` when the
        store could not stay consistent (caller must drop it)."""
        self._scan_cache = None
        if not is_new:
            loc = self._row_loc.get(t)
            if loc is None:
                return False
            ci, ri = loc
            ch = self.chunks[ci]
            ch.batch.mult = _set_demote(ch.batch.mult, ri, total_mult)
            return True
        if self.chunks and len(self.chunks[-1]) < self.chunk_size:
            ci = len(self.chunks) - 1
            ch = self.chunks[ci]
        else:
            ci = len(self.chunks)
            ch = DetChunk(
                ColumnBatch(self.schema, [[] for _ in self.schema], array("q")),
                ChunkZone(len(self.schema)),
            )
            self.chunks.append(ch)
        cols = ch.batch.columns
        for j, v in enumerate(t):
            cols[j] = _append_demote(cols[j], v)
        ch.batch.mult = _append_demote(ch.batch.mult, total_mult)
        zone = ch.zone
        if not zone.stale:
            for j, v in enumerate(t):
                zone.widen(j, v, v)
                if v is None:
                    zone.nulls[j] += 1
            zone.rows += 1
            zone.certain += 1
        self._row_loc[t] = (ci, len(ch.batch) - 1)
        return True

    def on_delete(self, t: Tuple[Any, ...], remaining: int) -> bool:
        """Fold one ``DetRelation.delete`` in; ``remaining`` is the
        row's multiplicity after the delete (0 ⇒ the row is gone)."""
        self._scan_cache = None
        loc = self._row_loc.get(t)
        if loc is None:
            return False
        ci, ri = loc
        ch = self.chunks[ci]
        if remaining != 0:
            ch.batch.mult = _set_demote(ch.batch.mult, ri, remaining)
            return True
        zone = ch.zone
        if not zone.stale:
            # A boundary row leaves: the max/min may narrow, which the
            # zone cannot learn incrementally — invalidate, don't widen.
            if any(zone.touches_boundary(j, v, v) for j, v in enumerate(t)):
                zone.stale = True
            else:
                for j, v in enumerate(t):
                    if v is None:
                        zone.nulls[j] -= 1
                zone.rows -= 1
                zone.certain -= 1
        for col in ch.batch.columns:
            del col[ri]
        del ch.batch.mult[ri]
        del self._row_loc[t]
        self._reindex_tail(ci, ri)
        return True

    def _reindex_tail(self, ci: int, start: int) -> None:
        cols = self.chunks[ci].batch.columns
        n = len(self.chunks[ci])
        for i in range(start, n):
            self._row_loc[tuple(col[i] for col in cols)] = (ci, i)

    def _rebuild_zone(self, ch) -> None:
        zone = ChunkZone(len(self.schema))
        batch = ch.batch
        n = len(batch)
        zone.rows = n
        zone.certain = n
        for j, col in enumerate(batch.columns):
            for i in range(n):
                v = col[i]
                zone.widen(j, v, v)
                if v is None:
                    zone.nulls[j] += 1
        ch.zone = zone

    def _chunk_bytes(self, ch: DetChunk) -> int:
        batch = ch.batch
        return sum(_col_bytes(col) for col in batch.columns) + _col_bytes(
            batch.mult
        )

    # -- scan surface -------------------------------------------------
    def _concat(self, kept: List[DetChunk]) -> ColumnBatch:
        if not kept:
            return ColumnBatch(self.schema, [[] for _ in self.schema], array("q"))
        if len(kept) == 1:
            return kept[0].batch
        columns = [
            _concat_cols([ch.batch.columns[j] for ch in kept])
            for j in range(len(self.schema))
        ]
        mult = _concat_cols([ch.batch.mult for ch in kept])
        return ColumnBatch(self.schema, columns, mult)

    def scan(
        self, skip: Optional[ChunkSkipPredicate] = None
    ) -> Tuple[ColumnBatch, int, int]:
        """One batch of every surviving chunk: ``(batch, total, skipped)``."""
        if skip is None and self._scan_cache is not None:
            batch, total = self._scan_cache
            return batch, total, 0
        kept, total, skipped = self.survivors(skip)
        charge_materialization(sum(len(ch) for ch in kept))
        batch = self._concat(kept)
        if skip is None:
            self._scan_cache = (batch, total)
        return batch, total, skipped

    def iter_batches(
        self, skip: Optional[ChunkSkipPredicate] = None
    ) -> Tuple[List[ColumnBatch], int, int]:
        """Per-chunk batches for streaming execution."""
        kept, total, skipped = self.survivors(skip)
        return [ch.batch for ch in kept], total, skipped

def _group_runs(
    items: List[Any], sizes: List[int], partitions: int
) -> List[List[Any]]:
    """Split ``items`` into ≤ ``partitions`` contiguous runs balanced by
    ``sizes`` (rows per item); the morsel-alignment primitive."""
    rows = sum(sizes)
    if not items or partitions <= 1:
        return [list(items)]
    target = math.ceil(rows / partitions)
    groups: List[List[Any]] = []
    cur: List[Any] = []
    cur_rows = 0
    for it, sz in zip(items, sizes):
        cur.append(it)
        cur_rows += sz
        if cur_rows >= target and len(groups) < partitions - 1:
            groups.append(cur)
            cur = []
            cur_rows = 0
    if cur:
        groups.append(cur)
    return groups


# ---------------------------------------------------------------------------
# AU store
# ---------------------------------------------------------------------------


class AUChunk:
    """One page of an AU-relation.

    ``rv_cols[j]`` keeps the original :class:`RangeValue` objects (the
    serving image handed to the executors — object identity matters for
    NaN-free equality short-cuts elsewhere); ``lb_cols``/``sg_cols``/
    ``ub_cols`` are the split per-bound scalar arrays (the storage
    encoding, typed-packed per chunk) that feed the zone map; the three
    ``ann_*`` arrays are the ``K^AU`` annotation components.
    """

    __slots__ = (
        "rv_cols",
        "lb_cols",
        "sg_cols",
        "ub_cols",
        "ann_lb",
        "ann_sg",
        "ann_ub",
        "zone",
        "_batch",
    )

    def __init__(self, n_cols: int) -> None:
        self.rv_cols: List[Any] = [[] for _ in range(n_cols)]
        self.lb_cols: List[Any] = [[] for _ in range(n_cols)]
        self.sg_cols: List[Any] = [[] for _ in range(n_cols)]
        self.ub_cols: List[Any] = [[] for _ in range(n_cols)]
        self.ann_lb: Any = array("q")
        self.ann_sg: Any = array("q")
        self.ann_ub: Any = array("q")
        self.zone = ChunkZone(n_cols)
        self._batch: Optional[AUColumnBatch] = None

    def __len__(self) -> int:
        return len(self.ann_ub)

    def batch(self, schema: Tuple[str, ...]) -> AUColumnBatch:
        cached = self._batch
        if cached is None:
            cached = AUColumnBatch(
                schema, self.rv_cols, self.ann_lb, self.ann_sg, self.ann_ub
            )
            self._batch = cached
        return cached


class AUChunkStore(_BaseStore):
    """An ``AURelation`` as chunks of split lb/sg/ub column arrays."""

    __slots__ = ()

    @classmethod
    def build(cls, rel, chunk_size: int) -> "AUChunkStore":
        store = cls(rel.schema, chunk_size)
        for t, ann in rel.tuples():
            store._append(t, ann)
        return store

    def _append(self, t: Tuple[RangeValue, ...], ann: AUAnnotation) -> None:
        if self.chunks and len(self.chunks[-1]) < self.chunk_size:
            ci = len(self.chunks) - 1
            ch = self.chunks[ci]
        else:
            ci = len(self.chunks)
            ch = AUChunk(len(self.schema))
            self.chunks.append(ch)
        ch._batch = None
        for j, rv in enumerate(t):
            ch.rv_cols[j].append(rv)
            ch.lb_cols[j] = _append_demote(ch.lb_cols[j], rv.lb)
            ch.sg_cols[j] = _append_demote(ch.sg_cols[j], rv.sg)
            ch.ub_cols[j] = _append_demote(ch.ub_cols[j], rv.ub)
        ch.ann_lb = _append_demote(ch.ann_lb, ann[0])
        ch.ann_sg = _append_demote(ch.ann_sg, ann[1])
        ch.ann_ub = _append_demote(ch.ann_ub, ann[2])
        zone = ch.zone
        if not zone.stale:
            certain = True
            for j, rv in enumerate(t):
                zone.widen(j, rv.lb, rv.ub)
                if rv.sg is None:
                    zone.nulls[j] += 1
                if certain and not rv.is_certain:
                    certain = False
            zone.rows += 1
            if certain:
                zone.certain += 1
        self._row_loc[t] = (ci, len(ch) - 1)

    # -- write path ---------------------------------------------------
    def on_add(self, t: Tuple[RangeValue, ...], total_ann: AUAnnotation, is_new: bool) -> bool:
        self._scan_cache = None
        if not is_new:
            loc = self._row_loc.get(t)
            if loc is None:
                return False
            ci, ri = loc
            ch = self.chunks[ci]
            ch.ann_lb = _set_demote(ch.ann_lb, ri, total_ann[0])
            ch.ann_sg = _set_demote(ch.ann_sg, ri, total_ann[1])
            ch.ann_ub = _set_demote(ch.ann_ub, ri, total_ann[2])
            ch._batch = None
            return True
        self._append(t, total_ann)
        return True

    def on_delete(
        self, t: Tuple[RangeValue, ...], remaining: Optional[AUAnnotation]
    ) -> bool:
        """``remaining`` is the post-delete annotation, ``None``/all-zero
        when the tuple is removed outright."""
        self._scan_cache = None
        loc = self._row_loc.get(t)
        if loc is None:
            return False
        ci, ri = loc
        ch = self.chunks[ci]
        ch._batch = None
        if remaining is not None and any(remaining):
            ch.ann_lb = _set_demote(ch.ann_lb, ri, remaining[0])
            ch.ann_sg = _set_demote(ch.ann_sg, ri, remaining[1])
            ch.ann_ub = _set_demote(ch.ann_ub, ri, remaining[2])
            return True
        zone = ch.zone
        if not zone.stale:
            if any(
                zone.touches_boundary(j, rv.lb, rv.ub) for j, rv in enumerate(t)
            ):
                zone.stale = True
            else:
                for j, rv in enumerate(t):
                    if rv.sg is None:
                        zone.nulls[j] -= 1
                zone.rows -= 1
                if all(rv.is_certain for rv in t):
                    zone.certain -= 1
        for j in range(len(self.schema)):
            del ch.rv_cols[j][ri]
            del ch.lb_cols[j][ri]
            del ch.sg_cols[j][ri]
            del ch.ub_cols[j][ri]
        del ch.ann_lb[ri]
        del ch.ann_sg[ri]
        del ch.ann_ub[ri]
        del self._row_loc[t]
        self._reindex_tail(ci, ri)
        return True

    def _reindex_tail(self, ci: int, start: int) -> None:
        ch = self.chunks[ci]
        for i in range(start, len(ch)):
            self._row_loc[tuple(col[i] for col in ch.rv_cols)] = (ci, i)

    def _rebuild_zone(self, ch) -> None:
        zone = ChunkZone(len(self.schema))
        n = len(ch)
        zone.rows = n
        for i in range(n):
            certain = True
            for j in range(len(self.schema)):
                lb, ub, sg = ch.lb_cols[j][i], ch.ub_cols[j][i], ch.sg_cols[j][i]
                zone.widen(j, lb, ub)
                if sg is None:
                    zone.nulls[j] += 1
                if certain and not ch.rv_cols[j][i].is_certain:
                    certain = False
            if certain:
                zone.certain += 1
        ch.zone = zone

    def _chunk_bytes(self, ch: AUChunk) -> int:
        total = 0
        for j in range(len(self.schema)):
            total += _col_bytes(ch.rv_cols[j])
            total += _col_bytes(ch.lb_cols[j])
            total += _col_bytes(ch.sg_cols[j])
            total += _col_bytes(ch.ub_cols[j])
        total += _col_bytes(ch.ann_lb)
        total += _col_bytes(ch.ann_sg)
        total += _col_bytes(ch.ann_ub)
        return total

    # -- scan surface -------------------------------------------------
    def _concat(self, kept: List[AUChunk]) -> AUColumnBatch:
        if not kept:
            return AUColumnBatch(
                self.schema,
                [[] for _ in self.schema],
                array("q"),
                array("q"),
                array("q"),
            )
        if len(kept) == 1:
            return kept[0].batch(self.schema)
        columns = [
            _concat_cols([ch.rv_cols[j] for ch in kept])
            for j in range(len(self.schema))
        ]
        return AUColumnBatch(
            self.schema,
            columns,
            _concat_cols([ch.ann_lb for ch in kept]),
            _concat_cols([ch.ann_sg for ch in kept]),
            _concat_cols([ch.ann_ub for ch in kept]),
        )

    def scan(
        self, skip: Optional[ChunkSkipPredicate] = None
    ) -> Tuple[AUColumnBatch, int, int]:
        if skip is None and self._scan_cache is not None:
            batch, total = self._scan_cache
            return batch, total, 0
        kept, total, skipped = self.survivors(skip)
        charge_materialization(sum(len(ch) for ch in kept))
        batch = self._concat(kept)
        if skip is None:
            self._scan_cache = (batch, total)
        return batch, total, skipped

    def iter_batches(
        self, skip: Optional[ChunkSkipPredicate] = None
    ) -> Tuple[List[AUColumnBatch], int, int]:
        kept, total, skipped = self.survivors(skip)
        return [ch.batch(self.schema) for ch in kept], total, skipped


# ---------------------------------------------------------------------------
# store accessors (cached on the relation's ``_chunk_cache`` slot)
# ---------------------------------------------------------------------------


def det_store(rel, chunk_size: Optional[int]) -> Optional[DetChunkStore]:
    """The relation's chunk store at ``chunk_size`` (``0`` → ``None``)."""
    size = resolve_chunk_size(chunk_size)
    if size == 0:
        return None
    cached = getattr(rel, "_chunk_cache", None)
    if isinstance(cached, DetChunkStore) and cached.chunk_size == size:
        return cached
    store = DetChunkStore.build(rel, size)
    try:
        rel._chunk_cache = store
    except AttributeError:
        pass  # duck-typed relation: usable for this scan, not cached
    return store


def storage_report(db, chunk_size: Optional[int] = None) -> Dict[str, int]:
    """Per-table chunk-store footprint in bytes for a Det or AU database.

    Calls each relation's ``memory_footprint`` (building the chunk store
    at ``chunk_size`` if the relation has none cached) and publishes the
    result to the ``repro_storage_bytes`` gauge, one series per table —
    the backing for the REPL's ``\\storage`` command.
    """
    report: Dict[str, int] = {}
    for name in sorted(db.relations):
        bytes_ = db.relations[name].memory_footprint(chunk_size)
        report[name] = bytes_
        _tm.get_registry().gauge(
            "repro_storage_bytes",
            "Resident bytes of a relation's chunked columnar store.",
            table=name,
        ).set(bytes_)
    return report


def au_store(rel, chunk_size: Optional[int]) -> Optional[AUChunkStore]:
    size = resolve_chunk_size(chunk_size)
    if size == 0:
        return None
    cached = getattr(rel, "_chunk_cache", None)
    if isinstance(cached, AUChunkStore) and cached.chunk_size == size:
        return cached
    store = AUChunkStore.build(rel, size)
    try:
        rel._chunk_cache = store
    except AttributeError:
        pass
    return store
