"""Deterministic bag-semantics query engine (the ``Det`` / SGQP baseline).

Evaluates :mod:`repro.algebra` plans over :class:`~repro.db.storage.DetRelation`
instances with standard K-relation semantics for ``N``: selection filters,
projection sums multiplicities, joins multiply them, union adds, difference
is truncating subtraction, aggregation folds multiplicities into SUM/COUNT
and ignores them for MIN/MAX.

``ORDER BY … LIMIT k`` is honoured: a :class:`~repro.algebra.ast.Limit`
whose child is an :class:`~repro.algebra.ast.OrderBy` (or a fused
:class:`~repro.algebra.ast.TopK` produced by the optimizer) returns the
top-k rows under the requested sort keys; a bare ``Limit`` falls back to
the full-tuple domain order, which is arbitrary but deterministic.  Empty
MIN/MAX aggregates return ``None`` (SQL NULL), not ±inf.  Float SUM/AVG
fold through :mod:`repro.core.sums`, so results are bit-identical across
backends, plan shapes, and parallelism levels.

By default plans pass through the shared logical optimizer
(:mod:`repro.algebra.optimizer`) and are then *lowered* into an explicit
physical plan (:mod:`repro.exec.physical`), which makes every physical
choice — join algorithm, backend fallback boundaries, parallel regions —
at plan time; this module interprets those physical plans
tuple-at-a-time.  ``physical=False`` selects the legacy direct
interpretation of the logical plan (kept as the differential fuzzer's
reference lowering); ``backend="vectorized"`` hands the same physical
plan to :mod:`repro.exec.vectorized` instead, optionally
partition-parallel via ``parallelism``.

This engine doubles as the *possible-world evaluator*: the ground-truth
oracle runs the same plan in every world of an incomplete database.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from ..algebra.optimizer import DEFAULT_JOIN_ORDER
from ..core.aggregation import AggregateSpec
from ..core.expressions import Expression, RowView, Var
from ..core.ranges import domain_key
from ..core.sums import exact_sum
from ..exec import physical as phys
from .. import telemetry as _tm
from .storage import DetDatabase, DetRelation

__all__ = ["evaluate_det", "execute_physical_det"]


def evaluate_det(
    plan: Plan,
    db: DetDatabase,
    optimize: bool = True,
    join_order: str = DEFAULT_JOIN_ORDER,
    actuals: Optional[Dict[int, int]] = None,
    backend: str = "tuple",
    parallelism: int = 1,
    physical: bool = True,
    chunk_size: Optional[int] = None,
) -> DetRelation:
    """Evaluate ``plan`` over deterministic database ``db``.

    Since the query-session layer (:mod:`repro.session`) this is a thin
    shim: it opens an ephemeral :class:`~repro.session.Connection`,
    compiles the plan through the full pipeline, and executes it once.
    Repeated-query workloads should hold a ``Connection`` (or a
    :class:`~repro.session.PreparedQuery`) instead and amortize the
    parse/optimize/lower stages across executions.

    ``optimize`` (default on) runs the shared logical plan optimizer
    first; its rewrites are exact for bag semantics, so the result is
    identical either way.  ``join_order`` selects the join enumeration
    strategy (``"dp"`` cost-based / ``"greedy"``).

    ``physical`` (default on) lowers the (optimized) plan through
    :func:`repro.exec.physical.lower`, which picks the join algorithm
    per join from the statistics catalog and fuses selection/projection
    pairs; ``physical=False`` keeps the legacy direct interpretation of
    the logical plan (tuple backend only — the vectorized backend always
    executes physical plans).

    ``backend`` selects the physical executor: ``"tuple"`` (this
    module's operator-at-a-time interpreter) or ``"vectorized"``
    (:mod:`repro.exec`: columnar batches, fused compiled predicates,
    hash joins/aggregates).  ``parallelism`` > 1 adds morsel-parallel
    regions to vectorized plans (:mod:`repro.exec.parallel`).
    ``chunk_size`` configures paged chunked storage for vectorized
    scans (:mod:`repro.db.chunks`; ``0`` disables it).  Results are
    identical on every backend, parallelism level, and chunk size,
    floats included (:mod:`repro.core.sums`).

    ``actuals``, when a dict, is filled with the actual output
    cardinality of every evaluated node — keyed by ``id(node)`` of the
    logical nodes (as before) and additionally of the physical nodes,
    feeding both ``explain`` renderings; with ``optimize=True`` the
    recorded nodes belong to the *optimized* plan, so pre-optimize and
    pass ``optimize=False`` to correlate them.
    """
    from ..algebra.evaluator import EvalConfig
    from ..session import Connection

    config = EvalConfig(
        optimize=optimize,
        join_order=join_order,
        backend=backend,
        parallelism=parallelism,
        physical=physical,
        chunk_size=chunk_size,
    )
    return Connection(db, engine="det", config=config).execute(
        plan, actuals=actuals
    )


# ----------------------------------------------------------------------
# physical-plan interpreter (tuple-at-a-time)
# ----------------------------------------------------------------------
def execute_physical_det(
    pplan: phys.PhysNode,
    db: DetDatabase,
    actuals: Optional[Dict[int, int]] = None,
) -> DetRelation:
    """Interpret a physical plan tuple-at-a-time.

    A thin mapping from physical operators to this module's bag
    operators; all choices (hash vs nested loop, fallback boundaries)
    were made by :func:`repro.exec.physical.lower`.

    When a telemetry trace is active (:mod:`repro.telemetry`) every
    node evaluation gets an operator span with inclusive wall time and
    output rows; disabled, the hook is one global-load-and-``None``
    check per node.
    """
    tr = _tm._ACTIVE
    if tr is not None:
        span = tr.begin_op(pplan)
        try:
            result = _exec_node(pplan, db, actuals)
        except BaseException:
            tr.end_op(span)
            raise
        tr.end_op(span, result.total_rows())
    else:
        result = _exec_node(pplan, db, actuals)
    if actuals is not None:
        n = result.total_rows()
        actuals[id(pplan)] = n
        for src in pplan.sources:
            actuals[id(src)] = n
    return result


def _exec(p: phys.PhysNode, db: DetDatabase, actuals) -> DetRelation:
    return execute_physical_det(p, db, actuals)


def _exec_node(
    p: phys.PhysNode, db: DetDatabase, actuals: Optional[Dict[int, int]]
) -> DetRelation:
    if isinstance(p, phys.Scan):
        return db[p.table]
    if isinstance(p, phys.FusedSelectProject):
        rel = _exec(p.child, db, actuals)
        if p.condition is not None:
            rel = _selection(rel, p.condition)
        if p.columns is not None:
            rel = _projection(rel, p.columns)
        return rel
    if isinstance(p, phys.HashJoin):
        left = _exec(p.left, db, actuals)
        right = _exec(p.right, db, actuals)
        if _tm._ACTIVE is not None:
            _tm.annotate(build_rows=right.total_rows())
        return _hash_join(left, right, p.condition, p.eq_pairs)
    if isinstance(p, phys.NLJoin):
        left = _exec(p.left, db, actuals)
        right = _exec(p.right, db, actuals)
        if p.condition is None:
            return _cross(left, right)
        return _loop_join(left, right, p.condition)
    if isinstance(p, phys.Concat):
        return _union(_exec(p.left, db, actuals), _exec(p.right, db, actuals))
    if isinstance(p, phys.HashDistinct):
        return _distinct(_exec(p.child, db, actuals))
    if isinstance(p, phys.HashAggregate):
        result = _aggregate(
            _exec(p.child, db, actuals), p.group_by, p.aggregates
        )
        if p.having is not None:
            result = _selection(result, p.having)
        return result
    if isinstance(p, phys.Rename):
        return _rename(_exec(p.child, db, actuals), p.mapping)
    if isinstance(p, phys.TopK):
        return _topk(_exec(p.child, db, actuals), p.keys, p.descending, p.n)
    if isinstance(p, phys.Limit):
        return _limit(_exec(p.child, db, actuals), p.n)
    if isinstance(p, phys.TupleFallback):
        if _tm._ACTIVE is not None:
            _tm.annotate(fallback=p.kind)
        if p.kind == "difference":
            return _difference(
                _exec(p.inputs[0], db, actuals), _exec(p.inputs[1], db, actuals)
            )
        raise TypeError(f"unsupported det fallback {p.kind!r}")
    raise TypeError(f"unsupported physical node {type(p).__name__}")


# ----------------------------------------------------------------------
# legacy direct interpretation of logical plans
# ----------------------------------------------------------------------
def _evaluate(
    plan: Plan, db: DetDatabase, actuals: Optional[Dict[int, int]] = None
) -> DetRelation:
    result = _evaluate_node(plan, db, actuals)
    if actuals is not None:
        actuals[id(plan)] = result.total_rows()
    return result


def _evaluate_node(
    plan: Plan, db: DetDatabase, actuals: Optional[Dict[int, int]]
) -> DetRelation:
    if isinstance(plan, TableRef):
        return db[plan.name]
    if isinstance(plan, Selection):
        return _selection(_evaluate(plan.child, db, actuals), plan.condition)
    if isinstance(plan, Projection):
        return _projection(_evaluate(plan.child, db, actuals), plan.columns)
    if isinstance(plan, Join):
        return _join(
            _evaluate(plan.left, db, actuals),
            _evaluate(plan.right, db, actuals),
            plan.condition,
        )
    if isinstance(plan, CrossProduct):
        return _cross(
            _evaluate(plan.left, db, actuals), _evaluate(plan.right, db, actuals)
        )
    if isinstance(plan, Union):
        return _union(
            _evaluate(plan.left, db, actuals), _evaluate(plan.right, db, actuals)
        )
    if isinstance(plan, Difference):
        return _difference(
            _evaluate(plan.left, db, actuals), _evaluate(plan.right, db, actuals)
        )
    if isinstance(plan, Distinct):
        return _distinct(_evaluate(plan.child, db, actuals))
    if isinstance(plan, Aggregate):
        result = _aggregate(
            _evaluate(plan.child, db, actuals), plan.group_by, plan.aggregates
        )
        if plan.having is not None:
            result = _selection(result, plan.having)
        return result
    if isinstance(plan, Rename):
        return _rename(_evaluate(plan.child, db, actuals), plan.mapping_dict())
    if isinstance(plan, OrderBy):
        return _evaluate(plan.child, db, actuals)  # bags are unordered
    if isinstance(plan, TopK):
        return _topk(
            _evaluate(plan.child, db, actuals), plan.keys, plan.descending, plan.n
        )
    if isinstance(plan, Limit):
        child = plan.child
        if isinstance(child, OrderBy):
            # thread the ORDER BY keys into the limit so the *right* top-k
            # rows survive, not the top-k of an arbitrary tuple order
            return _topk(
                _evaluate(child.child, db, actuals),
                child.keys,
                child.descending,
                plan.n,
            )
        return _limit(_evaluate(child, db, actuals), plan.n)
    raise TypeError(f"unsupported plan node {type(plan).__name__}")


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------
def _selection(rel: DetRelation, condition: Expression) -> DetRelation:
    out = DetRelation(rel.schema)
    index = RowView.index_of(rel.schema)
    for t, m in rel.tuples():
        if bool(condition.eval(RowView(index, t))):
            out.add(t, m)
    return out


def _projection(
    rel: DetRelation, columns: Sequence[Tuple[Expression, str]]
) -> DetRelation:
    out = DetRelation([name for _, name in columns])
    index = RowView.index_of(rel.schema)
    for t, m in rel.tuples():
        valuation = RowView(index, t)
        out.add(tuple(expr.eval(valuation) for expr, _ in columns), m)
    return out


def _join(left: DetRelation, right: DetRelation, condition: Expression) -> DetRelation:
    """Legacy lowering: hash whenever an equi-conjunct exists."""
    eq_pairs = _equi_pairs(condition, left.schema, right.schema)
    if eq_pairs:
        return _hash_join(left, right, condition, eq_pairs)
    return _loop_join(left, right, condition)


def _hash_join(
    left: DetRelation,
    right: DetRelation,
    condition: Expression,
    eq_pairs: Sequence[Tuple[str, str]],
) -> DetRelation:
    schema = tuple(left.schema) + tuple(right.schema)
    index = RowView.index_of(schema)
    out = DetRelation(schema)
    l_idx = [left.attr_index(a) for a, _ in eq_pairs]
    r_idx = [right.attr_index(b) for _, b in eq_pairs]
    hash_index: Dict[Tuple[Any, ...], List[Tuple[Tuple[Any, ...], int]]] = {}
    for rt, rm in right.tuples():
        hash_index.setdefault(tuple(rt[i] for i in r_idx), []).append((rt, rm))
    for lt, lm in left.tuples():
        key = tuple(lt[i] for i in l_idx)
        for rt, rm in hash_index.get(key, ()):
            combined = lt + rt
            if bool(condition.eval(RowView(index, combined))):
                out.add(combined, lm * rm)
    return out


def _loop_join(
    left: DetRelation, right: DetRelation, condition: Expression
) -> DetRelation:
    schema = tuple(left.schema) + tuple(right.schema)
    index = RowView.index_of(schema)
    out = DetRelation(schema)
    right_rows = list(right.tuples())
    for lt, lm in left.tuples():
        for rt, rm in right_rows:
            combined = lt + rt
            if bool(condition.eval(RowView(index, combined))):
                out.add(combined, lm * rm)
    return out


def _equi_pairs(
    condition: Expression, left_schema: Sequence[str], right_schema: Sequence[str]
) -> List[Tuple[str, str]]:
    from ..core.expressions import And, Eq

    left_set, right_set = set(left_schema), set(right_schema)
    pairs: List[Tuple[str, str]] = []

    def walk(e: Expression) -> None:
        if isinstance(e, And):
            walk(e.left)
            walk(e.right)
        elif isinstance(e, Eq) and isinstance(e.left, Var) and isinstance(e.right, Var):
            if e.left.name in left_set and e.right.name in right_set:
                pairs.append((e.left.name, e.right.name))
            elif e.right.name in left_set and e.left.name in right_set:
                pairs.append((e.right.name, e.left.name))

    walk(condition)
    return pairs


def _cross(left: DetRelation, right: DetRelation) -> DetRelation:
    out = DetRelation(tuple(left.schema) + tuple(right.schema))
    for lt, lm in left.tuples():
        for rt, rm in right.tuples():
            out.add(lt + rt, lm * rm)
    return out


def _union(left: DetRelation, right: DetRelation) -> DetRelation:
    if len(left.schema) != len(right.schema):
        raise ValueError("union requires union-compatible schemas")
    out = DetRelation(left.schema)
    for t, m in left.tuples():
        out.add(t, m)
    for t, m in right.tuples():
        out.add(t, m)
    return out


def _difference(left: DetRelation, right: DetRelation) -> DetRelation:
    if len(left.schema) != len(right.schema):
        raise ValueError("difference requires union-compatible schemas")
    out = DetRelation(left.schema)
    for t, m in left.tuples():
        remaining = m - right.multiplicity(t)
        if remaining > 0:
            out.add(t, remaining)
    return out


def _distinct(rel: DetRelation) -> DetRelation:
    out = DetRelation(rel.schema)
    for t, _m in rel.tuples():
        out.add(t, 1)
    return out


def _rename(rel: DetRelation, mapping: Dict[str, str]) -> DetRelation:
    out = DetRelation([mapping.get(a, a) for a in rel.schema])
    for t, m in rel.tuples():
        out.add(t, m)
    return out


def _limit(rel: DetRelation, n: int) -> DetRelation:
    out = DetRelation(rel.schema)
    taken = 0
    for t, m in sorted(rel.tuples(), key=lambda i: tuple(map(domain_key, i[0]))):
        if taken >= n:
            break
        take = min(m, n - taken)
        out.add(t, take)
        taken += take
    return out


def _topk(
    rel: DetRelation, keys: Sequence[str], descending: bool, n: int
) -> DetRelation:
    """``ORDER BY keys [DESC] LIMIT n`` with a deterministic full-tuple
    tie-break within equal sort keys."""
    out = DetRelation(rel.schema)
    key_idx = [rel.attr_index(k) for k in keys]
    rows = sorted(rel.tuples(), key=lambda i: tuple(map(domain_key, i[0])))
    rows.sort(
        key=lambda i: tuple(domain_key(i[0][j]) for j in key_idx),
        reverse=descending,
    )
    taken = 0
    for t, m in rows:
        if taken >= n:
            break
        take = min(m, n - taken)
        out.add(t, take)
        taken += take
    return out


def _aggregate(
    rel: DetRelation,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> DetRelation:
    """Standard SQL/bag aggregation.

    SUM and COUNT weight by multiplicity; MIN/MAX ignore it; AVG is the
    multiplicity-weighted mean.  Each output group has multiplicity 1.
    Float SUM/AVG use order-independent exact summation
    (:mod:`repro.core.sums`), matching the vectorized backend bit for
    bit.
    """
    group_idx = [rel.attr_index(a) for a in group_by]
    out_schema = list(group_by) + [spec.name for spec in aggregates]
    out = DetRelation(out_schema)

    groups: Dict[Tuple[Any, ...], List[Tuple[Tuple[Any, ...], int]]] = {}
    for t, m in rel.tuples():
        key = tuple(t[i] for i in group_idx)
        groups.setdefault(key, []).append((t, m))

    if not groups and not group_by:
        out.add(tuple(_empty_value(spec) for spec in aggregates), 1)
        return out

    for key, rows in groups.items():
        values: List[Any] = list(key)
        for spec in aggregates:
            values.append(_fold(spec, rel.schema, rows))
        out.add(tuple(values), 1)
    return out


def _fold(
    spec: AggregateSpec,
    schema: Sequence[str],
    rows: Sequence[Tuple[Tuple[Any, ...], int]],
) -> Any:
    if spec.kind == "count":
        return sum(m for _t, m in rows)
    index = RowView.index_of(schema)
    values = [(spec.expr.eval(RowView(index, t)), m) for t, m in rows]
    if spec.kind == "sum":
        return exact_sum(values)
    if spec.kind == "min":
        return min((v for v, _m in values), key=domain_key)
    if spec.kind == "max":
        return max((v for v, _m in values), key=domain_key)
    if spec.kind == "avg":
        total_m = sum(m for _v, m in values)
        return exact_sum(values) / total_m
    raise ValueError(f"unsupported aggregate {spec.kind!r}")


def _empty_value(spec: AggregateSpec) -> Any:
    if spec.kind in {"sum", "count"}:
        return 0
    if spec.kind == "avg":
        return 0.0
    # SQL semantics: MIN/MAX over an empty input is NULL, not ±inf
    return None
