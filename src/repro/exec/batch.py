"""Columnar batches: the data representation of the vectorized backend.

A batch is the columnar ("decomposed storage") image of a relation:
parallel per-attribute arrays plus a multiplicity column, so operators
touch only the columns they need and run tight set-at-a-time loops
instead of interpreting one tuple dictionary at a time.

* :class:`ColumnBatch` — deterministic bags.  One Python array per
  attribute and an integer multiplicity column.  Base-table columns whose
  values are homogeneously ``int`` or ``float`` are packed into
  :mod:`array`-module typed arrays (contiguous machine values); mixed
  columns fall back to plain lists.
* :class:`AUColumnBatch` — AU-relations.  One array of range triples
  (``RangeValue`` objects, i.e. lower/SG/upper per attribute) per column,
  plus the ``K^AU`` annotation as three parallel multiplicity arrays
  ``ann_lb``/``ann_sg``/``ann_ub``.

Batches are *unmerged*: value-equivalent rows may appear several times
and are only merged (annotations summed) when the batch is materialized
back into a relation.  This is exact for the linear operators (selection,
projection, rename, join, cross product, union) because the annotation
semirings distribute over addition; the executors materialize before
every non-linear operator (difference, distinct, aggregation, top-k).

Conversions are cached on the source relation (``_columnar_cache``,
invalidated by ``add()``), so repeated queries over the same database
scan the columnar image for free.
"""

from __future__ import annotations

from array import array
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.relation import AURelation
from ..core.semirings import AUAnnotation
from ..db.storage import DetRelation

__all__ = [
    "ColumnBatch",
    "AUColumnBatch",
    "BatchRowView",
    "MaterializationBudgetError",
    "materialization_budget",
]


class MaterializationBudgetError(MemoryError):
    """A single batch materialization exceeded the configured row budget."""


#: When not ``None``, the maximum number of rows any *single* batch
#: materialization (relation → full batch image) may produce.  Streaming
#: chunk scans stay under the budget by construction — they touch one
#: chunk at a time — so the budget models a bounded working set and lets
#: benchmarks demonstrate that streaming completes where whole-relation
#: materialization cannot.
MATERIALIZATION_BUDGET: Optional[int] = None


@contextmanager
def materialization_budget(rows: Optional[int]) -> Iterator[None]:
    """Cap single-batch materializations at ``rows`` within the block."""
    global MATERIALIZATION_BUDGET
    prev = MATERIALIZATION_BUDGET
    MATERIALIZATION_BUDGET = rows
    try:
        yield
    finally:
        MATERIALIZATION_BUDGET = prev


def charge_materialization(rows: int) -> None:
    """Raise when a single materialization of ``rows`` rows is over budget."""
    budget = MATERIALIZATION_BUDGET
    if budget is not None and rows > budget:
        raise MaterializationBudgetError(
            f"materializing {rows} rows in one batch exceeds the "
            f"{budget}-row materialization budget; use a chunked "
            f"streaming scan (EvalConfig.chunk_size) instead"
        )


def _pack_typed(values: list):
    """Pack a homogeneous numeric column into an ``array``-module array.

    Returns the original list when the column mixes types, holds bools,
    overflows the 64-bit signed range, or contains NaN — a typed array
    re-boxes a fresh float per access, and NaN equality semantics in the
    engines go through Python's identity-or-equality shortcut, so NaN
    columns must keep their original objects.
    """
    if not values:
        return values
    kind = type(values[0])
    if kind is int:
        for v in values:
            if type(v) is not int:
                return values
        try:
            return array("q", values)
        except OverflowError:
            return values
    if kind is float:
        for v in values:
            if type(v) is not float or v != v:
                return values
        return array("d", values)
    return values


class BatchRowView:
    """A lazy ``{attribute: value}`` valuation over one batch row.

    The columnar counterpart of :class:`repro.core.expressions.RowView`:
    expression evaluation only ever looks attributes up, so the slow-path
    (non-compiled) evaluators reuse ``eval``/``eval_range`` unchanged by
    pointing one mutable row cursor ``i`` at the batch.
    """

    __slots__ = ("_index", "_columns", "i")

    def __init__(self, index: Dict[str, int], columns: Sequence) -> None:
        self._index = index
        self._columns = columns
        self.i = 0

    def __getitem__(self, name: str) -> Any:
        return self._columns[self._index[name]][self.i]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def get(self, name: str, default: Any = None) -> Any:
        j = self._index.get(name)
        return default if j is None else self._columns[j][self.i]

    def keys(self):
        return self._index.keys()


class ColumnBatch:
    """A deterministic bag in columnar form.

    ``columns[j][i]`` is the value of attribute ``schema[j]`` in row
    ``i``; ``mult[i]`` is the row's multiplicity.  Rows need not be
    distinct (see module docstring).
    """

    __slots__ = ("schema", "columns", "mult")

    def __init__(self, schema: Sequence[str], columns: List, mult) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self.columns = columns
        self.mult = mult

    def __len__(self) -> int:
        return len(self.mult)

    def total_rows(self) -> int:
        """Bag cardinality (sum of multiplicities)."""
        return sum(self.mult)

    @classmethod
    def from_relation(cls, rel: DetRelation) -> "ColumnBatch":
        cached = getattr(rel, "_columnar_cache", None)
        if cached is not None:
            return cached
        charge_materialization(len(rel.rows))
        n_cols = len(rel.schema)
        if rel.rows:
            columns = [_pack_typed(list(col)) for col in zip(*rel.rows.keys())]
            mult = array("q", rel.rows.values())
        else:
            columns = [[] for _ in range(n_cols)]
            mult = array("q")
        batch = cls(rel.schema, columns, mult)
        try:
            rel._columnar_cache = batch
        except AttributeError:
            pass  # duck-typed relation without the cache slot
        return batch

    def to_relation(self) -> DetRelation:
        """Materialize back into a (merged) :class:`DetRelation`."""
        out = DetRelation(self.schema)
        rows = out.rows
        if self.columns:
            for t, m in zip(zip(*self.columns), self.mult):
                rows[t] = rows.get(t, 0) + m
        else:  # zero-attribute relation: all rows are the empty tuple
            total = sum(self.mult)
            if total:
                rows[()] = total
        return out

    def append_row(self, t: Tuple[Any, ...], multiplicity: int) -> bool:
        """Grow the batch by one row in place, if types permit.

        The incremental-maintenance path appends a relation's per-write
        delta directly to the cached columnar image — the delta batch
        *is* the appended column image.  Returns ``False`` (leaving the
        batch untouched) when a value cannot join its typed column:
        appending a bool/NaN/overflowing int to a packed array would
        change the column's representation invariants, so the caller
        must invalidate and rebuild instead.
        """
        if len(t) != len(self.columns):
            return False
        if not -(2**63) <= multiplicity < 2**63:
            return False
        for col, v in zip(self.columns, t):
            if type(col) is array:
                if col.typecode == "q":
                    if type(v) is not int or not -(2**63) <= v < 2**63:
                        return False
                elif type(v) is not float or v != v:
                    return False
        for col, v in zip(self.columns, t):
            col.append(v)
        self.mult.append(multiplicity)
        return True

    def row_view(self) -> BatchRowView:
        return BatchRowView(
            {name: j for j, name in enumerate(self.schema)}, self.columns
        )


class AUColumnBatch:
    """An ``N^AU``-relation in columnar form.

    ``columns[j][i]`` is the :class:`~repro.core.ranges.RangeValue`
    (lower/SG/upper triple) of attribute ``schema[j]`` in row ``i``;
    ``ann_lb``/``ann_sg``/``ann_ub`` are the three components of the
    row's ``K^AU`` annotation.  Rows need not be distinct.
    """

    __slots__ = ("schema", "columns", "ann_lb", "ann_sg", "ann_ub")

    def __init__(
        self, schema: Sequence[str], columns: List, ann_lb, ann_sg, ann_ub
    ) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self.columns = columns
        self.ann_lb = ann_lb
        self.ann_sg = ann_sg
        self.ann_ub = ann_ub

    def __len__(self) -> int:
        return len(self.ann_ub)

    @classmethod
    def from_relation(cls, rel: AURelation) -> "AUColumnBatch":
        cached = getattr(rel, "_columnar_cache", None)
        if cached is not None:
            return cached
        charge_materialization(len(rel))
        n_cols = len(rel.schema)
        rows = list(rel.tuples())
        if rows:
            columns = [list(col) for col in zip(*(t for t, _ann in rows))]
            ann_lb = array("q", (ann[0] for _t, ann in rows))
            ann_sg = array("q", (ann[1] for _t, ann in rows))
            ann_ub = array("q", (ann[2] for _t, ann in rows))
        else:
            columns = [[] for _ in range(n_cols)]
            ann_lb, ann_sg, ann_ub = array("q"), array("q"), array("q")
        batch = cls(rel.schema, columns, ann_lb, ann_sg, ann_ub)
        try:
            rel._columnar_cache = batch
        except AttributeError:
            pass
        return batch

    def to_relation(self) -> AURelation:
        """Materialize back into a (merged) :class:`AURelation`."""
        out = AURelation(self.schema)
        if self.columns:
            for t, lb, sg, ub in zip(
                zip(*self.columns), self.ann_lb, self.ann_sg, self.ann_ub
            ):
                out.add(t, (lb, sg, ub))
        else:
            for lb, sg, ub in zip(self.ann_lb, self.ann_sg, self.ann_ub):
                out.add((), (lb, sg, ub))
        return out

    def append_row(self, t: Tuple[Any, ...], annotation: AUAnnotation) -> bool:
        """Grow the batch by one AU row in place (see ``ColumnBatch``)."""
        if len(t) != len(self.columns):
            return False
        if not all(0 <= a < 2**63 for a in annotation):
            return False
        for col, v in zip(self.columns, t):
            col.append(v)
        self.ann_lb.append(annotation[0])
        self.ann_sg.append(annotation[1])
        self.ann_ub.append(annotation[2])
        return True

    def annotations(self) -> List[AUAnnotation]:
        return list(zip(self.ann_lb, self.ann_sg, self.ann_ub))

    def row_view(self) -> BatchRowView:
        return BatchRowView(
            {name: j for j, name in enumerate(self.schema)}, self.columns
        )
