"""Vectorized physical operators over columnar batches, for both engines.

This is the physical-execution layer: it interprets the *same* logical
plans (:mod:`repro.algebra.ast`) as the tuple-at-a-time engines
(:func:`repro.db.engine.evaluate_det`,
:func:`repro.algebra.evaluator.evaluate_audb`) but executes them
set-at-a-time over :mod:`repro.exec.batch` columns:

* **scans** convert base relations once (cached on the relation);
* **selection** runs a fused compiled predicate loop
  (:mod:`repro.exec.compile`) — one generated function per condition,
  no per-row AST dispatch;
* **equi-joins** hash-partition by join key and gather matching rows
  column-wise; the logical optimizer's
  :func:`~repro.algebra.optimizer.join_strategy_hints` picks hash vs
  nested-loop per join from the statistics catalog;
* **aggregation** is a single-pass hash aggregate with inlined
  accumulators;
* **top-k** and the bag-order ``LIMIT`` reuse the engines' operators on
  the materialized batch.

Results are *identical* to the tuple engines (the differential fuzzer
cross-checks both backends on both engines), with one caveat: batches
defer duplicate merging to materialization boundaries, so floating-point
SUM/AVG aggregates may accumulate in a different order and differ in
round-off; integer data is bit-exact.

Coverage and fallback: the deterministic executor covers every plan
node.  The AU executor vectorizes the linear fragment (scan, selection,
projection, rename, join, cross product, union) and *falls back* to the
tuple operators node-by-node for everything whose semantics SG-combines
or re-groups rows — ``Distinct``, ``Difference``, ``Aggregate``, top-k,
and compressed (``Cpr``) joins — by materializing its inputs and calling
the exact :mod:`repro.core` implementation, so every query still
answers with the same bounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from ..core import operators as ops
from ..core.aggregation import aggregate as au_aggregate
from ..core.compression import optimized_join
from ..core.expressions import Expression, Var
from ..core.operators import (
    _extract_equi_pairs,
    _is_pure_equi_condition,
    _key_overlaps,
)
from ..core.ranges import domain_key
from ..core.relation import AUDatabase, AURelation
from ..db.storage import DetDatabase, DetRelation
from .batch import AUColumnBatch, BatchRowView, ColumnBatch
from .compile import CompileError, compile_filter, compile_projector

__all__ = ["execute_det", "execute_audb"]


def _index_of(schema: Sequence[str]) -> Dict[str, int]:
    return {name: j for j, name in enumerate(schema)}


def _gather(columns: Sequence, rows: List[int]) -> List:
    return [[col[i] for i in rows] for col in columns]


# ======================================================================
# deterministic executor
# ======================================================================
def execute_det(
    plan: Plan,
    db: DetDatabase,
    actuals: Optional[Dict[int, int]] = None,
    strategies: Optional[Dict[int, str]] = None,
) -> DetRelation:
    """Evaluate ``plan`` over ``db`` with the vectorized backend.

    Semantically identical to the tuple interpreter
    (:func:`repro.db.engine.evaluate_det` with ``optimize=False`` — run
    the optimizer first).  ``actuals`` collects per-node output
    cardinalities exactly like the tuple engine; ``strategies`` is the
    optional ``{id(join): "hash"|"loop"}`` physical-operator choice from
    :func:`repro.algebra.optimizer.join_strategy_hints`.
    """
    return _DetExec(db, actuals, strategies).run(plan)


class _DetExec:
    def __init__(self, db, actuals, strategies) -> None:
        self.db = db
        self.actuals = actuals
        self.strategies = strategies or {}

    def run(self, plan: Plan) -> DetRelation:
        return self.eval(plan).to_relation()

    def eval(self, plan: Plan) -> ColumnBatch:
        batch = self._node(plan)
        if self.actuals is not None:
            self.actuals[id(plan)] = sum(batch.mult)
        return batch

    # -- plan dispatch -------------------------------------------------
    def _node(self, plan: Plan) -> ColumnBatch:
        if isinstance(plan, TableRef):
            return ColumnBatch.from_relation(self.db[plan.name])
        if isinstance(plan, Selection):
            return self._selection(self.eval(plan.child), plan.condition)
        if isinstance(plan, Projection):
            return self._projection(self.eval(plan.child), plan.columns)
        if isinstance(plan, Join):
            return self._join(
                self.eval(plan.left),
                self.eval(plan.right),
                plan.condition,
                self.strategies.get(id(plan)),
            )
        if isinstance(plan, CrossProduct):
            return self._cross(self.eval(plan.left), self.eval(plan.right))
        if isinstance(plan, Union):
            left, right = self.eval(plan.left), self.eval(plan.right)
            if len(left.schema) != len(right.schema):
                raise ValueError("union requires union-compatible schemas")
            return ColumnBatch(
                left.schema,
                [list(lc) + list(rc) for lc, rc in zip(left.columns, right.columns)],
                list(left.mult) + list(right.mult),
            )
        if isinstance(plan, Difference):
            return self._difference(self.eval(plan.left), self.eval(plan.right))
        if isinstance(plan, Distinct):
            batch = self.eval(plan.child)
            seen = dict.fromkeys(zip(*batch.columns)) if batch.columns else {}
            rows = list(seen)
            return ColumnBatch(
                batch.schema,
                [list(col) for col in zip(*rows)]
                if rows
                else [[] for _ in batch.schema],
                [1] * len(rows) if batch.columns else [1] * min(1, len(batch)),
            )
        if isinstance(plan, Aggregate):
            result = self._aggregate(
                self.eval(plan.child), plan.group_by, plan.aggregates
            )
            if plan.having is not None:
                result = self._selection(result, plan.having)
            return result
        if isinstance(plan, Rename):
            batch = self.eval(plan.child)
            mapping = plan.mapping_dict()
            return ColumnBatch(
                [mapping.get(a, a) for a in batch.schema],
                batch.columns,
                batch.mult,
            )
        if isinstance(plan, OrderBy):
            return self.eval(plan.child)  # bags are unordered
        if isinstance(plan, TopK):
            return self._topk(
                self.eval(plan.child), plan.keys, plan.descending, plan.n
            )
        if isinstance(plan, Limit):
            child = plan.child
            if isinstance(child, OrderBy):
                return self._topk(
                    self.eval(child.child), child.keys, child.descending, plan.n
                )
            from ..db.engine import _limit

            return ColumnBatch.from_relation(
                _limit(self.eval(child).to_relation(), plan.n)
            )
        raise TypeError(f"unsupported plan node {type(plan).__name__}")

    # -- operators -----------------------------------------------------
    def _selection(self, batch: ColumnBatch, condition: Expression) -> ColumnBatch:
        n = len(batch)
        try:
            keep = compile_filter(condition, batch.schema)(batch.columns, n)
        except CompileError:
            view = batch.row_view()
            keep = []
            for i in range(n):
                view.i = i
                if bool(condition.eval(view)):
                    keep.append(i)
        if len(keep) == n:
            return batch
        return ColumnBatch(
            batch.schema,
            _gather(batch.columns, keep),
            [batch.mult[i] for i in keep],
        )

    def _projection(self, batch: ColumnBatch, columns) -> ColumnBatch:
        n = len(batch)
        index = _index_of(batch.schema)
        out_cols: List = []
        for expr, _name in columns:
            if isinstance(expr, Var) and expr.name in index:
                out_cols.append(batch.columns[index[expr.name]])
                continue
            try:
                out_cols.append(compile_projector(expr, batch.schema)(batch.columns, n))
            except CompileError:
                view = batch.row_view()
                col = []
                for i in range(n):
                    view.i = i
                    col.append(expr.eval(view))
                out_cols.append(col)
        return ColumnBatch([name for _, name in columns], out_cols, batch.mult)

    def _join(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        condition: Expression,
        strategy: Optional[str],
    ) -> ColumnBatch:
        from ..db.engine import _equi_pairs

        eq_pairs = _equi_pairs(condition, left.schema, right.schema)
        if not eq_pairs or strategy == "loop":
            return self._selection(self._cross(left, right), condition)

        l_index, r_index = _index_of(left.schema), _index_of(right.schema)
        l_cols = [left.columns[l_index[a]] for a, _ in eq_pairs]
        r_cols = [right.columns[r_index[b]] for _, b in eq_pairs]

        # bucket raw key values exactly like the tuple engine's dict:
        # Python's identity-or-equality lookup means a bucket match
        # implies the Eq conjuncts hold under domain_key comparison
        # (including the same-NaN-object identity case), so hash and
        # nested-loop strategies agree with the tuple engine bit-for-bit
        table: Dict[Any, List[int]] = {}
        if len(r_cols) == 1:
            col = r_cols[0]
            for j in range(len(right)):
                table.setdefault(col[j], []).append(j)
        else:
            for j in range(len(right)):
                table.setdefault(tuple(c[j] for c in r_cols), []).append(j)

        li: List[int] = []
        ri: List[int] = []
        if len(l_cols) == 1:
            col = l_cols[0]
            for i in range(len(left)):
                for j in table.get(col[i], ()):
                    li.append(i)
                    ri.append(j)
        else:
            for i in range(len(left)):
                key = tuple(c[i] for c in l_cols)
                for j in table.get(key, ()):
                    li.append(i)
                    ri.append(j)

        lm, rm = left.mult, right.mult
        joined = ColumnBatch(
            tuple(left.schema) + tuple(right.schema),
            _gather(left.columns, li) + _gather(right.columns, ri),
            [lm[i] * rm[j] for i, j in zip(li, ri)],
        )
        if _is_pure_equi_condition(condition, len(eq_pairs)):
            # for scalar cell values (numbers/strings/bools/None — the
            # modeled domain of domain_key) a dict bucket match implies
            # every Eq conjunct evaluates true, so re-checking is skipped
            return joined
        # residual conjuncts (the tuple engine evaluates the full
        # condition on every hash match)
        return self._selection(joined, condition)

    def _cross(self, left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
        nl, nr = len(left), len(right)
        li = [i for i in range(nl) for _ in range(nr)]
        ri = list(range(nr)) * nl
        lm, rm = left.mult, right.mult
        return ColumnBatch(
            tuple(left.schema) + tuple(right.schema),
            _gather(left.columns, li) + _gather(right.columns, ri),
            [lm[i] * rm[j] for i, j in zip(li, ri)],
        )

    def _difference(self, left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
        from ..db.engine import _difference

        return ColumnBatch.from_relation(
            _difference(left.to_relation(), right.to_relation())
        )

    def _aggregate(
        self, batch: ColumnBatch, group_by, aggregates
    ) -> ColumnBatch:
        n = len(batch)
        index = _index_of(batch.schema)
        group_cols = [batch.columns[index[a]] for a in group_by]
        mult = batch.mult

        # aggregate input columns (COUNT needs none)
        inputs: List[Optional[Sequence]] = []
        for spec in aggregates:
            if spec.kind == "count":
                inputs.append(None)
            elif isinstance(spec.expr, Var) and spec.expr.name in index:
                inputs.append(batch.columns[index[spec.expr.name]])
            else:
                try:
                    inputs.append(
                        compile_projector(spec.expr, batch.schema)(batch.columns, n)
                    )
                except CompileError:
                    view = batch.row_view()
                    col = []
                    for i in range(n):
                        view.i = i
                        col.append(spec.expr.eval(view))
                    inputs.append(col)

        if n == 0 and not group_by:
            from ..db.engine import _empty_value

            return ColumnBatch(
                [spec.name for spec in aggregates],
                [[_empty_value(spec)] for spec in aggregates],
                [1],
            )

        # single-pass hash aggregation; accumulator per (group, spec):
        # count/sum -> running total, min/max -> (best_key, value),
        # avg -> [weighted_sum, weight]
        groups: Dict[Tuple, List[Any]] = {}
        kinds = [spec.kind for spec in aggregates]
        if group_cols:
            keys_iter = zip(*group_cols)
        else:
            keys_iter = ((),) * n
        for i, key in enumerate(keys_iter):
            m = mult[i]
            accs = groups.get(key)
            if accs is None:
                accs = []
                for kind, col in zip(kinds, inputs):
                    if kind == "count":
                        accs.append(m)
                    elif kind == "sum":
                        accs.append(col[i] * m)
                    elif kind == "avg":
                        accs.append([col[i] * m, m])
                    else:  # min / max keep (domain key, value)
                        v = col[i]
                        accs.append((domain_key(v), v))
                groups[key] = accs
                continue
            for a, (kind, col) in enumerate(zip(kinds, inputs)):
                if kind == "count":
                    accs[a] += m
                elif kind == "sum":
                    accs[a] += col[i] * m
                elif kind == "avg":
                    acc = accs[a]
                    acc[0] += col[i] * m
                    acc[1] += m
                elif kind == "min":
                    v = col[i]
                    k = domain_key(v)
                    if k < accs[a][0]:
                        accs[a] = (k, v)
                else:  # max
                    v = col[i]
                    k = domain_key(v)
                    if k > accs[a][0]:
                        accs[a] = (k, v)

        out_schema = list(group_by) + [spec.name for spec in aggregates]
        n_groups = len(groups)
        out_cols: List[List[Any]] = [[] for _ in out_schema]
        for key, accs in groups.items():
            for g, v in enumerate(key):
                out_cols[g].append(v)
            base = len(group_by)
            for a, kind in enumerate(kinds):
                acc = accs[a]
                if kind in ("count", "sum"):
                    value = acc
                elif kind == "avg":
                    value = acc[0] / acc[1]
                else:
                    value = acc[1]
                out_cols[base + a].append(value)
        return ColumnBatch(out_schema, out_cols, [1] * n_groups)

    def _topk(self, batch: ColumnBatch, keys, descending, n) -> ColumnBatch:
        from ..db.engine import _topk

        return ColumnBatch.from_relation(
            _topk(batch.to_relation(), keys, descending, n)
        )


# ======================================================================
# AU executor
# ======================================================================
def execute_audb(
    plan: Plan,
    db: AUDatabase,
    config,
    hints: Optional[Dict[int, Optional[int]]] = None,
    actuals: Optional[Dict[int, int]] = None,
) -> AURelation:
    """Evaluate ``plan`` over the AU-database ``db`` vectorized.

    Produces exactly the relation of the tuple interpreter
    (:func:`repro.algebra.evaluator.evaluate_audb` with
    ``optimize=False`` — run the optimizer first); ``config`` is the
    same :class:`~repro.algebra.evaluator.EvalConfig`, ``hints`` the
    adaptive compression-budget placement.  Non-linear operators fall
    back to the exact tuple implementations (see module docstring).
    """
    return _AUExec(db, config, hints or {}, actuals).run(plan)


class _PairView:
    """Valuation over a pair of batch rows (join condition evaluation).

    Attribute names resolve like the tuple engines' combined-schema
    ``RowView``: on duplicate names across the two sides the right side
    wins.
    """

    __slots__ = ("_map", "_lcols", "_rcols", "i", "j")

    def __init__(self, left: AUColumnBatch, right: AUColumnBatch) -> None:
        mapping: Dict[str, Tuple[int, int]] = {}
        for k, name in enumerate(left.schema):
            mapping[name] = (0, k)
        for k, name in enumerate(right.schema):
            mapping[name] = (1, k)
        self._map = mapping
        self._lcols = left.columns
        self._rcols = right.columns
        self.i = 0
        self.j = 0

    def __getitem__(self, name: str):
        side, k = self._map[name]
        if side == 0:
            return self._lcols[k][self.i]
        return self._rcols[k][self.j]


class _AUExec:
    def __init__(self, db, config, hints, actuals) -> None:
        self.db = db
        self.config = config
        self.hints = hints
        self.actuals = actuals

    def run(self, plan: Plan):
        return self.eval(plan).to_relation()

    def eval(self, plan: Plan) -> AUColumnBatch:
        batch = self._node(plan)
        if self.actuals is not None:
            # the tuple engine records distinct AU-tuples per node
            if batch.columns:
                self.actuals[id(plan)] = len(set(zip(*batch.columns)))
            else:
                self.actuals[id(plan)] = min(1, len(batch))
        return batch

    def _materialize(self, plan: Plan):
        return self.eval(plan).to_relation()

    # -- plan dispatch -------------------------------------------------
    def _node(self, plan: Plan) -> AUColumnBatch:
        if isinstance(plan, TableRef):
            return AUColumnBatch.from_relation(self.db[plan.name])
        if isinstance(plan, Selection):
            return self._selection(self.eval(plan.child), plan.condition)
        if isinstance(plan, Projection):
            return self._projection(self.eval(plan.child), plan.columns)
        if isinstance(plan, Join):
            return self._join(plan)
        if isinstance(plan, CrossProduct):
            left, right = self.eval(plan.left), self.eval(plan.right)
            overlap = set(left.schema) & set(right.schema)
            if overlap:
                raise ValueError(
                    f"cross product with overlapping attributes "
                    f"{sorted(overlap)}; rename first"
                )
            return self._cross(left, right)
        if isinstance(plan, Union):
            left, right = self.eval(plan.left), self.eval(plan.right)
            if len(left.schema) != len(right.schema):
                raise ValueError("union requires union-compatible schemas")
            return AUColumnBatch(
                left.schema,
                [lc + list(rc) for lc, rc in zip(left.columns, right.columns)],
                list(left.ann_lb) + list(right.ann_lb),
                list(left.ann_sg) + list(right.ann_sg),
                list(left.ann_ub) + list(right.ann_ub),
            )
        if isinstance(plan, Rename):
            batch = self.eval(plan.child)
            mapping = plan.mapping_dict()
            return AUColumnBatch(
                [mapping.get(a, a) for a in batch.schema],
                batch.columns,
                batch.ann_lb,
                batch.ann_sg,
                batch.ann_ub,
            )
        # ---- tuple-operator fallbacks (non-linear semantics) ----------
        if isinstance(plan, Difference):
            return AUColumnBatch.from_relation(
                ops.difference(
                    self._materialize(plan.left), self._materialize(plan.right)
                )
            )
        if isinstance(plan, Distinct):
            return AUColumnBatch.from_relation(
                ops.distinct(self._materialize(plan.child))
            )
        if isinstance(plan, Aggregate):
            result = au_aggregate(
                self._materialize(plan.child),
                list(plan.group_by),
                list(plan.aggregates),
                compress_buckets=self.config.aggregation_buckets,
            )
            if plan.having is not None:
                result = ops.selection(result, plan.having)
            return AUColumnBatch.from_relation(result)
        if isinstance(plan, OrderBy):
            return self.eval(plan.child)
        if isinstance(plan, TopK):
            return AUColumnBatch.from_relation(
                ops.au_topk(
                    self._materialize(plan.child),
                    plan.keys,
                    plan.descending,
                    plan.n,
                )
            )
        if isinstance(plan, Limit):
            child = plan.child
            if isinstance(child, OrderBy):
                return AUColumnBatch.from_relation(
                    ops.au_topk(
                        self._materialize(child.child),
                        child.keys,
                        child.descending,
                        plan.n,
                    )
                )
            # bare LIMIT over unordered uncertain data stays the identity
            return self.eval(child)
        raise TypeError(f"unsupported plan node {type(plan).__name__}")

    # -- operators -----------------------------------------------------
    def _selection(self, batch: AUColumnBatch, condition: Expression) -> AUColumnBatch:
        view = batch.row_view()
        eval_range = condition.eval_range
        keep: List[int] = []
        ann_lb: List[int] = []
        ann_sg: List[int] = []
        ann_ub: List[int] = []
        blb, bsg, bub = batch.ann_lb, batch.ann_sg, batch.ann_ub
        for i in range(len(batch)):
            view.i = i
            theta = eval_range(view)
            if not theta.ub:
                continue
            ub = bub[i]
            if ub == 0:
                continue
            keep.append(i)
            ann_lb.append(blb[i] if theta.lb else 0)
            ann_sg.append(bsg[i] if theta.sg else 0)
            ann_ub.append(ub)
        return AUColumnBatch(
            batch.schema, _gather(batch.columns, keep), ann_lb, ann_sg, ann_ub
        )

    def _projection(self, batch: AUColumnBatch, columns) -> AUColumnBatch:
        n = len(batch)
        index = _index_of(batch.schema)
        out_cols: List = []
        for expr, _name in columns:
            if isinstance(expr, Var) and expr.name in index:
                out_cols.append(batch.columns[index[expr.name]])
                continue
            view = batch.row_view()
            eval_range = expr.eval_range
            col = []
            for i in range(n):
                view.i = i
                col.append(eval_range(view))
            out_cols.append(col)
        return AUColumnBatch(
            [name for _, name in columns],
            out_cols,
            batch.ann_lb,
            batch.ann_sg,
            batch.ann_ub,
        )

    def _cross(self, left: AUColumnBatch, right: AUColumnBatch) -> AUColumnBatch:
        nl, nr = len(left), len(right)
        li = [i for i in range(nl) for _ in range(nr)]
        ri = list(range(nr)) * nl
        return self._emit_pairs(left, right, li, ri, None)

    def _join(self, plan: Join) -> AUColumnBatch:
        condition = plan.condition
        buckets = self.hints.get(id(plan), self.config.join_buckets)
        if buckets is not None:
            left_rel = self._materialize(plan.left)
            right_rel = self._materialize(plan.right)
            pairs = _extract_equi_pairs(
                condition, left_rel.schema, right_rel.schema
            )
            if pairs:
                return AUColumnBatch.from_relation(
                    optimized_join(
                        left_rel,
                        right_rel,
                        condition,
                        pairs[0][0],
                        pairs[0][1],
                        buckets,
                    )
                )
            return AUColumnBatch.from_relation(
                ops.join(
                    left_rel,
                    right_rel,
                    condition,
                    allow_certain_hash=self.config.hash_join,
                )
            )

        left, right = self.eval(plan.left), self.eval(plan.right)
        eq_pairs = _extract_equi_pairs(condition, left.schema, right.schema)
        if not eq_pairs:
            overlap = set(left.schema) & set(right.schema)
            if overlap:
                raise ValueError(
                    f"cross product with overlapping attributes "
                    f"{sorted(overlap)}; rename first"
                )
        if not eq_pairs or not getattr(self.config, "hash_join", True):
            # pure interval-overlap nested loop (exact naive semantics)
            nl, nr = len(left), len(right)
            li = [i for i in range(nl) for _ in range(nr)]
            ri = list(range(nr)) * nl
            return self._emit_pairs(left, right, li, ri, condition)

        l_index, r_index = _index_of(left.schema), _index_of(right.schema)
        l_key_cols = [left.columns[l_index[a]] for a, _ in eq_pairs]
        r_key_cols = [right.columns[r_index[b]] for _, b in eq_pairs]
        pure_equi = _is_pure_equi_condition(condition, len(eq_pairs))

        # partition the right side: rows with fully certain join keys go
        # into the hash table (keyed by SG values); the rest interval-match
        certain_right: Dict[Tuple, List[int]] = {}
        certain_right_rows: List[int] = []
        uncertain_right: List[int] = []
        for j in range(len(right)):
            keyvals = [c[j] for c in r_key_cols]
            if all(v.is_certain for v in keyvals):
                certain_right.setdefault(
                    tuple(v.sg for v in keyvals), []
                ).append(j)
                certain_right_rows.append(j)
            else:
                uncertain_right.append(j)

        fast_li: List[int] = []
        fast_ri: List[int] = []
        theta_li: List[int] = []
        theta_ri: List[int] = []
        for i in range(len(left)):
            keyvals = [c[i] for c in l_key_cols]
            if all(v.is_certain for v in keyvals):
                matches = certain_right.get(tuple(v.sg for v in keyvals))
                if matches:
                    if pure_equi:
                        for j in matches:
                            fast_li.append(i)
                            fast_ri.append(j)
                    else:
                        for j in matches:
                            theta_li.append(i)
                            theta_ri.append(j)
            else:
                # uncertain left key: may match any certain right tuple
                for j in certain_right_rows:
                    if _key_overlaps(keyvals, [c[j] for c in r_key_cols]):
                        theta_li.append(i)
                        theta_ri.append(j)
            for j in uncertain_right:
                if _key_overlaps(keyvals, [c[j] for c in r_key_cols]):
                    theta_li.append(i)
                    theta_ri.append(j)

        fast = self._emit_pairs(left, right, fast_li, fast_ri, None)
        if not theta_li:
            return fast
        checked = self._emit_pairs(left, right, theta_li, theta_ri, condition)
        return AUColumnBatch(
            fast.schema,
            [fc + cc for fc, cc in zip(fast.columns, checked.columns)],
            list(fast.ann_lb) + list(checked.ann_lb),
            list(fast.ann_sg) + list(checked.ann_sg),
            list(fast.ann_ub) + list(checked.ann_ub),
        )

    def _emit_pairs(
        self,
        left: AUColumnBatch,
        right: AUColumnBatch,
        li: List[int],
        ri: List[int],
        condition: Optional[Expression],
    ) -> AUColumnBatch:
        """Combine row pairs, multiplying annotations in ``K^AU``.

        With ``condition`` the pair annotation is additionally multiplied
        by ``M_N(θ)`` and pairs that are certainly non-matching
        (``ub == 0``) are dropped.
        """
        llb, lsg, lub = left.ann_lb, left.ann_sg, left.ann_ub
        rlb, rsg, rub = right.ann_lb, right.ann_sg, right.ann_ub
        schema = tuple(left.schema) + tuple(right.schema)
        if condition is None:
            return AUColumnBatch(
                schema,
                _gather(left.columns, li) + _gather(right.columns, ri),
                [llb[i] * rlb[j] for i, j in zip(li, ri)],
                [lsg[i] * rsg[j] for i, j in zip(li, ri)],
                [lub[i] * rub[j] for i, j in zip(li, ri)],
            )
        view = _PairView(left, right)
        eval_range = condition.eval_range
        keep_l: List[int] = []
        keep_r: List[int] = []
        ann_lb: List[int] = []
        ann_sg: List[int] = []
        ann_ub: List[int] = []
        for i, j in zip(li, ri):
            view.i = i
            view.j = j
            theta = eval_range(view)
            if not theta.ub:
                continue
            ub = lub[i] * rub[j]
            if ub == 0:
                continue
            keep_l.append(i)
            keep_r.append(j)
            ann_lb.append(llb[i] * rlb[j] if theta.lb else 0)
            ann_sg.append(lsg[i] * rsg[j] if theta.sg else 0)
            ann_ub.append(ub)
        return AUColumnBatch(
            schema,
            _gather(left.columns, keep_l) + _gather(right.columns, keep_r),
            ann_lb,
            ann_sg,
            ann_ub,
        )
