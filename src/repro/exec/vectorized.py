"""Vectorized interpreters for physical plans, for both engines.

This module is the columnar *runtime* of the execution stack: it
interprets the physical plans produced by
:func:`repro.exec.physical.lower` over :mod:`repro.exec.batch` columns.
Since PR 4 it makes **no physical decisions of its own** — the join
algorithm (``HashJoin`` vs ``NLJoin`` vs ``CompressedJoin``), the AU
tuple-operator fallback boundaries (``TupleFallback`` nodes), and the
parallel region shape (``ParallelScan``/``Exchange``) all arrive
pre-chosen in the plan; the per-node ``isinstance``-fallback dispatch of
PR 3 is gone.

Operator implementations:

* **scans** convert base relations once (cached on the relation);
* **selection/projection** run fused compiled loops
  (:mod:`repro.exec.compile`) — a ``FusedSelectProject`` filters and
  gathers survivors in one pass;
* **hash equi-joins** bucket raw key values exactly like the tuple
  engine's dict (identity-or-equality lookup), so both join algorithms
  agree with the tuple engine bit-for-bit; the AU ``HashJoin`` is the
  certain-key hash + interval nested-loop split;
* **hash aggregation** is single-pass with inlined accumulators;
  SUM/AVG fold through :mod:`repro.core.sums`, so floating-point
  results are bit-identical across backends, plan shapes, and
  parallelism (``partial`` mode emits mergeable accumulator state for
  the morsel-parallel :class:`~repro.exec.physical.Exchange`);
* **top-k / limit / difference** materialize and reuse the engines'
  exact operators — now as explicit plan nodes rather than hidden
  delegation.

Results are *identical* to the tuple interpreters — the differential
fuzzer cross-checks both backends, both engines, legacy-vs-physical
lowering, and parallelism 1 vs 4.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import telemetry as _tm
from ..core import operators as ops
from ..db import chunks as _chunks
from ..core.aggregation import aggregate as au_aggregate
from ..core.aggregation import fold_partial_groups
from ..core.compression import optimized_join
from ..core.expressions import Expression, RowView, Var
from ..core.ranges import domain_key
from ..core.relation import AUDatabase, AURelation
from ..core.sums import add_exact, add_product, finish, new_acc
from ..db.storage import DetDatabase, DetRelation
from . import physical as phys
from .batch import AUColumnBatch, BatchRowView, ColumnBatch
from .compile import CompileError, compile_filter, compile_projector

__all__ = [
    "execute_det",
    "execute_audb",
    "PartialAggregate",
    "AUPartialGroups",
    "DeltaFoldError",
    "build_join_table",
    "build_au_join_table",
    "fold_delta_groups",
    "finalize_delta_groups",
]


#: Grace-style partition-hash joins executed (both sides split by key
#: hash because the build side exceeded PARTITION_HASH_BUILD_ROWS)
_PARTITIONED_JOINS = _tm.get_registry().counter(
    "repro_exec_partition_hash_joins_total",
    "Deterministic hash joins executed in Grace partition-hash mode.",
)


def _index_of(schema: Sequence[str]) -> Dict[str, int]:
    return {name: j for j, name in enumerate(schema)}


def _gather(columns: Sequence, rows: List[int]) -> List:
    return [[col[i] for i in rows] for col in columns]


class PartialAggregate:
    """Mergeable per-morsel aggregation state (parallel plans only).

    ``groups`` maps group-key tuples to accumulator lists in the layout
    of :meth:`_DetExec._aggregate`; :mod:`repro.exec.parallel` merges
    the maps exactly and finalizes them through the
    :class:`~repro.exec.physical.Exchange`'s final operator.
    """

    __slots__ = ("groups",)

    def __init__(self, groups: Dict[Tuple, List[Any]]) -> None:
        self.groups = groups


class AUPartialGroups:
    """Mergeable per-morsel AU aggregation state (parallel plans only).

    ``groups`` maps SG group-key tuples to
    ``[rep, ann_sums, agg_partials]`` states in the layout of
    :func:`repro.core.aggregation.fold_partial_groups`;
    :mod:`repro.exec.parallel` merges them in partition order with
    :func:`~repro.core.aggregation.merge_partial_groups` and finalizes
    through :func:`~repro.core.aggregation.finalize_partial_groups`.
    """

    __slots__ = ("groups",)

    def __init__(self, groups: Dict[Tuple, List[Any]]) -> None:
        self.groups = groups


# ======================================================================
# deterministic executor
# ======================================================================
def execute_det(
    pplan: phys.PhysNode,
    db: DetDatabase,
    actuals: Optional[Dict[int, int]] = None,
    pool=None,
) -> DetRelation:
    """Interpret the physical plan ``pplan`` over ``db`` vectorized.

    Semantically identical to the tuple interpreter on the same plan.
    ``actuals`` collects per-node output cardinalities, keyed by both
    the physical node id and its logical source ids (for the two
    ``explain`` renderings).  ``pool`` is an optional persistent
    :class:`repro.exec.parallel.WorkerPool` for Exchange regions.
    """
    return _DetExec(db, actuals, pool=pool).run(pplan)


class _DetExec:
    def __init__(
        self, db, actuals=None, bindings=None, join_tables=None, pool=None
    ) -> None:
        self.db = db
        self.actuals = actuals
        #: persistent worker pool (Connection-owned) for Exchange regions
        self.pool = pool
        #: pre-computed results by node id: partition-invariant subtrees
        #: of a parallel region, and the per-worker morsel of its
        #: ParallelScan (see repro.exec.parallel)
        self.bindings: Dict[int, ColumnBatch] = bindings or {}
        #: pre-built hash tables by HashJoin node id: a parallel region
        #: builds each partition-invariant build side once in the parent
        #: instead of once per morsel
        self.join_tables: Dict[int, Dict[Any, List[int]]] = join_tables or {}

    def run(self, pplan: phys.PhysNode) -> DetRelation:
        return self.eval(pplan).to_relation()

    def eval(self, pnode: phys.PhysNode):
        bound = self.bindings.get(id(pnode))
        if bound is not None:
            return bound
        tr = _tm._ACTIVE
        if tr is not None:
            span = tr.begin_op(pnode)
            try:
                batch = self._node(pnode)
            except BaseException:
                tr.end_op(span)
                raise
            tr.end_op(
                span,
                sum(batch.mult) if isinstance(batch, ColumnBatch) else None,
            )
        else:
            batch = self._node(pnode)
        if self.actuals is not None and isinstance(batch, ColumnBatch):
            n = sum(batch.mult)
            self.actuals[id(pnode)] = n
            for src in pnode.sources:
                self.actuals[id(src)] = n
        return batch

    # -- plan dispatch -------------------------------------------------
    def _node(self, p: phys.PhysNode):
        if isinstance(p, (phys.Scan, phys.ParallelScan)):
            # outside an Exchange binding (serial collapse) a
            # ParallelScan's morsel is the whole table
            return self._scan(p)
        if isinstance(p, phys.FusedSelectProject):
            child = p.child
            if (
                p.condition is not None
                and isinstance(child, (phys.Scan, phys.ParallelScan))
                and id(child) not in self.bindings
            ):
                streamed = self._stream_select_project(p, child)
                if streamed is not None:
                    return streamed
            return self._select_project(self.eval(p.child), p.condition, p.columns)
        if isinstance(p, phys.HashJoin):
            return self._hash_join(p)
        if isinstance(p, phys.NLJoin):
            joined = self._cross(self.eval(p.left), self.eval(p.right))
            if p.condition is not None:
                joined = self._select_project(joined, p.condition, None)
            return joined
        if isinstance(p, phys.Concat):
            left, right = self.eval(p.left), self.eval(p.right)
            if len(left.schema) != len(right.schema):
                raise ValueError("union requires union-compatible schemas")
            return ColumnBatch(
                left.schema,
                [list(lc) + list(rc) for lc, rc in zip(left.columns, right.columns)],
                list(left.mult) + list(right.mult),
            )
        if isinstance(p, phys.HashDistinct):
            return _dedup_batch(self.eval(p.child))
        if isinstance(p, phys.HashAggregate):
            result = self._aggregate(
                self.eval(p.child), p.group_by, p.aggregates, p.partial
            )
            if not p.partial and p.having is not None:
                result = self._select_project(result, p.having, None)
            return result
        if isinstance(p, phys.Rename):
            batch = self.eval(p.child)
            return ColumnBatch(
                [p.mapping.get(a, a) for a in batch.schema],
                batch.columns,
                batch.mult,
            )
        if isinstance(p, phys.TopK):
            from ..db.engine import _topk

            return ColumnBatch.from_relation(
                _topk(self.eval(p.child).to_relation(), p.keys, p.descending, p.n)
            )
        if isinstance(p, phys.Limit):
            from ..db.engine import _limit

            return ColumnBatch.from_relation(
                _limit(self.eval(p.child).to_relation(), p.n)
            )
        if isinstance(p, phys.TupleFallback):
            if _tm._ACTIVE is not None:
                _tm.annotate(fallback=p.kind)
            if p.kind == "difference":
                from ..db.engine import _difference

                return ColumnBatch.from_relation(
                    _difference(
                        self.eval(p.inputs[0]).to_relation(),
                        self.eval(p.inputs[1]).to_relation(),
                    )
                )
            raise TypeError(f"unsupported det fallback {p.kind!r}")
        if isinstance(p, phys.Exchange):
            from .parallel import execute_exchange

            return execute_exchange(self, p)
        raise TypeError(f"unsupported physical node {type(p).__name__}")

    # -- operators -----------------------------------------------------
    def _scan(self, p) -> ColumnBatch:
        rel = self.db[p.table]
        store = _chunks.det_store(rel, p.chunk_size)
        if store is None:
            return ColumnBatch.from_relation(rel)
        batch, total, skipped = store.scan(p.skip)
        if _tm._ACTIVE is not None:
            _tm.annotate(chunks_total=total, chunks_skipped=skipped)
        return batch

    def _stream_select_project(
        self, p: phys.FusedSelectProject, scan
    ) -> Optional[ColumnBatch]:
        """Filter a chunked base table one chunk at a time.

        Bit-identical to filtering the monolithic image (chunks in
        order, survivors gathered in order, the same compiled filter),
        but the working set is one chunk plus the survivors — with a
        selective predicate the full base batch never exists, which is
        what lets scans obey a materialization budget the whole table
        would bust.  Returns ``None`` when chunked storage is off.
        """
        rel = self.db[scan.table]
        store = _chunks.det_store(rel, scan.chunk_size)
        if store is None:
            return None
        tr = _tm._ACTIVE
        span = tr.begin_op(scan) if tr is not None else None
        batches, total, skipped = store.iter_batches(scan.skip)
        scanned = sum(sum(b.mult) for b in batches)
        if span is not None:
            tr.annotate(chunks_total=total, chunks_skipped=skipped)
            tr.end_op(span, scanned)
        if self.actuals is not None:
            self.actuals[id(scan)] = scanned
            for src in scan.sources:
                self.actuals[id(src)] = scanned
        condition = p.condition
        schema = store.schema
        try:
            flt = compile_filter(condition, schema)
        except CompileError:
            flt = None
        kept_cols: List[List[Any]] = [[] for _ in schema]
        kept_mult: List[int] = []
        for b in batches:
            n = len(b)
            if flt is not None:
                keep = flt(b.columns, n)
            else:
                view = b.row_view()
                keep = []
                for i in range(n):
                    view.i = i
                    if bool(condition.eval(view)):
                        keep.append(i)
            if len(keep) == n:
                for j, col in enumerate(b.columns):
                    kept_cols[j].extend(col)
                kept_mult.extend(b.mult)
            else:
                m = b.mult
                for j, col in enumerate(b.columns):
                    kc = kept_cols[j]
                    for i in keep:
                        kc.append(col[i])
                for i in keep:
                    kept_mult.append(m[i])
        batch = ColumnBatch(schema, kept_cols, kept_mult)
        if p.columns is None:
            return batch
        return self._select_project(batch, None, p.columns)

    def _select_project(
        self,
        batch: ColumnBatch,
        condition: Optional[Expression],
        columns: Optional[Tuple[Tuple[Expression, str], ...]],
    ) -> ColumnBatch:
        n = len(batch)
        keep: Optional[List[int]] = None
        if condition is not None:
            try:
                keep = compile_filter(condition, batch.schema)(batch.columns, n)
            except CompileError:
                view = batch.row_view()
                keep = []
                for i in range(n):
                    view.i = i
                    if bool(condition.eval(view)):
                        keep.append(i)
            if len(keep) == n:
                keep = None

        if columns is None:
            if keep is None:
                return batch
            return ColumnBatch(
                batch.schema,
                _gather(batch.columns, keep),
                [batch.mult[i] for i in keep],
            )

        # gather survivors once, then project over the narrowed batch
        if keep is None:
            base_cols, mult, rows = batch.columns, batch.mult, n
        else:
            base_cols = _gather(batch.columns, keep)
            mult = [batch.mult[i] for i in keep]
            rows = len(keep)
        index = _index_of(batch.schema)
        out_cols: List = []
        for expr, _name in columns:
            if isinstance(expr, Var) and expr.name in index:
                out_cols.append(base_cols[index[expr.name]])
                continue
            try:
                out_cols.append(
                    compile_projector(expr, batch.schema)(base_cols, rows)
                )
            except CompileError:
                view = BatchRowView(index, base_cols)
                col = []
                for i in range(rows):
                    view.i = i
                    col.append(expr.eval(view))
                out_cols.append(col)
        return ColumnBatch([name for _, name in columns], out_cols, mult)

    def _hash_join(self, p: phys.HashJoin) -> ColumnBatch:
        left, right = self.eval(p.left), self.eval(p.right)
        table = self.join_tables.get(id(p))
        if table is None and p.partitioned:
            return self._partitioned_hash_join(p, left, right)
        l_index = _index_of(left.schema)
        l_cols = [left.columns[l_index[a]] for a, _ in p.eq_pairs]

        if table is None:
            table = build_join_table(right, [b for _, b in p.eq_pairs])
        if _tm._ACTIVE is not None:
            _tm.annotate(
                build_rows=len(right),
                build_keys=len(table),
                probe_rows=len(left),
            )

        li: List[int] = []
        ri: List[int] = []
        if len(l_cols) == 1:
            col = l_cols[0]
            for i in range(len(left)):
                for j in table.get(col[i], ()):
                    li.append(i)
                    ri.append(j)
        else:
            for i in range(len(left)):
                key = tuple(c[i] for c in l_cols)
                for j in table.get(key, ()):
                    li.append(i)
                    ri.append(j)

        lm, rm = left.mult, right.mult
        joined = ColumnBatch(
            tuple(left.schema) + tuple(right.schema),
            _gather(left.columns, li) + _gather(right.columns, ri),
            [lm[i] * rm[j] for i, j in zip(li, ri)],
        )
        if p.pure_equi:
            # for scalar cell values (numbers/strings/bools/None — the
            # modeled domain of domain_key) a dict bucket match implies
            # every Eq conjunct evaluates true, so re-checking is skipped
            return joined
        # residual conjuncts (the tuple engine evaluates the full
        # condition on every hash match)
        return self._select_project(joined, p.condition, None)

    def _partitioned_hash_join(
        self, p: phys.HashJoin, left: ColumnBatch, right: ColumnBatch
    ) -> ColumnBatch:
        """Grace-style partition-hash join (plan-time decision).

        Both sides are bucketed by the hash of their join key, then each
        bucket builds and probes its own table, so the largest resident
        hash table is ~1/partitions of the build side.  Exact for bags:
        equal keys hash equally, so every matching pair meets in exactly
        one bucket; the output *order* is partition-major rather than
        probe-major, which downstream operators cannot observe (results
        merge into bag relations, and SUM/AVG use regrouping-invariant
        exact accumulation).
        """
        parts = p.hash_partitions
        l_index = _index_of(left.schema)
        r_index = _index_of(right.schema)
        l_cols = [left.columns[l_index[a]] for a, _ in p.eq_pairs]
        r_cols = [right.columns[r_index[b]] for _, b in p.eq_pairs]
        _PARTITIONED_JOINS.inc()
        if _tm._ACTIVE is not None:
            _tm.annotate(
                build_rows=len(right),
                probe_rows=len(left),
                hash_partitions=parts,
            )

        l_buckets: List[List[int]] = [[] for _ in range(parts)]
        r_buckets: List[List[int]] = [[] for _ in range(parts)]
        if len(l_cols) == 1:
            lc, rc = l_cols[0], r_cols[0]
            for i in range(len(left)):
                l_buckets[hash(lc[i]) % parts].append(i)
            for j in range(len(right)):
                r_buckets[hash(rc[j]) % parts].append(j)
        else:
            for i in range(len(left)):
                l_buckets[hash(tuple(c[i] for c in l_cols)) % parts].append(i)
            for j in range(len(right)):
                r_buckets[hash(tuple(c[j] for c in r_cols)) % parts].append(j)

        li: List[int] = []
        ri: List[int] = []
        for b in range(parts):
            build_rows = r_buckets[b]
            probe_rows = l_buckets[b]
            if not build_rows or not probe_rows:
                continue
            table: Dict[Any, List[int]] = {}
            if len(r_cols) == 1:
                rc = r_cols[0]
                for j in build_rows:
                    table.setdefault(rc[j], []).append(j)
                lc = l_cols[0]
                for i in probe_rows:
                    for j in table.get(lc[i], ()):
                        li.append(i)
                        ri.append(j)
            else:
                for j in build_rows:
                    table.setdefault(tuple(c[j] for c in r_cols), []).append(j)
                for i in probe_rows:
                    key = tuple(c[i] for c in l_cols)
                    for j in table.get(key, ()):
                        li.append(i)
                        ri.append(j)

        lm, rm = left.mult, right.mult
        joined = ColumnBatch(
            tuple(left.schema) + tuple(right.schema),
            _gather(left.columns, li) + _gather(right.columns, ri),
            [lm[i] * rm[j] for i, j in zip(li, ri)],
        )
        if p.pure_equi:
            return joined
        return self._select_project(joined, p.condition, None)

    def _cross(self, left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
        nl, nr = len(left), len(right)
        li = [i for i in range(nl) for _ in range(nr)]
        ri = list(range(nr)) * nl
        lm, rm = left.mult, right.mult
        return ColumnBatch(
            tuple(left.schema) + tuple(right.schema),
            _gather(left.columns, li) + _gather(right.columns, ri),
            [lm[i] * rm[j] for i, j in zip(li, ri)],
        )

    def _aggregate(
        self, batch: ColumnBatch, group_by, aggregates, partial: bool
    ):
        n = len(batch)
        index = _index_of(batch.schema)
        group_cols = [batch.columns[index[a]] for a in group_by]
        mult = batch.mult

        # aggregate input columns (COUNT needs none)
        inputs: List[Optional[Sequence]] = []
        for spec in aggregates:
            if spec.kind == "count":
                inputs.append(None)
            elif isinstance(spec.expr, Var) and spec.expr.name in index:
                inputs.append(batch.columns[index[spec.expr.name]])
            else:
                try:
                    inputs.append(
                        compile_projector(spec.expr, batch.schema)(batch.columns, n)
                    )
                except CompileError:
                    view = batch.row_view()
                    col = []
                    for i in range(n):
                        view.i = i
                        col.append(spec.expr.eval(view))
                    inputs.append(col)

        if n == 0 and not group_by and not partial:
            from ..db.engine import _empty_value

            return ColumnBatch(
                [spec.name for spec in aggregates],
                [[_empty_value(spec)] for spec in aggregates],
                [1],
            )

        # single-pass hash aggregation; accumulator per (group, spec):
        # count -> running int, sum -> exact accumulator (core.sums),
        # avg -> [exact accumulator, weight], min/max -> (domain key, v)
        groups: Dict[Tuple, List[Any]] = {}
        kinds = [spec.kind for spec in aggregates]
        if group_cols:
            keys_iter = zip(*group_cols)
        else:
            keys_iter = ((),) * n
        for i, key in enumerate(keys_iter):
            m = mult[i]
            accs = groups.get(key)
            if accs is None:
                accs = []
                for kind, col in zip(kinds, inputs):
                    if kind == "count":
                        accs.append(m)
                    elif kind == "sum":
                        acc = new_acc()
                        add_product(acc, col[i], m)
                        accs.append(acc)
                    elif kind == "avg":
                        acc = new_acc()
                        add_product(acc, col[i], m)
                        accs.append([acc, m])
                    else:  # min / max keep (domain key, value)
                        v = col[i]
                        accs.append((domain_key(v), v))
                groups[key] = accs
                continue
            for a, (kind, col) in enumerate(zip(kinds, inputs)):
                if kind == "count":
                    accs[a] += m
                elif kind == "sum":
                    add_product(accs[a], col[i], m)
                elif kind == "avg":
                    acc = accs[a]
                    add_product(acc[0], col[i], m)
                    acc[1] += m
                elif kind == "min":
                    v = col[i]
                    k = domain_key(v)
                    if k < accs[a][0]:
                        accs[a] = (k, v)
                else:  # max
                    v = col[i]
                    k = domain_key(v)
                    if k > accs[a][0]:
                        accs[a] = (k, v)

        if partial:
            return PartialAggregate(groups)
        return finalize_groups(groups, group_by, aggregates)


def build_join_table(
    right: ColumnBatch, key_attrs: Sequence[str]
) -> Dict[Any, List[int]]:
    """Bucket the build side's raw key values, exactly like the tuple
    engine's dict: Python's identity-or-equality lookup means a bucket
    match implies the Eq conjuncts hold under domain_key comparison
    (including the same-NaN-object identity case), so hash and
    nested-loop plans agree with the tuple engine bit-for-bit."""
    r_index = _index_of(right.schema)
    r_cols = [right.columns[r_index[b]] for b in key_attrs]
    table: Dict[Any, List[int]] = {}
    if len(r_cols) == 1:
        col = r_cols[0]
        for j in range(len(right)):
            table.setdefault(col[j], []).append(j)
    else:
        for j in range(len(right)):
            table.setdefault(tuple(c[j] for c in r_cols), []).append(j)
    return table


def finalize_groups(
    groups: Dict[Tuple, List[Any]], group_by, aggregates
) -> ColumnBatch:
    """Turn (possibly merged) accumulator state into an output batch."""
    out_schema = list(group_by) + [spec.name for spec in aggregates]
    kinds = [spec.kind for spec in aggregates]
    n_groups = len(groups)
    out_cols: List[List[Any]] = [[] for _ in out_schema]
    for key, accs in groups.items():
        for g, v in enumerate(key):
            out_cols[g].append(v)
        base = len(group_by)
        for a, kind in enumerate(kinds):
            acc = accs[a]
            if kind == "count":
                value = acc
            elif kind == "sum":
                value = finish(acc)
            elif kind == "avg":
                value = finish(acc[0]) / acc[1]
            else:
                value = acc[1]
            out_cols[base + a].append(value)
    return ColumnBatch(out_schema, out_cols, [1] * n_groups)


class DeltaFoldError(Exception):
    """A delta cannot be folded into maintained aggregate state.

    Raised when only a from-scratch recomputation preserves exactness:
    a delete touching a min/max extremum (the runner-up is not
    maintained), non-finite float addends (the absorbing IEEE slot is
    not invertible), or weights folding an aggregate group negative.
    The IVM runtime (:mod:`repro.ivm`) reacts with an epoch-gated full
    refresh — never with an approximate answer.
    """


def fold_delta_groups(
    state: Dict[Tuple, List[Any]],
    delta: DetRelation,
    group_by: Sequence[str],
    aggregates,
    sign: int,
) -> None:
    """Fold a per-write delta of the γ input into maintained group state.

    ``state`` maps group keys to ``[weight, accs, float_mults]`` where
    ``accs`` follows the :meth:`_DetExec._aggregate` accumulator layout
    (count → int, sum → exact accumulator, avg → [accumulator, weight],
    min/max → (domain key, value)) and ``float_mults`` tracks, per
    SUM/AVG aggregate, the remaining multiplicity of float-typed
    addends — the bit that decides whether ``finish`` returns the exact
    ``int`` or the correctly rounded ``float``, which pure cancellation
    could not reconstruct.  ``sign`` is +1 for inserted delta rows and
    -1 for deleted ones.
    """
    index = _index_of(delta.schema)
    kinds = [spec.kind for spec in aggregates]
    g_idx = [index[a] for a in group_by]
    for t, m in delta.tuples():
        w = m * sign
        key = tuple(t[i] for i in g_idx)
        entry = state.get(key)
        values: List[Any] = []
        for spec in aggregates:
            if spec.kind == "count":
                values.append(None)
            elif isinstance(spec.expr, Var) and spec.expr.name in index:
                values.append(t[index[spec.expr.name]])
            else:
                values.append(spec.expr.eval(RowView(index, t)))
        if entry is None:
            if sign < 0:
                raise DeltaFoldError(f"delete from absent group {key!r}")
            accs: List[Any] = []
            float_mults: List[int] = []
            for kind, v in zip(kinds, values):
                if kind == "count":
                    accs.append(m)
                    float_mults.append(0)
                elif kind in ("sum", "avg"):
                    guard = v * m
                    if type(guard) is float and not math.isfinite(guard):
                        raise DeltaFoldError("non-finite SUM/AVG addend")
                    acc = new_acc()
                    add_product(acc, v, m)
                    accs.append(acc if kind == "sum" else [acc, m])
                    float_mults.append(m if type(v) is float else 0)
                else:  # min / max
                    accs.append((domain_key(v), v))
                    float_mults.append(0)
            state[key] = [m, accs, float_mults]
            continue
        entry[0] += w
        if entry[0] < 0:
            raise DeltaFoldError(f"group {key!r} folded negative")
        if entry[0] == 0:
            # the group vanished: from scratch it would not exist at all
            del state[key]
            continue
        accs, float_mults = entry[1], entry[2]
        for a, (kind, v) in enumerate(zip(kinds, values)):
            if kind == "count":
                accs[a] += w
            elif kind in ("sum", "avg"):
                guard = v * m
                if type(guard) is float and not math.isfinite(guard):
                    raise DeltaFoldError("non-finite SUM/AVG addend")
                if kind == "sum":
                    add_product(accs[a], v, w)
                else:
                    add_product(accs[a][0], v, w)
                    accs[a][1] += w
                if type(v) is float:
                    float_mults[a] += w
            elif sign < 0:
                # min/max under deletion: the extremum's runner-up is
                # not maintained, so any boundary touch needs a rescan
                k = domain_key(v)
                if (kind == "min" and k <= accs[a][0]) or (
                    kind == "max" and k >= accs[a][0]
                ):
                    raise DeltaFoldError(f"{kind} extremum deleted in {key!r}")
            else:
                k = domain_key(v)
                if kind == "min":
                    if k < accs[a][0]:
                        accs[a] = (k, v)
                elif k > accs[a][0]:
                    accs[a] = (k, v)


def finalize_delta_groups(
    state: Dict[Tuple, List[Any]], group_by, aggregates, having=None
) -> DetRelation:
    """Finalize maintained group state into the view's relation.

    Canonicalizes each accumulator into exactly the shape a
    from-scratch :meth:`_DetExec._aggregate` pass over the remaining
    rows would hold (SUM/AVG accumulators whose float addends all
    cancelled drop their zero partials so integer groups finish as
    exact ints), then reuses :func:`finalize_groups` and the fused
    HAVING filter.
    """
    groups: Dict[Tuple, List[Any]] = {}
    kinds = [spec.kind for spec in aggregates]
    for key, (_w, accs, float_mults) in state.items():
        out: List[Any] = []
        for a, kind in enumerate(kinds):
            acc = accs[a]
            if kind in ("sum", "avg") and not float_mults[a]:
                inner = acc if kind == "sum" else acc[0]
                # all float addends cancelled exactly: the remaining
                # multiset is integer-only, so the partials are exact
                # zeros and a from-scratch fold would never create them
                inner = [inner[0], [], inner[2]]
                acc = inner if kind == "sum" else [inner, acc[1]]
            out.append(acc)
        groups[key] = out
    if not groups and not group_by:
        from ..db.engine import _empty_value

        batch = ColumnBatch(
            [spec.name for spec in aggregates],
            [[_empty_value(spec)] for spec in aggregates],
            [1],
        )
    else:
        batch = finalize_groups(groups, group_by, aggregates)
    if having is not None:
        batch = _DetExec(None)._select_project(batch, having, None)
    return batch.to_relation()


def _dedup_batch(batch: ColumnBatch) -> ColumnBatch:
    seen = dict.fromkeys(zip(*batch.columns)) if batch.columns else {}
    rows = list(seen)
    return ColumnBatch(
        batch.schema,
        [list(col) for col in zip(*rows)] if rows else [[] for _ in batch.schema],
        [1] * len(rows) if batch.columns else [1] * min(1, len(batch)),
    )


# ======================================================================
# AU executor
# ======================================================================
def execute_audb(
    pplan: phys.PhysNode,
    db: AUDatabase,
    actuals: Optional[Dict[int, int]] = None,
    pool=None,
) -> AURelation:
    """Interpret the physical plan ``pplan`` over the AU-database ``db``.

    Produces exactly the relation of the tuple interpreter on the same
    plan; ``TupleFallback``/``CompressedJoin`` nodes materialize their
    inputs and call the exact :mod:`repro.core` implementations — the
    boundary was chosen by the planner, not here.  ``pool`` is an
    optional persistent :class:`repro.exec.parallel.WorkerPool` for
    Exchange regions.
    """
    return _AUExec(db, actuals, pool=pool).run(pplan)


class _PairView:
    """Valuation over a pair of batch rows (join condition evaluation).

    Attribute names resolve like the tuple engines' combined-schema
    ``RowView``: on duplicate names across the two sides the right side
    wins.
    """

    __slots__ = ("_map", "_lcols", "_rcols", "i", "j")

    def __init__(self, left: AUColumnBatch, right: AUColumnBatch) -> None:
        mapping: Dict[str, Tuple[int, int]] = {}
        for k, name in enumerate(left.schema):
            mapping[name] = (0, k)
        for k, name in enumerate(right.schema):
            mapping[name] = (1, k)
        self._map = mapping
        self._lcols = left.columns
        self._rcols = right.columns
        self.i = 0
        self.j = 0

    def __getitem__(self, name: str):
        side, k = self._map[name]
        if side == 0:
            return self._lcols[k][self.i]
        return self._rcols[k][self.j]


class _AUExec:
    def __init__(
        self, db, actuals=None, bindings=None, join_tables=None, pool=None
    ) -> None:
        self.db = db
        self.actuals = actuals
        #: pre-computed results by node id: partition-invariant subtrees
        #: of a parallel region, and the per-worker morsel of its
        #: ParallelScan (see repro.exec.parallel)
        self.bindings: Dict[int, AUColumnBatch] = bindings or {}
        #: pre-built AU hash tables by HashJoin node id — a parallel
        #: region builds each partition-invariant build side once in the
        #: parent; forked workers inherit it copy-on-write
        self.join_tables: Dict[int, Tuple] = join_tables or {}
        #: persistent worker pool (Connection-owned) for Exchange regions
        self.pool = pool

    def run(self, pplan: phys.PhysNode):
        return self.eval(pplan).to_relation()

    def eval(self, pnode: phys.PhysNode) -> AUColumnBatch:
        bound = self.bindings.get(id(pnode))
        if bound is not None:
            return bound
        tr = _tm._ACTIVE
        if tr is not None:
            span = tr.begin_op(pnode)
            try:
                batch = self._node(pnode)
            except BaseException:
                tr.end_op(span)
                raise
            tr.end_op(
                span, len(batch) if isinstance(batch, AUColumnBatch) else None
            )
        else:
            batch = self._node(pnode)
        if self.actuals is not None and isinstance(batch, AUColumnBatch):
            # the tuple engine records distinct AU-tuples per node
            if batch.columns:
                n = len(set(zip(*batch.columns)))
            else:
                n = min(1, len(batch))
            self.actuals[id(pnode)] = n
            for src in pnode.sources:
                self.actuals[id(src)] = n
        return batch

    def _materialize(self, pnode: phys.PhysNode):
        return self.eval(pnode).to_relation()

    # -- plan dispatch -------------------------------------------------
    def _node(self, p: phys.PhysNode) -> AUColumnBatch:
        if isinstance(p, (phys.Scan, phys.ParallelScan)):
            # outside an Exchange binding (serial collapse) a
            # ParallelScan's morsel is the whole table
            return self._scan(p)
        if isinstance(p, phys.FusedSelectProject):
            if (
                p.condition is not None
                and isinstance(p.child, (phys.Scan, phys.ParallelScan))
                and id(p.child) not in self.bindings
            ):
                streamed = self._stream_select_project(p, p.child)
                if streamed is not None:
                    return streamed
            batch = self.eval(p.child)
            if p.condition is not None:
                batch = self._selection(batch, p.condition)
            if p.columns is not None:
                batch = self._projection(batch, p.columns)
            return batch
        if isinstance(p, phys.HashJoin):
            return self._hash_join(p)
        if isinstance(p, phys.NLJoin):
            return self._nl_join(p)
        if isinstance(p, phys.CompressedJoin):
            return AUColumnBatch.from_relation(
                optimized_join(
                    self._materialize(p.left),
                    self._materialize(p.right),
                    p.condition,
                    p.pair[0],
                    p.pair[1],
                    p.buckets,
                )
            )
        if isinstance(p, phys.Concat):
            left, right = self.eval(p.left), self.eval(p.right)
            if len(left.schema) != len(right.schema):
                raise ValueError("union requires union-compatible schemas")
            return AUColumnBatch(
                left.schema,
                [list(lc) + list(rc) for lc, rc in zip(left.columns, right.columns)],
                list(left.ann_lb) + list(right.ann_lb),
                list(left.ann_sg) + list(right.ann_sg),
                list(left.ann_ub) + list(right.ann_ub),
            )
        if isinstance(p, phys.Rename):
            batch = self.eval(p.child)
            return AUColumnBatch(
                [p.mapping.get(a, a) for a in batch.schema],
                batch.columns,
                batch.ann_lb,
                batch.ann_sg,
                batch.ann_ub,
            )
        if isinstance(p, phys.TupleFallback):
            return self._fallback(p)
        if isinstance(p, phys.AUPartialAggregate):
            return self._partial_aggregate(p)
        if isinstance(p, phys.Exchange):
            from .parallel import execute_exchange

            return execute_exchange(self, p)
        raise TypeError(f"unsupported physical node {type(p).__name__}")

    def _partial_aggregate(self, p: phys.AUPartialAggregate) -> AUPartialGroups:
        """Fold this worker's morsel into mergeable per-group AU state.

        Raises :class:`~repro.core.aggregation.UncertainGroupError` when
        a row's group-by attributes are uncertain — the Exchange then
        falls back to the serial tuple operator over the whole input.
        """
        batch = self.eval(p.child)
        if batch.columns:
            tuples = zip(*batch.columns)
        else:
            tuples = iter(((),) * len(batch))
        groups: Dict[Tuple, List[Any]] = {}
        fold_partial_groups(
            groups,
            batch.schema,
            zip(tuples, batch.annotations()),
            p.group_by,
            p.aggregates,
        )
        return AUPartialGroups(groups)

    def _fallback(self, p: phys.TupleFallback) -> AUColumnBatch:
        """SG-combining semantics: the planner routed this node to the
        exact tuple operators over materialized inputs."""
        node = p.logical
        if _tm._ACTIVE is not None:
            _tm.annotate(fallback=p.kind)
        if p.kind == "difference":
            result = ops.difference(
                self._materialize(p.inputs[0]), self._materialize(p.inputs[1])
            )
        elif p.kind == "distinct":
            result = ops.distinct(self._materialize(p.inputs[0]))
        elif p.kind == "aggregate":
            result = au_aggregate(
                self._materialize(p.inputs[0]),
                list(node.group_by),
                list(node.aggregates),
                compress_buckets=p.buckets,
            )
            if node.having is not None:
                result = ops.selection(result, node.having)
        elif p.kind == "topk":
            result = ops.au_topk(
                self._materialize(p.inputs[0]),
                node.keys,
                node.descending,
                node.n,
            )
        else:
            raise TypeError(f"unsupported AU fallback {p.kind!r}")
        return AUColumnBatch.from_relation(result)

    # -- operators -----------------------------------------------------
    def _scan(self, p: phys.Scan) -> AUColumnBatch:
        rel = self.db[p.table]
        store = _chunks.au_store(rel, p.chunk_size)
        if store is None:
            return AUColumnBatch.from_relation(rel)
        batch, total, skipped = store.scan(p.skip)
        if _tm._ACTIVE is not None:
            _tm.annotate(chunks_total=total, chunks_skipped=skipped)
        return batch

    def _stream_select_project(
        self, p: phys.FusedSelectProject, scan: phys.Scan
    ) -> Optional[AUColumnBatch]:
        """Chunk-at-a-time selection over an AU base table (the AU
        mirror of ``_DetExec._stream_select_project``); row-local
        selection commutes with chunk order, so the result is
        bit-identical to filtering the monolithic image."""
        rel = self.db[scan.table]
        store = _chunks.au_store(rel, scan.chunk_size)
        if store is None:
            return None
        tr = _tm._ACTIVE
        span = tr.begin_op(scan) if tr is not None else None
        batches, total, skipped = store.iter_batches(scan.skip)
        # base-table AU tuples are distinct by construction, so the
        # scan's distinct-tuple actual is just the surviving row count
        scanned = sum(len(b) for b in batches)
        if not store.schema:
            scanned = min(1, scanned)
        if span is not None:
            tr.annotate(chunks_total=total, chunks_skipped=skipped)
            tr.end_op(span, scanned)
        if self.actuals is not None:
            self.actuals[id(scan)] = scanned
            for src in scan.sources:
                self.actuals[id(src)] = scanned
        cols: List[List[Any]] = [[] for _ in store.schema]
        ann_lb: List[int] = []
        ann_sg: List[int] = []
        ann_ub: List[int] = []
        for b in batches:
            part = self._selection(b, p.condition)
            for j, col in enumerate(part.columns):
                cols[j].extend(col)
            ann_lb.extend(part.ann_lb)
            ann_sg.extend(part.ann_sg)
            ann_ub.extend(part.ann_ub)
        batch = AUColumnBatch(store.schema, cols, ann_lb, ann_sg, ann_ub)
        if p.columns is not None:
            batch = self._projection(batch, p.columns)
        return batch

    def _selection(self, batch: AUColumnBatch, condition: Expression) -> AUColumnBatch:
        view = batch.row_view()
        eval_range = condition.eval_range
        keep: List[int] = []
        ann_lb: List[int] = []
        ann_sg: List[int] = []
        ann_ub: List[int] = []
        blb, bsg, bub = batch.ann_lb, batch.ann_sg, batch.ann_ub
        for i in range(len(batch)):
            view.i = i
            theta = eval_range(view)
            if not theta.ub:
                continue
            ub = bub[i]
            if ub == 0:
                continue
            keep.append(i)
            ann_lb.append(blb[i] if theta.lb else 0)
            ann_sg.append(bsg[i] if theta.sg else 0)
            ann_ub.append(ub)
        return AUColumnBatch(
            batch.schema, _gather(batch.columns, keep), ann_lb, ann_sg, ann_ub
        )

    def _projection(self, batch: AUColumnBatch, columns) -> AUColumnBatch:
        n = len(batch)
        index = _index_of(batch.schema)
        out_cols: List = []
        for expr, _name in columns:
            if isinstance(expr, Var) and expr.name in index:
                out_cols.append(batch.columns[index[expr.name]])
                continue
            view = batch.row_view()
            eval_range = expr.eval_range
            col = []
            for i in range(n):
                view.i = i
                col.append(eval_range(view))
            out_cols.append(col)
        return AUColumnBatch(
            [name for _, name in columns],
            out_cols,
            batch.ann_lb,
            batch.ann_sg,
            batch.ann_ub,
        )

    def _nl_join(self, p: phys.NLJoin) -> AUColumnBatch:
        left, right = self.eval(p.left), self.eval(p.right)
        if p.check_overlap:
            overlap = set(left.schema) & set(right.schema)
            if overlap:
                raise ValueError(
                    f"cross product with overlapping attributes "
                    f"{sorted(overlap)}; rename first"
                )
        nl, nr = len(left), len(right)
        li = [i for i in range(nl) for _ in range(nr)]
        ri = list(range(nr)) * nl
        return self._emit_pairs(left, right, li, ri, p.condition)

    def _hash_join(self, p: phys.HashJoin) -> AUColumnBatch:
        left, right = self.eval(p.left), self.eval(p.right)
        condition = p.condition
        l_index, r_index = _index_of(left.schema), _index_of(right.schema)
        l_key_cols = [left.columns[l_index[a]] for a, _ in p.eq_pairs]
        r_key_cols = [right.columns[r_index[b]] for _, b in p.eq_pairs]
        pure_equi = p.pure_equi

        table = self.join_tables.get(id(p))
        if table is None:
            table = build_au_join_table(right, [b for _, b in p.eq_pairs])
        certain_right, certain_right_rows, uncertain_right = table
        if _tm._ACTIVE is not None:
            _tm.annotate(
                build_rows=len(right),
                build_keys=len(certain_right),
                probe_rows=len(left),
                uncertain_build_rows=len(uncertain_right),
            )

        fast_li: List[int] = []
        fast_ri: List[int] = []
        theta_li: List[int] = []
        theta_ri: List[int] = []
        for i in range(len(left)):
            keyvals = [c[i] for c in l_key_cols]
            if all(v.is_certain for v in keyvals):
                matches = certain_right.get(tuple(v.sg for v in keyvals))
                if matches:
                    if pure_equi:
                        for j in matches:
                            fast_li.append(i)
                            fast_ri.append(j)
                    else:
                        for j in matches:
                            theta_li.append(i)
                            theta_ri.append(j)
            else:
                # uncertain left key: may match any certain right tuple
                for j in certain_right_rows:
                    if ops._key_overlaps(keyvals, [c[j] for c in r_key_cols]):
                        theta_li.append(i)
                        theta_ri.append(j)
            for j in uncertain_right:
                if ops._key_overlaps(keyvals, [c[j] for c in r_key_cols]):
                    theta_li.append(i)
                    theta_ri.append(j)

        fast = self._emit_pairs(left, right, fast_li, fast_ri, None)
        if not theta_li:
            return fast
        checked = self._emit_pairs(left, right, theta_li, theta_ri, condition)
        return AUColumnBatch(
            fast.schema,
            [fc + cc for fc, cc in zip(fast.columns, checked.columns)],
            list(fast.ann_lb) + list(checked.ann_lb),
            list(fast.ann_sg) + list(checked.ann_sg),
            list(fast.ann_ub) + list(checked.ann_ub),
        )

    def _emit_pairs(
        self,
        left: AUColumnBatch,
        right: AUColumnBatch,
        li: List[int],
        ri: List[int],
        condition: Optional[Expression],
    ) -> AUColumnBatch:
        """Combine row pairs, multiplying annotations in ``K^AU``.

        With ``condition`` the pair annotation is additionally multiplied
        by ``M_N(θ)`` and pairs that are certainly non-matching
        (``ub == 0``) are dropped.
        """
        llb, lsg, lub = left.ann_lb, left.ann_sg, left.ann_ub
        rlb, rsg, rub = right.ann_lb, right.ann_sg, right.ann_ub
        schema = tuple(left.schema) + tuple(right.schema)
        if condition is None:
            return AUColumnBatch(
                schema,
                _gather(left.columns, li) + _gather(right.columns, ri),
                [llb[i] * rlb[j] for i, j in zip(li, ri)],
                [lsg[i] * rsg[j] for i, j in zip(li, ri)],
                [lub[i] * rub[j] for i, j in zip(li, ri)],
            )
        view = _PairView(left, right)
        eval_range = condition.eval_range
        keep_l: List[int] = []
        keep_r: List[int] = []
        ann_lb: List[int] = []
        ann_sg: List[int] = []
        ann_ub: List[int] = []
        for i, j in zip(li, ri):
            view.i = i
            view.j = j
            theta = eval_range(view)
            if not theta.ub:
                continue
            ub = lub[i] * rub[j]
            if ub == 0:
                continue
            keep_l.append(i)
            keep_r.append(j)
            ann_lb.append(llb[i] * rlb[j] if theta.lb else 0)
            ann_sg.append(lsg[i] * rsg[j] if theta.sg else 0)
            ann_ub.append(ub)
        return AUColumnBatch(
            schema,
            _gather(left.columns, keep_l) + _gather(right.columns, keep_r),
            ann_lb,
            ann_sg,
            ann_ub,
        )


def build_au_join_table(
    right: AUColumnBatch, key_attrs: Sequence[str]
) -> Tuple[Dict[Tuple, List[int]], List[int], List[int]]:
    """Partition an AU build side for the certain-key hash join.

    Rows whose join-key attributes are all certain bucket by their SG
    value tuple (``certain_right``); the rest (``uncertain_right``)
    interval-match against every probe row.  ``certain_right_rows``
    keeps the certain rows in order for uncertain-probe overlap scans.
    A parallel region builds this once in the parent process; forked
    workers inherit the table copy-on-write instead of rebuilding it
    per morsel.
    """
    r_index = _index_of(right.schema)
    r_key_cols = [right.columns[r_index[b]] for b in key_attrs]
    certain_right: Dict[Tuple, List[int]] = {}
    certain_right_rows: List[int] = []
    uncertain_right: List[int] = []
    for j in range(len(right)):
        keyvals = [c[j] for c in r_key_cols]
        if all(v.is_certain for v in keyvals):
            certain_right.setdefault(
                tuple(v.sg for v in keyvals), []
            ).append(j)
            certain_right_rows.append(j)
        else:
            uncertain_right.append(j)
    return certain_right, certain_right_rows, uncertain_right
