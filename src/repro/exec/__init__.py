"""``repro.exec`` — the vectorized columnar execution backend.

Both engines interpret :mod:`repro.algebra.ast` plans; this package adds
a second *physical* backend that compiles optimized plans into
vectorized operators over columnar batches instead of interpreting them
tuple-at-a-time over Python dict bags:

* :mod:`repro.exec.batch` — :class:`ColumnBatch` / :class:`AUColumnBatch`
  columnar representations and cached relation↔batch conversion;
* :mod:`repro.exec.compile` — fused predicate/projection compilation
  (one generated Python loop per expression, no per-row AST dispatch);
* :mod:`repro.exec.vectorized` — the physical operators (hash equi-join,
  hash aggregate, fused selection, batch top-k) and the two executors.

Select it with ``evaluate_det(..., backend="vectorized")``,
``EvalConfig(backend="vectorized")``, or ``--backend=vectorized`` on the
CLI; operators the vectorized AU runtime does not cover fall back to the
exact tuple implementations node-by-node, so every query still answers.
"""

from .batch import AUColumnBatch, ColumnBatch
from .compile import CompileError, compile_filter, compile_projector
from .vectorized import execute_audb, execute_det

#: Physical execution backends accepted by ``evaluate_det`` /
#: ``EvalConfig.backend`` / the CLI ``--backend`` flag.
BACKENDS = ("tuple", "vectorized")

__all__ = [
    "BACKENDS",
    "ColumnBatch",
    "AUColumnBatch",
    "CompileError",
    "compile_filter",
    "compile_projector",
    "execute_det",
    "execute_audb",
]
