"""``repro.exec`` — the physical execution layer.

Both engines interpret :mod:`repro.algebra.ast` logical plans; this
package turns optimized logical plans into explicit *physical plans* and
executes them:

* :mod:`repro.exec.physical` — the physical plan IR (``HashJoin``,
  ``NLJoin``, ``FusedSelectProject``, ``HashAggregate``,
  ``TupleFallback``, ``ParallelScan``/``Exchange``, …), the cost-based
  ``lower()`` planner that makes every physical choice at plan time,
  and ``explain_physical()``;
* :mod:`repro.exec.batch` — :class:`ColumnBatch` / :class:`AUColumnBatch`
  columnar representations and cached relation↔batch conversion;
* :mod:`repro.exec.compile` — fused predicate/projection compilation
  (one generated Python loop per expression, no per-row AST dispatch);
* :mod:`repro.exec.vectorized` — the vectorized interpreters for both
  engines (hash equi-join, single-pass hash aggregate with exact
  SUM/AVG accumulation, fused selection);
* :mod:`repro.exec.parallel` — morsel-style partition-parallel
  execution of ``Exchange`` regions for the deterministic vectorized
  backend.

Select the vectorized backend with ``evaluate_det(...,
backend="vectorized")``, ``EvalConfig(backend="vectorized")``, or
``--backend=vectorized`` on the CLI; add ``parallelism=N`` /
``--parallelism N`` for morsel parallelism.  Operators the vectorized
AU runtime does not cover are lowered to explicit ``TupleFallback``
nodes, so every query still answers with identical results.
"""

from .batch import AUColumnBatch, ColumnBatch
from .compile import CompileError, compile_filter, compile_projector
from .physical import PhysicalConfig, explain_physical, lower
from .vectorized import execute_audb, execute_det

#: Physical execution backends accepted by ``evaluate_det`` /
#: ``EvalConfig.backend`` / the CLI ``--backend`` flag.
BACKENDS = ("tuple", "vectorized")

__all__ = [
    "BACKENDS",
    "ColumnBatch",
    "AUColumnBatch",
    "CompileError",
    "compile_filter",
    "compile_projector",
    "execute_det",
    "execute_audb",
    "PhysicalConfig",
    "lower",
    "explain_physical",
]
