"""The physical plan layer: typed physical operators and cost-based lowering.

Until PR 4 every *physical* decision lived in a runtime side-channel:
``join_strategy_hints`` dicts priced hash vs nested-loop joins outside
the plan, the vectorized AU executor decided tuple-operator fallbacks
with per-node ``isinstance`` checks mid-query, and compression budgets
arrived through an ``{id(node): buckets}`` hints mapping.  This module
makes those choices *once, at plan time*, in an explicit IR:

``lower(plan, stats, config)`` turns an optimized logical plan
(:mod:`repro.algebra.ast`) into a tree of physical operators —

* :class:`Scan` / :class:`ParallelScan` — base-table access, the latter
  splitting the cached columnar image into morsels for the worker pool;
* :class:`FusedSelectProject` — selection and/or projection fused into
  one pass (one gather for a ``π∘σ`` pair on the deterministic side);
* :class:`HashJoin` / :class:`NLJoin` — the join algorithm, chosen from
  the statistics catalog (:data:`HASH_JOIN_MIN_ROWS`); for the AU engine
  ``HashJoin`` means the certain-key hash + interval nested-loop split
  and ``NLJoin`` the pure interval-overlap loop;
* :class:`CompressedJoin` — the paper's ``Cpr`` join with its bucket
  budget resolved (absorbing the optimizer's adaptive placement);
* :class:`HashAggregate` (with a ``partial`` mode for parallel plans),
  :class:`HashDistinct`, :class:`TopK`, :class:`Limit`, :class:`Concat`,
  :class:`Rename`;
* :class:`TupleFallback` — an explicit plan-time boundary where the AU
  executors hand a subtree result to the exact tuple operators
  (``Distinct``/``Difference``/``Aggregate``/top-k SG-combine, which no
  columnar operator implements), and the deterministic backends execute
  bag ``Difference``;
* :class:`Exchange` — the merge point of a partition-parallel region:
  morsel results are concatenated, or partial aggregates / top-k /
  limit / distinct states are combined.

Every executor — the tuple interpreters in :mod:`repro.db.engine` and
:mod:`repro.algebra.evaluator` as much as the vectorized backend in
:mod:`repro.exec.vectorized` — is a thin interpreter of this IR, so a
plan's physical shape is inspectable before it runs:
:func:`explain_physical` renders the chosen algorithms with estimated
(and, after execution, actual) row counts.

Each physical node remembers the logical node(s) it implements
(``sources``), which is how per-node ``actuals`` keep working for the
logical ``explain`` while also keying the physical rendering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit as LLimit,
    OrderBy,
    Plan,
    Projection,
    Rename as LRename,
    Selection,
    TableRef,
    TopK as LTopK,
    Union,
)
from ..algebra.optimizer import Statistics, estimate, schema_of
from ..analysis import verification_enabled
from ..core.compression import recommended_buckets
from ..core.expressions import Expression
from ..core.operators import _extract_equi_pairs, _is_pure_equi_condition

__all__ = [
    "PhysicalConfig",
    "PhysNode",
    "Scan",
    "ParallelScan",
    "FusedSelectProject",
    "Rename",
    "HashJoin",
    "NLJoin",
    "CompressedJoin",
    "HashAggregate",
    "AUPartialAggregate",
    "HashDistinct",
    "TopK",
    "Limit",
    "Concat",
    "TupleFallback",
    "Exchange",
    "lower",
    "lower_delta",
    "DeltaPhysical",
    "explain_physical",
    "explain_delta",
    "HASH_JOIN_MIN_ROWS",
    "PARTITION_HASH_BUILD_ROWS",
    "MAX_HASH_PARTITIONS",
]


#: Below this many estimated rows on the larger join input, building a
#: hash table costs more than a straight nested loop over the batch
#: (moved here from the PR 3 ``join_strategy_hints`` side-channel).
HASH_JOIN_MIN_ROWS = 12.0

#: Estimated build-side rows above which a deterministic hash join
#: switches to Grace-style partition-hash mode: both sides are hash-
#: partitioned on the join key and each partition builds/probes its own
#: (budget-sized) table, bounding the largest resident hash table.
PARTITION_HASH_BUILD_ROWS = 65536.0

#: Cap on partition-hash fan-out (tiny partitions cost more than they save).
MAX_HASH_PARTITIONS = 32


@dataclass(frozen=True)
class PhysicalConfig:
    """Everything :func:`lower` needs to make physical choices.

    ``engine`` selects the semantics (``"det"`` bags / ``"au"``
    bound-preserving); ``backend`` the runtime (``"tuple"`` /
    ``"vectorized"``); ``parallelism`` > 1 adds a morsel-parallel region
    to deterministic vectorized plans.  The AU knobs mirror
    :class:`repro.algebra.evaluator.EvalConfig`: ``join_buckets`` /
    ``aggregation_buckets`` are the paper's compression budgets,
    ``adaptive_compression`` lets the estimates skip ``Cpr`` on joins
    that fit the budget, ``hash_join`` disables the certain-key hash
    fast path (the paper's unoptimized-rewrite baselines).
    """

    engine: str = "det"
    backend: str = "tuple"
    parallelism: int = 1
    hash_join: bool = True
    join_buckets: Optional[int] = None
    aggregation_buckets: Optional[int] = None
    adaptive_compression: bool = False
    #: rows per storage chunk for base-table scans (``None`` → the
    #: default in :mod:`repro.db.chunks`; ``0`` disables chunked
    #: storage and zone-map skipping — monolithic scans)
    chunk_size: Optional[int] = None


# ======================================================================
# the IR
# ======================================================================
class PhysNode:
    """Base physical operator.

    ``est`` is the planner's output-cardinality estimate (rows for the
    deterministic engine, AU-tuples for the AU engine); ``sources`` the
    logical node(s) this operator implements — executors record their
    actual output cardinality under ``id(node)`` *and* each
    ``id(source)`` so both the logical and the physical ``explain`` can
    show estimated-vs-actual columns.
    """

    est: float = 0.0
    sources: Tuple[Plan, ...] = ()

    def children(self) -> Sequence["PhysNode"]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()


class Scan(PhysNode):
    """A base-table scan.

    ``chunk_size`` selects the chunked columnar store backing the scan
    (resolved from :class:`PhysicalConfig` at plan time; ``0`` means
    monolithic).  ``skip`` is the plan-time chunk-skip predicate —
    conjuncts of the selection directly above, testable against the
    store's per-chunk zone maps (:mod:`repro.db.chunks`).
    """

    def __init__(
        self,
        table: str,
        chunk_size: Optional[int] = None,
        skip: Optional[object] = None,
    ) -> None:
        self.table = table
        self.chunk_size = chunk_size
        self.skip = skip


class ParallelScan(PhysNode):
    """A base-table scan split into ``partitions`` morsels.

    Appears exactly once inside a parallel region; the
    :class:`Exchange` above the region binds it to one morsel per
    worker (:mod:`repro.exec.parallel`).  With a chunked store, morsels
    are contiguous runs of storage chunks (boundaries never split a
    chunk) and ``skip`` drops zone-map-excluded chunks before morsels
    are formed.  ``partitions`` is sized adaptively from the catalog
    cardinality (:func:`repro.algebra.stats.adaptive_morsel_count`).
    """

    def __init__(
        self,
        table: str,
        partitions: int,
        chunk_size: Optional[int] = None,
        skip: Optional[object] = None,
    ) -> None:
        self.table = table
        self.partitions = partitions
        self.chunk_size = chunk_size
        self.skip = skip


class FusedSelectProject(PhysNode):
    """``π_columns(σ_condition(child))`` in a single pass.

    Either part may be ``None`` (pure selection / pure projection); the
    deterministic lowering fuses a ``Projection`` directly above a
    ``Selection`` so survivors are gathered once.
    """

    def __init__(
        self,
        child: PhysNode,
        condition: Optional[Expression],
        columns: Optional[Tuple[Tuple[Expression, str], ...]],
    ) -> None:
        self.child = child
        self.condition = condition
        self.columns = tuple(columns) if columns is not None else None

    def children(self):
        return (self.child,)


class Rename(PhysNode):
    def __init__(self, child: PhysNode, mapping: Dict[str, str]) -> None:
        self.child = child
        self.mapping = dict(mapping)

    def children(self):
        return (self.child,)


class HashJoin(PhysNode):
    """Equi-join via a hash table on ``eq_pairs`` (built on the right).

    ``pure_equi`` (decided at plan time) means the condition is exactly
    the conjunction of the pairs, so hash matches need no residual
    re-check.  Under AU semantics this is the certain-key hash +
    interval nested-loop split of :func:`repro.core.operators.join`.

    ``partitioned`` (deterministic engine only, decided at plan time
    from the catalog estimate of the build side vs
    :data:`PARTITION_HASH_BUILD_ROWS`) selects Grace-style
    partition-hash execution: both sides are split into
    ``hash_partitions`` buckets by the hash of the join key and each
    bucket builds and probes independently, so no single resident hash
    table exceeds the budget.  Exact for bags: every matching pair
    lands in exactly one bucket.
    """

    def __init__(
        self,
        left: PhysNode,
        right: PhysNode,
        condition: Expression,
        eq_pairs: Sequence[Tuple[str, str]],
        pure_equi: bool,
        partitioned: bool = False,
        hash_partitions: int = 0,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.eq_pairs = tuple(eq_pairs)
        self.pure_equi = pure_equi
        self.partitioned = partitioned
        self.hash_partitions = hash_partitions

    def children(self):
        return (self.left, self.right)


class NLJoin(PhysNode):
    """Nested-loop join: cross the inputs, filter by ``condition``.

    ``condition=None`` is a plain cross product.  ``check_overlap``
    preserves the AU engine's schema-overlap validation for plans with
    no usable equi-conjunct.
    """

    def __init__(
        self,
        left: PhysNode,
        right: PhysNode,
        condition: Optional[Expression],
        check_overlap: bool = False,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.check_overlap = check_overlap

    def children(self):
        return (self.left, self.right)


class CompressedJoin(PhysNode):
    """AU join through the paper's ``Cpr`` compression operator.

    ``buckets`` is resolved at plan time: the fixed budget, or — with
    adaptive compression — ``None``-skipping via
    :func:`repro.core.compression.recommended_buckets` happened already,
    so a ``CompressedJoin`` node always compresses.
    """

    def __init__(
        self,
        left: PhysNode,
        right: PhysNode,
        condition: Expression,
        pair: Tuple[str, str],
        buckets: int,
    ) -> None:
        self.left = left
        self.right = right
        self.condition = condition
        self.pair = pair
        self.buckets = buckets

    def children(self):
        return (self.left, self.right)


class HashAggregate(PhysNode):
    """Single-pass hash aggregation (deterministic engine).

    ``partial=True`` (inside a parallel region) emits mergeable
    accumulator state instead of finished rows; the :class:`Exchange`
    above combines the states and applies ``having``.
    """

    def __init__(
        self,
        child: PhysNode,
        group_by: Sequence[str],
        aggregates: Sequence,
        having: Optional[Expression],
        partial: bool = False,
    ) -> None:
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        self.having = having
        self.partial = partial

    def children(self):
        return (self.child,)


class AUPartialAggregate(PhysNode):
    """Per-morsel AU aggregation emitting mergeable partial state.

    Appears only as the child of an ``Exchange(merge="au_aggregate")``:
    each worker folds its morsel into per-group ``K^AU`` annotation sums
    and SG-combine-aware aggregate partials
    (:func:`repro.core.aggregation.fold_partial_groups`); the Exchange
    merges the states in partition order and finalizes — bit-identical
    to the serial tuple operator.  Sound only while every row's group-by
    attributes are certain; a worker meeting an uncertain group raises
    and the Exchange re-runs its ``final`` (the original serial
    :class:`TupleFallback`) instead.
    """

    def __init__(
        self, child: PhysNode, group_by: Sequence[str], aggregates: Sequence
    ) -> None:
        self.child = child
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def children(self):
        return (self.child,)


class HashDistinct(PhysNode):
    def __init__(self, child: PhysNode) -> None:
        self.child = child

    def children(self):
        return (self.child,)


class TopK(PhysNode):
    def __init__(
        self, child: PhysNode, keys: Sequence[str], descending: bool, n: int
    ) -> None:
        self.child = child
        self.keys = tuple(keys)
        self.descending = descending
        self.n = n

    def children(self):
        return (self.child,)


class Limit(PhysNode):
    def __init__(self, child: PhysNode, n: int) -> None:
        self.child = child
        self.n = n

    def children(self):
        return (self.child,)


class Concat(PhysNode):
    """Bag union: concatenate the inputs (annotations add on merge)."""

    def __init__(self, left: PhysNode, right: PhysNode) -> None:
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)


class TupleFallback(PhysNode):
    """Execute ``logical`` with the exact tuple operator over
    materialized inputs.

    The plan-time form of what the PR 3 vectorized AU executor decided
    per node at runtime: ``kind`` ∈ ``difference`` / ``distinct`` /
    ``aggregate`` / ``topk``.  ``buckets`` carries the AU aggregation
    compression budget where applicable.
    """

    def __init__(
        self,
        kind: str,
        logical: Plan,
        inputs: Sequence[PhysNode],
        buckets: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.logical = logical
        self.inputs = tuple(inputs)
        self.buckets = buckets

    def children(self):
        return self.inputs


class Exchange(PhysNode):
    """Merge point of a partition-parallel region.

    ``child`` is evaluated once per morsel of the region's
    :class:`ParallelScan`; ``merge`` says how the per-partition results
    recombine (``concat`` / ``aggregate`` / ``topk`` / ``limit`` /
    ``distinct``); ``final`` is the original serial operator carrying
    the merge parameters (the :class:`HashAggregate` for ``having`` and
    finalization, the :class:`TopK`/:class:`Limit` for re-limiting).
    """

    def __init__(
        self,
        child: PhysNode,
        merge: str,
        partitions: int,
        final: Optional[PhysNode] = None,
    ) -> None:
        self.child = child
        self.merge = merge
        self.partitions = partitions
        self.final = final

    def children(self):
        return (self.child,)


# ======================================================================
# lowering
# ======================================================================
def lower(
    plan: Plan,
    stats: Optional[Statistics],
    config: PhysicalConfig,
    *,
    verify: Optional[bool] = None,
) -> PhysNode:
    """Lower an optimized logical plan into a physical plan.

    All physical choices happen here: the join algorithm per join (hash
    vs nested loop from the catalog estimates, ``Cpr`` compression with
    its resolved bucket budget), the tuple-fallback boundaries of the AU
    executors, fusion of adjacent selection/projection pairs, and — for
    the deterministic vectorized backend with ``config.parallelism > 1``
    — the morsel-parallel region (:class:`ParallelScan` at the driver
    table, :class:`Exchange` at the merge point).  The result is
    engine-agnostic data: interpreters in :mod:`repro.db.engine`,
    :mod:`repro.algebra.evaluator`, and :mod:`repro.exec.vectorized`
    execute it without making further decisions.

    ``verify`` runs :func:`repro.analysis.verify_physical` over the
    lowered plan as a debug assertion (``None`` defers to
    :func:`repro.analysis.verification_enabled`): operator placement and
    per-node schemas are statically checked before any executor sees the
    plan.
    """
    pplan = _Lowerer(stats, config).lower(plan)
    if config.backend == "vectorized" and config.parallelism > 1:
        pplan = _parallelize(pplan, config.parallelism, au=config.engine == "au")
    _attach_chunk_skips(pplan, config)
    if verify is None:
        verify = verification_enabled()
    if verify:
        from ..analysis import verify_physical

        verify_physical(pplan, stats, config)
    return pplan


class _Lowerer:
    def __init__(self, stats: Optional[Statistics], config: PhysicalConfig) -> None:
        self.stats = stats
        self.config = config
        self.au = config.engine == "au"

    def _est(self, node: Plan) -> float:
        return estimate(node, self.stats)

    def _tag(self, pnode: PhysNode, node: Plan) -> PhysNode:
        pnode.est = self._est(node)
        pnode.sources = pnode.sources + (node,)
        return pnode

    def lower(self, node: Plan) -> PhysNode:
        if isinstance(node, TableRef):
            return self._tag(Scan(node.name, chunk_size=self.config.chunk_size), node)
        if isinstance(node, Selection):
            return self._tag(
                FusedSelectProject(self.lower(node.child), node.condition, None),
                node,
            )
        if isinstance(node, Projection):
            child = self.lower(node.child)
            if (
                not self.au
                and isinstance(child, FusedSelectProject)
                and child.columns is None
            ):
                # fuse π over σ: filter and gather the survivors once.
                # (Det only: AU per-node actuals count distinct tuples,
                # which projection changes, so the nodes stay separate.)
                fused = FusedSelectProject(child.child, child.condition, node.columns)
                fused.sources = child.sources
                return self._tag(fused, node)
            return self._tag(FusedSelectProject(child, None, node.columns), node)
        if isinstance(node, LRename):
            return self._tag(Rename(self.lower(node.child), node.mapping_dict()), node)
        if isinstance(node, Join):
            return self._tag(self._lower_join(node), node)
        if isinstance(node, CrossProduct):
            return self._tag(
                NLJoin(
                    self.lower(node.left),
                    self.lower(node.right),
                    None,
                    check_overlap=self.au,
                ),
                node,
            )
        if isinstance(node, Union):
            return self._tag(
                Concat(self.lower(node.left), self.lower(node.right)), node
            )
        if isinstance(node, Difference):
            return self._tag(
                TupleFallback(
                    "difference",
                    node,
                    (self.lower(node.left), self.lower(node.right)),
                ),
                node,
            )
        if isinstance(node, Distinct):
            child = self.lower(node.child)
            if self.au:
                return self._tag(TupleFallback("distinct", node, (child,)), node)
            return self._tag(HashDistinct(child), node)
        if isinstance(node, Aggregate):
            child = self.lower(node.child)
            if self.au:
                return self._tag(
                    TupleFallback(
                        "aggregate",
                        node,
                        (child,),
                        buckets=self.config.aggregation_buckets,
                    ),
                    node,
                )
            return self._tag(
                HashAggregate(child, node.group_by, node.aggregates, node.having),
                node,
            )
        if isinstance(node, OrderBy):
            # bags are unordered: identity, but keep the node's actuals
            child = self.lower(node.child)
            child.sources = child.sources + (node,)
            return child
        if isinstance(node, LTopK):
            return self._tag(self._lower_topk(node, node.child), node)
        if isinstance(node, LLimit):
            inner = node.child
            if isinstance(inner, OrderBy):
                # unfused ORDER BY … LIMIT: same top-k as the fused node
                carrier = LTopK(inner.child, inner.keys, inner.descending, node.n)
                return self._tag(self._lower_topk(carrier, inner.child), node)
            if self.au:
                # bare LIMIT over unordered uncertain data stays the
                # identity (the only sound choice)
                child = self.lower(inner)
                child.sources = child.sources + (node,)
                return child
            return self._tag(Limit(self.lower(inner), node.n), node)
        raise TypeError(f"unsupported plan node {type(node).__name__}")

    def _lower_topk(self, carrier: LTopK, input_plan: Plan) -> PhysNode:
        child = self.lower(input_plan)
        if self.au:
            return TupleFallback("topk", carrier, (child,))
        return TopK(child, carrier.keys, carrier.descending, carrier.n)

    def _lower_join(self, node: Join) -> PhysNode:
        left = self.lower(node.left)
        right = self.lower(node.right)
        condition = node.condition
        left_schema = schema_of(node.left, self.stats)
        right_schema = schema_of(node.right, self.stats)
        pairs: List[Tuple[str, str]] = []
        if left_schema is not None and right_schema is not None:
            pairs = _extract_equi_pairs(condition, left_schema, right_schema)

        if self.au:
            buckets = self.config.join_buckets
            if buckets is not None and self.config.adaptive_compression:
                buckets = recommended_buckets(
                    self._est(node.left), self._est(node.right), buckets
                )
            if buckets is not None and pairs:
                return CompressedJoin(left, right, condition, pairs[0], buckets)
            if not pairs:
                return NLJoin(left, right, condition, check_overlap=True)
            if not self.config.hash_join or self._tiny(node):
                return NLJoin(left, right, condition, check_overlap=False)
            return HashJoin(
                left,
                right,
                condition,
                pairs,
                _is_pure_equi_condition(condition, len(pairs)),
            )

        if not pairs or self._tiny(node):
            return NLJoin(left, right, condition, check_overlap=False)
        build_est = self._est(node.right)
        partitioned = build_est >= PARTITION_HASH_BUILD_ROWS
        return HashJoin(
            left,
            right,
            condition,
            pairs,
            _is_pure_equi_condition(condition, len(pairs)),
            partitioned=partitioned,
            hash_partitions=(
                int(
                    max(
                        2,
                        min(
                            MAX_HASH_PARTITIONS,
                            math.ceil(build_est / PARTITION_HASH_BUILD_ROWS),
                        ),
                    )
                )
                if partitioned
                else 0
            ),
        )

    def _tiny(self, node: Join) -> bool:
        """Hash-table build/probe bookkeeping dominates tiny inputs."""
        return (
            max(self._est(node.left), self._est(node.right)) < HASH_JOIN_MIN_ROWS
        )


# ======================================================================
# partition parallelism (deterministic vectorized backend)
# ======================================================================
def _parallelize(root: PhysNode, partitions: int, au: bool = False) -> PhysNode:
    """Insert morsel-parallel regions into a vectorized plan.

    A *region* is a subtree whose result distributes over a bag-union
    partitioning of one base-table scan (its *driver*): selections,
    projections, renames, and the probe side of joins are linear in the
    driver, so running the subtree once per morsel and merging is exact.
    Pipeline breakers become merge points: an aggregate region computes
    partial states per morsel (merged exactly — SUM/AVG via
    :mod:`repro.core.sums`), top-k/limit/distinct regions merge and
    re-apply, and a fully linear region just concatenates.  Subtrees
    with no partitionable driver (e.g. under a :class:`TupleFallback`)
    stay serial.

    With ``au`` the same region calculus applies to ``K^AU`` plans —
    annotations multiply along linear operators and add at the merge, so
    bag-union partitioning stays exact.  The merge kinds differ: an
    aggregate fallback becomes an :class:`AUPartialAggregate` region
    merged with SG-combine-aware folds (``au_aggregate``), a top-k
    fallback concatenates morsels and applies the exact
    :func:`repro.core.operators.au_topk` once at the merge
    (``au_topk`` — its prefix-sum bounds need the *full* input, so no
    sound local pruning exists), and the remaining non-linear fallbacks
    (difference / distinct / compressed aggregation) always stay serial
    — only their linear input subtrees get concat regions.
    """

    def walk(node: PhysNode) -> PhysNode:
        region = _try_region(node, partitions, au)
        if region is not None:
            return region
        for name in ("child", "left", "right"):
            child = getattr(node, name, None)
            if isinstance(child, PhysNode):
                setattr(node, name, walk(child))
        if isinstance(node, TupleFallback):
            node.inputs = tuple(walk(c) for c in node.inputs)
        return node

    return walk(root)


def _try_region(
    node: PhysNode, partitions: int, au: bool = False
) -> Optional[Exchange]:
    def exchange(
        child: PhysNode, merge: str, final: Optional[PhysNode], chosen: int
    ) -> Exchange:
        ex = Exchange(child, merge, chosen, final)
        ex.est = node.est
        ex.sources = node.sources
        return ex

    if au:
        if (
            isinstance(node, TupleFallback)
            and node.kind == "aggregate"
            and node.buckets is None
        ):
            split = _partition_subtree(node.inputs[0], partitions)
            if split is None:
                return None
            region, chosen = split
            lg = node.logical
            partial = AUPartialAggregate(region, lg.group_by, lg.aggregates)
            partial.est = node.est
            return exchange(partial, "au_aggregate", node, chosen)
        if isinstance(node, TupleFallback) and node.kind == "topk":
            split = _partition_subtree(node.inputs[0], partitions)
            if split is None:
                return None
            region, chosen = split
            return exchange(region, "au_topk", node, chosen)
        split = _partition_subtree(node, partitions, require_ops=True)
        if split is not None:
            region, chosen = split
            return exchange(region, "concat", None, chosen)
        return None

    if isinstance(node, HashAggregate) and not node.partial:
        split = _partition_subtree(node.child, partitions)
        if split is None:
            return None
        region, chosen = split
        partial = HashAggregate(
            region, node.group_by, node.aggregates, None, partial=True
        )
        partial.est = node.est
        return exchange(partial, "aggregate", node, chosen)
    if isinstance(node, TopK):
        split = _partition_subtree(node.child, partitions)
        if split is None:
            return None
        region, chosen = split
        local = TopK(region, node.keys, node.descending, node.n)
        local.est = node.est
        return exchange(local, "topk", node, chosen)
    if isinstance(node, Limit):
        split = _partition_subtree(node.child, partitions)
        if split is None:
            return None
        region, chosen = split
        local = Limit(region, node.n)
        local.est = node.est
        return exchange(local, "limit", node, chosen)
    if isinstance(node, HashDistinct):
        split = _partition_subtree(node.child, partitions)
        if split is None:
            return None
        region, chosen = split
        local = HashDistinct(region)
        local.est = node.est
        return exchange(local, "distinct", node, chosen)
    split = _partition_subtree(node, partitions, require_ops=True)
    if split is not None:
        region, chosen = split
        return exchange(region, "concat", None, chosen)
    return None


def _driver_scans(node: PhysNode, depth: int = 0):
    """Candidate driver scans along partition-transparent edges.

    Selection/projection/rename are linear; joins distribute over a
    partitioning of their *left* (probe) input.  Everything else is a
    barrier.
    """
    if isinstance(node, Scan):
        yield node, depth
    elif isinstance(node, (FusedSelectProject, Rename)):
        yield from _driver_scans(node.child, depth + 1)
    elif isinstance(node, (HashJoin, NLJoin)):
        yield from _driver_scans(node.left, depth + 1)


def _partition_subtree(
    node: PhysNode, partitions: int, require_ops: bool = False
) -> Optional[Tuple[PhysNode, int]]:
    """Replace the best driver scan with a :class:`ParallelScan`.

    Picks the largest estimated reachable scan; ``require_ops`` rejects
    a bare-scan region (splitting a scan only to concatenate it back
    buys nothing).  The morsel count adapts to the driver's catalog
    cardinality (:func:`repro.algebra.stats.adaptive_morsel_count`):
    small drivers get fewer, larger morsels instead of ``partitions``
    slivers.  Returns ``(region, chosen_partitions)``, or ``None`` when
    nothing is partitionable.
    """
    from ..algebra.stats import adaptive_morsel_count

    candidates = list(_driver_scans(node))
    if not candidates:
        return None
    best, depth = max(candidates, key=lambda c: (c[0].est, -c[1]))
    if require_ops and depth == 0:
        return None
    chosen = adaptive_morsel_count(best.est, partitions)

    def replace(n: PhysNode) -> PhysNode:
        if n is best:
            ps = ParallelScan(best.table, chosen, chunk_size=best.chunk_size)
            ps.est = best.est
            ps.sources = best.sources
            return ps
        if isinstance(n, (FusedSelectProject, Rename)):
            n.child = replace(n.child)
        elif isinstance(n, (HashJoin, NLJoin)):
            n.left = replace(n.left)
        return n

    return replace(node), chosen


def _attach_chunk_skips(root: PhysNode, config: PhysicalConfig) -> None:
    """Derive plan-time chunk-skip predicates for scans under selections.

    For every selection sitting directly above a base-table scan, the
    conjuncts comparing a column against a literal constant become a
    :class:`repro.db.chunks.ChunkSkipPredicate` on the scan, evaluated
    against per-chunk zone maps at execution time.  A no-op when
    chunked storage is disabled (``chunk_size=0``) — without chunks
    there is nothing to skip, and the verifier rejects the combination.
    """
    from ..db.chunks import derive_skip, resolve_chunk_size

    if resolve_chunk_size(config.chunk_size) == 0:
        return
    for node in root.walk():
        if (
            isinstance(node, FusedSelectProject)
            and node.condition is not None
            and isinstance(node.child, (Scan, ParallelScan))
        ):
            node.child.skip = derive_skip(node.condition)


# ======================================================================
# explain
# ======================================================================
def _describe(node: PhysNode) -> str:
    if isinstance(node, Scan):
        if node.skip is not None:
            return f"Scan {node.table} [skip: {node.skip}]"
        return f"Scan {node.table}"
    if isinstance(node, ParallelScan):
        base = f"ParallelScan {node.table} [{node.partitions} morsels]"
        if node.skip is not None:
            base += f" [skip: {node.skip}]"
        return base
    if isinstance(node, FusedSelectProject):
        parts = []
        if node.condition is not None:
            parts.append(f"σ[{node.condition!r}]")
        if node.columns is not None:
            cols = ", ".join(
                f"{e!r}→{n}" if repr(e) != n else n for e, n in node.columns
            )
            parts.append(f"π[{cols}]")
        return f"FusedSelectProject {' '.join(parts)}"
    if isinstance(node, Rename):
        return f"Rename ρ[{node.mapping}]"
    if isinstance(node, HashJoin):
        keys = ", ".join(f"{a}={b}" for a, b in node.eq_pairs)
        residual = "" if node.pure_equi else " + residual filter"
        grace = (
            f" grace[{node.hash_partitions} partitions]" if node.partitioned else ""
        )
        return f"HashJoin ⋈[{keys}]{grace}{residual}"
    if isinstance(node, NLJoin):
        if node.condition is None:
            return "NLJoin × (cross product)"
        return f"NLJoin ⋈[{node.condition!r}] (nested loop)"
    if isinstance(node, CompressedJoin):
        a, b = node.pair
        return f"CompressedJoin ⋈[{a}={b}] Cpr[CT={node.buckets}]"
    if isinstance(node, HashAggregate):
        aggs = ", ".join(
            f"{a.kind}({a.expr!r})→{a.name}" for a in node.aggregates
        )
        mode = " (partial)" if node.partial else ""
        return f"HashAggregate γ[{','.join(node.group_by)}; {aggs}]{mode}"
    if isinstance(node, AUPartialAggregate):
        aggs = ", ".join(
            f"{a.kind}({a.expr!r})→{a.name}" for a in node.aggregates
        )
        return (
            f"AUPartialAggregate γ[{','.join(node.group_by)}; {aggs}]"
            " (SG-combine partial)"
        )
    if isinstance(node, HashDistinct):
        return "HashDistinct δ"
    if isinstance(node, TopK):
        order = "desc" if node.descending else "asc"
        return f"TopK [{', '.join(node.keys)} {order}; n={node.n}]"
    if isinstance(node, Limit):
        return f"Limit [{node.n}]"
    if isinstance(node, Concat):
        return "Concat ∪"
    if isinstance(node, TupleFallback):
        extra = f", CT={node.buckets}" if node.buckets is not None else ""
        return f"TupleFallback[{node.kind}] (exact tuple operator{extra})"
    if isinstance(node, Exchange):
        return f"Exchange merge={node.merge} [{node.partitions} partitions]"
    return type(node).__name__


def explain_physical(
    pplan: PhysNode,
    actuals: Optional[Dict[int, int]] = None,
    times: Optional[Dict[int, List[float]]] = None,
    attrs: Optional[Dict[int, Dict[str, object]]] = None,
) -> str:
    """Render a physical plan with chosen algorithms and row estimates.

    ``actuals`` is the ``{id(node): rows}`` mapping the executors fill;
    physical node ids are recorded alongside the logical-source ids, so
    the same dict feeds both this and the logical
    :func:`repro.algebra.optimizer.explain`.

    ``times`` switches on the EXPLAIN ANALYZE rendering: it is the
    ``{id(node): [inclusive seconds, evaluations]}`` mapping a telemetry
    trace accumulates (:attr:`repro.telemetry.QueryTrace.node_times`).
    Each node line then also shows its symmetric estimation-error factor
    (:func:`repro.telemetry.estimation_error` of estimated vs actual
    rows) and inclusive wall time, with a loop count when the node ran
    more than once (one evaluation per morsel under an ``Exchange``).

    ``attrs`` is the ``{id(node): {attr: value}}`` mapping of operator-
    span attributes a trace collects
    (:attr:`repro.telemetry.QueryTrace.node_attrs`): scans that skipped
    chunks via zone maps show ``skipped S/T chunks``, partition-hash
    joins show their bucket count.
    """
    if times is not None:
        from ..telemetry import estimation_error
    lines: List[str] = []

    def walk(node: PhysNode, depth: int) -> None:
        line = f"{'  ' * depth}{_describe(node)}  (~{node.est:.0f} rows"
        actual = actuals.get(id(node)) if actuals is not None else None
        if actual is not None:
            line += f", actual {actual:g}"
            if times is not None:
                line += f", err {estimation_error(node.est, actual):.2f}x"
        if times is not None:
            entry = times.get(id(node))
            if entry is not None:
                seconds, loops = entry
                line += f", {seconds * 1e3:.3f}ms"
                if loops > 1:
                    line += f" in {loops:.0f} loops"
        if attrs is not None:
            a = attrs.get(id(node))
            if a:
                skipped = a.get("chunks_skipped")
                if skipped:
                    line += (
                        f", skipped {skipped}/{a.get('chunks_total', '?')} chunks"
                    )
                buckets = a.get("hash_partitions")
                if buckets:
                    line += f", {buckets} hash partitions"
        line += ")"
        lines.append(line)
        for child in node.children():
            walk(child, depth + 1)

    walk(pplan, 0)
    return "\n".join(lines)


# ======================================================================
# delta lowering (incremental view maintenance, repro.ivm)
# ======================================================================
@dataclass
class DeltaPhysical:
    """The physical maintenance plan for one subscribed view.

    ``view_pplan`` recomputes the view from scratch (initial
    materialization and full refresh).  ``segment_pplans`` lower each
    maintained linear segment — the *same* physical plan serves both
    the segment's full (re)materialization and its per-write delta
    evaluation, because every scan resolves its base table through the
    database mapping and the delta runtime substitutes the written
    table's per-write delta there.  ``tail_pplan`` (``None`` unless the
    classification is ``"refresh"``) is the non-linear tail lowered
    over the segments' synthetic tables: the refresh boundary chosen at
    plan time.  All plans are lowered serial (``parallelism=1``) — a
    per-write delta is a handful of rows, far below any morsel
    threshold.
    """

    delta: "object"  # repro.algebra.optimizer.DeltaPlan
    config: PhysicalConfig
    view_pplan: PhysNode
    segment_pplans: Tuple[PhysNode, ...]
    tail_pplan: Optional[PhysNode]


def lower_delta(
    delta,
    stats: Optional[Statistics],
    config: PhysicalConfig,
    *,
    verify: Optional[bool] = None,
) -> DeltaPhysical:
    """Lower a :func:`repro.algebra.optimizer.derive_delta` strategy.

    Chooses every physical detail of the maintenance pipeline at plan
    time, like :func:`lower` does for one-shot plans; the delta runtime
    (:mod:`repro.ivm`) only interprets the result.
    """
    from dataclasses import replace

    config = replace(config, parallelism=1)
    view_pplan = lower(delta.view, stats, config, verify=verify)
    segment_pplans = tuple(
        lower(seg.plan, stats, config, verify=verify)
        for seg in delta.segments
    )
    tail_pplan = None
    if delta.tail is not None:
        # the tail reads maintained segments back as synthetic tables:
        # extend the catalog with their schemas and estimated sizes so
        # lowering (join algorithm choice, fallback boundaries) and
        # physical verification see them like any base table
        tail_stats = stats
        if delta.segments:
            cards = dict(stats.cardinalities) if stats else {}
            schemas = dict(stats.schemas) if stats else {}
            for seg in delta.segments:
                schema = schema_of(seg.plan, stats)
                if schema is not None:
                    schemas[seg.name] = schema
                cards[seg.name] = int(estimate(seg.plan, stats))
            tail_stats = Statistics(
                cards,
                schemas,
                dict(stats.columns) if stats else {},
                epoch=stats.epoch if stats else 0,
            )
        tail_pplan = lower(delta.tail, tail_stats, config, verify=verify)
    return DeltaPhysical(delta, config, view_pplan, segment_pplans, tail_pplan)


def explain_delta(dplan: DeltaPhysical) -> str:
    """Render a delta plan: maintained segments vs the refresh boundary.

    The golden snapshots in ``tests/test_ivm.py`` lock where the
    boundary lands for the non-linear operators.
    """
    delta = dplan.delta
    lines: List[str] = [f"DeltaPlan[kind={delta.kind}]"]

    def block(title: str, pplan: PhysNode) -> None:
        lines.append(f"  {title}")
        for line in explain_physical(pplan).splitlines():
            lines.append(f"    {line}")

    if delta.kind == "aggregate":
        agg = delta.aggregate
        aggs = ", ".join(
            f"{a.kind}({a.expr!r})→{a.name}" for a in agg.aggregates
        )
        lines.append(
            f"  Δ-merge γ[{','.join(agg.group_by)}; {aggs}] semiring partials over:"
        )
        for line in explain_physical(dplan.segment_pplans[0]).splitlines():
            lines.append(f"    {line}")
    elif delta.kind == "linear":
        block("Δ-maintain view:", dplan.view_pplan)
    else:
        for seg, pplan in zip(delta.segments, dplan.segment_pplans):
            block(f"Δ-maintain segment {seg.name}:", pplan)
        block("refresh-boundary (re-executed per epoch):", dplan.tail_pplan)
    for seg in delta.segments:
        if seg.multi_ref:
            label = seg.name or "view"
            lines.append(
                f"  refresh-on-write {label}: "
                f"{', '.join(seg.multi_ref)} (self-joined)"
            )
    return "\n".join(lines)
