"""Compile scalar expressions into fused per-batch Python loops.

The tuple-at-a-time engines interpret the expression AST once per row:
every ``Eq``/``And``/``Add`` node costs a Python method call plus a
``RowView`` attribute lookup.  The vectorized backend instead *compiles*
an expression once per operator into a single generated function whose
body is the fully-inlined expression over direct column indexing — the
"fused selection" of a vectorized engine: one loop, no AST dispatch.

Code generation mirrors :meth:`Expression.eval` (the deterministic
semantics) exactly:

* ``Eq``/``Neq`` compare under the universal domain order via
  :func:`~repro.core.ranges.domain_key`;
* ``Leq``/``Lt``/``Geq``/``Gt`` go through
  :func:`~repro.core.ranges.domain_le` with the same operand orientation
  as the interpreted operators;
* ``And``/``Or`` short-circuit exactly like ``bool(l) and bool(r)``.

Expressions containing nodes this compiler does not know (new Expression
subclasses, variables outside the schema) raise :class:`CompileError`;
callers fall back to interpreting ``Expression.eval`` over a
:class:`~repro.exec.batch.BatchRowView`, which preserves the engine's
error behaviour (e.g. ``KeyError: unbound variable``).

Only the deterministic semantics is compiled.  The range-annotated
semantics (``eval_range``) stays interpreted: its operators allocate
:class:`~repro.core.ranges.RangeValue` results anyway, so inlining buys
little, and reusing ``eval_range`` keeps the bound-preserving semantics
in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..core.expressions import (
    Add,
    And,
    Const,
    Div,
    Eq,
    Expression,
    Geq,
    Gt,
    If,
    IsNull,
    Leq,
    Lt,
    MakeUncertain,
    Mul,
    Neg,
    Neq,
    Not,
    Or,
    Sub,
    Var,
)
from ..core.ranges import domain_key, domain_le

__all__ = ["CompileError", "compile_filter", "compile_projector"]


class CompileError(Exception):
    """The expression contains a node the compiler cannot translate."""


_ARITH = {Add: "+", Sub: "-", Mul: "*", Div: "/"}


class _Emitter:
    """Translate an expression tree into a Python source fragment."""

    def __init__(self, index: Dict[str, int]) -> None:
        self.index = index
        self.used_columns: Dict[int, str] = {}  # column index -> local name
        self.constants: List[object] = []

    def column(self, name: str) -> str:
        j = self.index.get(name)
        if j is None:
            raise CompileError(f"unbound variable {name!r}")
        local = self.used_columns.get(j)
        if local is None:
            local = f"_c{j}"
            self.used_columns[j] = local
        return local

    def emit(self, e: Expression) -> str:
        # exact-type dispatch: an Expression *subclass* may override
        # ``eval``, so anything but the known node types falls back to
        # interpretation rather than silently compiling base semantics
        kind = type(e)
        if kind is Var:
            return f"{self.column(e.name)}[_i]"
        if kind is Const:
            self.constants.append(e.value)
            return f"_K[{len(self.constants) - 1}]"
        if kind is And:
            return f"(bool({self.emit(e.left)}) and bool({self.emit(e.right)}))"
        if kind is Or:
            return f"(bool({self.emit(e.left)}) or bool({self.emit(e.right)}))"
        if kind is Not:
            return f"(not bool({self.emit(e.operand)}))"
        if kind is Eq:
            return f"(_dk({self.emit(e.left)}) == _dk({self.emit(e.right)}))"
        if kind is Neq:
            return f"(_dk({self.emit(e.left)}) != _dk({self.emit(e.right)}))"
        if kind is Leq:
            return f"_le({self.emit(e.left)}, {self.emit(e.right)})"
        if kind is Lt:
            return f"(not _le({self.emit(e.right)}, {self.emit(e.left)}))"
        if kind is Geq:
            return f"_le({self.emit(e.right)}, {self.emit(e.left)})"
        if kind is Gt:
            return f"(not _le({self.emit(e.left)}, {self.emit(e.right)}))"
        if kind in _ARITH:
            op = _ARITH[kind]
            return f"({self.emit(e.left)} {op} {self.emit(e.right)})"
        if kind is Neg:
            return f"(-{self.emit(e.operand)})"
        if kind is If:
            then = self.emit(e.then_branch)
            other = self.emit(e.else_branch)
            cond = self.emit(e.cond)
            return f"(({then}) if bool({cond}) else ({other}))"
        if kind is IsNull:
            return f"(({self.emit(e.operand)}) is None)"
        if kind is MakeUncertain:
            # deterministic semantics keeps the selected guess
            return self.emit(e.sg)
        raise CompileError(f"cannot compile {kind.__name__}")


def _build(body: str, emitter: _Emitter, name: str):
    bindings = "".join(
        f"    {local} = _cols[{j}]\n"
        for j, local in sorted(emitter.used_columns.items())
    )
    source = (
        f"def {name}(_cols, _n, _K, _dk, _le):\n"
        f"{bindings}{body}"
    )
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<repro.exec:{name}>", "exec"), namespace)
    fn = namespace[name]
    constants = tuple(emitter.constants)

    def bound(columns: Sequence, n: int):
        return fn(columns, n, constants, domain_key, domain_le)

    return bound


# compiled-closure cache: expressions define ``__eq__`` symbolically (it
# builds an Eq node), so they cannot be dict keys — key on identity and
# keep a strong reference so ids stay stable
_CACHE: Dict[Tuple[int, Tuple[str, ...], str], Tuple[Expression, Callable]] = {}
_CACHE_LIMIT = 1024


def _cached(expr: Expression, schema: Tuple[str, ...], kind: str, build):
    key = (id(expr), schema, kind)
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is expr:
        return hit[1]
    fn = build()
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = (expr, fn)
    return fn


def compile_filter(
    condition: Expression, schema: Sequence[str]
) -> Callable[[Sequence, int], List[int]]:
    """Compile ``condition`` into ``fn(columns, n) -> surviving row ids``.

    The returned function runs one fused loop over the batch and returns
    the indices of rows whose condition is truthy — exactly
    ``bool(condition.eval(row))`` of the tuple engine.  Raises
    :class:`CompileError` for untranslatable expressions.
    """
    schema = tuple(schema)

    def build():
        emitter = _Emitter({name: j for j, name in enumerate(schema)})
        predicate = emitter.emit(condition)
        body = (
            "    _out = []\n"
            "    _append = _out.append\n"
            "    for _i in range(_n):\n"
            f"        if {predicate}:\n"
            "            _append(_i)\n"
            "    return _out\n"
        )
        return _build(body, emitter, "_filter")

    return _cached(condition, schema, "filter", build)


def compile_projector(
    expr: Expression, schema: Sequence[str]
) -> Callable[[Sequence, int], List]:
    """Compile ``expr`` into ``fn(columns, n) -> output column``.

    One fused loop computing the expression for every row — the
    vectorized form of a computed projection column.  Raises
    :class:`CompileError` for untranslatable expressions.
    """
    schema = tuple(schema)

    def build():
        emitter = _Emitter({name: j for j, name in enumerate(schema)})
        value = emitter.emit(expr)
        body = f"    return [{value} for _i in range(_n)]\n"
        return _build(body, emitter, "_project")

    return _cached(expr, schema, "projector", build)
