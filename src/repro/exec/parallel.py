"""Morsel-style partition-parallel execution for the det vectorized backend.

A physical plan's :class:`~repro.exec.physical.Exchange` node marks a
*parallel region*: its subtree contains exactly one
:class:`~repro.exec.physical.ParallelScan`, and evaluating the subtree
once per morsel of that scan then merging (per the Exchange's ``merge``
kind) is exact — the planner only builds regions out of operators that
distribute over a bag-union partitioning of the driver table.

Execution of one Exchange:

1. the driver table is split into one morsel per partition.  When the
   table has a chunk store (:mod:`repro.db.chunks`) the morsels are
   contiguous runs of surviving chunks — the scan's zone-map skip
   predicate prunes chunks before any worker sees them; otherwise the
   cached columnar image is split row-wise (:func:`split_batch`);
2. subtrees of the region that do *not* contain the ParallelScan are
   partition-invariant — they are evaluated **once** in the parent and
   injected into the workers as pre-bound results (so e.g. a hash-join
   build side is not recomputed per morsel);
3. each worker interprets the region over its morsel.  Workers are
   ``fork``-ed processes when the driver is large enough to amortize
   process startup (:data:`PROCESS_MIN_ROWS`) and ``fork`` is available
   (POSIX); otherwise the morsels run in-process, through the *same*
   partition-and-merge code path, so results are identical either way;
4. the per-partition results merge: batches concatenate (``concat``),
   partial aggregation states combine exactly (``aggregate`` —
   SUM/AVG through :mod:`repro.core.sums`, so floats are bit-identical
   at every parallelism level), and ``topk``/``limit``/``distinct``
   regions re-apply their operator over the concatenation.

Small inputs skip partitioning entirely (:data:`PARALLEL_MIN_ROWS`):
the region then runs as a single partition, which is the documented
non-regression fallback — parallelism never changes results, only
wall-clock time.  Tests pin these thresholds to 0 to force the
partitioned paths on tiny data.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry as _tm
from ..db import chunks as _chunks
from ..db.storage import DetDatabase
from . import physical as phys
from .batch import ColumnBatch

__all__ = [
    "PARALLEL_MIN_ROWS",
    "PROCESS_MIN_ROWS",
    "split_batch",
    "execute_exchange",
]

#: Below this many driver rows an Exchange collapses to one partition —
#: splitting and merging a small batch costs more than it saves.
PARALLEL_MIN_ROWS = 2048

#: Below this many driver rows the morsels run in-process even when
#: partitioned: forking a worker pool costs milliseconds, which only
#: pays off on batches with real per-morsel work.
PROCESS_MIN_ROWS = 8192


def split_batch(batch: ColumnBatch, partitions: int) -> List[ColumnBatch]:
    """Split ``batch`` row-wise into at most ``partitions`` morsels."""
    n = len(batch)
    if n == 0 or partitions <= 1:
        return [batch]
    size = (n + partitions - 1) // partitions
    return [
        ColumnBatch(
            batch.schema,
            [col[s : s + size] for col in batch.columns],
            batch.mult[s : s + size],
        )
        for s in range(0, n, size)
    ]


def _contains(pnode: phys.PhysNode, target: phys.PhysNode) -> bool:
    return any(n is target for n in pnode.walk())


def _bind_invariants(
    pnode: phys.PhysNode,
    scan: phys.ParallelScan,
    parent_exec,
    bindings: Dict[int, ColumnBatch],
) -> None:
    """Evaluate partition-invariant subtrees once, in the parent.

    Everything not containing the ParallelScan produces the same result
    for every morsel (e.g. the build side of a hash join) — bind it so
    workers skip the recomputation.
    """
    for child in pnode.children():
        if _contains(child, scan):
            _bind_invariants(child, scan, parent_exec, bindings)
        else:
            bindings[id(child)] = parent_exec.eval(child)


def _prebuild_join_tables(
    pnode: phys.PhysNode,
    scan: phys.ParallelScan,
    bindings: Dict[int, ColumnBatch],
    join_tables: Dict[int, dict],
) -> None:
    """Build hash tables for partition-invariant build sides once.

    A ``HashJoin`` on the driver spine probes a build side that is the
    same for every morsel — without this, each worker would rebuild the
    identical table."""
    from .vectorized import build_join_table

    if isinstance(pnode, phys.HashJoin) and id(pnode.right) in bindings:
        join_tables[id(pnode)] = build_join_table(
            bindings[id(pnode.right)], [b for _, b in pnode.eq_pairs]
        )
    for child in pnode.children():
        if _contains(child, scan):
            _prebuild_join_tables(child, scan, bindings, join_tables)


def execute_exchange(parent_exec, node: phys.Exchange) -> ColumnBatch:
    """Run the parallel region under ``node`` and merge the partitions."""
    from .vectorized import _DetExec, PartialAggregate

    scan = next(
        p for p in node.child.walk() if isinstance(p, phys.ParallelScan)
    )
    db: DetDatabase = parent_exec.db
    store = _chunks.det_store(db[scan.table], scan.chunk_size)
    chunks_total = chunks_skipped = 0
    if store is None:
        base = ColumnBatch.from_relation(db[scan.table])
        driver_rows = len(base)
        if node.partitions <= 1 or driver_rows < PARALLEL_MIN_ROWS:
            parts = [base]
        else:
            parts = split_batch(base, node.partitions)
    else:
        # morsels map 1:1 onto contiguous runs of surviving chunks, so
        # zone-map skipping prunes work *before* it is handed to workers
        parts, chunks_total, chunks_skipped = store.morsel_batches(
            node.partitions, scan.skip
        )
        driver_rows = sum(len(p) for p in parts)
        if len(parts) > 1 and driver_rows < PARALLEL_MIN_ROWS:
            parts = [_concat(parts)]

    bindings: Dict[int, ColumnBatch] = dict(parent_exec.bindings)
    _bind_invariants(node.child, scan, parent_exec, bindings)
    join_tables: Dict[int, dict] = {}
    _prebuild_join_tables(node.child, scan, bindings, join_tables)

    use_processes = (
        len(parts) > 1
        and driver_rows >= PROCESS_MIN_ROWS
        and hasattr(os, "fork")
    )
    if _tm._ACTIVE is not None:
        # the Exchange's operator span is the innermost open one here;
        # in-process morsels emit their own nested spans, forked workers
        # trace nothing (spans die with the child's address space)
        attrs: Dict[str, Any] = dict(
            morsels=len(parts),
            forked=use_processes,
            driver_rows=driver_rows,
        )
        if store is not None:
            attrs["chunks_total"] = chunks_total
            attrs["chunks_skipped"] = chunks_skipped
        _tm.annotate(**attrs)
    if use_processes:
        results = _run_forked(db, node.child, scan, parts, bindings, join_tables)
    else:
        # same worker + transport code as the forked pool, minus the fork:
        # results round-trip through encode/decode so both paths are
        # byte-for-byte the same computation
        results = [
            _decode(
                _encode(
                    _DetExec(
                        db,
                        None,
                        {**bindings, id(scan): part},
                        join_tables,
                    ).eval(node.child)
                )
            )
            for part in parts
        ]
    return _merge(node, results)


# ----------------------------------------------------------------------
# forked worker pool
# ----------------------------------------------------------------------
#: Inherited-by-fork work description; only partition indices travel to
#: the workers and only encoded results travel back.
_WORK: Optional[tuple] = None


def _worker(i: int):
    from .vectorized import _DetExec

    # the fork inherited the parent's active trace; spans recorded here
    # could never travel back over the result pipe, so don't record any
    _tm._ACTIVE = None
    db, region, scan, parts, bindings, join_tables = _WORK
    result = _DetExec(
        db, None, {**bindings, id(scan): parts[i]}, join_tables
    ).eval(region)
    return _encode(result)


def _encode(result) -> tuple:
    from .vectorized import PartialAggregate

    if isinstance(result, PartialAggregate):
        return ("partial", result.groups)
    return (
        "batch",
        result.schema,
        [list(col) for col in result.columns],
        list(result.mult),
    )


def _decode(payload: tuple):
    from .vectorized import PartialAggregate

    if payload[0] == "partial":
        return PartialAggregate(payload[1])
    _tag, schema, columns, mult = payload
    return ColumnBatch(schema, columns, mult)


def _run_forked(db, region, scan, parts, bindings, join_tables) -> List[Any]:
    import multiprocessing

    global _WORK
    ctx = multiprocessing.get_context("fork")
    _WORK = (db, region, scan, parts, bindings, join_tables)
    try:
        with ctx.Pool(min(len(parts), os.cpu_count() or 1)) as pool:
            encoded = pool.map(_worker, range(len(parts)))
    finally:
        _WORK = None
    return [_decode(e) for e in encoded]


# ----------------------------------------------------------------------
# merges
# ----------------------------------------------------------------------
def _concat(batches: List[ColumnBatch]) -> ColumnBatch:
    first = batches[0]
    if len(batches) == 1:
        return first
    columns: List[list] = [list(col) for col in first.columns]
    mult = list(first.mult)
    for batch in batches[1:]:
        for acc, col in zip(columns, batch.columns):
            acc.extend(col)
        mult.extend(batch.mult)
    return ColumnBatch(first.schema, columns, mult)


def _merge(node: phys.Exchange, results: List[Any]) -> ColumnBatch:
    from ..core.sums import merge_acc
    from ..db.engine import _limit, _topk
    from .vectorized import _dedup_batch, finalize_groups

    final = node.final
    if node.merge == "concat":
        return _concat(results)
    if node.merge == "aggregate":
        merged: Dict[Tuple, List[Any]] = {}
        kinds = [spec.kind for spec in final.aggregates]
        for partial in results:
            for key, accs in partial.groups.items():
                mine = merged.get(key)
                if mine is None:
                    merged[key] = accs
                    continue
                for a, kind in enumerate(kinds):
                    if kind == "count":
                        mine[a] += accs[a]
                    elif kind == "sum":
                        merge_acc(mine[a], accs[a])
                    elif kind == "avg":
                        merge_acc(mine[a][0], accs[a][0])
                        mine[a][1] += accs[a][1]
                    elif kind == "min":
                        if accs[a][0] < mine[a][0]:
                            mine[a] = accs[a]
                    else:  # max
                        if accs[a][0] > mine[a][0]:
                            mine[a] = accs[a]
        if not merged and not final.group_by:
            from ..db.engine import _empty_value

            return ColumnBatch(
                [spec.name for spec in final.aggregates],
                [[_empty_value(spec)] for spec in final.aggregates],
                [1],
            )
        batch = finalize_groups(merged, final.group_by, final.aggregates)
        if final.having is not None:
            # re-filter through the vectorized selection path
            from .vectorized import _DetExec

            batch = _DetExec(None)._select_project(batch, final.having, None)
        return batch
    if node.merge == "topk":
        merged_rel = _concat(results).to_relation()
        return ColumnBatch.from_relation(
            _topk(merged_rel, final.keys, final.descending, final.n)
        )
    if node.merge == "limit":
        return ColumnBatch.from_relation(
            _limit(_concat(results).to_relation(), final.n)
        )
    if node.merge == "distinct":
        return _dedup_batch(_concat(results))
    raise TypeError(f"unsupported exchange merge {node.merge!r}")
