"""Morsel-style partition-parallel execution for the vectorized backends.

A physical plan's :class:`~repro.exec.physical.Exchange` node marks a
*parallel region*: its subtree contains exactly one
:class:`~repro.exec.physical.ParallelScan`, and evaluating the subtree
once per morsel of that scan then merging (per the Exchange's ``merge``
kind) is exact — the planner only builds regions out of operators that
distribute over a bag-union partitioning of the driver table.  Both
engines run through this module: deterministic bags, and AU plans whose
``K^AU`` annotations multiply along the region's linear operators and
add back together at the merge.

Execution of one Exchange:

1. the driver table is split into one morsel per partition.  When the
   table has a chunk store (:mod:`repro.db.chunks`) the morsels are
   contiguous runs of surviving chunks — the scan's zone-map skip
   predicate prunes chunks before any worker sees them; otherwise the
   cached columnar image is split row-wise (:func:`split_batch` /
   :func:`split_au_batch`);
2. subtrees of the region that do *not* contain the ParallelScan are
   partition-invariant — they are evaluated **once** in the parent and
   injected into the workers as pre-bound results, and hash-join build
   sides on the driver spine are built once (AU build sides split into
   their certain-key hash + uncertain interval-match parts once);
3. each worker interprets the region over its morsel.  Workers come
   from the session's **persistent pool** (:class:`WorkerPool`, owned
   by :class:`repro.session.Connection` — forked once, reused across
   queries, invalidated when ``db.epoch`` advances) when one is
   attached and the driver is large enough to amortize transport
   (:data:`PROCESS_MIN_ROWS`); else from a per-query ``fork`` pool;
   else the morsels run in-process, through the *same*
   partition-and-merge code path, so results are identical either way;
4. the per-partition results merge: batches concatenate (``concat``),
   partial aggregation states combine exactly (``aggregate`` /
   ``au_aggregate`` — SUM/AVG through :mod:`repro.core.sums`, and the
   AU lb/sg/ub semiring partials via the SG-combine-aware folds of
   :mod:`repro.core.aggregation` — so floats are bit-identical at
   every parallelism level), ``topk``/``limit``/``distinct`` regions
   re-apply their operator over the concatenation, and ``au_topk``
   applies the exact :func:`repro.core.operators.au_topk` once over
   the partition-order concatenation (its prefix-sum bounds need the
   full input, so there is no sound per-morsel pruning).

AU partial aggregation is sound only while every row's group-by
attributes are certain; a worker that meets an uncertain group raises
:class:`~repro.core.aggregation.UncertainGroupError` and the Exchange
transparently re-runs its ``final`` operator — the original serial
:class:`~repro.exec.physical.TupleFallback` — so results never change,
only the execution strategy.

Small inputs skip partitioning entirely (:data:`PARALLEL_MIN_ROWS`):
the region then runs as a single partition, which is the documented
non-regression fallback — parallelism never changes results, only
wall-clock time.  Tests pin these thresholds to 0 to force the
partitioned paths on tiny data.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry as _tm
from ..core.aggregation import UncertainGroupError
from ..db import chunks as _chunks
from . import physical as phys
from .batch import AUColumnBatch, ColumnBatch

__all__ = [
    "PARALLEL_MIN_ROWS",
    "PROCESS_MIN_ROWS",
    "split_batch",
    "split_au_batch",
    "execute_exchange",
    "WorkerPool",
    "PoolBrokenError",
]

#: Below this many driver rows an Exchange collapses to one partition —
#: splitting and merging a small batch costs more than it saves.
PARALLEL_MIN_ROWS = 2048

#: Below this many driver rows the morsels run in-process even when
#: partitioned: forking a worker pool costs milliseconds, which only
#: pays off on batches with real per-morsel work.
PROCESS_MIN_ROWS = 8192

_REGISTRY = _tm.get_registry()
_POOL_FORKS = _REGISTRY.counter(
    "repro_parallel_pool_forks_total",
    "Persistent worker pools forked (one fork event spawns all workers).",
)
_POOL_REUSES = _REGISTRY.counter(
    "repro_parallel_pool_reuses_total",
    "Exchange executions served by an already-live persistent pool.",
)
_POOL_INVALIDATIONS = _REGISTRY.counter(
    "repro_parallel_pool_invalidations_total",
    "Persistent pools torn down because the database epoch advanced.",
)
_POOL_TASKS = _REGISTRY.counter(
    "repro_parallel_tasks_total",
    "Morsel tasks dispatched to persistent pool workers.",
)
_AU_SERIAL_FALLBACKS = _REGISTRY.counter(
    "repro_parallel_au_serial_fallbacks_total",
    "AU parallel aggregates re-run serially (uncertain group-by values).",
)


def split_batch(batch: ColumnBatch, partitions: int) -> List[ColumnBatch]:
    """Split ``batch`` row-wise into at most ``partitions`` morsels."""
    n = len(batch)
    if n == 0 or partitions <= 1:
        return [batch]
    size = (n + partitions - 1) // partitions
    return [
        ColumnBatch(
            batch.schema,
            [col[s : s + size] for col in batch.columns],
            batch.mult[s : s + size],
        )
        for s in range(0, n, size)
    ]


def split_au_batch(batch: AUColumnBatch, partitions: int) -> List[AUColumnBatch]:
    """Split an AU batch row-wise into at most ``partitions`` morsels."""
    n = len(batch)
    if n == 0 or partitions <= 1:
        return [batch]
    size = (n + partitions - 1) // partitions
    return [
        AUColumnBatch(
            batch.schema,
            [col[s : s + size] for col in batch.columns],
            batch.ann_lb[s : s + size],
            batch.ann_sg[s : s + size],
            batch.ann_ub[s : s + size],
        )
        for s in range(0, n, size)
    ]


def _contains(pnode: phys.PhysNode, target: phys.PhysNode) -> bool:
    return any(n is target for n in pnode.walk())


def _bind_invariants(
    pnode: phys.PhysNode,
    scan: phys.ParallelScan,
    parent_exec,
    bindings: Dict[int, Any],
) -> None:
    """Evaluate partition-invariant subtrees once, in the parent.

    Everything not containing the ParallelScan produces the same result
    for every morsel (e.g. the build side of a hash join) — bind it so
    workers skip the recomputation.
    """
    for child in pnode.children():
        if _contains(child, scan):
            _bind_invariants(child, scan, parent_exec, bindings)
        else:
            bindings[id(child)] = parent_exec.eval(child)


def _prebuild_join_tables(
    pnode: phys.PhysNode,
    scan: phys.ParallelScan,
    bindings: Dict[int, Any],
    join_tables: Dict[int, Any],
    au: bool = False,
) -> None:
    """Build hash tables for partition-invariant build sides once.

    A ``HashJoin`` on the driver spine probes a build side that is the
    same for every morsel — without this, each worker would rebuild the
    identical table.  For AU joins the build is the certain-key hash +
    uncertain interval-match partition of
    :func:`repro.exec.vectorized.build_au_join_table`."""
    from .vectorized import build_au_join_table, build_join_table

    if isinstance(pnode, phys.HashJoin) and id(pnode.right) in bindings:
        build = build_au_join_table if au else build_join_table
        join_tables[id(pnode)] = build(
            bindings[id(pnode.right)], [b for _, b in pnode.eq_pairs]
        )
    for child in pnode.children():
        if _contains(child, scan):
            _prebuild_join_tables(child, scan, bindings, join_tables, au)


def execute_exchange(parent_exec, node: phys.Exchange):
    """Run the parallel region under ``node`` and merge the partitions."""
    from .vectorized import _AUExec, _DetExec

    au = isinstance(parent_exec, _AUExec)
    scan = next(
        p for p in node.child.walk() if isinstance(p, phys.ParallelScan)
    )
    db = parent_exec.db
    rel = db[scan.table]
    store = (
        _chunks.au_store(rel, scan.chunk_size)
        if au
        else _chunks.det_store(rel, scan.chunk_size)
    )
    chunks_total = chunks_skipped = 0
    chunk_groups: Optional[List[List[int]]] = None
    parts: Optional[List[Any]] = None
    if store is None:
        base = (
            AUColumnBatch.from_relation(rel)
            if au
            else ColumnBatch.from_relation(rel)
        )
        driver_rows = len(base)
        if node.partitions <= 1 or driver_rows < PARALLEL_MIN_ROWS:
            parts = [base]
        else:
            split = split_au_batch if au else split_batch
            parts = split(base, node.partitions)
        n_parts = len(parts)
    else:
        # morsels map 1:1 onto contiguous runs of surviving chunks, so
        # zone-map skipping prunes work *before* it is handed to workers
        chunk_groups, group_rows, chunks_total, chunks_skipped = (
            store.morsel_chunk_groups(node.partitions, scan.skip)
        )
        driver_rows = sum(group_rows)
        if len(chunk_groups) > 1 and driver_rows < PARALLEL_MIN_ROWS:
            chunk_groups = [[ci for g in chunk_groups for ci in g]]
        n_parts = len(chunk_groups)

    bindings: Dict[int, Any] = dict(parent_exec.bindings)
    _bind_invariants(node.child, scan, parent_exec, bindings)
    join_tables: Dict[int, Any] = {}
    _prebuild_join_tables(node.child, scan, bindings, join_tables, au)

    use_processes = (
        n_parts > 1
        and driver_rows >= PROCESS_MIN_ROWS
        and hasattr(os, "fork")
    )
    pool: Optional[WorkerPool] = getattr(parent_exec, "pool", None)
    use_pool = use_processes and pool is not None and pool.ensure(db)
    if _tm._ACTIVE is not None:
        # the Exchange's operator span is the innermost open one here;
        # in-process morsels emit their own nested spans, forked workers
        # trace nothing (spans die with the child's address space) but
        # pool workers report per-task wall times back
        attrs: Dict[str, Any] = dict(
            morsels=n_parts,
            forked=use_processes,
            pooled=use_pool,
            driver_rows=driver_rows,
        )
        if store is not None:
            attrs["chunks_total"] = chunks_total
            attrs["chunks_skipped"] = chunks_skipped
        _tm.annotate(**attrs)

    try:
        results = None
        if use_pool:
            try:
                results = _run_pooled(
                    pool, node, scan, au, bindings, chunk_groups, parts
                )
            except PoolBrokenError:
                results = None  # fall through to the per-query paths
        if results is None:
            if parts is None:
                parts = [store.batch_for_chunks(g) for g in chunk_groups]
            if use_processes:
                results = _run_forked(
                    db, node.child, scan, parts, bindings, join_tables, au
                )
            else:
                # same worker + transport code as the pools, minus the
                # fork: results round-trip through encode/decode so all
                # paths are byte-for-byte the same computation
                cls = _AUExec if au else _DetExec
                results = [
                    _decode(
                        _encode(
                            cls(
                                db,
                                None,
                                {**bindings, id(scan): part},
                                join_tables,
                            ).eval(node.child)
                        )
                    )
                    for part in parts
                ]
        return _merge_au(node, results) if au else _merge(node, results)
    except UncertainGroupError:
        # a morsel met uncertain group-by values: partial aggregation is
        # not sound there, so run the original serial operator instead
        _AU_SERIAL_FALLBACKS.inc()
        if _tm._ACTIVE is not None:
            _tm.annotate(au_serial_fallback=True)
        return parent_exec.eval(node.final)


# ----------------------------------------------------------------------
# result / morsel transport
# ----------------------------------------------------------------------
def _encode(result) -> tuple:
    from .vectorized import AUPartialGroups, PartialAggregate

    if isinstance(result, PartialAggregate):
        return ("partial", result.groups)
    if isinstance(result, AUPartialGroups):
        return ("au_partial", result.groups)
    if isinstance(result, AUColumnBatch):
        return (
            "au_batch",
            result.schema,
            [list(col) for col in result.columns],
            list(result.ann_lb),
            list(result.ann_sg),
            list(result.ann_ub),
        )
    return (
        "batch",
        result.schema,
        [list(col) for col in result.columns],
        list(result.mult),
    )


def _decode(payload: tuple):
    from .vectorized import AUPartialGroups, PartialAggregate

    if payload[0] == "partial":
        return PartialAggregate(payload[1])
    if payload[0] == "au_partial":
        return AUPartialGroups(payload[1])
    if payload[0] == "au_batch":
        _tag, schema, columns, lb, sg, ub = payload
        return AUColumnBatch(schema, columns, lb, sg, ub)
    _tag, schema, columns, mult = payload
    return ColumnBatch(schema, columns, mult)


def _decode_morsel(db, spec: tuple, au: bool):
    """Rebuild a worker's morsel from its transport spec.

    ``("chunks", table, chunk_size, indices)`` rebuilds from the chunk
    store (the fork-inherited relation state is identical at the same
    epoch, so chunk boundaries — and therefore the batch — are
    bit-identical to the parent's); any other tag is an encoded batch.
    """
    if spec[0] == "chunks":
        _tag, table, chunk_size, indices = spec
        rel = db[table]
        store = (
            _chunks.au_store(rel, chunk_size)
            if au
            else _chunks.det_store(rel, chunk_size)
        )
        return store.batch_for_chunks(indices)
    return _decode(spec)


# ----------------------------------------------------------------------
# persistent worker pool (Connection-owned, lives across queries)
# ----------------------------------------------------------------------
class PoolBrokenError(RuntimeError):
    """The persistent pool cannot serve this region (worker death or an
    untransportable plan); the caller falls back to per-query workers."""


def _run_task(db, task: tuple) -> tuple:
    """Execute one morsel task inside a pool worker."""
    from .vectorized import _AUExec, _DetExec

    region_bytes, au, scan_idx, enc_bindings, spec = task
    region = pickle.loads(region_bytes)
    # node identities do not survive pickling: bindings travel keyed by
    # preorder walk index and re-key against the worker's copy
    nodes = list(region.walk())
    bindings = {id(nodes[i]): _decode(p) for i, p in enc_bindings}
    scan = nodes[scan_idx]
    bindings[id(scan)] = _decode_morsel(db, spec, au)
    join_tables: Dict[int, Any] = {}
    _prebuild_join_tables(region, scan, bindings, join_tables, au)
    cls = _AUExec if au else _DetExec
    return _encode(cls(db, None, bindings, join_tables).eval(region))


def _pool_worker_main(conn, db) -> None:
    """Loop of one persistent worker: recv task, execute, send result.

    The fork inherited the parent's active trace; spans recorded here
    could never travel back over the result pipe, so none are recorded —
    instead each reply carries its wall time for the parent to attach to
    the Exchange span.
    """
    _tm._ACTIVE = None
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if task is None:
            break
        started = time.perf_counter()
        try:
            payload = _run_task(db, task)
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            try:
                conn.send(("err", exc))
            except Exception:
                conn.send(("err", RuntimeError(f"worker failed: {exc!r}")))
            continue
        conn.send(("ok", payload, time.perf_counter() - started))


class WorkerPool:
    """A persistent fork-based worker pool owned by a Connection.

    Workers are forked once and live across queries; each query ships
    its region plan, invariant bindings, and morsel specs over pipes and
    receives encoded results back.  The pool is keyed to one database
    *snapshot* — ``(database identity, epoch)`` — because forked workers
    hold a copy-on-write image of the parent's relations: when the epoch
    advances (any write), :meth:`ensure` tears the stale workers down
    and re-forks against current state.  Fork/reuse/invalidation counts
    publish to the metrics registry (``repro_parallel_pool_*``).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("worker pool needs at least one worker")
        self.size = size
        self._workers: List[Tuple[Any, Any]] = []  # (process, pipe conn)
        self._key: Optional[Tuple[int, int]] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def alive(self) -> bool:
        return bool(self._workers)

    def ensure(self, db) -> bool:
        """Make the workers match ``db`` at its current epoch.

        Returns ``True`` when live workers hold the right snapshot
        (reusing or re-forking as needed), ``False`` when fork is not
        available on this platform.
        """
        if not hasattr(os, "fork"):
            return False
        key = (id(db), getattr(db, "epoch", 0))
        if self._workers and self._key == key:
            _POOL_REUSES.inc()
            return True
        if self._workers:
            _POOL_INVALIDATIONS.inc()
            self.close()
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        workers: List[Tuple[Any, Any]] = []
        for _ in range(self.size):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_pool_worker_main, args=(child_conn, db), daemon=True
            )
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn))
        self._workers = workers
        self._key = key
        _POOL_FORKS.inc()
        return True

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        workers, self._workers, self._key = self._workers, [], None
        for proc, conn in workers:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
        for proc, conn in workers:
            try:
                proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.terminate()
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch ------------------------------------------------------
    def run(self, tasks: List[tuple]) -> Tuple[List[tuple], List[float]]:
        """Round-robin ``tasks`` over the workers; returns the encoded
        payloads in task order plus per-task worker wall times.

        Worker-side exceptions re-raise here (they travel pickled over
        the pipe — how an :class:`UncertainGroupError` in one morsel
        reaches the Exchange's serial fallback); transport failures
        close the pool and raise :class:`PoolBrokenError` instead.
        """
        if not self._workers:
            raise PoolBrokenError("pool has no live workers")
        assignment: List[List[int]] = [[] for _ in self._workers]
        for k in range(len(tasks)):
            assignment[k % len(self._workers)].append(k)
        payloads: List[Optional[tuple]] = [None] * len(tasks)
        timings: List[float] = [0.0] * len(tasks)
        error: Optional[BaseException] = None
        try:
            for (_proc, conn), idxs in zip(self._workers, assignment):
                for k in idxs:
                    conn.send(tasks[k])
            for (_proc, conn), idxs in zip(self._workers, assignment):
                for k in idxs:
                    reply = conn.recv()
                    if reply[0] == "ok":
                        payloads[k] = reply[1]
                        timings[k] = reply[2]
                    elif error is None:
                        error = reply[1]
        except (EOFError, OSError) as exc:
            self.close()
            raise PoolBrokenError(f"pool worker died: {exc!r}") from exc
        _POOL_TASKS.inc(len(tasks))
        if error is not None:
            raise error
        return payloads, timings


def _run_pooled(
    pool: WorkerPool,
    node: phys.Exchange,
    scan: phys.ParallelScan,
    au: bool,
    bindings: Dict[int, Any],
    chunk_groups: Optional[List[List[int]]],
    parts: Optional[List[Any]],
) -> List[Any]:
    """Dispatch the region to the persistent pool.

    The region subtree is pickled once per query; morsels travel as
    chunk-index specs when the driver has a chunk store (the workers'
    fork-inherited stores rebuild the batches locally) and as encoded
    batches otherwise.  Invariant bindings are keyed by walk index so
    they re-attach to the workers' unpickled plan copies.
    """
    nodes = list(node.child.walk())
    idx_of = {id(n): i for i, n in enumerate(nodes)}
    try:
        region_bytes = pickle.dumps(node.child)
        enc_bindings = tuple(
            (idx_of[key], _encode(batch))
            for key, batch in bindings.items()
            if key in idx_of
        )
        if chunk_groups is not None:
            specs = [
                ("chunks", scan.table, scan.chunk_size, g) for g in chunk_groups
            ]
        else:
            specs = [_encode(p) for p in parts]
        tasks = [
            (region_bytes, au, idx_of[id(scan)], enc_bindings, spec)
            for spec in specs
        ]
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        # untransportable plan (exotic expression state): the pool stays
        # alive for other queries, this region uses per-query workers
        raise PoolBrokenError(f"region not picklable: {exc!r}") from exc
    payloads, timings = pool.run(tasks)
    if _tm._ACTIVE is not None:
        _tm.annotate(pool_worker_seconds=[round(t, 6) for t in timings])
    return [_decode(p) for p in payloads]


# ----------------------------------------------------------------------
# per-query forked worker pool (no persistent pool attached)
# ----------------------------------------------------------------------
#: Inherited-by-fork work description; only partition indices travel to
#: the workers and only encoded results travel back.
_WORK: Optional[tuple] = None


def _worker(i: int):
    from .vectorized import _AUExec, _DetExec

    # the fork inherited the parent's active trace; spans recorded here
    # could never travel back over the result pipe, so don't record any
    _tm._ACTIVE = None
    db, region, scan, parts, bindings, join_tables, au = _WORK
    cls = _AUExec if au else _DetExec
    result = cls(
        db, None, {**bindings, id(scan): parts[i]}, join_tables
    ).eval(region)
    return _encode(result)


def _run_forked(
    db, region, scan, parts, bindings, join_tables, au: bool = False
) -> List[Any]:
    import multiprocessing

    global _WORK
    ctx = multiprocessing.get_context("fork")
    _WORK = (db, region, scan, parts, bindings, join_tables, au)
    try:
        with ctx.Pool(min(len(parts), os.cpu_count() or 1)) as pool:
            encoded = pool.map(_worker, range(len(parts)))
    finally:
        _WORK = None
    return [_decode(e) for e in encoded]


# ----------------------------------------------------------------------
# merges
# ----------------------------------------------------------------------
def _concat(batches: List[ColumnBatch]) -> ColumnBatch:
    first = batches[0]
    if len(batches) == 1:
        return first
    columns: List[list] = [list(col) for col in first.columns]
    mult = list(first.mult)
    for batch in batches[1:]:
        for acc, col in zip(columns, batch.columns):
            acc.extend(col)
        mult.extend(batch.mult)
    return ColumnBatch(first.schema, columns, mult)


def _concat_au(batches: List[AUColumnBatch]) -> AUColumnBatch:
    first = batches[0]
    if len(batches) == 1:
        return first
    columns: List[list] = [list(col) for col in first.columns]
    ann_lb = list(first.ann_lb)
    ann_sg = list(first.ann_sg)
    ann_ub = list(first.ann_ub)
    for batch in batches[1:]:
        for acc, col in zip(columns, batch.columns):
            acc.extend(col)
        ann_lb.extend(batch.ann_lb)
        ann_sg.extend(batch.ann_sg)
        ann_ub.extend(batch.ann_ub)
    return AUColumnBatch(first.schema, columns, ann_lb, ann_sg, ann_ub)


def _merge(node: phys.Exchange, results: List[Any]) -> ColumnBatch:
    from ..core.sums import merge_acc
    from ..db.engine import _limit, _topk
    from .vectorized import _dedup_batch, finalize_groups

    final = node.final
    if node.merge == "concat":
        return _concat(results)
    if node.merge == "aggregate":
        merged: Dict[Tuple, List[Any]] = {}
        kinds = [spec.kind for spec in final.aggregates]
        for partial in results:
            for key, accs in partial.groups.items():
                mine = merged.get(key)
                if mine is None:
                    merged[key] = accs
                    continue
                for a, kind in enumerate(kinds):
                    if kind == "count":
                        mine[a] += accs[a]
                    elif kind == "sum":
                        merge_acc(mine[a], accs[a])
                    elif kind == "avg":
                        merge_acc(mine[a][0], accs[a][0])
                        mine[a][1] += accs[a][1]
                    elif kind == "min":
                        if accs[a][0] < mine[a][0]:
                            mine[a] = accs[a]
                    else:  # max
                        if accs[a][0] > mine[a][0]:
                            mine[a] = accs[a]
        if not merged and not final.group_by:
            from ..db.engine import _empty_value

            return ColumnBatch(
                [spec.name for spec in final.aggregates],
                [[_empty_value(spec)] for spec in final.aggregates],
                [1],
            )
        batch = finalize_groups(merged, final.group_by, final.aggregates)
        if final.having is not None:
            # re-filter through the vectorized selection path
            from .vectorized import _DetExec

            batch = _DetExec(None)._select_project(batch, final.having, None)
        return batch
    if node.merge == "topk":
        merged_rel = _concat(results).to_relation()
        return ColumnBatch.from_relation(
            _topk(merged_rel, final.keys, final.descending, final.n)
        )
    if node.merge == "limit":
        return ColumnBatch.from_relation(
            _limit(_concat(results).to_relation(), final.n)
        )
    if node.merge == "distinct":
        return _dedup_batch(_concat(results))
    raise TypeError(f"unsupported exchange merge {node.merge!r}")


def _merge_au(node: phys.Exchange, results: List[Any]) -> AUColumnBatch:
    """Recombine AU morsel results (annotations add at the merge).

    ``au_aggregate`` merges the per-worker SG-combine partial states in
    partition order and finalizes — bit-identical to the serial tuple
    operator (exact Shewchuk accumulators make SUM/AVG regrouping-
    invariant; MIN/MAX/AVG-envelope tie rules replay the serial fold
    because merging follows partition order).  ``au_topk`` concatenates
    the full morsel outputs and applies the exact top-k operator once —
    its prefix-sum bound construction needs the entire input.
    """
    from ..core import operators as ops
    from ..core.aggregation import (
        finalize_partial_groups,
        merge_partial_groups,
    )

    if node.merge == "concat":
        return _concat_au(results)
    final = node.final
    lg = final.logical
    if node.merge == "au_aggregate":
        merged: Dict[Tuple, list] = {}
        for part in results:
            merge_partial_groups(merged, part.groups, lg.aggregates)
        rel = finalize_partial_groups(merged, lg.group_by, lg.aggregates)
        if lg.having is not None:
            rel = ops.selection(rel, lg.having)
        return AUColumnBatch.from_relation(rel)
    if node.merge == "au_topk":
        rel = _concat_au(results).to_relation()
        return AUColumnBatch.from_relation(
            ops.au_topk(rel, lg.keys, lg.descending, lg.n)
        )
    raise TypeError(f"unsupported AU exchange merge {node.merge!r}")
